#include "mlcore/forest.hpp"

#include <gtest/gtest.h>

#include "mlcore/metrics.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_logistic_dataset;
using xnfv::testutil::make_xor_dataset;

TEST(RandomForest, FitsXorWell) {
    ml::Rng rng(1);
    const auto d = make_xor_dataset(1500, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 50});
    forest.fit(d, rng);
    EXPECT_GT(ml::roc_auc(d.y, forest.predict_batch(d.x)), 0.97);
}

TEST(RandomForest, PredictionsAreProbabilitiesForClassification) {
    ml::Rng rng(2);
    const auto d = make_logistic_dataset(std::vector<double>{2.0, -1.0}, 0.0, 500, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 20});
    forest.fit(d, rng);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const double p = forest.predict(d.x.row(i));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(RandomForest, DeterministicGivenSeed) {
    ml::Rng rng_a(42), rng_b(42);
    ml::Rng data_rng(3);
    const auto d = make_linear_dataset(std::vector<double>{1.0, 2.0}, 0.0, 400, data_rng, 0.2);
    ml::RandomForest a(ml::RandomForest::Config{.num_trees = 10});
    ml::RandomForest b(ml::RandomForest::Config{.num_trees = 10});
    a.fit(d, rng_a);
    b.fit(d, rng_b);
    const std::vector<double> x{0.3, -0.4};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForest, EnsembleBeatsSingleTreeOutOfSample) {
    ml::Rng rng(4);
    auto full = make_linear_dataset(std::vector<double>{2.0, -1.0, 0.5}, 0.0, 1200, rng,
                                    /*noise=*/0.6);
    auto split = ml::train_test_split(full, 0.3, rng);

    ml::DecisionTree::Config tree_cfg{.max_depth = 10, .min_samples_leaf = 2,
                                      .min_samples_split = 4};
    ml::DecisionTree single(tree_cfg);
    single.fit(split.train);

    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 60, .tree = tree_cfg});
    forest.fit(split.train, rng);

    const double err_tree = ml::mse(split.test.y, single.predict_batch(split.test.x));
    const double err_forest = ml::mse(split.test.y, forest.predict_batch(split.test.x));
    EXPECT_LT(err_forest, err_tree);
}

TEST(RandomForest, ImportancesFavorInformativeFeatures) {
    ml::Rng rng(5);
    // Only feature 1 matters.
    ml::Dataset d;
    d.task = ml::Task::regression;
    for (int i = 0; i < 800; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1), c = rng.uniform(-1, 1);
        d.add(std::vector<double>{a, b, c}, 10.0 * b);
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 30});
    forest.fit(d, rng);
    const auto imp = forest.feature_importances();
    EXPECT_GT(imp[1], imp[0]);
    EXPECT_GT(imp[1], imp[2]);
    EXPECT_GT(imp[1], 0.6);
    EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
}

TEST(RandomForest, ThrowsOnMisuse) {
    ml::Rng rng(6);
    ml::RandomForest forest;
    EXPECT_THROW((void)forest.predict(std::vector<double>{1.0}), std::logic_error);
    EXPECT_THROW(forest.fit(ml::Dataset{}, rng), std::invalid_argument);
    ml::RandomForest zero(ml::RandomForest::Config{.num_trees = 0});
    const auto d = make_xor_dataset(50, rng);
    EXPECT_THROW(zero.fit(d, rng), std::invalid_argument);
}

TEST(RandomForest, TreeCountMatchesConfig) {
    ml::Rng rng(7);
    const auto d = make_xor_dataset(200, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 17});
    forest.fit(d, rng);
    EXPECT_EQ(forest.trees().size(), 17u);
}

// Sweep: out-of-sample error decreases (weakly) with more trees.
class ForestSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeSweep, MoreTreesNoWorseGeneralization) {
    ml::Rng rng(8);
    auto full = make_linear_dataset(std::vector<double>{1.0, -1.0}, 0.0, 800, rng, 0.5);
    auto split = ml::train_test_split(full, 0.25, rng);
    ml::RandomForest small(ml::RandomForest::Config{.num_trees = 2});
    ml::RandomForest big(ml::RandomForest::Config{.num_trees = GetParam()});
    ml::Rng ra(99), rb(99);
    small.fit(split.train, ra);
    big.fit(split.train, rb);
    const double err_small = ml::mse(split.test.y, small.predict_batch(split.test.x));
    const double err_big = ml::mse(split.test.y, big.predict_batch(split.test.x));
    EXPECT_LT(err_big, err_small * 1.1);  // allow small noise margin
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeSweep, ::testing::Values(10u, 30u, 80u));
