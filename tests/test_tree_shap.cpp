#include "core/tree_shap.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_xor_dataset;
using xnfv::testutil::max_abs_diff;

namespace {

/// Brute-force Shapley values of the *path-dependent* value function
/// tree_expected_value — the ground truth tree_shap_single must match.
std::vector<double> brute_force_tree_shapley(const ml::DecisionTree& tree,
                                             std::span<const double> x) {
    const std::size_t d = tree.num_features();
    const std::size_t n_subsets = std::size_t{1} << d;
    std::vector<double> v(n_subsets);
    std::vector<bool> mask(d);
    for (std::size_t m = 0; m < n_subsets; ++m) {
        for (std::size_t j = 0; j < d; ++j) mask[j] = (m >> j) & 1u;
        v[m] = xai::tree_expected_value(tree, x, mask);
    }
    std::vector<double> weight(d);
    for (std::size_t s = 0; s < d; ++s)
        weight[s] = std::exp(std::lgamma(double(s) + 1.0) + std::lgamma(double(d - s)) -
                             std::lgamma(double(d) + 1.0));
    std::vector<double> phi(d, 0.0);
    for (std::size_t m = 0; m < n_subsets; ++m) {
        const auto s = static_cast<std::size_t>(std::popcount(m));
        for (std::size_t i = 0; i < d; ++i) {
            if ((m >> i) & 1u) continue;
            phi[i] += weight[s] * (v[m | (std::size_t{1} << i)] - v[m]);
        }
    }
    return phi;
}

ml::Dataset nonlinear_dataset(std::size_t n, std::size_t d, ml::Rng& rng) {
    ml::Dataset data;
    data.task = ml::Task::regression;
    std::vector<double> row(d);
    for (std::size_t i = 0; i < n; ++i) {
        for (auto& v : row) v = rng.uniform(-1.0, 1.0);
        double y = 3.0 * row[0];
        if (d > 1) y += (row[0] > 0 ? 2.0 : -1.0) * row[1];
        if (d > 2) y += std::abs(row[2]);
        data.add(row, y);
    }
    return data;
}

}  // namespace

TEST(TreeExpectedValue, FullCoalitionIsPrediction) {
    ml::Rng rng(1);
    const auto data = nonlinear_dataset(400, 3, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 5});
    tree.fit(data);
    const std::vector<double> x{0.3, -0.4, 0.8};
    EXPECT_NEAR(xai::tree_expected_value(tree, x, std::vector<bool>(3, true)),
                tree.predict(x), 1e-12);
}

TEST(TreeExpectedValue, EmptyCoalitionIsCoverWeightedMean) {
    ml::Rng rng(2);
    const auto data = nonlinear_dataset(400, 2, rng);
    ml::DecisionTree tree;
    tree.fit(data);
    // Cover-weighted mean over leaves == training-set mean of predictions.
    double mean = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) mean += tree.predict(data.x.row(i));
    mean /= static_cast<double>(data.size());
    EXPECT_NEAR(xai::tree_expected_value(tree, std::vector<double>{0, 0},
                                         std::vector<bool>(2, false)),
                mean, 1e-9);
}

TEST(TreeShapSingle, MatchesBruteForceOnSmallTrees) {
    ml::Rng rng(3);
    const auto data = nonlinear_dataset(600, 3, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 4});
    tree.fit(data);
    for (const auto& x : {std::vector<double>{0.5, 0.5, 0.5},
                          std::vector<double>{-0.9, 0.1, -0.3},
                          std::vector<double>{0.0, -1.0, 1.0}}) {
        std::vector<double> phi(3, 0.0);
        (void)xai::tree_shap_single(tree, x, phi);
        const auto truth = brute_force_tree_shapley(tree, x);
        EXPECT_LT(max_abs_diff(phi, truth), 1e-9) << "at x0=" << x[0];
    }
}

TEST(TreeShapSingle, MatchesBruteForceOnDeeperTreesManyPoints) {
    ml::Rng rng(4);
    const auto data = nonlinear_dataset(1500, 4, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 7, .min_samples_leaf = 3,
                                                   .min_samples_split = 6});
    tree.fit(data);
    std::vector<double> x(4);
    for (int rep = 0; rep < 20; ++rep) {
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        std::vector<double> phi(4, 0.0);
        (void)xai::tree_shap_single(tree, x, phi);
        EXPECT_LT(max_abs_diff(phi, brute_force_tree_shapley(tree, x)), 1e-9);
    }
}

TEST(TreeShapSingle, EfficiencyAxiom) {
    ml::Rng rng(5);
    const auto data = nonlinear_dataset(800, 3, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 6});
    tree.fit(data);
    const std::vector<double> x{0.2, 0.7, -0.6};
    std::vector<double> phi(3, 0.0);
    const double base = xai::tree_shap_single(tree, x, phi);
    double sum = base;
    for (double p : phi) sum += p;
    EXPECT_NEAR(sum, tree.predict(x), 1e-9);
}

TEST(TreeShapSingle, UnusedFeatureGetsZero) {
    ml::Rng rng(6);
    // Only feature 0 is informative; feature 1 never splits.
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 400; ++i) {
        const double a = rng.uniform(-1, 1);
        data.add(std::vector<double>{a, rng.uniform(-1, 1)}, a > 0 ? 4.0 : -4.0);
    }
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 2});
    tree.fit(data);
    std::vector<double> phi(2, 0.0);
    (void)xai::tree_shap_single(tree, std::vector<double>{0.5, 0.5}, phi);
    EXPECT_NEAR(phi[1], 0.0, 1e-12);
    EXPECT_GT(std::abs(phi[0]), 1.0);
}

TEST(TreeShapExplainer, SingleTreeDispatch) {
    ml::Rng rng(7);
    const auto data = nonlinear_dataset(500, 3, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 5});
    tree.fit(data);
    xai::TreeShap ts;
    const std::vector<double> x{0.1, 0.2, 0.3};
    const auto e = ts.explain(tree, x);
    EXPECT_EQ(e.attributions.size(), 3u);
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-9);
}

TEST(TreeShapExplainer, ForestEfficiencyAndAveraging) {
    ml::Rng rng(8);
    const auto data = nonlinear_dataset(800, 3, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 25});
    forest.fit(data, rng);
    xai::TreeShap ts;
    const std::vector<double> x{0.4, -0.2, 0.6};
    const auto e = ts.explain(forest, x);
    EXPECT_NEAR(e.additive_reconstruction(), forest.predict(x), 1e-9);
}

TEST(TreeShapExplainer, GbtRegressionEfficiency) {
    ml::Rng rng(9);
    const auto data = nonlinear_dataset(800, 3, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 40});
    gbt.fit(data, rng);
    xai::TreeShap ts;
    const std::vector<double> x{-0.3, 0.5, 0.1};
    const auto e = ts.explain(gbt, x);
    EXPECT_NEAR(e.additive_reconstruction(), gbt.predict(x), 1e-9);
}

TEST(TreeShapExplainer, GbtClassifierWorksInMarginSpace) {
    ml::Rng rng(10);
    const auto data = make_xor_dataset(1000, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 30});
    gbt.fit(data, rng);
    xai::TreeShap ts;
    const std::vector<double> x{0.5, -0.5};
    const auto e = ts.explain(gbt, x);
    // Efficiency must hold in margin (log-odds) space.
    EXPECT_NEAR(e.additive_reconstruction(), gbt.predict_margin(x), 1e-9);
    EXPECT_NEAR(ml::sigmoid(e.prediction), gbt.predict(x), 1e-12);
}

TEST(TreeShapExplainer, RejectsNonTreeModels) {
    xai::TreeShap ts;
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)ts.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
    ml::DecisionTree unfitted;
    EXPECT_THROW((void)ts.explain(unfitted, std::vector<double>{}),
                 std::invalid_argument);
}

TEST(TreeShapExplainer, InformativeFeatureDominatesXorForest) {
    ml::Rng rng(11);
    // XOR + a third dummy feature: attributions on the dummy must be small.
    ml::Dataset data;
    data.task = ml::Task::binary_classification;
    for (int i = 0; i < 1500; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1),
                     c = rng.uniform(-1, 1);
        data.add(std::vector<double>{a, b, c}, (a > 0) != (b > 0) ? 1.0 : 0.0);
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 40});
    forest.fit(data, rng);
    xai::TreeShap ts;
    double dummy_mass = 0.0, info_mass = 0.0;
    for (int rep = 0; rep < 20; ++rep) {
        const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                    rng.uniform(-1, 1)};
        const auto e = ts.explain(forest, x);
        info_mass += std::abs(e.attributions[0]) + std::abs(e.attributions[1]);
        dummy_mass += std::abs(e.attributions[2]);
    }
    EXPECT_GT(info_mass, 5.0 * dummy_mass);
}

// Sweep: brute-force agreement across tree depths.
class TreeShapDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeShapDepthSweep, MatchesBruteForceAtDepth) {
    ml::Rng rng(40 + GetParam());
    const auto data = nonlinear_dataset(900, 4, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = GetParam(),
                                                   .min_samples_leaf = 2,
                                                   .min_samples_split = 4});
    tree.fit(data);
    std::vector<double> x(4);
    for (int rep = 0; rep < 5; ++rep) {
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        std::vector<double> phi(4, 0.0);
        (void)xai::tree_shap_single(tree, x, phi);
        EXPECT_LT(max_abs_diff(phi, brute_force_tree_shapley(tree, x)), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeShapDepthSweep, ::testing::Values(1, 2, 3, 5, 8));
