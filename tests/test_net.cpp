// TCP front-end (src/net/) end-to-end tests over loopback.
//
// The central claim is transport transparency: the bytes a TCP client reads
// for an explain request are identical to what the stdin loop would print —
// which in turn is pinned to the one-shot CLI path by the serving
// determinism contract.  So every round-trip test compares full wire lines
// against serve::render_response of a response built from a fresh one-shot
// explainer, at 1 and at 8 worker threads.
//
// The rest covers the failure policy: pipelined ordering, per-connection id
// assignment, connection-limit rejection, slow-reader backpressure close,
// idle timeout, and graceful drain with requests still in the micro-batcher.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kSeed = 11;
constexpr auto kRecvTimeout = 30s;  // generous: TSan/ASan runs are slow

/// Fixed-seed NFV scenario dataset + forest (same shape as the serving
/// determinism suite).
struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 260;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 8});
        out.forest->fit(out.data, rng);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

/// Service + server on a background thread, drained and joined on teardown.
struct Harness {
    std::unique_ptr<serve::ExplanationService> service;
    std::unique_ptr<net::ExplanationServer> server;
    std::thread thread;

    explicit Harness(serve::ServiceConfig scfg = {}, net::ServerConfig ncfg = {}) {
        const auto& s = scenario();
        service = std::make_unique<serve::ExplanationService>(
            s.forest, s.background, std::move(scfg));
        server = std::make_unique<net::ExplanationServer>(*service, std::move(ncfg));
        server->set_row_lookup(
            [](std::size_t row, std::vector<double>& features) {
                const auto& sc = scenario();
                if (row >= sc.data.size()) return false;
                const auto x = sc.data.x.row(row);
                features.assign(x.begin(), x.end());
                return true;
            });
        std::string error;
        if (!server->start(&error))
            throw std::runtime_error("server start failed: " + error);
        thread = std::thread([this] { server->run(); });
    }

    ~Harness() { stop(); }

    void stop() {
        if (server) server->request_drain();
        if (thread.joinable()) thread.join();
        if (service) service->stop();
    }

    net::Client connect() {
        net::Client client;
        std::string error;
        if (!client.connect("127.0.0.1", server->port(), &error))
            throw std::runtime_error("connect failed: " + error);
        return client;
    }
};

/// The explain request the stdin loop and the TCP path both accept.
std::string explain_request(std::uint64_t id, std::size_t row,
                            const std::string& method) {
    const auto& s = scenario();
    const auto x = s.data.x.row(row);
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    w.field("method", method);
    w.field("seed", kSeed);
    w.field_array("features", std::vector<double>(x.begin(), x.end()));
    return w.finish();
}

/// The exact line the server must produce: one-shot explainer, rendered
/// through the shared wire renderer.
std::string expected_line(std::uint64_t id, std::size_t row,
                          const std::string& method, bool cache_hit) {
    const auto& s = scenario();
    const auto explainer = serve::make_explainer(method, s.background, kSeed);
    serve::ExplainResponse r;
    r.id = id;
    r.ok = true;
    r.cache_hit = cache_hit;
    r.explanation = explainer->explain(*s.forest, s.data.x.row(row));
    return serve::render_response(r);
}

std::string must_recv(net::Client& client) {
    std::string line;
    if (!client.recv_line(line, std::chrono::duration_cast<std::chrono::milliseconds>(
                                    kRecvTimeout)))
        throw std::runtime_error("recv_line timed out / connection closed");
    return line;
}

void round_trip_case(std::size_t threads) {
    serve::ServiceConfig scfg;
    scfg.threads = threads;
    Harness h(scfg);
    auto client = h.connect();

    // Rows with a repeat (cache hit) across two methods; every line must be
    // byte-identical to the one-shot reference.
    const std::vector<std::size_t> rows{0, 7, 42, 99, 7};
    std::uint64_t id = 100;
    for (const auto* method : {"tree_shap", "sampling"}) {
        std::vector<bool> hit;
        std::vector<std::size_t> seen;
        for (const auto row : rows) {
            hit.push_back(std::find(seen.begin(), seen.end(), row) != seen.end());
            seen.push_back(row);
            ASSERT_TRUE(client.send_line(explain_request(id, row, method)));
            const auto got = must_recv(client);
            EXPECT_EQ(got, expected_line(id, row, method, hit.back()))
                << "method " << method << " row " << row;
            ++id;
        }
    }
}

TEST(NetServer, RoundTripBitwiseEqualOneThread) { round_trip_case(1); }

TEST(NetServer, RoundTripBitwiseEqualEightThreads) { round_trip_case(8); }

TEST(NetServer, PipelinedRequestsAnswerInOrderWithDefaultIds) {
    Harness h;
    auto client = h.connect();
    // One write, many frames — ids are assigned per connection starting at
    // 1, and responses come back in request order (slot pipeline).
    std::string wire;
    for (int i = 0; i < 6; ++i)
        wire += R"({"op":"explain","row":)" + std::to_string(i) + "}\n";
    ASSERT_TRUE(client.send_line(wire.substr(0, wire.size() - 1)));
    for (std::uint64_t want = 1; want <= 6; ++want) {
        const auto line = must_recv(client);
        const auto parsed = serve::parse_json(line);
        EXPECT_EQ(parsed.get_number("id", 0), static_cast<double>(want));
        EXPECT_TRUE(parsed.find("ok") != nullptr);
    }
}

TEST(NetServer, RowLookupAndErrorsMatchStdinLoopWording) {
    Harness h;
    auto client = h.connect();
    ASSERT_TRUE(client.send_line(R"({"op":"explain","row":999999})"));
    auto parsed = serve::parse_json(must_recv(client));
    EXPECT_EQ(parsed.get_string("error", ""), "row out of range");
    EXPECT_EQ(parsed.get_string("error_code", ""), "bad_request");

    ASSERT_TRUE(client.send_line(R"({"op":"explain"})"));
    parsed = serve::parse_json(must_recv(client));
    EXPECT_EQ(parsed.get_string("error", ""), "explain needs \"row\" or \"features\"");

    ASSERT_TRUE(client.send_line(R"({"op":"unknown_op"})"));
    parsed = serve::parse_json(must_recv(client));
    EXPECT_EQ(parsed.get_string("error", ""), "unknown op 'unknown_op'");

    ASSERT_TRUE(client.send_line("this is not json"));
    parsed = serve::parse_json(must_recv(client));
    EXPECT_EQ(parsed.get_string("error_code", ""), "bad_request");
}

TEST(NetServer, StatsOpReportsNetSectionAndQuitCloses) {
    Harness h;
    auto client = h.connect();
    ASSERT_TRUE(client.send_line(R"({"op":"explain","row":1})"));
    ASSERT_TRUE(client.send_line(R"({"op":"explain","row":2})"));
    ASSERT_TRUE(client.send_line(R"({"op":"stats"})"));
    ASSERT_TRUE(client.send_line(R"({"op":"quit"})"));
    (void)must_recv(client);
    (void)must_recv(client);
    const auto stats_line = must_recv(client);
    const auto parsed = serve::parse_json(stats_line);
    EXPECT_EQ(parsed.get_string("op", ""), "stats");
    // The stats barrier resolves only after both explains were answered.
    EXPECT_EQ(parsed.get_number("requests_completed", -1), 2.0);
    EXPECT_EQ(parsed.get_number("net_requests", -1), 2.0);
    EXPECT_EQ(parsed.get_number("connections_accepted", -1), 1.0);
    // quit: no response line, just an orderly close after the flush.
    std::string line;
    EXPECT_FALSE(client.recv_line(line, std::chrono::milliseconds(5000)));
}

TEST(NetServer, ConnectionLimitRejectsWithStructuredError) {
    net::ServerConfig ncfg;
    ncfg.max_connections = 1;
    Harness h({}, ncfg);
    auto first = h.connect();
    // Ensure the first connection is fully accepted before the second tries.
    ASSERT_TRUE(first.send_line(R"({"op":"explain","row":0})"));
    (void)must_recv(first);

    auto second = h.connect();
    const auto line = must_recv(second);
    const auto parsed = serve::parse_json(line);
    EXPECT_EQ(parsed.get_string("error_code", ""), "backpressure");
    EXPECT_EQ(parsed.get_string("error", ""), "connection limit reached");
    std::string extra;
    EXPECT_FALSE(second.recv_line(extra, std::chrono::milliseconds(5000)));

    // The first connection is unaffected.
    ASSERT_TRUE(first.send_line(R"({"op":"explain","row":1})"));
    (void)must_recv(first);
}

TEST(NetServer, SlowReaderClosedWithBackpressure) {
    serve::ServiceConfig scfg;
    scfg.cache_capacity = 4096;
    net::ServerConfig ncfg;
    ncfg.sndbuf = 2048;          // shrink the kernel's buffering...
    ncfg.max_output_bytes = 4096;  // ...so the userspace cap is reachable
    Harness h(scfg, ncfg);

    // Raw socket with a tiny receive buffer (set before connect so the
    // window is small), never read from: the textbook slow reader.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 2048;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(h.server->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

    // Identical cache-hitting requests: responses are produced far faster
    // than this reader (which never reads) can drain them.
    std::string wire;
    for (int i = 0; i < 400; ++i) wire += "{\"op\":\"explain\",\"row\":3}\n";
    std::size_t off = 0;
    while (off < wire.size()) {
        const auto n = ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;  // server may force-close while we are still sending
        off += static_cast<std::size_t>(n);
    }

    const auto deadline = std::chrono::steady_clock::now() + kRecvTimeout;
    while (h.server->stats().connections_closed_backpressure == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "backpressure close never happened";
        std::this_thread::sleep_for(10ms);
    }
    const auto stats = h.server->stats();
    EXPECT_GE(stats.connections_closed_backpressure, 1u);
    EXPECT_GE(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::backpressure)],
              0u);  // wire error, not a service rejection
    ::close(fd);
}

TEST(NetServer, IdleConnectionTimedOut) {
    net::ServerConfig ncfg;
    ncfg.idle_timeout = 100ms;
    ncfg.tick = 10ms;
    Harness h({}, ncfg);
    auto client = h.connect();

    const auto deadline = std::chrono::steady_clock::now() + kRecvTimeout;
    while (h.server->stats().connections_closed_idle == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "idle close never happened";
        std::this_thread::sleep_for(10ms);
    }
    std::string line;
    EXPECT_FALSE(client.recv_line(line, std::chrono::milliseconds(5000)));
    EXPECT_EQ(h.server->stats().connections_closed_idle, 1u);
}

TEST(NetServer, GracefulDrainFlushesRequestsStillInBatcher) {
    serve::ServiceConfig scfg;
    scfg.max_wait = std::chrono::microseconds(300000);  // park in the batcher
    scfg.max_batch = 64;
    Harness h(scfg);
    auto client = h.connect();
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(client.send_line(R"({"op":"explain","row":)" +
                                     std::to_string(i) + "}"));
    // Give the loop time to read and admit the frames, then drain while the
    // micro-batch is still waiting for its flush timer.
    std::this_thread::sleep_for(100ms);
    h.server->request_drain();

    // Every in-flight request is still answered, in order...
    for (std::uint64_t want = 1; want <= 5; ++want) {
        const auto parsed = serve::parse_json(must_recv(client));
        EXPECT_EQ(parsed.get_number("id", 0), static_cast<double>(want));
        EXPECT_EQ(parsed.find("ok")->boolean, true);
    }
    // ...and only then does the server close and run() return.
    std::string line;
    EXPECT_FALSE(client.recv_line(line, std::chrono::milliseconds(10000)));
    h.stop();
}

TEST(NetServer, HalfCloseStillAnswersInFlight) {
    Harness h;
    auto client = h.connect();
    ASSERT_TRUE(client.send_line(R"({"op":"explain","row":4})"));
    client.shutdown_write();  // FIN: no more requests, but we still read
    const auto parsed = serve::parse_json(must_recv(client));
    EXPECT_EQ(parsed.find("ok")->boolean, true);
    std::string line;
    EXPECT_FALSE(client.recv_line(line, std::chrono::milliseconds(10000)));
}

TEST(NetServer, RetriedRidAnsweredFromDedupWindowByteIdentical) {
    // Safe-retry contract: a request re-sent with the same "rid" is answered
    // from the per-connection dedup window's completed-response record —
    // byte-identical to the original answer, with no second compute.
    Harness h;
    auto client = h.connect();
    const std::string request = R"({"op":"explain","id":9,"rid":9,"row":6})";

    // In-flight duplicate: both frames ride one write, the second attaches
    // to the pending original and both answers are the same bytes.
    ASSERT_TRUE(client.send_line(request + "\n" + request));
    const auto first = must_recv(client);
    const auto attached = must_recv(client);
    EXPECT_EQ(attached, first);

    // Post-completion duplicate: answered from the recorded response.
    ASSERT_TRUE(client.send_line(request));
    const auto replayed = must_recv(client);
    EXPECT_EQ(replayed, first);

    const auto stats = h.server->stats();
    EXPECT_EQ(stats.net_retry_duplicates, 2u);
    // One compute for three wire answers — the service admitted exactly one.
    EXPECT_EQ(stats.requests_accepted, 1u);
    EXPECT_EQ(stats.requests_completed, 1u);
    EXPECT_EQ(stats.net_requests, 3u);
}

TEST(NetServer, DedupWindowIsPerConnection) {
    // A rid is only remembered on the connection that served it: a fresh
    // connection re-sending the same rid recomputes (cache makes it cheap)
    // and the answer is still byte-identical by the determinism contract.
    Harness h;
    const std::string request =
        R"({"op":"explain","id":4,"rid":4,"row":8,"seed":11})";
    auto a = h.connect();
    ASSERT_TRUE(a.send_line(request));
    const auto first = must_recv(a);
    a.close();

    auto b = h.connect();
    ASSERT_TRUE(b.send_line(request));
    const auto parsed = serve::parse_json(must_recv(b));
    EXPECT_EQ(parsed.find("ok")->boolean, true);
    EXPECT_EQ(h.server->stats().net_retry_duplicates, 0u);
    EXPECT_EQ(h.server->stats().requests_accepted, 2u);
}

TEST(NetServer, TwoConnectionsHaveIndependentPipelines) {
    Harness h;
    auto a = h.connect();
    auto b = h.connect();
    ASSERT_TRUE(a.send_line(R"({"op":"explain","row":10})"));
    ASSERT_TRUE(b.send_line(R"({"op":"explain","row":20})"));
    ASSERT_TRUE(a.send_line(R"({"op":"explain","row":11})"));
    ASSERT_TRUE(b.send_line(R"({"op":"explain","row":21})"));
    // Each connection numbers its own requests from 1.
    for (std::uint64_t want = 1; want <= 2; ++want) {
        EXPECT_EQ(serve::parse_json(must_recv(a)).get_number("id", 0),
                  static_cast<double>(want));
        EXPECT_EQ(serve::parse_json(must_recv(b)).get_number("id", 0),
                  static_cast<double>(want));
    }
}

}  // namespace
