#include "mlcore/mlp.hpp"

#include <gtest/gtest.h>

#include "mlcore/metrics.hpp"
#include "mlcore/preprocess.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_xor_dataset;

TEST(Mlp, LearnsLinearFunction) {
    ml::Rng rng(1);
    const auto d = make_linear_dataset(std::vector<double>{2.0, -1.0}, 0.5, 800, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16}, .epochs = 200});
    mlp.fit(d, rng);
    EXPECT_GT(ml::r2_score(d.y, mlp.predict_batch(d.x)), 0.97);
}

TEST(Mlp, SolvesXorClassification) {
    ml::Rng rng(2);
    const auto d = make_xor_dataset(1500, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16, 16}, .learning_rate = 3e-3,
                                .epochs = 150});
    mlp.fit(d, rng);
    EXPECT_GT(ml::roc_auc(d.y, mlp.predict_batch(d.x)), 0.95);
}

TEST(Mlp, ClassificationOutputsProbabilities) {
    ml::Rng rng(3);
    const auto d = make_xor_dataset(300, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 30});
    mlp.fit(d, rng);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const double p = mlp.predict(d.x.row(i));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Mlp, TanhActivationAlsoLearns) {
    ml::Rng rng(4);
    const auto d = make_linear_dataset(std::vector<double>{1.5}, 0.0, 600, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16}, .activation = ml::Activation::tanh,
                                .epochs = 200});
    mlp.fit(d, rng);
    EXPECT_GT(ml::r2_score(d.y, mlp.predict_batch(d.x)), 0.95);
}

TEST(Mlp, MoreEpochsLowerLoss) {
    ml::Rng rng(5);
    const auto d = make_linear_dataset(std::vector<double>{2.0, 1.0}, 0.0, 500, rng);
    ml::Rng ra(7), rb(7);
    ml::Mlp brief(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 3});
    ml::Mlp longer(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 100});
    brief.fit(d, ra);
    longer.fit(d, rb);
    EXPECT_LT(longer.final_train_loss(), brief.final_train_loss());
}

TEST(Mlp, DeterministicGivenSeed) {
    ml::Rng data_rng(6);
    const auto d = make_linear_dataset(std::vector<double>{1.0}, 0.0, 200, data_rng);
    ml::Rng ra(33), rb(33);
    ml::Mlp a(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 20});
    ml::Mlp b(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 20});
    a.fit(d, ra);
    b.fit(d, rb);
    EXPECT_DOUBLE_EQ(a.predict(std::vector<double>{0.3}), b.predict(std::vector<double>{0.3}));
}

TEST(Mlp, RefitDiscardsPreviousModel) {
    ml::Rng rng(7);
    const auto pos = make_linear_dataset(std::vector<double>{5.0}, 0.0, 400, rng);
    const auto neg = make_linear_dataset(std::vector<double>{-5.0}, 0.0, 400, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 100});
    mlp.fit(pos, rng);
    mlp.fit(neg, rng);
    // After refit on the negated slope, the prediction direction must flip.
    EXPECT_LT(mlp.predict(std::vector<double>{1.0}), mlp.predict(std::vector<double>{-1.0}));
}

TEST(Mlp, ThrowsOnMisuse) {
    ml::Rng rng(8);
    ml::Mlp mlp;
    EXPECT_THROW((void)mlp.predict(std::vector<double>{1.0}), std::logic_error);
    EXPECT_THROW(mlp.fit(ml::Dataset{}, rng), std::invalid_argument);
    ml::Mlp zero_width(ml::Mlp::Config{.hidden_layers = {0}});
    const auto d = make_linear_dataset(std::vector<double>{1.0}, 0.0, 50, rng);
    EXPECT_THROW(zero_width.fit(d, rng), std::invalid_argument);
    ml::Mlp ok(ml::Mlp::Config{.hidden_layers = {4}, .epochs = 2});
    ok.fit(d, rng);
    EXPECT_THROW((void)ok.predict(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

// Sweep: architectures of varying depth/width all learn the linear task.
class MlpArchSweep : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(MlpArchSweep, LearnsAcrossArchitectures) {
    ml::Rng rng(9);
    const auto d = make_linear_dataset(std::vector<double>{1.0, -2.0}, 0.0, 600, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = GetParam(), .epochs = 150});
    mlp.fit(d, rng);
    EXPECT_GT(ml::r2_score(d.y, mlp.predict_batch(d.x)), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Architectures, MlpArchSweep,
                         ::testing::Values(std::vector<std::size_t>{4},
                                           std::vector<std::size_t>{32},
                                           std::vector<std::size_t>{16, 16},
                                           std::vector<std::size_t>{8, 8, 8}));
