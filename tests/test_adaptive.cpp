// Adaptive micro-batching policy (serve/adaptive.hpp).
//
// The policy is pure — (load -> wait), no clock, no queue — so every case
// here is a direct function check, and the batcher interaction is tested
// with hand-injected time points exactly like test_service's batcher tests.
#include <gtest/gtest.h>

#include <chrono>

#include "serve/adaptive.hpp"
#include "serve/batcher.hpp"

namespace serve = xnfv::serve;
using std::chrono::microseconds;

namespace {

serve::AdaptiveBatchConfig base_config() {
    serve::AdaptiveBatchConfig cfg;
    cfg.max_wait = microseconds(200);
    cfg.min_wait = microseconds(20);
    cfg.slo_p99_us = 1000.0;  // shrink starts at 500us (shrink_start 0.5)
    cfg.queue_high = 100;
    return cfg;
}

TEST(AdaptiveBatchPolicy, DisabledByDefault) {
    const serve::AdaptiveBatchPolicy policy;
    EXPECT_FALSE(policy.enabled());
    // An unconfigured policy reports the ceiling for any load.
    EXPECT_EQ(policy.effective_wait({1000, 1e9}),
              policy.config().max_wait);
}

TEST(AdaptiveBatchPolicy, UnpressuredKeepsFullWait) {
    const serve::AdaptiveBatchPolicy policy(base_config());
    ASSERT_TRUE(policy.enabled());
    EXPECT_DOUBLE_EQ(policy.pressure({0, 0.0}), 0.0);
    EXPECT_EQ(policy.effective_wait({0, 0.0}), microseconds(200));
    // Below shrink_start * SLO there is still no latency pressure.
    EXPECT_DOUBLE_EQ(policy.pressure({0, 499.0}), 0.0);
    EXPECT_EQ(policy.effective_wait({0, 499.0}), microseconds(200));
}

TEST(AdaptiveBatchPolicy, FullPressureFloorsTheWait) {
    const serve::AdaptiveBatchPolicy policy(base_config());
    EXPECT_DOUBLE_EQ(policy.pressure({0, 1000.0}), 1.0);
    EXPECT_EQ(policy.effective_wait({0, 1000.0}), microseconds(20));
    // Beyond the SLO pressure clamps at 1 — never below min_wait.
    EXPECT_DOUBLE_EQ(policy.pressure({0, 50000.0}), 1.0);
    EXPECT_EQ(policy.effective_wait({0, 50000.0}), microseconds(20));
}

TEST(AdaptiveBatchPolicy, LatencyPressureRampsLinearly) {
    const serve::AdaptiveBatchPolicy policy(base_config());
    // Halfway through the [500, 1000] ramp: pressure 0.5, wait at midpoint
    // of [20, 200].
    EXPECT_DOUBLE_EQ(policy.pressure({0, 750.0}), 0.5);
    EXPECT_EQ(policy.effective_wait({0, 750.0}), microseconds(110));
}

TEST(AdaptiveBatchPolicy, DepthPressureRampsToQueueHigh) {
    const serve::AdaptiveBatchPolicy policy(base_config());
    EXPECT_DOUBLE_EQ(policy.pressure({50, 0.0}), 0.5);
    EXPECT_DOUBLE_EQ(policy.pressure({100, 0.0}), 1.0);
    EXPECT_DOUBLE_EQ(policy.pressure({400, 0.0}), 1.0);  // clamped
    EXPECT_EQ(policy.effective_wait({100, 0.0}), microseconds(20));
}

TEST(AdaptiveBatchPolicy, StrongestSignalWins) {
    const serve::AdaptiveBatchPolicy policy(base_config());
    // Depth says 0.25, latency says 0.75 -> 0.75.
    EXPECT_DOUBLE_EQ(policy.pressure({25, 875.0}), 0.75);
    // Depth says 1.0, latency says 0 -> 1.0.
    EXPECT_DOUBLE_EQ(policy.pressure({100, 100.0}), 1.0);
}

TEST(AdaptiveBatchPolicy, MonotoneInBothSignals) {
    const serve::AdaptiveBatchPolicy policy(base_config());
    auto previous = policy.effective_wait({0, 0.0});
    for (std::size_t depth = 0; depth <= 120; depth += 10) {
        const auto wait = policy.effective_wait({depth, 0.0});
        EXPECT_LE(wait, previous) << "depth " << depth;
        previous = wait;
    }
    previous = policy.effective_wait({0, 0.0});
    for (double p99 = 0.0; p99 <= 1200.0; p99 += 100.0) {
        const auto wait = policy.effective_wait({0, p99});
        EXPECT_LE(wait, previous) << "p99 " << p99;
        previous = wait;
    }
}

TEST(AdaptiveBatchPolicy, LatencyTermAloneWhenDepthDisabled) {
    auto cfg = base_config();
    cfg.queue_high = 0;  // disable depth term
    const serve::AdaptiveBatchPolicy policy(cfg);
    ASSERT_TRUE(policy.enabled());
    EXPECT_DOUBLE_EQ(policy.pressure({100000, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(policy.pressure({100000, 1000.0}), 1.0);
}

TEST(AdaptiveBatchPolicy, ConstructorClampsDegenerateConfig) {
    serve::AdaptiveBatchConfig cfg;
    cfg.max_wait = microseconds(50);
    cfg.min_wait = microseconds(200);  // floor above ceiling
    cfg.slo_p99_us = 1000.0;
    cfg.shrink_start = 5.0;  // out of (0, 1)
    const serve::AdaptiveBatchPolicy policy(cfg);
    // Clamped: max_wait >= min_wait, and full pressure still well-defined.
    EXPECT_GE(policy.config().max_wait, policy.config().min_wait);
    const auto floor = policy.effective_wait({0, 1e9});
    const auto ceiling = policy.effective_wait({0, 0.0});
    EXPECT_LE(floor, ceiling);
}

// --- live-tuning the batcher -----------------------------------------

serve::Job job_at(serve::MicroBatcher& batcher, serve::MicroBatcher::TimePoint t) {
    serve::Job j;
    j.enqueued_at = t;
    [[maybe_unused]] const bool full = batcher.add(std::move(j), t);
    return {};
}

TEST(MicroBatcherSetMaxWait, ShrinkAppliesToPendingBatch) {
    serve::MicroBatcher batcher({.max_batch = 16, .max_wait = microseconds(500)});
    const auto t0 = std::chrono::steady_clock::time_point{};
    job_at(batcher, t0);
    // Under the original wait the batch is not yet due at +200us...
    EXPECT_FALSE(batcher.due(t0 + microseconds(200)));
    // ...but after an adaptive shrink to 100us it already is: due() reads
    // the current wait, so a shrink takes effect on the pending batch.
    batcher.set_max_wait(microseconds(100));
    EXPECT_TRUE(batcher.due(t0 + microseconds(200)));
    ASSERT_TRUE(batcher.deadline().has_value());
    EXPECT_EQ(*batcher.deadline(), t0 + microseconds(100));
}

TEST(MicroBatcherSetMaxWait, GrowAppliesToPendingBatch) {
    serve::MicroBatcher batcher({.max_batch = 16, .max_wait = microseconds(100)});
    const auto t0 = std::chrono::steady_clock::time_point{};
    job_at(batcher, t0);
    batcher.set_max_wait(microseconds(1000));  // pressure receded
    EXPECT_FALSE(batcher.due(t0 + microseconds(500)));
    EXPECT_TRUE(batcher.due(t0 + microseconds(1000)));
}

}  // namespace
