#include "mlcore/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mlcore/rng.hpp"

namespace ml = xnfv::ml;

TEST(Matrix, ConstructionAndFill) {
    ml::Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, FromRowsAndAccess) {
    const auto m = ml::Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, PushRowMismatchThrows) {
    ml::Matrix m;
    m.push_row(std::vector<double>{1, 2, 3});
    EXPECT_THROW(m.push_row(std::vector<double>{1, 2}), std::invalid_argument);
}

TEST(Matrix, ColExtraction) {
    const auto m = ml::Matrix::from_rows({{1, 2}, {3, 4}});
    const auto c = m.col(1);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c[0], 2.0);
    EXPECT_DOUBLE_EQ(c[1], 4.0);
    EXPECT_THROW(m.col(5), std::out_of_range);
}

TEST(Matrix, Transpose) {
    const auto m = ml::Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
    const auto t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), t(c, r));
}

TEST(Matrix, MatmulIdentity) {
    const auto m = ml::Matrix::from_rows({{1, 2}, {3, 4}});
    const auto i = ml::Matrix::identity(2);
    const auto p = m.matmul(i);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(p(r, c), m(r, c));
}

TEST(Matrix, MatmulKnownProduct) {
    const auto a = ml::Matrix::from_rows({{1, 2}, {3, 4}});
    const auto b = ml::Matrix::from_rows({{5, 6}, {7, 8}});
    const auto p = a.matmul(b);
    EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
    const ml::Matrix a(2, 3), b(2, 3);
    EXPECT_THROW((void)a.matmul(b), std::invalid_argument);
}

TEST(Matrix, MatvecKnown) {
    const auto m = ml::Matrix::from_rows({{1, 0, 2}, {0, 3, 0}});
    const auto v = m.matvec(std::vector<double>{1, 1, 1});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 3.0);
}

TEST(Matrix, TakeRowsWithRepeats) {
    const auto m = ml::Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
    const std::vector<std::size_t> idx{2, 0, 2};
    const auto s = m.take_rows(idx);
    EXPECT_EQ(s.rows(), 3u);
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(s(2, 0), 3.0);
    const std::vector<std::size_t> bad{7};
    EXPECT_THROW((void)m.take_rows(bad), std::out_of_range);
}

TEST(Matrix, TakeCols) {
    const auto m = ml::Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
    const std::vector<std::size_t> idx{2, 0};
    const auto s = m.take_cols(idx);
    EXPECT_EQ(s.cols(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(SolveSpd, SolvesKnownSystem) {
    // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
    const auto a = ml::Matrix::from_rows({{4, 1}, {1, 3}});
    const auto x = ml::solve_spd(a, std::vector<double>{1, 2});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
    EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(SolveSpd, JitterHandlesSemidefinite) {
    // Rank-1 PSD matrix; jitter should make it solvable without throwing.
    const auto a = ml::Matrix::from_rows({{1, 1}, {1, 1}});
    const auto x = ml::solve_spd(a, std::vector<double>{2, 2});
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(SolveSpd, RejectsNonSquare) {
    const ml::Matrix a(2, 3);
    EXPECT_THROW((void)ml::solve_spd(a, std::vector<double>{1, 2}), std::invalid_argument);
}

TEST(WeightedLeastSquares, RecoversExactCoefficients) {
    // y = 2 x0 - 3 x1 with no noise: WLS must recover the plane exactly.
    ml::Rng rng(1);
    ml::Matrix x(50, 2);
    std::vector<double> y(50), w(50, 1.0);
    for (std::size_t i = 0; i < 50; ++i) {
        x(i, 0) = rng.uniform(-1, 1);
        x(i, 1) = rng.uniform(-1, 1);
        y[i] = 2.0 * x(i, 0) - 3.0 * x(i, 1);
    }
    const auto beta = ml::weighted_least_squares(x, y, w);
    EXPECT_NEAR(beta[0], 2.0, 1e-9);
    EXPECT_NEAR(beta[1], -3.0, 1e-9);
}

TEST(WeightedLeastSquares, ZeroWeightSamplesIgnored) {
    // Outlier with zero weight must not affect the fit.
    ml::Matrix x(3, 1);
    x(0, 0) = 1.0;
    x(1, 0) = 2.0;
    x(2, 0) = 3.0;
    const std::vector<double> y{2.0, 4.0, 100.0};
    const std::vector<double> w{1.0, 1.0, 0.0};
    const auto beta = ml::weighted_least_squares(x, y, w);
    EXPECT_NEAR(beta[0], 2.0, 1e-9);
}

TEST(WeightedLeastSquares, RidgeShrinks) {
    ml::Rng rng(2);
    ml::Matrix x(30, 1);
    std::vector<double> y(30), w(30, 1.0);
    for (std::size_t i = 0; i < 30; ++i) {
        x(i, 0) = rng.uniform(-1, 1);
        y[i] = 5.0 * x(i, 0);
    }
    const auto free = ml::weighted_least_squares(x, y, w, 0.0);
    const auto ridged = ml::weighted_least_squares(x, y, w, 100.0);
    EXPECT_LT(std::abs(ridged[0]), std::abs(free[0]));
}

TEST(VectorOps, DotAndNorm) {
    const std::vector<double> a{3, 4}, b{1, 2};
    EXPECT_DOUBLE_EQ(ml::dot(a, b), 11.0);
    EXPECT_DOUBLE_EQ(ml::norm2(a), 5.0);
    const std::vector<double> c{1};
    EXPECT_THROW((void)ml::dot(a, c), std::invalid_argument);
}

TEST(VectorOps, MeanAndVariance) {
    const std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(ml::mean(v), 2.5);
    EXPECT_DOUBLE_EQ(ml::variance(v), 1.25);
    EXPECT_DOUBLE_EQ(ml::mean(std::vector<double>{}), 0.0);
    EXPECT_DOUBLE_EQ(ml::variance(std::vector<double>{7.0}), 0.0);
}

// Property sweep: WLS exactness holds across dimensions.
class WlsDimensionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WlsDimensionSweep, RecoversPlantedHyperplane) {
    const std::size_t d = GetParam();
    ml::Rng rng(d);
    ml::Matrix x(20 * d, d);
    std::vector<double> truth(d), y(20 * d), w(20 * d, 1.0);
    for (std::size_t j = 0; j < d; ++j) truth[j] = rng.uniform(-5, 5);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
            x(i, j) = rng.uniform(-1, 1);
            acc += truth[j] * x(i, j);
        }
        y[i] = acc;
    }
    const auto beta = ml::weighted_least_squares(x, y, w);
    for (std::size_t j = 0; j < d; ++j) EXPECT_NEAR(beta[j], truth[j], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Dims, WlsDimensionSweep, ::testing::Values(1u, 2u, 5u, 10u, 20u));
