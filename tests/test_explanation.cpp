#include "core/explanation.hpp"

#include <gtest/gtest.h>

#include "mlcore/rng.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;

namespace {

xai::Explanation sample_explanation() {
    xai::Explanation e;
    e.method = "test";
    e.prediction = 10.0;
    e.base_value = 4.0;
    e.attributions = {3.0, -1.0, 4.0, 0.0};
    e.feature_names = {"a", "b", "c", "d"};
    return e;
}

}  // namespace

TEST(Explanation, AbsAttributions) {
    const auto e = sample_explanation();
    const auto abs = e.abs_attributions();
    EXPECT_DOUBLE_EQ(abs[1], 1.0);
    EXPECT_DOUBLE_EQ(abs[2], 4.0);
}

TEST(Explanation, TopKOrdersByMagnitude) {
    const auto e = sample_explanation();
    const auto top = e.top_k(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 2u);  // |4.0|
    EXPECT_EQ(top[1], 0u);  // |3.0|
}

TEST(Explanation, TopKClampsToSize) {
    const auto e = sample_explanation();
    EXPECT_EQ(e.top_k(99).size(), 4u);
    EXPECT_TRUE(e.top_k(0).empty());
}

TEST(Explanation, AdditiveReconstruction) {
    const auto e = sample_explanation();
    EXPECT_DOUBLE_EQ(e.additive_reconstruction(), 4.0 + 3.0 - 1.0 + 4.0 + 0.0);
}

TEST(Explanation, ToStringContainsTopFeature) {
    const auto e = sample_explanation();
    const auto s = e.to_string(2);
    EXPECT_NE(s.find("c"), std::string::npos);
    EXPECT_NE(s.find("test"), std::string::npos);
}

TEST(BackgroundData, KeepsSmallInputVerbatim) {
    ml::Rng rng(1);
    const auto x = xnfv::testutil::make_uniform_background(10, 3, rng);
    const xai::BackgroundData bg(x, 256);
    EXPECT_EQ(bg.size(), 10u);
    EXPECT_EQ(bg.num_features(), 3u);
    EXPECT_DOUBLE_EQ(bg.samples()(4, 2), x(4, 2));
}

TEST(BackgroundData, SubsamplesLargeInput) {
    ml::Rng rng(2);
    const auto x = xnfv::testutil::make_uniform_background(1000, 2, rng);
    const xai::BackgroundData bg(x, 64);
    EXPECT_EQ(bg.size(), 64u);
}

TEST(BackgroundData, MeansMatchSamples) {
    ml::Rng rng(3);
    const auto x = xnfv::testutil::make_uniform_background(50, 2, rng);
    const xai::BackgroundData bg(x, 256);
    double m0 = 0.0;
    for (std::size_t r = 0; r < 50; ++r) m0 += x(r, 0);
    EXPECT_NEAR(bg.means()[0], m0 / 50.0, 1e-12);
}

TEST(BackgroundData, EmptyByDefault) {
    const xai::BackgroundData bg;
    EXPECT_TRUE(bg.empty());
    EXPECT_EQ(bg.size(), 0u);
}

TEST(BackgroundData, SubsampleIsDeterministic) {
    ml::Rng rng(4);
    const auto x = xnfv::testutil::make_uniform_background(500, 2, rng);
    const xai::BackgroundData a(x, 32);
    const xai::BackgroundData b(x, 32);
    for (std::size_t r = 0; r < 32; ++r)
        EXPECT_DOUBLE_EQ(a.samples()(r, 0), b.samples()(r, 0));
}
