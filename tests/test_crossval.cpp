#include "mlcore/crossval.hpp"

#include <gtest/gtest.h>

#include "mlcore/linear.hpp"
#include "mlcore/metrics.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;

namespace {

std::unique_ptr<ml::Model> fit_linear(const ml::Dataset& train) {
    auto m = std::make_unique<ml::LinearRegression>();
    m->fit(train);
    return m;
}

double score_r2(const ml::Model& model, const ml::Dataset& test) {
    return ml::r2_score(test.y, model.predict_batch(test.x));
}

}  // namespace

TEST(CrossVal, ProducesOneScorePerFold) {
    ml::Rng rng(1);
    const auto d = make_linear_dataset(std::vector<double>{2.0}, 0.0, 200, rng, 0.1);
    const auto cv = ml::k_fold_cv(d, 5, rng, fit_linear, score_r2);
    EXPECT_EQ(cv.fold_scores.size(), 5u);
}

TEST(CrossVal, LinearModelScoresHighOnLinearData) {
    ml::Rng rng(2);
    const auto d = make_linear_dataset(std::vector<double>{3.0, -1.0}, 0.0, 400, rng, 0.1);
    const auto cv = ml::k_fold_cv(d, 4, rng, fit_linear, score_r2);
    EXPECT_GT(cv.mean(), 0.95);
    EXPECT_LT(cv.stddev(), 0.05);
}

TEST(CrossVal, FoldsPartitionTheData) {
    ml::Rng rng(3);
    const auto d = make_linear_dataset(std::vector<double>{1.0}, 0.0, 100, rng);
    std::size_t total_test = 0;
    const auto cv = ml::k_fold_cv(
        d, 5, rng,
        [&](const ml::Dataset& train) {
            total_test += d.size() - train.size();
            return fit_linear(train);
        },
        score_r2);
    EXPECT_EQ(total_test, d.size());
}

TEST(CrossVal, RejectsBadK) {
    ml::Rng rng(4);
    const auto d = make_linear_dataset(std::vector<double>{1.0}, 0.0, 10, rng);
    EXPECT_THROW((void)ml::k_fold_cv(d, 1, rng, fit_linear, score_r2), std::invalid_argument);
    EXPECT_THROW((void)ml::k_fold_cv(d, 11, rng, fit_linear, score_r2),
                 std::invalid_argument);
}

TEST(CvResult, MeanAndStddev) {
    ml::CvResult r;
    r.fold_scores = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(r.mean(), 2.0);
    EXPECT_NEAR(r.stddev(), std::sqrt(2.0 / 3.0), 1e-12);
    ml::CvResult empty;
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);
}
