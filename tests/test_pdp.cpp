#include "core/pdp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

TEST(Pdp, LinearModelGivesLinearCurve) {
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(200, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return 3.0 * x[0] + x[1];
    });
    const auto pdp = xai::partial_dependence(model, background, 0,
                                             xai::PdpOptions{.grid_points = 10});
    ASSERT_EQ(pdp.grid.size(), 10u);
    ASSERT_EQ(pdp.mean.size(), 10u);
    // Slope between consecutive grid points must be ~3.
    for (std::size_t g = 1; g < pdp.grid.size(); ++g) {
        const double slope =
            (pdp.mean[g] - pdp.mean[g - 1]) / (pdp.grid[g] - pdp.grid[g - 1]);
        EXPECT_NEAR(slope, 3.0, 1e-9);
    }
}

TEST(Pdp, GridRespectsQuantileClipping) {
    ml::Rng rng(2);
    auto bg = make_uniform_background(200, 1, rng);
    bg(0, 0) = 1000.0;  // extreme outlier
    const xai::BackgroundData background(bg);
    const ml::LambdaModel model(1, [](std::span<const double> x) { return x[0]; });
    const auto pdp = xai::partial_dependence(model, background, 0,
                                             xai::PdpOptions{.grid_points = 5});
    EXPECT_LT(pdp.grid.back(), 100.0);  // outlier clipped by the 98% quantile
}

TEST(Pdp, MarginalizesOverOtherFeatures) {
    // f = x0 * x1 with symmetric background: PDP of x0 is ~0 everywhere.
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(500, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) { return x[0] * x[1]; });
    const auto pdp = xai::partial_dependence(model, background, 0);
    for (double v : pdp.mean) EXPECT_NEAR(v, 0.0, 0.05);
}

TEST(Pdp, IceCurvesKeptWhenRequested) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(30, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return x[0] + 2.0 * x[1];
    });
    const auto pdp = xai::partial_dependence(
        model, background, 0, xai::PdpOptions{.grid_points = 5, .keep_ice = true});
    ASSERT_EQ(pdp.ice.size(), 30u);
    for (const auto& curve : pdp.ice) ASSERT_EQ(curve.size(), 5u);
    // Mean of ICE curves equals the PDP.
    for (std::size_t g = 0; g < 5; ++g) {
        double mean = 0.0;
        for (const auto& curve : pdp.ice) mean += curve[g];
        EXPECT_NEAR(mean / 30.0, pdp.mean[g], 1e-12);
    }
}

TEST(Pdp, IceOmittedByDefault) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(20, 1, rng));
    const ml::LambdaModel model(1, [](std::span<const double> x) { return x[0]; });
    const auto pdp = xai::partial_dependence(model, background, 0);
    EXPECT_TRUE(pdp.ice.empty());
}

TEST(Pdp, ConvexModelGivesConvexCurve) {
    // The F5 shape check in miniature: f = exp(x0) is convex, so the PDP
    // increments must increase.
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(100, 1, rng));
    const ml::LambdaModel model(1, [](std::span<const double> x) {
        return std::exp(2.0 * x[0]);
    });
    const auto pdp = xai::partial_dependence(model, background, 0,
                                             xai::PdpOptions{.grid_points = 8});
    for (std::size_t g = 2; g < pdp.mean.size(); ++g) {
        const double d1 = pdp.mean[g - 1] - pdp.mean[g - 2];
        const double d2 = pdp.mean[g] - pdp.mean[g - 1];
        EXPECT_GT(d2, d1);
    }
}

TEST(Pdp, RejectsMisuse) {
    ml::Rng rng(7);
    const ml::LambdaModel model(1, [](std::span<const double> x) { return x[0]; });
    EXPECT_THROW((void)xai::partial_dependence(model, xai::BackgroundData{}, 0),
                 std::invalid_argument);
    const xai::BackgroundData background(make_uniform_background(10, 1, rng));
    EXPECT_THROW((void)xai::partial_dependence(model, background, 5),
                 std::invalid_argument);
    EXPECT_THROW((void)xai::partial_dependence(model, background, 0,
                                               xai::PdpOptions{.grid_points = 1}),
                 std::invalid_argument);
}

// Sweep: grid resolution does not change the endpoints' values.
class PdpGridSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PdpGridSweep, EndpointsStableAcrossResolutions) {
    ml::Rng rng(8);
    const xai::BackgroundData background(make_uniform_background(100, 1, rng));
    const ml::LambdaModel model(1, [](std::span<const double> x) { return 5.0 * x[0]; });
    const auto coarse = xai::partial_dependence(model, background, 0,
                                                xai::PdpOptions{.grid_points = 2});
    const auto fine = xai::partial_dependence(
        model, background, 0, xai::PdpOptions{.grid_points = GetParam()});
    EXPECT_NEAR(coarse.mean.front(), fine.mean.front(), 1e-9);
    EXPECT_NEAR(coarse.mean.back(), fine.mean.back(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grids, PdpGridSweep, ::testing::Values(3u, 10u, 50u));
