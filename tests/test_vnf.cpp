#include "nfv/vnf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nfv = xnfv::nfv;

TEST(VnfCatalog, AllTypesHaveProfilesAndNames) {
    EXPECT_EQ(nfv::all_vnf_types().size(), nfv::kNumVnfTypes);
    for (nfv::VnfType t : nfv::all_vnf_types()) {
        const auto& p = nfv::vnf_profile(t);
        EXPECT_EQ(p.type, t);
        EXPECT_GT(p.cycles_per_packet, 0.0);
        EXPECT_GE(p.cycles_per_byte, 0.0);
        EXPECT_GT(p.mem_bytes_base, 0.0);
        EXPECT_GT(p.service_cv2, 0.0);
        EXPECT_NE(nfv::to_string(t), "unknown");
    }
}

TEST(VnfCatalog, StringRoundTrip) {
    for (nfv::VnfType t : nfv::all_vnf_types())
        EXPECT_EQ(nfv::vnf_type_from_string(nfv::to_string(t)), t);
    EXPECT_THROW((void)nfv::vnf_type_from_string("gpu_miner"), std::invalid_argument);
}

TEST(VnfCatalog, QualitativeCostStructure) {
    // The per-byte-dominated middleboxes must out-cost the per-packet ones
    // per byte, and vice versa; explanations depend on this structure.
    const auto& ids = nfv::vnf_profile(nfv::VnfType::ids);
    const auto& fw = nfv::vnf_profile(nfv::VnfType::firewall);
    const auto& lb = nfv::vnf_profile(nfv::VnfType::load_balancer);
    const auto& crypto = nfv::vnf_profile(nfv::VnfType::crypto_gateway);
    EXPECT_GT(ids.cycles_per_byte, fw.cycles_per_byte);
    EXPECT_GT(crypto.cycles_per_byte, lb.cycles_per_byte);
    // NAT keeps per-flow state; a stateless-ish LB should be lighter per flow
    // than the WAN optimizer's dedup store.
    EXPECT_GT(nfv::vnf_profile(nfv::VnfType::wan_optimizer).mem_bytes_per_flow,
              lb.mem_bytes_per_flow);
}

TEST(VnfInstance, CycleDemandScalesWithTraffic) {
    nfv::VnfInstance v{.type = nfv::VnfType::firewall, .cpu_cores = 2.0, .num_rules = 0};
    const double base = v.demand_cycles(1e5, 1e8, 1e3);
    EXPECT_GT(base, 0.0);
    EXPECT_NEAR(v.demand_cycles(2e5, 2e8, 1e3), 2.0 * base, 1e-6);
}

TEST(VnfInstance, RulesAddPerPacketCost) {
    nfv::VnfInstance bare{.type = nfv::VnfType::firewall, .num_rules = 0};
    nfv::VnfInstance loaded{.type = nfv::VnfType::firewall, .num_rules = 5000};
    EXPECT_GT(loaded.demand_cycles(1e5, 0.0, 0.0), bare.demand_cycles(1e5, 0.0, 0.0));
}

TEST(VnfInstance, MemoryDemandGrowsWithFlows) {
    nfv::VnfInstance v{.type = nfv::VnfType::nat};
    EXPECT_GT(v.demand_memory(1e6), v.demand_memory(1e3));
    const auto& p = nfv::vnf_profile(nfv::VnfType::nat);
    EXPECT_NEAR(v.demand_memory(0.0), p.mem_bytes_base, 1e-9);
}

TEST(VnfInstance, CacheDemandGrowsWithFlows) {
    nfv::VnfInstance v{.type = nfv::VnfType::ids};
    EXPECT_GT(v.demand_cache(1e6), v.demand_cache(1e3));
}

TEST(VnfInstance, ByteHeavyTypesDominatedByBps) {
    // For the IDS, doubling bytes at fixed pps should raise demand by more
    // than doubling pps at fixed bytes (it is per-byte dominated at 700 B).
    nfv::VnfInstance ids{.type = nfv::VnfType::ids};
    const double pps = 1e5;
    const double bps = pps * 700.0 * 8.0;
    const double base = ids.demand_cycles(pps, bps, 0.0);
    const double more_bytes = ids.demand_cycles(pps, 2.0 * bps, 0.0);
    const double more_pkts = ids.demand_cycles(2.0 * pps, bps, 0.0);
    EXPECT_GT(more_bytes - base, more_pkts - base);
}
