#include "nfv/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace nfv = xnfv::nfv;

TEST(Queueing, ZeroArrivalsZeroDelayAndLoss) {
    const auto r = nfv::evaluate_station({.arrival_pps = 0.0, .service_pps = 1000.0});
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
    EXPECT_DOUBLE_EQ(r.wait_s, 0.0);
    EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
    EXPECT_DOUBLE_EQ(r.service_s, 1e-3);
}

TEST(Queueing, MatchesMm1AtUnitCvs) {
    // With ca2 = cs2 = 1 the Kingman formula is exact for M/M/1:
    // W_total = 1 / (mu - lambda).
    const double lambda = 600.0, mu = 1000.0;
    const auto r = nfv::evaluate_station(
        {.arrival_pps = lambda, .service_pps = mu, .ca2 = 1.0, .cs2 = 1.0});
    EXPECT_NEAR(r.sojourn_s(), nfv::mm1_sojourn_s(lambda, mu), 1e-12);
}

TEST(Queueing, DelayMonotoneInUtilization) {
    double prev = 0.0;
    for (double lambda : {100.0, 300.0, 500.0, 700.0, 900.0, 990.0}) {
        const auto r = nfv::evaluate_station({.arrival_pps = lambda, .service_pps = 1000.0});
        EXPECT_GT(r.sojourn_s(), prev);
        prev = r.sojourn_s();
    }
}

TEST(Queueing, BurstinessInflatesDelay) {
    const nfv::StationParams smooth{.arrival_pps = 700.0, .service_pps = 1000.0, .ca2 = 1.0};
    nfv::StationParams bursty = smooth;
    bursty.ca2 = 8.0;
    EXPECT_GT(nfv::evaluate_station(bursty).wait_s, nfv::evaluate_station(smooth).wait_s);
}

TEST(Queueing, ServiceVariabilityInflatesDelay) {
    const nfv::StationParams regular{.arrival_pps = 700.0, .service_pps = 1000.0,
                                     .ca2 = 1.0, .cs2 = 0.2};
    nfv::StationParams variable = regular;
    variable.cs2 = 3.0;
    EXPECT_GT(nfv::evaluate_station(variable).wait_s, nfv::evaluate_station(regular).wait_s);
}

TEST(Queueing, OverloadProducesLossEqualToExcess) {
    const auto r = nfv::evaluate_station({.arrival_pps = 2000.0, .service_pps = 1000.0});
    EXPECT_DOUBLE_EQ(r.utilization, 2.0);
    EXPECT_NEAR(r.loss_rate, 0.5, 1e-12);  // carried = capacity = half the offered
    EXPECT_GT(r.wait_s, 0.0);
}

TEST(Queueing, OverloadDelayIsCappedByQueueDepth) {
    const auto r = nfv::evaluate_station({.arrival_pps = 5000.0, .service_pps = 1000.0,
                                          .max_queue_pkts = 100.0});
    EXPECT_NEAR(r.wait_s, 100.0 / 1000.0, 1e-12);
}

TEST(Queueing, ExtremeBurstBelowSaturationCapsAndLoses) {
    // rho < 1 but the burst factor pushes the Kingman wait past the cap.
    const auto r = nfv::evaluate_station({.arrival_pps = 999.0, .service_pps = 1000.0,
                                          .ca2 = 1e6, .cs2 = 1.0,
                                          .max_queue_pkts = 10.0});
    EXPECT_NEAR(r.wait_s, 10.0 / 1000.0, 1e-12);
    EXPECT_GT(r.loss_rate, 0.0);
    EXPECT_LT(r.loss_rate, 1.0);
}

TEST(Queueing, InvalidParamsThrow) {
    EXPECT_THROW((void)nfv::evaluate_station({.arrival_pps = 1.0, .service_pps = 0.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)nfv::evaluate_station({.arrival_pps = -1.0, .service_pps = 10.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)nfv::mm1_sojourn_s(1.0, 0.0), std::invalid_argument);
}

TEST(Queueing, Mm1InfiniteAtSaturation) {
    EXPECT_TRUE(std::isinf(nfv::mm1_sojourn_s(1000.0, 1000.0)));
    EXPECT_TRUE(std::isinf(nfv::mm1_sojourn_s(1500.0, 1000.0)));
}

TEST(QueueingLink, UtilizationMatchesOfferedFraction) {
    const auto r = nfv::evaluate_link(5e9, 10e9, 1000.0);
    EXPECT_NEAR(r.utilization, 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
}

TEST(QueueingLink, SaturatedLinkLoses) {
    const auto r = nfv::evaluate_link(20e9, 10e9, 1000.0);
    EXPECT_NEAR(r.loss_rate, 0.5, 1e-12);
}

TEST(QueueingLink, SmallerPacketsSameBitsSameUtilization) {
    const auto big = nfv::evaluate_link(5e9, 10e9, 1500.0);
    const auto small = nfv::evaluate_link(5e9, 10e9, 100.0);
    EXPECT_NEAR(big.utilization, small.utilization, 1e-12);
    // But per-packet service time (and hence delay) is smaller for small packets.
    EXPECT_LT(small.service_s, big.service_s);
}

TEST(QueueingLink, InvalidParamsThrow) {
    EXPECT_THROW((void)nfv::evaluate_link(1e9, 0.0, 1000.0), std::invalid_argument);
    EXPECT_THROW((void)nfv::evaluate_link(1e9, 1e9, 0.0), std::invalid_argument);
}

// Sweep: the Kingman wait scales linearly with (ca2 + cs2)/2 below saturation.
class KingmanBurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(KingmanBurstSweep, WaitProportionalToBurstFactor) {
    const double ca2 = GetParam();
    const auto base = nfv::evaluate_station(
        {.arrival_pps = 500.0, .service_pps = 1000.0, .ca2 = 1.0, .cs2 = 1.0});
    const auto bursty = nfv::evaluate_station(
        {.arrival_pps = 500.0, .service_pps = 1000.0, .ca2 = ca2, .cs2 = 1.0});
    EXPECT_NEAR(bursty.wait_s / base.wait_s, (ca2 + 1.0) / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Burstiness, KingmanBurstSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0));
