#include <gtest/gtest.h>

#include <stdexcept>

#include "nfv/chain.hpp"
#include "nfv/infrastructure.hpp"
#include "nfv/placement.hpp"

namespace nfv = xnfv::nfv;
namespace ml = xnfv::ml;

namespace {

nfv::Infrastructure small_pop(std::size_t servers = 3) {
    return nfv::Infrastructure::homogeneous_pop(servers, nfv::Server{});
}

nfv::Deployment chain_of(std::size_t vnfs, double cores) {
    nfv::Deployment dep;
    std::vector<nfv::VnfType> types(vnfs, nfv::VnfType::firewall);
    nfv::make_chain(dep, "c", types, cores);
    return dep;
}

}  // namespace

TEST(Infrastructure, HomogeneousPopTopology) {
    const auto infra = small_pop(3);
    EXPECT_EQ(infra.servers().size(), 3u);
    // 3 gateway links + 3*2 inter-server links.
    EXPECT_EQ(infra.links().size(), 9u);
    // Gateway -> each server exists.
    for (std::int32_t s = 0; s < 3; ++s) EXPECT_NO_THROW((void)infra.link_between(-1, s));
    // Server -> itself does not exist.
    EXPECT_THROW((void)infra.link_between(1, 1), std::out_of_range);
}

TEST(Infrastructure, NeedsHop) {
    EXPECT_TRUE(nfv::Infrastructure::needs_hop(-1, 0));
    EXPECT_TRUE(nfv::Infrastructure::needs_hop(0, 1));
    EXPECT_FALSE(nfv::Infrastructure::needs_hop(2, 2));
}

TEST(Deployment, AddChainValidatesVnfIds) {
    nfv::Deployment dep;
    nfv::ServiceChain c;
    c.vnf_ids = {99};
    EXPECT_THROW((void)dep.add_chain(c), std::out_of_range);
    nfv::ServiceChain empty;
    EXPECT_THROW((void)dep.add_chain(empty), std::invalid_argument);
}

TEST(Deployment, MakeChainAssignsRulesToMatchers) {
    nfv::Deployment dep;
    nfv::make_chain(dep, "mix",
                    {nfv::VnfType::firewall, nfv::VnfType::nat, nfv::VnfType::ids}, 1.0,
                    {}, 777);
    EXPECT_EQ(dep.vnf(0).num_rules, 777u);  // firewall
    EXPECT_EQ(dep.vnf(1).num_rules, 0u);    // nat
    EXPECT_EQ(dep.vnf(2).num_rules, 777u);  // ids
}

TEST(Placement, FirstFitPacksInOrder) {
    auto infra = small_pop(3);
    auto dep = chain_of(4, 8.0);  // 16-core servers: two VNFs per server
    ml::Rng rng(1);
    EXPECT_TRUE(nfv::place(dep, infra, nfv::PlacementStrategy::first_fit, rng));
    EXPECT_EQ(dep.vnf(0).server, 0);
    EXPECT_EQ(dep.vnf(1).server, 0);
    EXPECT_EQ(dep.vnf(2).server, 1);
    EXPECT_EQ(dep.vnf(3).server, 1);
}

TEST(Placement, WorstFitSpreads) {
    auto infra = small_pop(3);
    auto dep = chain_of(3, 1.0);
    ml::Rng rng(2);
    EXPECT_TRUE(nfv::place(dep, infra, nfv::PlacementStrategy::worst_fit, rng));
    // Each VNF should land on a different server.
    EXPECT_NE(dep.vnf(0).server, dep.vnf(1).server);
    EXPECT_NE(dep.vnf(1).server, dep.vnf(2).server);
}

TEST(Placement, CapacityIsRespected) {
    auto infra = small_pop(2);  // 2 x 16 cores
    auto dep = chain_of(5, 8.0);  // 40 cores demanded > 32 available
    ml::Rng rng(3);
    EXPECT_FALSE(nfv::place(dep, infra, nfv::PlacementStrategy::first_fit, rng));
    const auto used = nfv::committed_cores(dep, infra);
    for (std::size_t s = 0; s < used.size(); ++s)
        EXPECT_LE(used[s], infra.servers()[s].cores + 1e-9);
    // Exactly one VNF left unplaced.
    int unplaced = 0;
    for (const auto& v : dep.vnfs) unplaced += v.server < 0;
    EXPECT_EQ(unplaced, 1);
}

TEST(Placement, RandomFitIsFeasible) {
    auto infra = small_pop(4);
    auto dep = chain_of(6, 4.0);
    ml::Rng rng(4);
    EXPECT_TRUE(nfv::place(dep, infra, nfv::PlacementStrategy::random_fit, rng));
    const auto used = nfv::committed_cores(dep, infra);
    for (std::size_t s = 0; s < used.size(); ++s)
        EXPECT_LE(used[s], infra.servers()[s].cores + 1e-9);
}

TEST(Placement, AlreadyPlacedVnfsUntouched) {
    auto infra = small_pop(2);
    auto dep = chain_of(2, 1.0);
    dep.vnf(0).server = 1;  // pre-pinned
    ml::Rng rng(5);
    EXPECT_TRUE(nfv::place(dep, infra, nfv::PlacementStrategy::first_fit, rng));
    EXPECT_EQ(dep.vnf(0).server, 1);
}

TEST(Placement, StrategyNames) {
    EXPECT_STREQ(nfv::to_string(nfv::PlacementStrategy::first_fit), "first_fit");
    EXPECT_STREQ(nfv::to_string(nfv::PlacementStrategy::best_fit), "best_fit");
    EXPECT_STREQ(nfv::to_string(nfv::PlacementStrategy::worst_fit), "worst_fit");
    EXPECT_STREQ(nfv::to_string(nfv::PlacementStrategy::random_fit), "random_fit");
}

// Sweep: all strategies produce feasible placements when capacity suffices.
class PlacementStrategySweep
    : public ::testing::TestWithParam<nfv::PlacementStrategy> {};

TEST_P(PlacementStrategySweep, FeasibleWhenCapacityIsAmple) {
    auto infra = small_pop(4);
    auto dep = chain_of(8, 2.0);
    ml::Rng rng(6);
    EXPECT_TRUE(nfv::place(dep, infra, GetParam(), rng));
    for (const auto& v : dep.vnfs) EXPECT_GE(v.server, 0);
    const auto used = nfv::committed_cores(dep, infra);
    for (std::size_t s = 0; s < used.size(); ++s)
        EXPECT_LE(used[s], infra.servers()[s].cores + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PlacementStrategySweep,
                         ::testing::Values(nfv::PlacementStrategy::first_fit,
                                           nfv::PlacementStrategy::best_fit,
                                           nfv::PlacementStrategy::worst_fit,
                                           nfv::PlacementStrategy::random_fit));
