// Shared fixtures and synthetic-data helpers for the xnfv test suite.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::testutil {

/// y = intercept + sum w_i x_i + N(0, noise); x ~ U(-1, 1)^d.
inline xnfv::ml::Dataset make_linear_dataset(std::span<const double> weights, double intercept,
                                             std::size_t n, xnfv::ml::Rng& rng,
                                             double noise = 0.0) {
    xnfv::ml::Dataset d;
    d.task = xnfv::ml::Task::regression;
    for (std::size_t j = 0; j < weights.size(); ++j)
        d.feature_names.push_back("x" + std::to_string(j));
    std::vector<double> row(weights.size());
    for (std::size_t i = 0; i < n; ++i) {
        double y = intercept;
        for (std::size_t j = 0; j < weights.size(); ++j) {
            row[j] = rng.uniform(-1.0, 1.0);
            y += weights[j] * row[j];
        }
        if (noise > 0.0) y += rng.normal(0.0, noise);
        d.add(row, y);
    }
    return d;
}

/// Binary labels from a logistic model over U(-1,1)^d inputs.
inline xnfv::ml::Dataset make_logistic_dataset(std::span<const double> weights,
                                               double intercept, std::size_t n,
                                               xnfv::ml::Rng& rng) {
    xnfv::ml::Dataset d;
    d.task = xnfv::ml::Task::binary_classification;
    for (std::size_t j = 0; j < weights.size(); ++j)
        d.feature_names.push_back("x" + std::to_string(j));
    std::vector<double> row(weights.size());
    for (std::size_t i = 0; i < n; ++i) {
        double z = intercept;
        for (std::size_t j = 0; j < weights.size(); ++j) {
            row[j] = rng.uniform(-1.0, 1.0);
            z += weights[j] * row[j];
        }
        const double p = 1.0 / (1.0 + std::exp(-z));
        d.add(row, rng.bernoulli(p) ? 1.0 : 0.0);
    }
    return d;
}

/// Classic XOR: y = 1 iff sign(x0) != sign(x1); only learnable with
/// interactions, so it separates linear from nonlinear learners.
inline xnfv::ml::Dataset make_xor_dataset(std::size_t n, xnfv::ml::Rng& rng,
                                          bool as_classification = true) {
    xnfv::ml::Dataset d;
    d.task = as_classification ? xnfv::ml::Task::binary_classification
                               : xnfv::ml::Task::regression;
    d.feature_names = {"x0", "x1"};
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        d.add(std::vector<double>{a, b}, (a > 0.0) != (b > 0.0) ? 1.0 : 0.0);
    }
    return d;
}

/// Uniform background matrix over [-1, 1]^d.
inline xnfv::ml::Matrix make_uniform_background(std::size_t rows, std::size_t d,
                                                xnfv::ml::Rng& rng) {
    xnfv::ml::Matrix m(rows, d);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < d; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
    return m;
}

/// Max absolute element-wise difference between two vectors.
inline double max_abs_diff(std::span<const double> a, std::span<const double> b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

}  // namespace xnfv::testutil
