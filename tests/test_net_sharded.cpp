// Shard-equivalence suite for the thread-per-core TCP front-end
// (net/sharded_server.hpp).
//
// The central claim: sharding is a pure scale-out transform.  A recorded
// multi-connection request stream — explains by row and by features, cache
// repeats, malformed JSON, unknown ops, bad feature vectors, dead-on-arrival
// deadlines, stats probes, quit barriers and half-close endings — replayed
// against a single-loop ExplanationServer and against 1/2/4/8-shard
// ShardedServers must produce byte-identical per-connection response
// streams, no matter which shard the kernel's SO_REUSEPORT hash lands each
// connection on.  Stats frames are the one deliberate exception (they
// report fleet aggregates, so net_shards and distribution-dependent fields
// differ); they are checked semantically instead.
//
// Scripts keep per-connection row pools disjoint and run the client at
// window 1, so every response byte — including cache_hit flags — is a pure
// function of the connection's own request sequence, never of cross-
// connection timing.  That is exactly the per-connection determinism the
// sharded design promises (DESIGN.md section 13).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/sharded_server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kSeed = 11;

struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 260;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 8});
        out.forest->fit(out.data, rng);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

net::ShardedServer::RowLookup row_lookup() {
    return [](std::size_t row, std::vector<double>& features) {
        const auto& sc = scenario();
        if (row >= sc.data.size()) return false;
        const auto x = sc.data.x.row(row);
        features.assign(x.begin(), x.end());
        return true;
    };
}

serve::ServiceConfig service_config() {
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = kSeed;
    cfg.queue_depth = 512;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(100);
    cfg.cache_capacity = 4096;
    return cfg;
}

/// What kind of line the server must emit for one scripted request.
enum class Expect { response, stats };

struct Recorded {
    std::vector<std::vector<std::string>> scripts;   ///< per connection
    std::vector<std::vector<Expect>> expects;        ///< per answered line
    bool shutdown_writes = false;                    ///< EOF-ended scripts
};

std::string row_request(std::uint64_t id, std::size_t row,
                        const std::string& method, std::uint64_t rid = 0) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    if (rid != 0) w.field("rid", rid);
    w.field("row", static_cast<std::uint64_t>(row));
    w.field("method", method);
    w.field("seed", kSeed);
    return w.finish();
}

std::string features_request(std::uint64_t id, std::size_t row,
                             const std::string& method) {
    const auto& s = scenario();
    const auto x = s.data.x.row(row);
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    w.field("method", method);
    w.field("seed", kSeed);
    w.field_array("features", std::vector<double>(x.begin(), x.end()));
    return w.finish();
}

/// The recorded stream: a seeded-random mix over every request shape the
/// protocol has, with per-connection disjoint row pools (connection c owns
/// rows {3c, 3c+1, 3c+2}) so cache hits depend only on the connection's own
/// history.
Recorded record_stream(std::size_t conns, std::uint64_t seed, bool quit_ended) {
    Recorded rec;
    rec.scripts.resize(conns);
    rec.expects.resize(conns);
    rec.shutdown_writes = !quit_ended;
    std::mt19937_64 rng(seed);
    const std::vector<std::string> methods{"tree_shap", "lime", "occlusion"};
    for (std::size_t c = 0; c < conns; ++c) {
        auto& script = rec.scripts[c];
        auto& expects = rec.expects[c];
        const std::size_t pool = 3 * c;
        const auto rows = scenario().data.size();
        const std::size_t len = 4 + rng() % 8;
        std::uint64_t id = 1;
        for (std::size_t i = 0; i < len; ++i) {
            const auto& method = methods[rng() % methods.size()];
            switch (rng() % 8) {
                case 0:  // cache repeat: same row twice, back to back
                    script.push_back(row_request(id++, (pool + 1) % rows, method));
                    script.push_back(row_request(id++, (pool + 1) % rows, method));
                    expects.push_back(Expect::response);
                    expects.push_back(Expect::response);
                    break;
                case 1:
                    script.push_back(
                        features_request(id++, (pool + rng() % 3) % rows, method));
                    expects.push_back(Expect::response);
                    break;
                case 2:  // malformed JSON -> synchronous bad_request
                    script.push_back("{\"op\":\"explain\",\"row\":");
                    expects.push_back(Expect::response);
                    break;
                case 3:  // unknown op
                    script.push_back("{\"op\":\"frobnicate\",\"id\":7}");
                    expects.push_back(Expect::response);
                    break;
                case 4: {  // wrong feature count -> bad_features
                    serve::JsonWriter w;
                    w.field("op", "explain");
                    w.field("id", id++);
                    w.field_array("features", std::vector<double>{1.0, 2.0});
                    script.push_back(w.finish());
                    expects.push_back(Expect::response);
                    break;
                }
                case 5: {  // dead on arrival -> deadline_exceeded rejection
                    serve::JsonWriter w;
                    w.field("op", "explain");
                    w.field("id", id++);
                    w.field("row", static_cast<std::uint64_t>(pool % rows));
                    w.field("deadline_ms", std::uint64_t{0});
                    script.push_back(w.finish());
                    expects.push_back(Expect::response);
                    break;
                }
                case 6:  // nonexistent row
                    script.push_back(row_request(id++, rows + 17, method));
                    expects.push_back(Expect::response);
                    break;
                default:
                    script.push_back(row_request(id++, (pool + rng() % 3) % rows,
                                                 method));
                    expects.push_back(Expect::response);
                    break;
            }
        }
        script.push_back("{\"op\":\"stats\"}");
        expects.push_back(Expect::stats);
        if (quit_ended) {
            // The frame after the quit barrier must be ignored, not
            // answered.  Both frames ride in one write (the window-1 client
            // would otherwise wait forever for quit's nonexistent reply).
            script.push_back("{\"op\":\"quit\"}\n" +
                             row_request(id++, pool % rows, "tree_shap"));
        }
    }
    return rec;
}

/// Plays the recorded stream and returns per-connection line streams.
std::vector<std::vector<std::string>> replay(std::uint16_t port,
                                             const Recorded& rec) {
    net::LoadgenConfig lg;
    lg.port = port;
    lg.window = 1;  // strict order: responses depend only on own history
    lg.shutdown_writes = rec.shutdown_writes;
    lg.timeout = std::chrono::milliseconds(120000);
    const auto report = net::run_load(lg, rec.scripts);
    EXPECT_FALSE(report.timed_out);
    std::vector<std::vector<std::string>> streams(rec.scripts.size());
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        EXPECT_FALSE(conn.connect_failed) << "conn " << c;
        EXPECT_FALSE(conn.io_error) << "conn " << c;
        EXPECT_TRUE(conn.eof) << "conn " << c;
        EXPECT_TRUE(conn.partial.empty()) << "conn " << c << " truncated line";
        streams[c] = conn.lines;
    }
    return streams;
}

/// Single-loop reference server (the pre-sharding architecture).
std::vector<std::vector<std::string>> run_single_loop(const Recorded& rec) {
    const auto& s = scenario();
    serve::ExplanationService service(s.forest, s.background, service_config());
    net::ExplanationServer server(service);
    server.set_row_lookup(row_lookup());
    std::string error;
    if (!server.start(&error)) throw std::runtime_error(error);
    std::thread loop([&server] { server.run(); });
    auto streams = replay(server.port(), rec);
    server.request_drain();
    loop.join();
    service.stop();
    return streams;
}

std::vector<std::vector<std::string>> run_sharded(const Recorded& rec,
                                                  std::size_t shards,
                                                  serve::ServiceStats* stats_out =
                                                      nullptr) {
    const auto& s = scenario();
    net::ShardedServerConfig shcfg;
    shcfg.shards = shards;
    shcfg.net.max_connections = rec.scripts.size() + 16;
    net::ShardedServer server(s.forest, s.background, service_config(), shcfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    if (!server.start(&error)) throw std::runtime_error(error);
    std::thread loop([&server] { server.run(); });
    auto streams = replay(server.port(), rec);
    if (stats_out) *stats_out = server.stats();
    server.request_drain();
    loop.join();
    server.stop_services();
    return streams;
}

/// Byte-compares two replays: every non-stats line exactly, stats lines
/// semantically (shape + shard count).
void expect_equivalent(const std::vector<std::vector<std::string>>& got,
                       const std::vector<std::vector<std::string>>& want,
                       const Recorded& rec, std::size_t shards) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t c = 0; c < got.size(); ++c) {
        ASSERT_EQ(got[c].size(), rec.expects[c].size())
            << "conn " << c << " answered a different number of frames at "
            << shards << " shards (quit barrier or drop bug)";
        ASSERT_EQ(want[c].size(), rec.expects[c].size());
        for (std::size_t i = 0; i < got[c].size(); ++i) {
            if (rec.expects[c][i] == Expect::stats) {
                const auto parsed = serve::parse_json(got[c][i]);
                EXPECT_EQ(parsed.get_string("op", ""), "stats");
                EXPECT_EQ(static_cast<std::size_t>(
                              parsed.get_number("net_shards", 0)),
                          shards)
                    << "conn " << c;
                continue;
            }
            EXPECT_EQ(got[c][i], want[c][i])
                << "conn " << c << " line " << i << " diverged at " << shards
                << " shards";
        }
    }
}

}  // namespace

TEST(ShardedEquivalence, QuitEndedStreamsAreByteIdenticalAcrossShardCounts) {
    const auto rec = record_stream(24, 0xfeed2020, /*quit_ended=*/true);
    const auto reference = run_single_loop(rec);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        expect_equivalent(run_sharded(rec, shards), reference, rec, shards);
    }
}

TEST(ShardedEquivalence, HalfCloseEndedStreamsAreByteIdenticalAcrossShardCounts) {
    // Same claim for connections ended by client half-close (peer EOF) —
    // the server must flush everything in flight, then close.
    const auto rec = record_stream(16, 0xabba1972, /*quit_ended=*/false);
    const auto reference = run_single_loop(rec);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        expect_equivalent(run_sharded(rec, shards), reference, rec, shards);
    }
}

TEST(ShardedEquivalence, ServedLineMatchesOneShotExplainer) {
    // Ties the whole suite to the determinism contract: the first explain
    // answer of a recorded stream equals a fresh one-shot explainer rendered
    // through the shared wire renderer, even at 8 shards.
    Recorded rec;
    rec.scripts = {{row_request(1, 5, "tree_shap"), "{\"op\":\"quit\"}"}};
    rec.expects = {{Expect::response}};
    const auto streams = run_sharded(rec, 8);
    ASSERT_EQ(streams[0].size(), 1u);
    const auto& s = scenario();
    const auto explainer = serve::make_explainer("tree_shap", s.background, kSeed);
    serve::ExplainResponse r;
    r.id = 1;
    r.ok = true;
    r.cache_hit = false;
    r.explanation = explainer->explain(*s.forest, s.data.x.row(5));
    EXPECT_EQ(streams[0][0], serve::render_response(r));
}

TEST(ShardedSelfHealing, DeadShardRespawnsUnderLoadWithoutClientErrors) {
    // Chaos kills exactly one shard's event loop mid-run (shard_death with
    // max_fires = 1).  The supervisor must detect the dead thread within one
    // heartbeat and rebuild it — meanwhile retry-mode clients reconnect
    // (the kernel rehashes them onto the surviving listener) and finish with
    // every request answered, the respawn counted, and the fleet budget
    // exactly drained.
    const std::size_t conns = 12, per_conn = 6;
    const auto rows = scenario().data.size();
    std::vector<std::vector<std::string>> scripts(conns);
    for (std::size_t c = 0; c < conns; ++c)
        for (std::size_t r = 0; r < per_conn; ++r) {
            const std::uint64_t id = c * per_conn + r + 1;
            scripts[c].push_back(
                row_request(id, (c * per_conn + r) % rows, "tree_shap", id));
        }

    const auto& s = scenario();
    net::ShardedServerConfig shcfg;
    shcfg.shards = 2;
    shcfg.heartbeat_interval = std::chrono::milliseconds(20);
    shcfg.net.max_connections = conns + 16;
    shcfg.net.tick = std::chrono::milliseconds(10);
    net::NetFaultInjector::Config nf;
    nf.seed = 33;
    nf.rate[static_cast<std::size_t>(net::NetFaultPoint::shard_death)] = 1.0;
    nf.max_fires[static_cast<std::size_t>(net::NetFaultPoint::shard_death)] = 1;
    shcfg.net.chaos = std::make_shared<net::NetFaultInjector>(nf);
    net::ShardedServer server(s.forest, s.background, service_config(), shcfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    net::LoadgenConfig lg;
    lg.port = server.port();
    lg.window = 2;
    lg.timeout = std::chrono::milliseconds(120000);
    lg.max_retries = 16;
    lg.response_timeout = std::chrono::milliseconds(2000);
    lg.connect_timeout = std::chrono::milliseconds(2000);
    lg.backoff_base = std::chrono::milliseconds(5);
    lg.retry_seed = 3;
    const auto report = net::run_load(lg, scripts);

    // The kill fires on the victim's first tick; wait (bounded) for the
    // supervisor to notice and respawn before sampling stats.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (server.shard_respawns() < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(5ms);
    EXPECT_EQ(server.shard_respawns(), 1u);
    const auto stats = server.stats();
    server.request_drain();
    loop.join();
    server.stop_services();

    EXPECT_EQ(stats.net_shard_respawns, 1u);
    EXPECT_EQ(stats.net_shards, 2u);
    ASSERT_FALSE(report.timed_out);
    std::uint64_t answered = 0;
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        EXPECT_FALSE(conn.connect_failed) << "conn " << c;
        EXPECT_FALSE(conn.io_error) << "conn " << c;
        EXPECT_EQ(conn.lines.size() - conn.duplicates, per_conn) << "conn " << c;
        for (const auto& l : conn.lines)
            EXPECT_NE(l.find("\"ok\":true"), std::string::npos) << l;
        answered += conn.lines.size() - conn.duplicates;
    }
    EXPECT_EQ(answered, conns * per_conn);
    // Every budget slot the dead shard held was reclaimed; after the drain
    // the fleet holds none.
    EXPECT_EQ(server.budget().active.load(), 0u);
}

TEST(ShardedEquivalence, StatsAggregateAcrossShards) {
    // The fleet aggregate must add up exactly: every scripted explain is
    // accepted-or-rejected on some shard, and stats() sums them all.
    const auto rec = record_stream(12, 0xc0ffee, /*quit_ended=*/true);
    serve::ServiceStats stats;
    const auto streams = run_sharded(rec, 4, &stats);
    std::uint64_t lines = 0;
    for (const auto& s : streams) lines += s.size();
    std::uint64_t expected_lines = 0;
    for (const auto& e : rec.expects) expected_lines += e.size();
    EXPECT_EQ(lines, expected_lines);
    EXPECT_EQ(stats.net_shards, 4u);
    EXPECT_EQ(stats.connections_accepted, 12u);
    EXPECT_EQ(stats.connections_rejected, 0u);
    EXPECT_EQ(stats.net_requests, expected_lines);
    // Every admitted explain completed (no drops on the quit barrier path).
    EXPECT_EQ(stats.requests_accepted, stats.requests_completed);
}

TEST(ShardedAdmin, StatsResetZerosEveryShardOverTcp) {
    const auto& s = scenario();
    net::ShardedServerConfig shcfg;
    shcfg.shards = 2;
    net::ShardedServer server(s.forest, s.background, service_config(), shcfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    // Several connections so the SO_REUSEPORT hash spreads traffic over both
    // shards; the reset must still zero the fleet-wide aggregate, not just
    // whichever shard the control connection landed on.
    for (std::size_t c = 0; c < 6; ++c) {
        net::Client client;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
        for (std::size_t i = 0; i < 3; ++i) {
            ASSERT_TRUE(
                client.send_line(row_request(c * 3 + i + 1, c * 3 + i, "tree_shap")));
            std::string reply;
            ASSERT_TRUE(client.recv_line(reply, 30s));
        }
    }

    {
        net::Client control;
        ASSERT_TRUE(control.connect("127.0.0.1", server.port(), &error)) << error;
        std::string reply;
        ASSERT_TRUE(control.send_line(R"({"op":"stats"})"));
        ASSERT_TRUE(control.recv_line(reply, 30s));
        const auto before = serve::parse_json(reply);
        EXPECT_EQ(before.get_number("requests_completed", -1), 18.0);
        EXPECT_GE(before.get_number("connections_accepted", -1), 7.0);

        ASSERT_TRUE(control.send_line(R"({"op":"stats_reset"})"));
        ASSERT_TRUE(control.recv_line(reply, 30s));
        const auto ack = serve::parse_json(reply);
        ASSERT_NE(ack.find("ok"), nullptr);
        EXPECT_TRUE(ack.find("ok")->boolean);
        EXPECT_EQ(ack.get_string("op", ""), "stats_reset");

        ASSERT_TRUE(control.send_line(R"({"op":"stats"})"));
        ASSERT_TRUE(control.recv_line(reply, 30s));
        const auto after = serve::parse_json(reply);
        EXPECT_EQ(after.get_number("requests_completed", -1), 0.0);
        EXPECT_EQ(after.get_number("requests_accepted", -1), 0.0);
        EXPECT_EQ(after.get_number("cache_hits", -1), 0.0);
        EXPECT_EQ(after.get_number("connections_accepted", -1), 0.0);
        // The reset is a measurement-window boundary, not a service restart:
        // the fleet keeps serving and counting afresh.
        ASSERT_TRUE(control.send_line(row_request(100, 1, "tree_shap")));
        ASSERT_TRUE(control.recv_line(reply, 30s));
        EXPECT_NE(reply.find("\"ok\":true"), std::string::npos);
        ASSERT_TRUE(control.send_line(R"({"op":"stats"})"));
        ASSERT_TRUE(control.recv_line(reply, 30s));
        EXPECT_EQ(serve::parse_json(reply).get_number("requests_completed", -1),
                  1.0);
    }

    server.request_drain();
    loop.join();
    server.stop_services();
}
