// End-to-end integration: NFV simulation -> dataset -> model -> explanation.
//
// These tests exercise the full pipeline the paper describes and assert the
// *semantic* property everything else exists for: when we inject a known
// root cause into the simulated NFV deployment, the explanation of the
// model's SLA-violation prediction points at telemetry features consistent
// with that cause.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/aggregate.hpp"
#include "core/counterfactual.hpp"
#include "core/kernel_shap.hpp"
#include "core/surrogate.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/metrics.hpp"
#include "workload/dataset_builder.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;

namespace {

struct Pipeline {
    wl::BuiltDataset built;
    ml::Dataset train, test;
    ml::RandomForest model;
    xai::BackgroundData background;
};

Pipeline run_pipeline(const wl::ScenarioSpec& spec, std::size_t n, std::uint64_t seed) {
    Pipeline p;
    ml::Rng rng(seed);
    wl::BuildOptions opt;
    opt.num_samples = n;
    p.built = wl::build_dataset(spec, opt, rng);
    auto split = ml::train_test_split(p.built.data, 0.25, rng);
    p.train = std::move(split.train);
    p.test = std::move(split.test);
    p.model = ml::RandomForest(ml::RandomForest::Config{.num_trees = 60});
    p.model.fit(p.train, rng);
    p.background = xai::BackgroundData(p.train.x, 128);
    return p;
}

std::size_t fidx(const std::string& name) {
    return nfv::feature_index(nfv::FeatureSet::full_telemetry, name);
}

}  // namespace

TEST(Integration, ModelLearnsSlaViolationsFromTelemetry) {
    const auto p = run_pipeline(wl::standard_scenarios()[4], 1500, 1);
    const double auc = ml::roc_auc(p.test.y, p.model.predict_batch(p.test.x));
    EXPECT_GT(auc, 0.85);
}

TEST(Integration, CpuFaultExplanationsPointAtCpuCounters) {
    const auto p = run_pipeline(wl::fault_scenario(wl::FaultKind::cpu_starvation), 1500, 2);
    xai::TreeShap ts;

    // Aggregate |SHAP| over violating instances from CPU-starved deployments.
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < p.built.data.size(); ++i)
        if (p.built.fault[i] == wl::FaultKind::cpu_starvation && p.built.data.y[i] == 1.0)
            rows.push_back(i);
    ASSERT_GT(rows.size(), 20u);
    rows.resize(std::min<std::size_t>(rows.size(), 60));

    const auto instances = p.built.data.x.take_rows(rows);
    const auto g = xai::aggregate_explanations(ts, p.model, instances,
                                               p.built.data.feature_names);
    // A CPU-utilization counter must rank among the top 3 features.
    const auto order = g.ranking();
    const std::set<std::size_t> top(order.begin(), order.begin() + 3);
    const bool cpu_on_top = top.count(fidx("max_vnf_cpu_util")) ||
                            top.count(fidx("mean_vnf_cpu_util")) ||
                            top.count(fidx("min_cpu_cores")) ||
                            top.count(fidx("max_server_cpu"));
    EXPECT_TRUE(cpu_on_top) << g.to_string(6);
}

TEST(Integration, BurstFaultExplanationsPointAtBurstiness) {
    const auto p = run_pipeline(wl::fault_scenario(wl::FaultKind::traffic_burst), 1500, 3);
    xai::TreeShap ts;
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < p.built.data.size(); ++i)
        if (p.built.fault[i] == wl::FaultKind::traffic_burst && p.built.data.y[i] == 1.0)
            rows.push_back(i);
    ASSERT_GT(rows.size(), 20u);
    rows.resize(std::min<std::size_t>(rows.size(), 60));
    const auto g = xai::aggregate_explanations(ts, p.model, p.built.data.x.take_rows(rows),
                                               p.built.data.feature_names);
    const auto order = g.ranking();
    const std::set<std::size_t> top(order.begin(), order.begin() + 4);
    // Burstiness or a utilization proxy of it must surface.
    EXPECT_TRUE(top.count(fidx("burstiness_ca2")) || top.count(fidx("max_vnf_cpu_util")))
        << g.to_string(8);
}

TEST(Integration, TreeShapAndKernelShapAgreeOnTopFeature) {
    const auto p = run_pipeline(wl::standard_scenarios()[0], 900, 4);
    xai::TreeShap ts;
    xai::KernelShap ks(p.background, ml::Rng(5),
                       xai::KernelShap::Config{.max_coalitions = 700});
    int agreements = 0;
    const int n_checked = 10;
    for (int i = 0; i < n_checked; ++i) {
        const auto x = p.test.x.row(i);
        const auto et = ts.explain(p.model, x);
        const auto ek = ks.explain(p.model, x);
        const auto tt = et.top_k(2);
        const auto tk = ek.top_k(2);
        agreements += (std::find(tk.begin(), tk.end(), tt[0]) != tk.end()) ? 1 : 0;
    }
    EXPECT_GE(agreements, 6);  // majority agreement on the dominant feature
}

TEST(Integration, CounterfactualSuggestsActionableFix) {
    const auto p = run_pipeline(wl::fault_scenario(wl::FaultKind::cpu_starvation), 1200, 6);

    // Actionable features: allocations, placement, and the utilization
    // counters that capacity-scaling actions directly move.  Traffic
    // descriptors (offered load, burstiness, packet size) stay frozen — the
    // operator does not control the weather.
    std::vector<bool> actionable(p.built.data.num_features(), false);
    actionable[fidx("min_cpu_cores")] = true;
    actionable[fidx("total_cpu_cores")] = true;
    actionable[fidx("total_rules")] = true;
    actionable[fidx("colocated_vnfs")] = true;
    actionable[fidx("hop_count")] = true;
    actionable[fidx("max_vnf_cpu_util")] = true;
    actionable[fidx("mean_vnf_cpu_util")] = true;
    actionable[fidx("max_server_cpu")] = true;

    ml::Rng rng(7);
    int found = 0, tried = 0;
    for (std::size_t i = 0; i < p.test.size() && tried < 20; ++i) {
        if (p.model.predict(p.test.x.row(i)) < 0.7) continue;  // confident violations only
        ++tried;
        xai::CounterfactualOptions opt;
        opt.actionable = actionable;
        const auto cf =
            xai::find_counterfactual(p.model, p.test.x.row(i), p.background, rng, opt);
        if (!cf) continue;
        ++found;
        EXPECT_LE(cf->prediction, 0.5);
        EXPECT_LE(cf->changed.size(), 3u);
        for (std::size_t j : cf->changed) EXPECT_TRUE(actionable[j]);
    }
    ASSERT_GT(tried, 0);
    EXPECT_GT(found, tried / 2);  // most violations have an actionable fix
}

TEST(Integration, SurrogateTreeSummarizesViolationPolicy) {
    const auto p = run_pipeline(wl::standard_scenarios()[4], 1200, 8);
    ml::Rng rng(9);
    const auto surrogate =
        xai::fit_surrogate(p.model, p.background, p.built.data.feature_names, rng,
                           xai::SurrogateOptions{.max_depth = 3, .min_samples_leaf = 5});
    // A depth-3 tree over NFV telemetry should capture most of the teacher.
    EXPECT_GT(surrogate.fidelity_r2, 0.5);
    EXPECT_FALSE(surrogate.text.empty());
}

TEST(Integration, EfficiencyHoldsOnRealPipelineExplanations) {
    const auto p = run_pipeline(wl::standard_scenarios()[1], 800, 10);
    xai::TreeShap ts;
    for (int i = 0; i < 15; ++i) {
        const auto e = ts.explain(p.model, p.test.x.row(i));
        EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-9);
    }
}

TEST(Integration, ConfigOnlyFeaturesStillPredictive) {
    // Admission-control setting: prediction before deployment (no runtime
    // counters) is harder but must remain above chance.
    ml::Rng rng(11);
    wl::BuildOptions opt;
    opt.num_samples = 1500;
    opt.feature_set = nfv::FeatureSet::config_only;
    const auto built = wl::build_dataset(wl::standard_scenarios()[4], opt, rng);
    auto split = ml::train_test_split(built.data, 0.25, rng);
    ml::RandomForest model(ml::RandomForest::Config{.num_trees = 60});
    model.fit(split.train, rng);
    EXPECT_GT(ml::roc_auc(split.test.y, model.predict_batch(split.test.x)), 0.7);
}
