#!/bin/sh
# End-to-end smoke test of the xnfv CLI: generate -> train -> evaluate ->
# explain -> global, plus error handling for bad inputs.
set -e
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" generate --samples 400 --out "$DIR/data.csv" --seed 3
test -s "$DIR/data.csv"

"$CLI" train --data "$DIR/data.csv" --model tree --out "$DIR/model.xnfv"
test -s "$DIR/model.xnfv"

"$CLI" evaluate --model "$DIR/model.xnfv" --data "$DIR/data.csv" | grep -q auc

"$CLI" explain --model "$DIR/model.xnfv" --data "$DIR/data.csv" --row 1 | grep -q "incident report"

"$CLI" global --model "$DIR/model.xnfv" --data "$DIR/data.csv" --rows 20 | grep -q "global attribution"

# Regression-labelled flow.
"$CLI" generate --samples 300 --out "$DIR/lat.csv" --label latency --seed 4
"$CLI" train --data "$DIR/lat.csv" --model linear --task reg --out "$DIR/lat.xnfv"
"$CLI" evaluate --model "$DIR/lat.xnfv" --data "$DIR/lat.csv" --task reg | grep -q rmse

# Serving mode: ND-JSON in, ND-JSON out, repeats hit the cache, and the
# served attributions line is identical when re-served (determinism).
printf '%s\n' \
  '{"op":"explain","row":1}' \
  '{"op":"explain","row":1}' \
  '{"op":"stats"}' \
  '{"op":"quit"}' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" > "$DIR/serve1.out"
test "$(wc -l < "$DIR/serve1.out")" -eq 3
grep -q '"attributions"' "$DIR/serve1.out"
grep -q '"cache_hit":true' "$DIR/serve1.out"
grep -q '"op":"stats"' "$DIR/serve1.out"
printf '{"op":"explain","row":1}\n' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" > "$DIR/serve2.out"
head -n 1 "$DIR/serve1.out" | cmp -s - "$DIR/serve2.out"

# Failure paths must fail loudly, not crash.
if "$CLI" train --data /nonexistent.csv --out "$DIR/x" 2>/dev/null; then exit 1; fi
if "$CLI" explain --model "$DIR/model.xnfv" --data "$DIR/data.csv" --row 99999 2>/dev/null; then exit 1; fi
if "$CLI" frobnicate 2>/dev/null; then exit 1; fi

echo "cli smoke ok"
