#!/bin/sh
# End-to-end smoke test of the xnfv CLI: generate -> train -> evaluate ->
# explain -> global, plus error handling for bad inputs.
set -e
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" generate --samples 400 --out "$DIR/data.csv" --seed 3
test -s "$DIR/data.csv"

"$CLI" train --data "$DIR/data.csv" --model tree --out "$DIR/model.xnfv"
test -s "$DIR/model.xnfv"

"$CLI" evaluate --model "$DIR/model.xnfv" --data "$DIR/data.csv" | grep -q auc

"$CLI" explain --model "$DIR/model.xnfv" --data "$DIR/data.csv" --row 1 | grep -q "incident report"

"$CLI" global --model "$DIR/model.xnfv" --data "$DIR/data.csv" --rows 20 | grep -q "global attribution"

# Regression-labelled flow.
"$CLI" generate --samples 300 --out "$DIR/lat.csv" --label latency --seed 4
"$CLI" train --data "$DIR/lat.csv" --model linear --task reg --out "$DIR/lat.xnfv"
"$CLI" evaluate --model "$DIR/lat.xnfv" --data "$DIR/lat.csv" --task reg | grep -q rmse

# Serving mode: ND-JSON in, ND-JSON out, repeats hit the cache, and the
# served attributions line is identical when re-served (determinism).
printf '%s\n' \
  '{"op":"explain","row":1}' \
  '{"op":"explain","row":1}' \
  '{"op":"stats"}' \
  '{"op":"quit"}' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" > "$DIR/serve1.out"
test "$(wc -l < "$DIR/serve1.out")" -eq 3
grep -q '"attributions"' "$DIR/serve1.out"
grep -q '"cache_hit":true' "$DIR/serve1.out"
grep -q '"op":"stats"' "$DIR/serve1.out"
printf '{"op":"explain","row":1}\n' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" > "$DIR/serve2.out"
head -n 1 "$DIR/serve1.out" | cmp -s - "$DIR/serve2.out"

# Malformed ND-JSON must get structured error lines, and the service must
# survive them and keep answering valid requests on the same connection.
NFEAT=$(head -n 1 "$DIR/data.csv" | awk -F',' '{print NF-1}')
BADFEATS=$(awk -v n="$NFEAT" 'BEGIN{for(i=1;i<=n;i++)printf "%s%s",(i>1?",":""),(i==2?"1e999":"0.5")}')
printf '%s\n' \
  '{"op":"explain","row":1' \
  '{"op":"frobnicate"}' \
  '{"op":"explain","features":[1,2]}' \
  "{\"op\":\"explain\",\"features\":[$BADFEATS]}" \
  '{"op":"explain","row":2,"deadline_ms":0}' \
  '{"op":"explain","row":2}' \
  '{"op":"quit"}' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" > "$DIR/serve3.out"
test "$(wc -l < "$DIR/serve3.out")" -eq 6
test "$(grep -c '"error_code":"bad_request"' "$DIR/serve3.out")" -eq 3
grep -q '"error_code":"bad_features"' "$DIR/serve3.out"
grep -q '"error_code":"deadline_exceeded"' "$DIR/serve3.out"
tail -n 1 "$DIR/serve3.out" | grep -q '"attributions"'

# Crash-safe snapshot round-trip: a restarted service serves warm,
# byte-identical cache hits from the snapshot written at shutdown.
printf '{"op":"explain","row":1}\n{"op":"quit"}\n' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" \
      --snapshot "$DIR/snap.bin" > "$DIR/serve4.out"
test -s "$DIR/snap.bin"
printf '{"op":"explain","row":1}\n{"op":"quit"}\n' \
  | "$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" \
      --snapshot "$DIR/snap.bin" > "$DIR/serve5.out"
grep -q '"cache_hit":true' "$DIR/serve5.out"
sed 's/"cache_hit":[a-z]*/"cache_hit":_/' "$DIR/serve4.out" > "$DIR/serve4.norm"
sed 's/"cache_hit":[a-z]*/"cache_hit":_/' "$DIR/serve5.out" > "$DIR/serve5.norm"
cmp -s "$DIR/serve4.norm" "$DIR/serve5.norm"

# Serving over TCP: background `serve --listen 0`, probe it with netprobe,
# then SIGTERM for a graceful drain.  The TCP answer for the same request
# must be byte-identical to the stdin-served one (modulo cache_hit).
"$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" \
    --listen 0 > "$DIR/tcp.out" 2>&1 &
SRV=$!
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$DIR/tcp.out")
  [ -n "$PORT" ] && break
  i=$((i + 1))
  sleep 0.1
done
test -n "$PORT"
"$CLI" netprobe --port "$PORT" --row 1 --count 2 --stats > "$DIR/probe.out"
test "$(wc -l < "$DIR/probe.out")" -eq 3
grep -q '"cache_hit":true' "$DIR/probe.out"
grep -q '"net_requests"' "$DIR/probe.out"
head -n 1 "$DIR/probe.out" | sed 's/"cache_hit":[a-z]*/"cache_hit":_/' > "$DIR/probe.norm"
head -n 1 "$DIR/serve1.out" | sed 's/"cache_hit":[a-z]*/"cache_hit":_/' > "$DIR/stdin.norm"
cmp -s "$DIR/probe.norm" "$DIR/stdin.norm"
kill -TERM "$SRV"
wait "$SRV"
grep -q '^drained$' "$DIR/tcp.out"

# Sharded serving: same probe against a 2-shard server must produce the
# same bytes as the single-loop answer, and the graceful drain still works.
"$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" \
    --listen 0 --shards 2 > "$DIR/tcp2.out" 2>&1 &
SRV2=$!
PORT2=""
i=0
while [ $i -lt 100 ]; do
  PORT2=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$DIR/tcp2.out")
  [ -n "$PORT2" ] && break
  i=$((i + 1))
  sleep 0.1
done
test -n "$PORT2"
grep -q '^shards 2$' "$DIR/tcp2.out"
"$CLI" netprobe --port "$PORT2" --row 1 --count 2 --stats > "$DIR/probe2.out"
test "$(wc -l < "$DIR/probe2.out")" -eq 3
grep -q '"net_shards":2' "$DIR/probe2.out"
head -n 1 "$DIR/probe2.out" | sed 's/"cache_hit":[a-z]*/"cache_hit":_/' > "$DIR/probe2.norm"
cmp -s "$DIR/probe2.norm" "$DIR/stdin.norm"
kill -TERM "$SRV2"
wait "$SRV2"
grep -q '^drained$' "$DIR/tcp2.out"

# Chaos + self-healing: with every socket fault armed (RST kills capped at
# 2, one shard death), a retrying load run must answer every request
# exactly once, the dead shard must respawn, a plain probe must succeed
# once the kill budget is spent, and SIGTERM must still drain.
"$CLI" serve --model "$DIR/model.xnfv" --data "$DIR/data.csv" \
    --listen 0 --shards 2 --heartbeat-ms 20 \
    --net-fault-seed 7 \
    --net-fault-partial-write-rate 0.2 --net-fault-torn-read-rate 0.2 \
    --net-fault-eintr-rate 0.1 --net-fault-stall-rate 0.1 \
    --net-fault-rst-rate 0.05 --net-fault-max-rst 2 \
    --net-fault-shard-death-rate 1.0 --net-fault-max-deaths 1 \
    > "$DIR/tcp3.out" 2>&1 &
SRV3=$!
PORT3=""
i=0
while [ $i -lt 100 ]; do
  PORT3=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$DIR/tcp3.out")
  [ -n "$PORT3" ] && break
  i=$((i + 1))
  sleep 0.1
done
test -n "$PORT3"
"$CLI" loadgen --port "$PORT3" --conns 4 --requests 8 --rows 8 --window 2 \
    --max-retries 16 --response-timeout-ms 2000 --connect-timeout-ms 2000 \
    --backoff-ms 5 > "$DIR/loadgen.out"
grep -q '"answered":32' "$DIR/loadgen.out"
grep -q '"errors":0' "$DIR/loadgen.out"
STATS=""
i=0
while [ $i -lt 50 ]; do
  if STATS=$("$CLI" netprobe --port "$PORT3" --stats --timeout-ms 3000 2>/dev/null); then
    break
  fi
  STATS=""
  i=$((i + 1))
  sleep 0.2
done
test -n "$STATS"
echo "$STATS" | grep -q '"net_shard_respawns":1'
kill -TERM "$SRV3"
wait "$SRV3"
grep -q '^drained$' "$DIR/tcp3.out"

# Failure paths must fail loudly, not crash.
if "$CLI" train --data /nonexistent.csv --out "$DIR/x" 2>/dev/null; then exit 1; fi
if "$CLI" explain --model "$DIR/model.xnfv" --data "$DIR/data.csv" --row 99999 2>/dev/null; then exit 1; fi
if "$CLI" frobnicate 2>/dev/null; then exit 1; fi

echo "cli smoke ok"
