#include <gtest/gtest.h>

#include "core/drift.hpp"
#include "core/exact_shapley.hpp"
#include "core/report.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/linear.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

namespace {

xai::GlobalAttribution make_global(std::vector<double> mass) {
    xai::GlobalAttribution g;
    g.mean_abs = std::move(mass);
    g.mean_signed.assign(g.mean_abs.size(), 0.0);
    g.num_instances = 10;
    return g;
}

}  // namespace

TEST(Drift, IdenticalWindowsAreStable) {
    const auto g = make_global({0.5, 0.3, 0.1, 0.05});
    const auto report = xai::attribution_drift(g, g);
    EXPECT_FALSE(report.drifted);
    EXPECT_NEAR(report.rank_correlation, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(report.top3_jaccard, 1.0);
    EXPECT_NEAR(report.mass_shift, 0.0, 1e-12);
}

TEST(Drift, ScalingInvariance) {
    // Uniform scaling of attribution magnitudes (e.g. a recalibrated model)
    // is not drift: shares are compared, not absolute values.
    const auto a = make_global({0.5, 0.3, 0.1});
    const auto b = make_global({5.0, 3.0, 1.0});
    const auto report = xai::attribution_drift(a, b);
    EXPECT_FALSE(report.drifted);
    EXPECT_NEAR(report.mass_shift, 0.0, 1e-12);
}

TEST(Drift, ReorderedTopFeaturesFlagDrift) {
    const auto before = make_global({0.6, 0.25, 0.1, 0.03, 0.02});
    const auto after = make_global({0.02, 0.03, 0.1, 0.25, 0.6});  // reversed
    const auto report = xai::attribution_drift(before, after);
    EXPECT_TRUE(report.drifted);
    EXPECT_LT(report.rank_correlation, 0.0);
}

TEST(Drift, MassMigrationFlagsDriftEvenWithSameTopFeature) {
    // Top feature unchanged, but half the mass moved elsewhere.
    const auto before = make_global({0.9, 0.05, 0.05});
    const auto after = make_global({0.5, 0.45, 0.05});
    const auto report = xai::attribution_drift(before, after);
    EXPECT_GT(report.mass_shift, 0.3);
    EXPECT_TRUE(report.drifted);
}

TEST(Drift, TopMoversIdentifyTheShiftedFeature) {
    const auto before = make_global({0.8, 0.1, 0.1});
    const auto after = make_global({0.2, 0.7, 0.1});
    const auto report = xai::attribution_drift(before, after);
    ASSERT_FALSE(report.top_movers.empty());
    // Feature 1 gained the most share.
    EXPECT_EQ(report.top_movers[0].first, 1u);
    EXPECT_GT(report.top_movers[0].second, 0.0);
}

TEST(Drift, ToStringMentionsStatusAndMovers) {
    const auto before = make_global({0.8, 0.2});
    const auto after = make_global({0.2, 0.8});
    const auto report = xai::attribution_drift(before, after);
    const std::vector<std::string> names{"cpu", "link"};
    const auto text = report.to_string(names);
    EXPECT_NE(text.find("DRIFTED"), std::string::npos);
    EXPECT_NE(text.find("cpu"), std::string::npos);
}

TEST(Drift, RejectsMismatchedFeatureSets) {
    const auto a = make_global({0.5, 0.5});
    const auto b = make_global({0.5, 0.3, 0.2});
    EXPECT_THROW((void)xai::attribution_drift(a, b), std::invalid_argument);
    EXPECT_THROW((void)xai::attribution_drift(make_global({}), make_global({})),
                 std::invalid_argument);
}

TEST(Drift, EndToEndDetectsRetrainedModelShift) {
    // Two forests trained on different generating processes produce drifted
    // attribution profiles over the same instances.
    ml::Rng rng(1);
    ml::Dataset d_cpu, d_link;
    d_cpu.task = d_link.task = ml::Task::regression;
    for (int i = 0; i < 600; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        d_cpu.add(std::vector<double>{a, b}, 8.0 * a);   // feature 0 matters
        d_link.add(std::vector<double>{a, b}, 8.0 * b);  // feature 1 matters
    }
    ml::RandomForest m_cpu(ml::RandomForest::Config{.num_trees = 20});
    ml::RandomForest m_link(ml::RandomForest::Config{.num_trees = 20});
    m_cpu.fit(d_cpu, rng);
    m_link.fit(d_link, rng);

    const auto instances = make_uniform_background(30, 2, rng);
    xai::TreeShap ts;
    const std::vector<std::string> names{"f0", "f1"};
    const auto g_cpu = xai::aggregate_explanations(ts, m_cpu, instances, names);
    const auto g_link = xai::aggregate_explanations(ts, m_link, instances, names);

    EXPECT_FALSE(xai::attribution_drift(g_cpu, g_cpu).drifted);
    EXPECT_TRUE(xai::attribution_drift(g_cpu, g_link).drifted);
}

TEST(Report, ContainsDriversAndStatus) {
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return ml::sigmoid(5.0 * x[0] + x[1]);
    });
    xai::ExactShapley shap(background);
    const std::vector<std::string> names{"cpu_util", "link_util"};
    const std::vector<double> x{0.9, 0.1};
    const auto text = xai::incident_report(model, shap, x, names, background, rng);
    EXPECT_NE(text.find("ALERT"), std::string::npos);
    EXPECT_NE(text.find("cpu_util"), std::string::npos);
    EXPECT_NE(text.find("pushes toward alert"), std::string::npos);
}

TEST(Report, OkStatusBelowThreshold) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(32, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.1; });
    xai::ExactShapley shap(background);
    const std::vector<std::string> names{"a", "b"};
    const auto text = xai::incident_report(model, shap, std::vector<double>{0, 0}, names,
                                           background, rng);
    EXPECT_NE(text.find("status: ok"), std::string::npos);
    EXPECT_EQ(text.find("ALERT"), std::string::npos);
}

TEST(Report, CounterfactualSectionAppears) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return ml::sigmoid(4.0 * x[0] + 2.0 * x[1]);
    });
    xai::ExactShapley shap(background);
    const std::vector<std::string> names{"a", "b"};
    xai::ReportOptions options;
    options.counterfactual = xai::CounterfactualOptions{};
    const auto text = xai::incident_report(model, shap, std::vector<double>{0.6, 0.4},
                                           names, background, rng, options);
    EXPECT_NE(text.find("suggested remediation"), std::string::npos);
    EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(Report, RejectsSizeMismatch) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(16, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    xai::ExactShapley shap(background);
    const std::vector<std::string> names{"a", "b"};
    EXPECT_THROW((void)xai::incident_report(model, shap, std::vector<double>{0.0}, names,
                                            background, rng),
                 std::invalid_argument);
}
