// Unit tests for the online explanation service building blocks: bounded
// queue backpressure, micro-batcher flush policies (with an explicit clock,
// so flush-by-timeout is deterministic), sharded LRU cache accounting,
// metrics, the ND-JSON codec, and the assembled ExplanationService.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/interaction.hpp"
#include "serve/batcher.hpp"
#include "serve/explanation_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/ndjson.hpp"
#include "serve/request_queue.hpp"
#include "serve/service.hpp"

namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;

namespace {

serve::Job make_job(std::uint64_t id) {
    serve::Job job;
    job.request.id = id;
    job.request.features = {1.0, 2.0, 3.0};
    job.enqueued_at = Clock::now();
    return job;
}

serve::CacheKey make_key(std::initializer_list<double> features, double quantum,
                         std::uint64_t context) {
    const std::vector<double> v(features);
    return serve::CacheKey(v, quantum, context);
}

xai::Explanation make_explanation(double value) {
    xai::Explanation e;
    e.method = "test";
    e.prediction = value;
    e.base_value = 0.5;
    e.attributions = {value, -value};
    return e;
}

}  // namespace

// ---------------------------------------------------------------- queue ---

TEST(RequestQueue, RejectsWithQueueFullWhenDepthReached) {
    serve::RequestQueue queue(2);
    EXPECT_EQ(queue.try_push(make_job(1)), serve::ServeError::none);
    EXPECT_EQ(queue.try_push(make_job(2)), serve::ServeError::none);
    EXPECT_EQ(queue.try_push(make_job(3)), serve::ServeError::queue_full);
    EXPECT_EQ(queue.size(), 2u);

    // Popping frees a slot.
    EXPECT_TRUE(queue.try_pop().has_value());
    EXPECT_EQ(queue.try_push(make_job(3)), serve::ServeError::none);
}

TEST(RequestQueue, PopsInFifoOrder) {
    serve::RequestQueue queue(8);
    for (std::uint64_t id = 1; id <= 4; ++id)
        ASSERT_EQ(queue.try_push(make_job(id)), serve::ServeError::none);
    for (std::uint64_t id = 1; id <= 4; ++id) {
        auto job = queue.try_pop();
        ASSERT_TRUE(job.has_value());
        EXPECT_EQ(job->request.id, id);
    }
    EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(RequestQueue, CloseRejectsNewButDrainsQueued) {
    serve::RequestQueue queue(4);
    ASSERT_EQ(queue.try_push(make_job(1)), serve::ServeError::none);
    queue.close();
    EXPECT_EQ(queue.try_push(make_job(2)), serve::ServeError::service_stopped);
    // Already-admitted work survives the close.
    auto job = queue.pop_wait(Clock::now() + microseconds(100));
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->request.id, 1u);
    // Drained + closed: pop returns immediately with nothing.
    EXPECT_FALSE(queue.pop_wait(Clock::now() + std::chrono::seconds(5)).has_value());
}

TEST(RequestQueue, PopWaitTimesOutOnEmptyQueue) {
    serve::RequestQueue queue(4);
    const auto start = Clock::now();
    EXPECT_FALSE(queue.pop_wait(start + std::chrono::milliseconds(20)).has_value());
    EXPECT_GE(Clock::now() - start, std::chrono::milliseconds(19));
}

// -------------------------------------------------------------- batcher ---

TEST(MicroBatcher, FlushesBySize) {
    serve::MicroBatcher batcher({.max_batch = 3, .max_wait = microseconds(1000000)});
    const auto t0 = Clock::now();
    EXPECT_FALSE(batcher.add(make_job(1), t0));
    EXPECT_FALSE(batcher.add(make_job(2), t0));
    EXPECT_TRUE(batcher.add(make_job(3), t0));  // full -> caller must flush
    EXPECT_TRUE(batcher.due(t0));               // full batches are due immediately

    const auto batch = batcher.flush();
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].request.id, 1u);
    EXPECT_EQ(batch[2].request.id, 3u);
    EXPECT_EQ(batcher.pending(), 0u);
    EXPECT_FALSE(batcher.due(t0 + std::chrono::hours(1)));  // empty is never due
}

TEST(MicroBatcher, FlushesByTimeoutFromOldestPending) {
    serve::MicroBatcher batcher({.max_batch = 100, .max_wait = microseconds(200)});
    const auto t0 = Clock::now();
    EXPECT_FALSE(batcher.add(make_job(1), t0));
    // A later add does not restart the timer: deadline stays t0 + 200us.
    EXPECT_FALSE(batcher.add(make_job(2), t0 + microseconds(150)));
    ASSERT_TRUE(batcher.deadline().has_value());
    EXPECT_EQ(*batcher.deadline(), t0 + microseconds(200));

    EXPECT_FALSE(batcher.due(t0 + microseconds(199)));
    EXPECT_TRUE(batcher.due(t0 + microseconds(200)));
    EXPECT_EQ(batcher.flush().size(), 2u);
    EXPECT_FALSE(batcher.deadline().has_value());
}

// ---------------------------------------------------------------- cache ---

TEST(ExplanationCache, HitMissAndLruEviction) {
    serve::ExplanationCache cache(2, 1);  // one shard so eviction order is global
    const serve::CacheKey a = make_key({1.0}, 0.0, 7);
    const serve::CacheKey b = make_key({2.0}, 0.0, 7);
    const serve::CacheKey c = make_key({3.0}, 0.0, 7);

    EXPECT_FALSE(cache.lookup(a).has_value());  // miss
    cache.insert(a, make_explanation(1.0));
    cache.insert(b, make_explanation(2.0));
    ASSERT_TRUE(cache.lookup(a).has_value());  // refreshes a -> b is now LRU
    cache.insert(c, make_explanation(3.0));    // evicts b

    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_FALSE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
}

TEST(ExplanationCache, HitReturnsInsertedExplanation) {
    serve::ExplanationCache cache(8, 4);
    const serve::CacheKey key = make_key({0.25, -1.5}, 0.0, 42);
    cache.insert(key, make_explanation(0.75));
    const auto found = cache.lookup(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->prediction, 0.75);
    EXPECT_EQ(found->attributions, (std::vector<double>{0.75, -0.75}));
}

TEST(CacheKey, ExactModeDistinguishesBitPatterns) {
    const serve::CacheKey a = make_key({1.0, 2.0}, 0.0, 1);
    const serve::CacheKey same = make_key({1.0, 2.0}, 0.0, 1);
    const serve::CacheKey nudged = make_key({1.0, 2.0 + 1e-12}, 0.0, 1);
    const serve::CacheKey other_context = make_key({1.0, 2.0}, 0.0, 2);
    EXPECT_TRUE(a == same);
    EXPECT_FALSE(a == nudged);
    EXPECT_FALSE(a == other_context);
}

TEST(CacheKey, QuantizedModeBucketsNearbyValues) {
    const serve::CacheKey a = make_key({1.0001, 2.0}, 0.01, 1);
    const serve::CacheKey b = make_key({0.9999, 2.0049}, 0.01, 1);
    const serve::CacheKey far = make_key({1.02, 2.0}, 0.01, 1);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == far);
}

TEST(ExplanationCache, ShardsSpreadAndStillEvictPerShard) {
    serve::ExplanationCache cache(8, 4);
    EXPECT_EQ(cache.num_shards(), 4u);
    for (int i = 0; i < 100; ++i)
        cache.insert(make_key({static_cast<double>(i)}, 0.0, 9),
                     make_explanation(i));
    // Each shard holds at most capacity/shards entries.
    EXPECT_LE(cache.size(), cache.capacity());
    EXPECT_GT(cache.stats().evictions, 0u);
}

// -------------------------------------------------------------- metrics ---

TEST(Metrics, HistogramQuantilesAndMean) {
    serve::Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    // Geometric buckets: quantiles are approximate but must be ordered and
    // inside the recorded range.
    const double p50 = h.quantile(0.50), p95 = h.quantile(0.95), p99 = h.quantile(0.99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, 127.0);  // top bucket of 100 is [64, 127]
    EXPECT_EQ(serve::Histogram().quantile(0.99), 0.0);
}

TEST(Metrics, GaugeTracksHighWaterMark) {
    serve::Gauge g;
    g.set(3);
    g.set(10);
    g.set(2);
    EXPECT_EQ(g.value(), 2u);
    EXPECT_EQ(g.max(), 10u);
}

TEST(Metrics, StatsReportContainsEveryKeyFigure) {
    serve::ServiceStats s;
    s.requests_accepted = 12;
    s.cache_hits = 9;
    s.cache_misses = 3;
    s.service_us_p99 = 1234.5;
    const std::string report = s.to_string();
    EXPECT_NE(report.find("accepted 12"), std::string::npos);
    EXPECT_NE(report.find("hit-rate 0.750"), std::string::npos);
    EXPECT_NE(report.find("p99 1234.5"), std::string::npos);
    EXPECT_DOUBLE_EQ(s.cache_hit_rate(), 0.75);
}

// --------------------------------------------------------------- ndjson ---

TEST(NdJson, ParsesFlatRequestObjects) {
    const auto v = serve::parse_json(
        R"({"op":"explain","row":3,"seed":42,"features":[1.5,-2.0e1,0],"deep":{"a":true}})");
    EXPECT_EQ(v.get_string("op", ""), "explain");
    EXPECT_EQ(v.get_number("row", -1), 3.0);
    EXPECT_EQ(v.get_number("seed", 0), 42.0);
    const auto* features = v.find("features");
    ASSERT_NE(features, nullptr);
    ASSERT_EQ(features->array.size(), 3u);
    EXPECT_EQ(features->array[1].number, -20.0);
    ASSERT_NE(v.find("deep"), nullptr);
    EXPECT_TRUE(v.find("deep")->find("a")->boolean);
    EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(NdJson, ParsesEscapesAndRejectsGarbage) {
    EXPECT_EQ(serve::parse_json(R"("a\"b\nA")").string, "a\"b\nA");
    EXPECT_THROW((void)serve::parse_json("{"), std::runtime_error);
    EXPECT_THROW((void)serve::parse_json("{} trailing"), std::runtime_error);
    EXPECT_THROW((void)serve::parse_json("{\"a\":nope}"), std::runtime_error);
    EXPECT_THROW((void)serve::parse_json(""), std::runtime_error);
}

TEST(NdJson, NumbersRoundTripBitwise) {
    for (const double v : {0.0, -0.0, 1.0 / 3.0, 6.02e23, -1.7976931348623157e308,
                           5e-324, 0.063333333333333339}) {
        const std::string text = serve::json_number(v);
        const auto parsed = serve::parse_json(text);
        EXPECT_EQ(parsed.number, v) << text;
    }
    EXPECT_EQ(serve::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(NdJson, WriterEmitsValidEscapedJson) {
    serve::JsonWriter w;
    w.field("ok", true);
    w.field("id", std::uint64_t{7});
    w.field("msg", "line1\nline2 \"quoted\"");
    w.field_array("xs", {1.0, 2.5});
    const std::string out = w.finish();
    const auto parsed = serve::parse_json(out);
    EXPECT_TRUE(parsed.find("ok")->boolean);
    EXPECT_EQ(parsed.get_number("id", 0), 7.0);
    EXPECT_EQ(parsed.get_string("msg", ""), "line1\nline2 \"quoted\"");
    EXPECT_EQ(parsed.find("xs")->array[1].number, 2.5);
}

// -------------------------------------------------------------- service ---

namespace {

/// Gate every model evaluation can block on — lets tests hold the dispatcher
/// inside a batch while they fill the queue behind it.
struct Gate {
    std::mutex m;
    std::condition_variable cv;
    bool open = false;
    void wait() {
        std::unique_lock lock(m);
        cv.wait(lock, [this] { return open; });
    }
    void release() {
        {
            std::lock_guard lock(m);
            open = true;
        }
        cv.notify_all();
    }
};

std::shared_ptr<const ml::Model> sum_model() {
    return std::make_shared<ml::LambdaModel>(3, [](std::span<const double> x) {
        return 0.25 * x[0] + 0.5 * x[1] - x[2];
    });
}

xai::BackgroundData tiny_background() {
    return xai::BackgroundData(
        ml::Matrix::from_rows({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {2.0, 0.5, -1.0}}));
}

serve::ExplainRequest request_for(std::uint64_t id, std::vector<double> features) {
    serve::ExplainRequest r;
    r.id = id;
    r.features = std::move(features);
    return r;
}

}  // namespace

TEST(ExplanationService, ServesRequestsAndCountsCacheHits) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(100);
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    const auto first = service.explain_sync(request_for(1, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(first.ok);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_EQ(first.explanation.method, "occlusion");
    EXPECT_EQ(first.explanation.attributions.size(), 3u);

    const auto repeat = service.explain_sync(request_for(2, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(repeat.ok);
    EXPECT_TRUE(repeat.cache_hit);

    const auto other = service.explain_sync(request_for(3, {9.0, 2.0, 3.0}));
    ASSERT_TRUE(other.ok);
    EXPECT_FALSE(other.cache_hit);

    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_accepted, 3u);
    EXPECT_EQ(stats.requests_completed, 3u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 2u);
    EXPECT_EQ(stats.cache_entries, 2u);
    EXPECT_GE(stats.batches, 1u);
}

TEST(ExplanationService, RejectsBadRequestsUpFront) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    auto wrong_arity = service.submit(request_for(1, {1.0}));
    EXPECT_EQ(wrong_arity.rejected, serve::ServeError::bad_request);

    auto bad_method = request_for(2, {1.0, 2.0, 3.0});
    bad_method.method = "astrology";
    EXPECT_EQ(service.submit(std::move(bad_method)).rejected,
              serve::ServeError::bad_request);

    // The sync wrapper surfaces the reason as an error response.
    const auto r = service.explain_sync(request_for(3, {1.0}));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("bad_request"), std::string::npos);
    EXPECT_EQ(service.stats().requests_rejected, 3u);
}

TEST(ExplanationService, BackpressureRejectsWhenQueueIsFull) {
    auto gate = std::make_shared<Gate>();
    auto model = std::make_shared<ml::LambdaModel>(3, [gate](std::span<const double> x) {
        gate->wait();
        return x[0];
    });

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.queue_depth = 2;
    cfg.max_batch = 1;       // dispatcher commits to a batch per request
    cfg.max_wait = microseconds(0);
    cfg.threads = 1;         // compute runs inline on the dispatcher thread
    serve::ExplanationService service(model, tiny_background(), cfg);

    // First request: wait until the dispatcher has pulled it into a batch
    // (queue drained) and is blocked on the gate inside the model.
    auto inflight = service.submit(request_for(1, {1.0, 2.0, 3.0}));
    ASSERT_EQ(inflight.rejected, serve::ServeError::none);
    while (service.stats().queue_depth != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Fill the queue behind the stuck batch, then overflow it.
    auto q1 = service.submit(request_for(2, {1.0, 2.0, 3.0}));
    auto q2 = service.submit(request_for(3, {2.0, 2.0, 3.0}));
    ASSERT_EQ(q1.rejected, serve::ServeError::none);
    ASSERT_EQ(q2.rejected, serve::ServeError::none);
    auto overflow = service.submit(request_for(4, {3.0, 2.0, 3.0}));
    EXPECT_EQ(overflow.rejected, serve::ServeError::queue_full);

    gate->release();
    EXPECT_TRUE(inflight.response.get().ok);
    EXPECT_TRUE(q1.response.get().ok);
    EXPECT_TRUE(q2.response.get().ok);

    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_rejected, 1u);
    EXPECT_EQ(stats.requests_completed, 3u);
    EXPECT_EQ(stats.queue_depth_max, 2u);
}

TEST(ExplanationService, StopDrainsQueuedWorkThenRejects) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 8;
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    std::vector<std::future<serve::ExplainResponse>> futures;
    for (std::uint64_t id = 0; id < 8; ++id) {
        auto sub = service.submit(request_for(id, {static_cast<double>(id), 0.0, 1.0}));
        ASSERT_EQ(sub.rejected, serve::ServeError::none);
        futures.push_back(std::move(sub.response));
    }
    service.stop();  // must serve everything already admitted
    for (auto& f : futures) EXPECT_TRUE(f.get().ok);

    EXPECT_EQ(service.submit(request_for(99, {1.0, 2.0, 3.0})).rejected,
              serve::ServeError::service_stopped);
}

TEST(ExplanationService, DuplicateRequestsWithinOneBatchComputeOnce) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 4;
    cfg.max_wait = std::chrono::microseconds(50000);  // force one batch of 4
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    std::vector<std::future<serve::ExplainResponse>> futures;
    for (std::uint64_t id = 0; id < 4; ++id) {
        auto sub = service.submit(request_for(id, {5.0, 6.0, 7.0}));
        ASSERT_EQ(sub.rejected, serve::ServeError::none);
        futures.push_back(std::move(sub.response));
    }
    std::vector<serve::ExplainResponse> responses;
    for (auto& f : futures) responses.push_back(f.get());

    // One computation, three batch-local hits, identical bytes everywhere.
    const auto stats = service.stats();
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_EQ(stats.cache_hits, 3u);
    for (const auto& r : responses) {
        ASSERT_TRUE(r.ok);
        ASSERT_EQ(r.explanation.attributions.size(), 3u);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(r.explanation.attributions[j],
                      responses[0].explanation.attributions[j]);
    }
}

// ------------------------------------------- async completion channel ---

TEST(ExplanationService, SubmitAsyncDeliversInAdmissionOrder) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 8;
    cfg.max_wait = microseconds(50000);  // coalesce all three into one batch
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    std::mutex m;
    std::condition_variable cv;
    std::vector<serve::ExplainResponse> delivered;
    for (std::uint64_t id = 1; id <= 3; ++id) {
        const auto rejected = service.submit_async(
            request_for(id, {static_cast<double>(id), 0.0, 1.0}),
            [&](serve::ExplainResponse r) {
                const std::lock_guard lock(m);
                delivered.push_back(std::move(r));
                cv.notify_one();
            });
        ASSERT_EQ(rejected, serve::ServeError::none);
    }
    std::unique_lock lock(m);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return delivered.size() == 3; }));
    for (std::uint64_t id = 1; id <= 3; ++id) {
        EXPECT_EQ(delivered[id - 1].id, id);
        EXPECT_TRUE(delivered[id - 1].ok);
    }
}

TEST(ExplanationService, SubmitAsyncRejectsWithoutInvokingCallback) {
    serve::ExplanationService service(sum_model(), tiny_background(), {});
    std::atomic<int> calls{0};
    // Wrong arity: rejected at the door, callback never fires.
    const auto rejected = service.submit_async(
        request_for(1, {1.0}), [&](serve::ExplainResponse) { ++calls; });
    EXPECT_EQ(rejected, serve::ServeError::bad_request);

    serve::ExplainRequest expired = request_for(2, {1.0, 2.0, 3.0});
    expired.deadline_ms = 0;
    EXPECT_EQ(service.submit_async(std::move(expired),
                                   [&](serve::ExplainResponse) { ++calls; }),
              serve::ServeError::deadline_exceeded);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(calls.load(), 0);
}

// ----------------------------------- drift-triggered cache invalidation ---

namespace {

serve::ServiceConfig drift_config() {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 1;  // one request per batch: windows fill predictably
    cfg.max_wait = microseconds(100);
    cfg.drift_window = 2;
    return cfg;
}

}  // namespace

TEST(ExplanationService, DriftBumpsCacheEpochAndCountsFlush) {
    serve::ExplanationService service(sum_model(), tiny_background(),
                                      drift_config());
    // Reference window: all attribution mass on feature 2.
    ASSERT_TRUE(service.explain_sync(request_for(1, {0.0, 0.0, 50.0})).ok);
    ASSERT_TRUE(service.explain_sync(request_for(2, {0.0, 0.0, 60.0})).ok);
    EXPECT_EQ(service.cache_epoch(), 0u);
    // Current window: mass moves to feature 0 — ranking flips, mass shifts.
    ASSERT_TRUE(service.explain_sync(request_for(3, {50.0, 0.0, 0.0})).ok);
    ASSERT_TRUE(service.explain_sync(request_for(4, {60.0, 0.0, 0.0})).ok);

    const auto stats = service.stats();
    EXPECT_EQ(stats.drift_checks, 1u);
    EXPECT_EQ(stats.drift_flushes, 1u);
    EXPECT_EQ(stats.cache_epoch, 1u);
    EXPECT_EQ(service.cache_epoch(), 1u);

    // The epoch is mixed into every cache key: a pre-drift repeat misses and
    // is recomputed against the new epoch instead of returning stale bytes.
    const auto repeat = service.explain_sync(request_for(5, {0.0, 0.0, 50.0}));
    ASSERT_TRUE(repeat.ok);
    EXPECT_FALSE(repeat.cache_hit);
    EXPECT_EQ(service.stats().cache_misses, 5u);
}

TEST(ExplanationService, StableTrafficNeverFlushes) {
    serve::ExplanationService service(sum_model(), tiny_background(),
                                      drift_config());
    // Four near-identical instances: same ranking, tiny mass shift.
    ASSERT_TRUE(service.explain_sync(request_for(1, {1.0, 2.0, 3.0})).ok);
    ASSERT_TRUE(service.explain_sync(request_for(2, {1.1, 2.1, 3.1})).ok);
    ASSERT_TRUE(service.explain_sync(request_for(3, {0.9, 1.9, 2.9})).ok);
    ASSERT_TRUE(service.explain_sync(request_for(4, {1.2, 2.2, 3.2})).ok);

    const auto stats = service.stats();
    EXPECT_EQ(stats.drift_checks, 1u);
    EXPECT_EQ(stats.drift_flushes, 0u);
    EXPECT_EQ(stats.cache_epoch, 0u);

    // Cache behaves normally: an exact repeat still hits.
    const auto repeat = service.explain_sync(request_for(5, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(repeat.ok);
    EXPECT_TRUE(repeat.cache_hit);
}

TEST(ExplanationService, CacheHitsDoNotAdvanceDriftWindows) {
    serve::ExplanationService service(sum_model(), tiny_background(),
                                      drift_config());
    ASSERT_TRUE(service.explain_sync(request_for(1, {0.0, 0.0, 50.0})).ok);
    // Repeats are cache hits — not fresh computations — so the reference
    // window must still be half-filled and no check can have run.
    for (std::uint64_t id = 2; id <= 6; ++id)
        ASSERT_TRUE(service.explain_sync(request_for(id, {0.0, 0.0, 50.0})).ok);
    const auto stats = service.stats();
    EXPECT_EQ(stats.cache_hits, 5u);
    EXPECT_EQ(stats.drift_checks, 0u);
    EXPECT_EQ(stats.cache_epoch, 0u);
}

// ----------------------------------------- adaptive wait instrumentation ---

TEST(ExplanationService, AdaptiveWaitGaugeReportsCeilingWhenUnpressured) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_wait = microseconds(300);
    cfg.adaptive.slo_p99_us = 1e9;  // enabled, but unreachable SLO
    cfg.adaptive.min_wait = microseconds(10);
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);
    ASSERT_TRUE(service.explain_sync(request_for(1, {1.0, 2.0, 3.0})).ok);
    // No pressure: the effective wait equals the configured ceiling.
    EXPECT_EQ(service.stats().adaptive_wait_us, 300u);
}

// ------------------------------------------- interaction-aware serving ---

TEST(ExplanationService, ServedInteractionsMatchOneShotFriedmanH2) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    auto req = request_for(1, {1.0, 2.0, 3.0});
    req.interactions = 2;
    const auto r = service.explain_sync(std::move(req));
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.explanation.interactions.size(), 2u);

    // Every served pair must be bitwise what the one-shot API computes for
    // the same (model, background, points) — the serving path may not add
    // sampling, reordering, or precision differences.
    const auto model = sum_model();
    const auto background = tiny_background();
    const xai::InteractionOptions opt{cfg.interaction_points};
    for (const auto& p : r.explanation.interactions) {
        ASSERT_LT(p.i, p.j);
        EXPECT_EQ(p.h2, xai::friedman_h2(*model, background, p.i, p.j, opt))
            << "pair (" << p.i << "," << p.j << ")";
    }
    // Strongest-first, and asking for more pairs than exist truncates.
    EXPECT_GE(r.explanation.interactions[0].h2, r.explanation.interactions[1].h2);
    auto req_all = request_for(2, {4.0, 5.0, 6.0});
    req_all.interactions = 100;
    const auto all = service.explain_sync(std::move(req_all));
    ASSERT_TRUE(all.ok);
    EXPECT_EQ(all.explanation.interactions.size(), 3u);  // C(3,2)
}

TEST(ExplanationService, InteractionRequestsHaveTheirOwnCacheKeys) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    const auto plain = service.explain_sync(request_for(1, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(plain.ok);
    EXPECT_TRUE(plain.explanation.interactions.empty());
    const std::string plain_bytes = serve::render_response(plain);

    // Same features with interactions on must MISS (different key) and
    // carry the pairs.
    auto with = request_for(1, {1.0, 2.0, 3.0});
    with.interactions = 1;
    const auto enriched = service.explain_sync(std::move(with));
    ASSERT_TRUE(enriched.ok);
    EXPECT_FALSE(enriched.cache_hit);
    ASSERT_EQ(enriched.explanation.interactions.size(), 1u);
    EXPECT_NE(serve::render_response(enriched).find("\"interactions\""),
              std::string::npos);

    // A later k=0 request hits the original entry and renders byte-identical
    // to the first response — the regression pin that opting OUT of
    // interactions leaves the pre-existing wire format and cache keys
    // untouched.
    const auto replay = service.explain_sync(request_for(1, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(replay.ok);
    EXPECT_TRUE(replay.cache_hit);
    serve::ExplainResponse replay_normalized = replay;
    replay_normalized.cache_hit = false;
    EXPECT_EQ(serve::render_response(replay_normalized), plain_bytes);
    EXPECT_EQ(plain_bytes.find("\"interactions\""), std::string::npos);
}

// ------------------------------------------------------- stats_reset op ---

TEST(ExplanationService, StatsResetZerosCountersButKeepsCacheEntries) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);
    ASSERT_TRUE(service.explain_sync(request_for(1, {1.0, 2.0, 3.0})).ok);
    ASSERT_TRUE(service.explain_sync(request_for(2, {1.0, 2.0, 3.0})).ok);

    auto stats = service.stats();
    EXPECT_EQ(stats.requests_completed, 2u);
    EXPECT_EQ(stats.cache_hits, 1u);

    service.stats_reset();
    stats = service.stats();
    EXPECT_EQ(stats.requests_accepted, 0u);
    EXPECT_EQ(stats.requests_completed, 0u);
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, 0u);
    EXPECT_EQ(stats.batches, 0u);

    // Counters are a measurement window; the cache itself is state and
    // survives, so the next repeat still hits (and is counted afresh).
    const auto after = service.explain_sync(request_for(3, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(after.ok);
    EXPECT_TRUE(after.cache_hit);
    EXPECT_EQ(service.stats().cache_hits, 1u);
}

// ------------------------------------------------- histogram tail fix ---

TEST(Histogram, QuantileReachesObservedMaxAboveTopGeometricBucket) {
    // bucket_of clamps bit_width to the last bucket, whose nominal range
    // tops out at 2^63-1; samples beyond it used to be interpolated against
    // that nominal bound, under-reporting heavy tails by up to 2x.  The
    // recorded max is the true upper edge.
    serve::Histogram h;
    for (int i = 0; i < 100; ++i) h.record(UINT64_MAX);
    EXPECT_EQ(h.max(), UINT64_MAX);
    EXPECT_GE(h.quantile(0.99), 0.9 * static_cast<double>(UINT64_MAX));
    // And no quantile may exceed an observed sample in inner buckets either.
    serve::Histogram inner;
    for (int i = 0; i < 10; ++i) inner.record(100);
    EXPECT_LE(inner.quantile(0.99), 100.0);
}
