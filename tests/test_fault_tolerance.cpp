// Fault-tolerance tests for the serving layer: cooperative cancellation and
// per-request deadlines, the graceful-degradation ladder, the deterministic
// fault injector (including dispatcher death + watchdog respawn), queue
// shutdown races, and the chaos acceptance run — 1k requests under injected
// predict faults and a killed worker, with every non-faulted response
// bitwise identical to a fault-free run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/budget.hpp"
#include "mlcore/model.hpp"
#include "serve/degradation.hpp"
#include "serve/errors.hpp"
#include "serve/fault_injector.hpp"
#include "serve/ndjson.hpp"
#include "serve/request_queue.hpp"
#include "serve/service.hpp"

namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

using Clock = std::chrono::steady_clock;
using std::chrono::microseconds;
using std::chrono::milliseconds;

namespace {

struct Gate {
    std::mutex m;
    std::condition_variable cv;
    bool open = false;
    void wait() {
        std::unique_lock lock(m);
        cv.wait(lock, [this] { return open; });
    }
    void release() {
        {
            std::lock_guard lock(m);
            open = true;
        }
        cv.notify_all();
    }
};

std::shared_ptr<const ml::Model> sum_model() {
    return std::make_shared<ml::LambdaModel>(3, [](std::span<const double> x) {
        return 0.25 * x[0] + 0.5 * x[1] - x[2];
    });
}

xai::BackgroundData tiny_background() {
    return xai::BackgroundData(
        ml::Matrix::from_rows({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {2.0, 0.5, -1.0}}));
}

serve::ExplainRequest request_for(std::uint64_t id, std::vector<double> features) {
    serve::ExplainRequest r;
    r.id = id;
    r.features = std::move(features);
    return r;
}

constexpr auto fp = [](serve::FaultPoint p) { return static_cast<std::size_t>(p); };

}  // namespace

// ---------------------------------------------------------- cancel token ---

TEST(CancelToken, DefaultNeverFires) {
    xai::CancelToken token;
    EXPECT_FALSE(token.expired());
    EXPECT_NO_THROW(token.check());
    EXPECT_NO_THROW(xai::check_budget(&token));
    EXPECT_NO_THROW(xai::check_budget(nullptr));
}

TEST(CancelToken, ManualCancelFires) {
    xai::CancelToken token;
    token.cancel();
    EXPECT_TRUE(token.expired());
    EXPECT_THROW(token.check(), xai::BudgetExceeded);
}

TEST(CancelToken, DeadlineFiresOncePassed) {
    xai::CancelToken token;
    token.set_deadline(Clock::now() + std::chrono::hours(1));
    EXPECT_FALSE(token.expired());
    token.set_deadline(Clock::now() - milliseconds(1));
    EXPECT_TRUE(token.expired());
}

TEST(CancelToken, AbortsKernelShapMidFlight) {
    xai::CancelToken token;
    token.cancel();
    serve::ExplainerLimits limits;
    limits.cancel = &token;
    const auto bg = tiny_background();
    auto explainer = serve::make_explainer("kernel_shap", bg, 7, 1, limits);
    const std::vector<double> x = {1.0, 2.0, 3.0};
    const auto model = sum_model();
    EXPECT_THROW((void)explainer->explain(*model, x), xai::BudgetExceeded);
}

TEST(CancelToken, AbortsEverySamplingMethod) {
    xai::CancelToken token;
    token.cancel();
    serve::ExplainerLimits limits;
    limits.cancel = &token;
    const auto bg = tiny_background();
    const auto model = sum_model();
    const std::vector<double> x = {1.0, 2.0, 3.0};
    for (const char* method : {"kernel_shap", "sampling", "lime", "occlusion"}) {
        auto explainer = serve::make_explainer(method, bg, 7, 1, limits);
        EXPECT_THROW((void)explainer->explain(*model, x), xai::BudgetExceeded)
            << method;
    }
}

// --------------------------------------------------------- budget scaling ---

TEST(ExplainerLimits, BudgetScalesWithFloors) {
    const auto bg = tiny_background();
    EXPECT_EQ(serve::effective_budget("kernel_shap", 1.0, bg), 2048u);
    EXPECT_EQ(serve::effective_budget("kernel_shap", 0.25, bg), 512u);
    EXPECT_EQ(serve::effective_budget("kernel_shap", 0.001, bg), 16u);  // floor
    EXPECT_EQ(serve::effective_budget("sampling", 0.25, bg), 50u);
    EXPECT_EQ(serve::effective_budget("sampling", 0.001, bg), 8u);  // floor
    EXPECT_EQ(serve::effective_budget("lime", 0.5, bg), 500u);
    EXPECT_EQ(serve::effective_budget("lime", 0.001, bg), 5u);  // d + 2
    EXPECT_EQ(serve::effective_budget("occlusion", 0.1, bg), 3u);  // one per feature
    EXPECT_EQ(serve::effective_budget("tree_shap", 0.1, bg), 0u);  // exact method
}

TEST(ExplainerLimits, ReducedBudgetIsDeterministicAndDiffersFromFull) {
    const auto bg = tiny_background();
    const auto model = sum_model();
    const std::vector<double> x = {1.0, 2.0, 3.0};
    serve::ExplainerLimits reduced;
    reduced.budget_scale = 0.05;

    const auto full = serve::make_explainer("kernel_shap", bg, 7, 1)->explain(*model, x);
    const auto a =
        serve::make_explainer("kernel_shap", bg, 7, 1, reduced)->explain(*model, x);
    const auto b =
        serve::make_explainer("kernel_shap", bg, 7, 1, reduced)->explain(*model, x);
    ASSERT_EQ(a.attributions.size(), b.attributions.size());
    for (std::size_t j = 0; j < a.attributions.size(); ++j)
        EXPECT_EQ(a.attributions[j], b.attributions[j]);  // same (seed, level)
    // Sanity: both budgets produce additive, finite attributions.
    for (const double v : a.attributions) EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(full.attributions.size(), a.attributions.size());
}

// ------------------------------------------------------------ degradation ---

TEST(DegradationPolicy, DisabledByDefault) {
    serve::DegradationPolicy policy;
    EXPECT_FALSE(policy.enabled());
    EXPECT_EQ(policy.classify({1000, 1e9}), serve::DegradeLevel::full);
}

TEST(DegradationPolicy, ClassifiesByQueueDepth) {
    serve::DegradationConfig cfg;
    cfg.reduced_queue_depth = 4;
    cfg.baseline_queue_depth = 8;
    serve::DegradationPolicy policy(cfg);
    EXPECT_TRUE(policy.enabled());
    EXPECT_EQ(policy.classify({0, 0.0}), serve::DegradeLevel::full);
    EXPECT_EQ(policy.classify({3, 0.0}), serve::DegradeLevel::full);
    EXPECT_EQ(policy.classify({4, 0.0}), serve::DegradeLevel::reduced);
    EXPECT_EQ(policy.classify({7, 0.0}), serve::DegradeLevel::reduced);
    EXPECT_EQ(policy.classify({8, 0.0}), serve::DegradeLevel::baseline);
    EXPECT_EQ(policy.classify({100, 0.0}), serve::DegradeLevel::baseline);
}

TEST(DegradationPolicy, ClassifiesByServiceP99) {
    serve::DegradationConfig cfg;
    cfg.reduced_p99_us = 1000.0;
    cfg.baseline_p99_us = 10000.0;
    serve::DegradationPolicy policy(cfg);
    EXPECT_EQ(policy.classify({0, 999.0}), serve::DegradeLevel::full);
    EXPECT_EQ(policy.classify({0, 1000.0}), serve::DegradeLevel::reduced);
    EXPECT_EQ(policy.classify({0, 10000.0}), serve::DegradeLevel::baseline);
}

TEST(DegradationPolicy, MostDegradedRungWins) {
    serve::DegradationConfig cfg;
    cfg.reduced_queue_depth = 4;
    cfg.baseline_p99_us = 5000.0;
    serve::DegradationPolicy policy(cfg);
    // Depth says reduced, p99 says baseline -> baseline.
    EXPECT_EQ(policy.classify({6, 9000.0}), serve::DegradeLevel::baseline);
}

TEST(DegradationPolicy, OrdersInvertedThresholds) {
    serve::DegradationConfig cfg;
    cfg.reduced_queue_depth = 10;
    cfg.baseline_queue_depth = 2;  // below reduced: would shadow it
    serve::DegradationPolicy policy(cfg);
    EXPECT_EQ(policy.config().baseline_queue_depth, 10u);
    EXPECT_EQ(policy.classify({5, 0.0}), serve::DegradeLevel::full);
}

TEST(ExplanationService, DegradesUnderQueueDepthAndNeverCachesDegraded) {
    auto gate = std::make_shared<Gate>();
    std::atomic<int> calls{0};
    auto model = std::make_shared<ml::LambdaModel>(3, [gate, &calls](std::span<const double> x) {
        if (calls.fetch_add(1) == 0) gate->wait();  // block only the first batch
        return x[0] + x[1] + x[2];
    });

    serve::ServiceConfig cfg;
    cfg.method = "sampling";
    cfg.seed = 5;
    cfg.max_batch = 1;  // the first request becomes its own stuck batch
    cfg.max_wait = microseconds(0);
    cfg.threads = 1;
    cfg.degradation.reduced_queue_depth = 2;
    cfg.degradation.baseline_queue_depth = 4;
    serve::ExplanationService service(model, tiny_background(), cfg);

    // Block the dispatcher inside request 0's batch.
    auto blocker = service.submit(request_for(0, {9.0, 9.0, 9.0}));
    ASSERT_EQ(blocker.rejected, serve::ServeError::none);
    while (service.stats().queue_depth != 0)
        std::this_thread::sleep_for(milliseconds(1));

    // Queue five more: admission depths 1..5 -> full, reduced, reduced,
    // baseline, baseline.
    std::vector<std::future<serve::ExplainResponse>> futures;
    for (std::uint64_t id = 1; id <= 5; ++id) {
        auto sub = service.submit(
            request_for(id, {static_cast<double>(id), 2.0, 3.0}));
        ASSERT_EQ(sub.rejected, serve::ServeError::none);
        futures.push_back(std::move(sub.response));
    }
    gate->release();

    std::vector<serve::ExplainResponse> responses;
    for (auto& f : futures) responses.push_back(f.get());
    for (const auto& r : responses) ASSERT_TRUE(r.ok);

    EXPECT_FALSE(responses[0].degraded);  // depth 1 < reduced threshold
    EXPECT_TRUE(responses[1].degraded);   // depth 2
    EXPECT_TRUE(responses[2].degraded);   // depth 3
    EXPECT_TRUE(responses[3].degraded);   // depth 4 -> baseline
    EXPECT_TRUE(responses[4].degraded);   // depth 5 -> baseline

    // reduced keeps the requested method at a smaller budget; baseline falls
    // back to occlusion.  Both carry the effective budget.
    EXPECT_EQ(responses[1].explanation.method, "sampling_shapley");
    EXPECT_EQ(responses[1].budget_used, 50u);  // 200 * 0.25
    EXPECT_EQ(responses[3].explanation.method, "occlusion");
    EXPECT_EQ(responses[3].budget_used, 3u);
    EXPECT_EQ(service.stats().requests_degraded, 4u);

    // Degraded results must not be pinned into the cache: repeating request 2
    // (served reduced) under no load recomputes at full fidelity.
    const auto repeat = service.explain_sync(request_for(10, {2.0, 2.0, 3.0}));
    ASSERT_TRUE(repeat.ok);
    EXPECT_FALSE(repeat.cache_hit);
    EXPECT_FALSE(repeat.degraded);
}

// -------------------------------------------------------------- deadlines ---

TEST(ExplanationService, ZeroDeadlineIsRejectedAtSubmit) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    auto req = request_for(1, {1.0, 2.0, 3.0});
    req.deadline_ms = 0;
    auto sub = service.submit(std::move(req));
    EXPECT_EQ(sub.rejected, serve::ServeError::deadline_exceeded);

    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_rejected, 1u);
    EXPECT_EQ(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::deadline_exceeded)],
              1u);
    // No silent full computation happened.
    EXPECT_EQ(stats.requests_completed, 0u);
    EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(ExplanationService, ExpiredDeadlineAnsweredWithoutComputing) {
    auto gate = std::make_shared<Gate>();
    std::atomic<int> calls{0};
    auto model = std::make_shared<ml::LambdaModel>(3, [gate, &calls](std::span<const double> x) {
        if (calls.fetch_add(1) == 0) gate->wait();
        return x[0];
    });

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 1;
    cfg.max_wait = microseconds(0);
    cfg.threads = 1;
    serve::ExplanationService service(model, tiny_background(), cfg);

    // Hold the dispatcher inside the first batch.
    auto blocker = service.submit(request_for(1, {1.0, 2.0, 3.0}));
    ASSERT_EQ(blocker.rejected, serve::ServeError::none);
    while (service.stats().queue_depth != 0)
        std::this_thread::sleep_for(milliseconds(1));

    // This request's 5 ms deadline expires while it waits behind the gate.
    auto doomed = request_for(2, {4.0, 5.0, 6.0});
    doomed.deadline_ms = 5;
    auto sub = service.submit(std::move(doomed));
    ASSERT_EQ(sub.rejected, serve::ServeError::none);
    std::this_thread::sleep_for(milliseconds(20));
    gate->release();

    EXPECT_TRUE(blocker.response.get().ok);
    const auto r = sub.response.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, serve::ServeError::deadline_exceeded);
    const auto stats = service.stats();
    EXPECT_EQ(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::deadline_exceeded)],
              1u);
    // The expired request never probed the cache or computed.
    EXPECT_EQ(stats.cache_misses, 1u);  // only the blocker
}

TEST(ExplanationService, GenerousDeadlineStillServes) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);
    auto req = request_for(1, {1.0, 2.0, 3.0});
    req.deadline_ms = 60000;
    const auto r = service.explain_sync(std::move(req));
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.degraded);
}

// --------------------------------------------------------- input hardening ---

TEST(ExplanationService, RejectsNonFiniteFeatures) {
    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    auto nan_req = request_for(1, {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0});
    EXPECT_EQ(service.submit(std::move(nan_req)).rejected, serve::ServeError::bad_features);
    auto inf_req = request_for(2, {std::numeric_limits<double>::infinity(), 2.0, 3.0});
    EXPECT_EQ(service.submit(std::move(inf_req)).rejected, serve::ServeError::bad_features);

    const auto stats = service.stats();
    EXPECT_EQ(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::bad_features)],
              2u);
}

TEST(NdjsonHardening, ExtractFeaturesValidates) {
    const auto parse = [](const std::string& s) { return serve::parse_json(s); };

    auto good = serve::extract_features(parse(R"({"features":[1,2,3]})"), 3);
    EXPECT_EQ(good.error, serve::ServeError::none);
    EXPECT_EQ(good.features, (std::vector<double>{1.0, 2.0, 3.0}));

    auto missing = serve::extract_features(parse(R"({"row":3})"), 3);
    EXPECT_EQ(missing.error, serve::ServeError::bad_request);

    auto not_array = serve::extract_features(parse(R"({"features":"abc"})"), 3);
    EXPECT_EQ(not_array.error, serve::ServeError::bad_request);

    auto wrong_dim = serve::extract_features(parse(R"({"features":[1,2]})"), 3);
    EXPECT_EQ(wrong_dim.error, serve::ServeError::bad_request);
    EXPECT_NE(wrong_dim.message.find("2"), std::string::npos);

    auto non_number = serve::extract_features(parse(R"({"features":[1,"x",3]})"), 3);
    EXPECT_EQ(non_number.error, serve::ServeError::bad_request);

    // strtod parses 1e999 to +Inf — a non-finite value reachable from the
    // wire without writing "Infinity".
    auto inf = serve::extract_features(parse(R"({"features":[1,1e999,3]})"), 3);
    EXPECT_EQ(inf.error, serve::ServeError::bad_features);
    EXPECT_TRUE(inf.features.empty());
}

// ---------------------------------------------------------- fault injector ---

TEST(FaultInjector, DefaultInjectsNothing) {
    serve::FaultInjector injector;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(injector.should_fire(serve::FaultPoint::predict_throw));
    EXPECT_EQ(injector.total_fired(), 0u);
    EXPECT_EQ(injector.polls(serve::FaultPoint::predict_throw), 100u);
    EXPECT_FALSE(serve::fault_fires(nullptr, serve::FaultPoint::predict_throw));
}

TEST(FaultInjector, ScheduleIsDeterministicPerSeed) {
    serve::FaultInjector::Config cfg;
    cfg.seed = 42;
    cfg.rate[fp(serve::FaultPoint::predict_throw)] = 0.2;

    const auto pattern_of = [&cfg] {
        serve::FaultInjector injector(cfg);
        std::vector<bool> pattern;
        for (int i = 0; i < 500; ++i)
            pattern.push_back(injector.should_fire(serve::FaultPoint::predict_throw));
        return pattern;
    };
    const auto a = pattern_of();
    const auto b = pattern_of();
    EXPECT_EQ(a, b);  // same seed -> identical schedule
    const std::size_t fired = static_cast<std::size_t>(
        std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 50u);   // ~100 expected at rate 0.2
    EXPECT_LT(fired, 200u);

    cfg.seed = 43;
    serve::FaultInjector other(cfg);
    std::vector<bool> c;
    for (int i = 0; i < 500; ++i)
        c.push_back(other.should_fire(serve::FaultPoint::predict_throw));
    EXPECT_NE(a, c);  // different seed -> different schedule
}

TEST(FaultInjector, MaxFiresCapsTheFaultCount) {
    serve::FaultInjector::Config cfg;
    cfg.seed = 1;
    cfg.rate[fp(serve::FaultPoint::worker_death)] = 1.0;
    cfg.max_fires[fp(serve::FaultPoint::worker_death)] = 2;
    serve::FaultInjector injector(cfg);
    int fired = 0;
    for (int i = 0; i < 50; ++i)
        if (injector.should_fire(serve::FaultPoint::worker_death)) ++fired;
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(injector.fired(serve::FaultPoint::worker_death), 2u);
}

TEST(FaultInjector, InjectingModelThrowsOnSchedule) {
    serve::FaultInjector::Config cfg;
    cfg.seed = 9;
    cfg.rate[fp(serve::FaultPoint::predict_throw)] = 1.0;
    cfg.max_fires[fp(serve::FaultPoint::predict_throw)] = 1;
    auto injector = std::make_shared<serve::FaultInjector>(cfg);
    serve::FaultInjectingModel model(sum_model(), injector);

    const std::vector<double> x = {1.0, 2.0, 3.0};
    EXPECT_THROW((void)model.predict(x), serve::InjectedFault);
    EXPECT_EQ(model.predict(x), 0.25 * 1.0 + 0.5 * 2.0 - 3.0);  // cap reached
    EXPECT_EQ(model.num_features(), 3u);
}

TEST(ExplanationService, PredictFaultBecomesErrorResponseNotCrash) {
    serve::FaultInjector::Config fi;
    fi.seed = 3;
    fi.rate[fp(serve::FaultPoint::predict_throw)] = 1.0;
    fi.max_fires[fp(serve::FaultPoint::predict_throw)] = 1;

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.fault_injector = std::make_shared<serve::FaultInjector>(fi);
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    const auto faulted = service.explain_sync(request_for(1, {1.0, 2.0, 3.0}));
    EXPECT_FALSE(faulted.ok);
    EXPECT_EQ(faulted.error_code, serve::ServeError::fault_injected);

    // The cap is spent; the same request now succeeds (and was not poisoned
    // by a cached error).
    const auto healthy = service.explain_sync(request_for(2, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(healthy.ok);
    EXPECT_FALSE(healthy.cache_hit);

    const auto stats = service.stats();
    EXPECT_EQ(stats.faults_injected, 1u);
    EXPECT_EQ(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::fault_injected)],
              1u);
}

// ------------------------------------------------------ watchdog / respawn ---

TEST(ExplanationService, WatchdogRespawnsDeadDispatcher) {
    serve::FaultInjector::Config fi;
    fi.seed = 11;
    fi.rate[fp(serve::FaultPoint::worker_death)] = 1.0;
    fi.max_fires[fp(serve::FaultPoint::worker_death)] = 1;

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.watchdog_interval = milliseconds(5);
    cfg.fault_injector = std::make_shared<serve::FaultInjector>(fi);
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);

    // The dispatcher dies on its first loop iteration; the watchdog must
    // respawn it, after which requests are served normally.
    const auto r = service.explain_sync(request_for(1, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(r.ok);

    const auto stats = service.stats();
    EXPECT_EQ(stats.worker_respawns, 1u);
    EXPECT_EQ(stats.faults_injected, 1u);
    EXPECT_EQ(stats.requests_completed, 1u);
}

TEST(ExplanationService, QueueStallFaultDelaysButServes) {
    serve::FaultInjector::Config fi;
    fi.seed = 2;
    fi.rate[fp(serve::FaultPoint::queue_stall)] = 1.0;
    fi.max_fires[fp(serve::FaultPoint::queue_stall)] = 3;

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.fault_stall = milliseconds(2);
    cfg.fault_injector = std::make_shared<serve::FaultInjector>(fi);
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);
    EXPECT_TRUE(service.explain_sync(request_for(1, {1.0, 2.0, 3.0})).ok);
}

// -------------------------------------------------- queue shutdown races ---

TEST(RequestQueueShutdownRace, ConcurrentPushersSurviveClose) {
    for (int round = 0; round < 20; ++round) {
        serve::RequestQueue queue(64);
        constexpr int kPushers = 4;
        constexpr int kPerThread = 50;
        std::atomic<int> accepted{0};
        std::atomic<int> stopped{0};
        std::atomic<int> full{0};
        std::vector<std::thread> pushers;
        pushers.reserve(kPushers);
        for (int t = 0; t < kPushers; ++t) {
            pushers.emplace_back([&queue, &accepted, &stopped, &full, t] {
                for (int i = 0; i < kPerThread; ++i) {
                    serve::Job job;
                    job.request.id = static_cast<std::uint64_t>(t * 1000 + i);
                    job.enqueued_at = Clock::now();
                    const auto err = queue.try_push(std::move(job));
                    if (err == serve::ServeError::none) accepted.fetch_add(1);
                    else if (err == serve::ServeError::service_stopped)
                        stopped.fetch_add(1);
                    else if (err == serve::ServeError::queue_full)
                        full.fetch_add(1);
                }
            });
        }
        std::thread popper([&queue] {
            while (true) {
                auto job = queue.pop_wait(Clock::now() + milliseconds(1));
                if (!job.has_value() && queue.closed()) return;
            }
        });
        std::this_thread::sleep_for(microseconds(200 * (round % 5)));
        queue.close();
        for (auto& t : pushers) t.join();
        popper.join();
        // Every push got a definitive answer, and nothing deadlocked.
        EXPECT_EQ(accepted.load() + stopped.load() + full.load(),
                  kPushers * kPerThread);
    }
}

TEST(RequestQueueShutdownRace, ServiceStopRacesWithSubmitters) {
    for (int round = 0; round < 5; ++round) {
        serve::ServiceConfig cfg;
        cfg.method = "occlusion";
        cfg.max_batch = 4;
        auto service = std::make_unique<serve::ExplanationService>(
            sum_model(), tiny_background(), cfg);

        std::atomic<bool> go{false};
        std::vector<std::thread> submitters;
        std::mutex futures_mutex;
        std::vector<std::future<serve::ExplainResponse>> futures;
        for (int t = 0; t < 3; ++t) {
            submitters.emplace_back([&service, &go, &futures, &futures_mutex, t] {
                while (!go.load()) std::this_thread::yield();
                for (std::uint64_t i = 0; i < 20; ++i) {
                    auto sub = service->submit(request_for(
                        static_cast<std::uint64_t>(t) * 100 + i,
                        {static_cast<double>(i), 1.0, 2.0}));
                    if (sub.rejected == serve::ServeError::none) {
                        std::lock_guard lock(futures_mutex);
                        futures.push_back(std::move(sub.response));
                    }
                }
            });
        }
        go.store(true);
        std::this_thread::sleep_for(microseconds(100 * round));
        service->stop();
        for (auto& t : submitters) t.join();
        // Every accepted request still gets its promise fulfilled.
        for (auto& f : futures) EXPECT_TRUE(f.get().ok);
    }
}

// ------------------------------------------------------- chaos acceptance ---

TEST(ChaosAcceptance, ThousandRequestsUnderFaultsMatchFaultFreeRun) {
    const auto bg = tiny_background();
    const auto model = sum_model();
    constexpr std::size_t kRequests = 1000;
    constexpr std::size_t kDistinct = 50;

    const auto features_for = [](std::size_t i) {
        const auto k = static_cast<double>(i % kDistinct);
        return std::vector<double>{k, 2.0 * k - 10.0, 0.5 * k};
    };

    // Reference run: no faults.
    std::map<std::uint64_t, std::vector<double>> reference;
    {
        serve::ServiceConfig cfg;
        cfg.method = "occlusion";
        cfg.max_batch = 8;
        serve::ExplanationService service(model, bg, cfg);
        for (std::size_t i = 0; i < kRequests; ++i) {
            const auto r = service.explain_sync(request_for(i, features_for(i)));
            ASSERT_TRUE(r.ok);
            reference[i] = r.explanation.attributions;
        }
    }

    // Chaos run: ~1% of predict calls throw, and one worker is killed.
    serve::FaultInjector::Config fi;
    fi.seed = 2024;
    fi.rate[fp(serve::FaultPoint::predict_throw)] = 0.01;
    fi.rate[fp(serve::FaultPoint::worker_death)] = 1.0;
    fi.max_fires[fp(serve::FaultPoint::worker_death)] = 1;

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.max_batch = 8;
    cfg.watchdog_interval = milliseconds(5);
    cfg.fault_injector = std::make_shared<serve::FaultInjector>(fi);
    serve::ExplanationService service(model, bg, cfg);

    std::vector<std::future<serve::ExplainResponse>> futures;
    futures.reserve(kRequests);
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
        auto sub = service.submit(request_for(i, features_for(i)));
        ASSERT_EQ(sub.rejected, serve::ServeError::none);  // queue never fills here
        futures.push_back(std::move(sub.response));
        ++accepted;
        if (futures.size() >= 64) {
            // Bounded client window, mirroring the CLI loop.
            for (auto& f : futures) {
                const auto r = f.get();
                if (r.ok) {
                    ASSERT_EQ(r.explanation.attributions, reference.at(r.id))
                        << "non-faulted response diverged from fault-free run";
                } else {
                    EXPECT_EQ(r.error_code, serve::ServeError::fault_injected);
                }
            }
            futures.clear();
        }
    }
    for (auto& f : futures) {
        const auto r = f.get();
        if (r.ok) {
            ASSERT_EQ(r.explanation.attributions, reference.at(r.id));
        } else {
            EXPECT_EQ(r.error_code, serve::ServeError::fault_injected);
        }
    }
    service.stop();

    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_accepted, accepted);
    EXPECT_EQ(stats.requests_completed, accepted);  // every future resolved
    EXPECT_EQ(stats.worker_respawns, 1u);
    EXPECT_GE(stats.faults_injected, 2u);  // the worker death + >=1 predict throw
    const auto faulted = stats.errors_by_reason[static_cast<std::size_t>(
        serve::ServeError::fault_injected)];
    EXPECT_GE(faulted, 1u);
    EXPECT_EQ(stats.requests_completed,
              stats.cache_hits + stats.cache_misses);
}
