#include "core/surrogate.hpp"

#include <gtest/gtest.h>

#include "mlcore/forest.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

namespace {

const std::vector<std::string> kNames{"f0", "f1"};

}  // namespace

TEST(Surrogate, PerfectFidelityOnTreeShapedTeacher) {
    // Teacher is itself an axis-aligned step function: a depth-2 surrogate
    // can match it exactly.
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(400, 2, rng));
    const ml::LambdaModel teacher(2, [](std::span<const double> x) {
        return (x[0] > 0.0 ? 4.0 : 0.0) + (x[1] > 0.0 ? 1.0 : 0.0);
    });
    const auto result = xai::fit_surrogate(teacher, background, kNames, rng,
                                           xai::SurrogateOptions{.max_depth = 3,
                                                                 .min_samples_leaf = 2});
    EXPECT_GT(result.fidelity_r2, 0.99);
    EXPECT_GT(result.train_fidelity_r2, 0.99);
}

TEST(Surrogate, DepthImprovesFidelity) {
    // A2's shape: deeper surrogates are more faithful to a smooth teacher.
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(600, 2, rng));
    const ml::LambdaModel teacher(2, [](std::span<const double> x) {
        return 3.0 * x[0] - 2.0 * x[1];
    });
    ml::Rng r1(7), r2(7);
    const auto shallow = xai::fit_surrogate(teacher, background, kNames, r1,
                                            xai::SurrogateOptions{.max_depth = 1});
    const auto deep = xai::fit_surrogate(teacher, background, kNames, r2,
                                         xai::SurrogateOptions{.max_depth = 6,
                                                               .min_samples_leaf = 4});
    EXPECT_GT(deep.fidelity_r2, shallow.fidelity_r2);
}

TEST(Surrogate, TextRenderingUsesFeatureNames) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(300, 2, rng));
    const ml::LambdaModel teacher(2, [](std::span<const double> x) {
        return x[0] > 0.2 ? 1.0 : 0.0;
    });
    const auto result = xai::fit_surrogate(teacher, background, kNames, rng);
    EXPECT_NE(result.text.find("f0"), std::string::npos);
}

TEST(Surrogate, DistillsBlackBoxForest) {
    ml::Rng rng(4);
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 800; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        data.add(std::vector<double>{a, b}, a > 0 ? 5.0 + b : -5.0);
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 40});
    forest.fit(data, rng);
    const xai::BackgroundData background(data.x, 512);
    const auto result = xai::fit_surrogate(forest, background, kNames, rng,
                                           xai::SurrogateOptions{.max_depth = 4,
                                                                 .min_samples_leaf = 5});
    // The dominant structure (split on f0) is easy; fidelity should be high.
    EXPECT_GT(result.fidelity_r2, 0.9);
    // And the surrogate's own prediction must follow the teacher's step.
    EXPECT_GT(result.tree.predict(std::vector<double>{0.5, 0.0}),
              result.tree.predict(std::vector<double>{-0.5, 0.0}));
}

TEST(Surrogate, RejectsTinyBackground) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(5, 2, rng));
    const ml::LambdaModel teacher(2, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)xai::fit_surrogate(teacher, background, kNames, rng),
                 std::invalid_argument);
}

// A2 sweep: monotone fidelity in depth for a nonlinear teacher.
class SurrogateDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(SurrogateDepthSweep, FidelityNonTrivialAtEveryDepth) {
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(500, 2, rng));
    const ml::LambdaModel teacher(2, [](std::span<const double> x) {
        return x[0] * x[0] + 0.5 * x[1];
    });
    const auto result = xai::fit_surrogate(
        teacher, background, kNames, rng,
        xai::SurrogateOptions{.max_depth = GetParam(), .min_samples_leaf = 4});
    EXPECT_GT(result.fidelity_r2, 0.2);
    EXPECT_LE(result.tree.depth(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Depths, SurrogateDepthSweep, ::testing::Values(1, 2, 3, 5));
