#include "core/occlusion.hpp"

#include <gtest/gtest.h>

#include "core/exact_shapley.hpp"
#include "mlcore/forest.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;
using xnfv::testutil::max_abs_diff;

TEST(Occlusion, EqualsShapleyForAdditiveModels) {
    // Without interactions, occlusion and Shapley coincide.
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return 2.0 * x[0] - x[1] + 0.5 * x[2];
    });
    const std::vector<double> x{0.5, -0.5, 0.9};
    xai::Occlusion occ(background);
    xai::ExactShapley exact(background);
    const auto eo = occ.explain(model, x);
    const auto es = exact.explain(model, x);
    EXPECT_LT(max_abs_diff(eo.attributions, es.attributions), 1e-9);
}

TEST(Occlusion, DiffersFromShapleyUnderInteractions) {
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) { return x[0] * x[1]; });
    const std::vector<double> x{1.0, 1.0};
    xai::Occlusion occ(background);
    xai::ExactShapley exact(background);
    const auto eo = occ.explain(model, x);
    const auto es = exact.explain(model, x);
    // Both nonzero, but occlusion double counts the interaction.
    EXPECT_GT(max_abs_diff(eo.attributions, es.attributions), 1e-3);
}

TEST(Occlusion, ZeroForUnusedFeature) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(32, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) { return x[0] + x[1]; });
    xai::Occlusion occ(background);
    const auto e = occ.explain(model, std::vector<double>{0.4, 0.2, 0.7});
    EXPECT_NEAR(e.attributions[2], 0.0, 1e-12);
}

TEST(Occlusion, RejectsMisuse) {
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    xai::Occlusion empty{xai::BackgroundData{}};
    EXPECT_THROW((void)empty.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
    ml::Rng rng(4);
    xai::Occlusion ok{xai::BackgroundData(make_uniform_background(8, 2, rng))};
    EXPECT_THROW((void)ok.explain(model, std::vector<double>{0}), std::invalid_argument);
}

TEST(PermutationImportance, InformativeFeatureDominates) {
    ml::Rng rng(5);
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 800; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        data.add(std::vector<double>{a, b}, 10.0 * a);
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 30});
    forest.fit(data, rng);
    const auto result = xai::permutation_importance(forest, data, rng);
    EXPECT_GT(result.importance[0], 10.0 * std::max(result.importance[1], 1e-9));
    EXPECT_GE(result.baseline_error, 0.0);
}

TEST(PermutationImportance, ClassificationUsesAucError) {
    ml::Rng rng(6);
    const auto data = xnfv::testutil::make_logistic_dataset(
        std::vector<double>{4.0, 0.0}, 0.0, 800, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 20});
    forest.fit(data, rng);
    const auto result = xai::permutation_importance(forest, data, rng);
    EXPECT_LT(result.baseline_error, 0.3);  // 1 - AUC small for a good model
    EXPECT_GT(result.importance[0], result.importance[1]);
}

TEST(PermutationImportance, LeavesDataUnchanged) {
    ml::Rng rng(7);
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 100; ++i) {
        const double a = rng.uniform(-1, 1);
        data.add(std::vector<double>{a}, a);
    }
    const auto copy = data.x;
    const ml::LambdaModel model(1, [](std::span<const double> x) { return x[0]; });
    (void)xai::permutation_importance(model, data, rng);
    for (std::size_t r = 0; r < data.size(); ++r)
        EXPECT_DOUBLE_EQ(data.x(r, 0), copy(r, 0));
}

TEST(PermutationImportance, RejectsMisuse) {
    ml::Rng rng(8);
    const ml::LambdaModel model(1, [](std::span<const double> x) { return x[0]; });
    EXPECT_THROW((void)xai::permutation_importance(model, ml::Dataset{}, rng),
                 std::invalid_argument);
    ml::Dataset d;
    d.add(std::vector<double>{1.0}, 1.0);
    EXPECT_THROW((void)xai::permutation_importance(model, d, rng, 0),
                 std::invalid_argument);
}
