#include "core/counterfactual.hpp"

#include <gtest/gtest.h>

#include "mlcore/linear.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

namespace {

/// Probability model: sigmoid(4 x0 + 2 x1).  Threshold 0.5 at 4x0+2x1 = 0.
ml::LambdaModel logistic_model() {
    return ml::LambdaModel(2, [](std::span<const double> x) {
        return ml::sigmoid(4.0 * x[0] + 2.0 * x[1]);
    });
}

}  // namespace

TEST(Counterfactual, FlipsPositivePrediction) {
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const std::vector<double> x{0.6, 0.4};  // prediction well above 0.5
    ASSERT_GT(model.predict(x), 0.5);
    const auto cf = xai::find_counterfactual(model, x, background, rng);
    ASSERT_TRUE(cf.has_value());
    EXPECT_LE(cf->prediction, 0.5);
    EXPECT_FALSE(cf->changed.empty());
}

TEST(Counterfactual, TargetAboveWorksToo) {
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const std::vector<double> x{-0.6, -0.4};
    ASSERT_LT(model.predict(x), 0.5);
    xai::CounterfactualOptions opt;
    opt.target_below = false;
    const auto cf = xai::find_counterfactual(model, x, background, rng, opt);
    ASSERT_TRUE(cf.has_value());
    EXPECT_GE(cf->prediction, 0.5);
}

TEST(Counterfactual, SingleFeatureSufficesWhenDominant) {
    // x0 has twice the slope: one change to x0 should be enough and the
    // minimizer should prefer it.
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const std::vector<double> x{0.4, 0.1};
    const auto cf = xai::find_counterfactual(model, x, background, rng);
    ASSERT_TRUE(cf.has_value());
    EXPECT_EQ(cf->changed.size(), 1u);
}

TEST(Counterfactual, RespectsActionabilityMask) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const std::vector<double> x{0.3, 0.3};
    xai::CounterfactualOptions opt;
    opt.actionable = {false, true};  // only x1 may change
    const auto cf = xai::find_counterfactual(model, x, background, rng, opt);
    ASSERT_TRUE(cf.has_value());
    for (std::size_t j : cf->changed) EXPECT_EQ(j, 1u);
    EXPECT_DOUBLE_EQ(cf->point[0], x[0]);
}

TEST(Counterfactual, StaysWithinBackgroundRanges) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const std::vector<double> x{0.9, 0.9};
    const auto cf = xai::find_counterfactual(model, x, background, rng);
    ASSERT_TRUE(cf.has_value());
    for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_GE(cf->point[j], -1.01);
        EXPECT_LE(cf->point[j], 1.01);
    }
}

TEST(Counterfactual, ReturnsNulloptWhenImpossible) {
    // Constant model can never flip.
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.9; });
    const auto cf = xai::find_counterfactual(model, std::vector<double>{0.0, 0.0},
                                             background, rng);
    EXPECT_FALSE(cf.has_value());
}

TEST(Counterfactual, ImpossibleUnderRestrictiveMask) {
    ml::Rng rng(7);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    // Only x1 actionable, but the prediction needs a large swing only x0
    // could provide: sigmoid(4*0.9 + 0.2*x1) stays > 0.5 for x1 in [-1,1].
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return ml::sigmoid(4.0 * x[0] + 0.2 * x[1]);
    });
    xai::CounterfactualOptions opt;
    opt.actionable = {false, true};
    const auto cf = xai::find_counterfactual(model, std::vector<double>{0.9, 0.0},
                                             background, rng, opt);
    EXPECT_FALSE(cf.has_value());
}

TEST(Counterfactual, L1DistanceIsPositiveAndStandardized) {
    ml::Rng rng(8);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const auto cf = xai::find_counterfactual(model, std::vector<double>{0.5, 0.2},
                                             background, rng);
    ASSERT_TRUE(cf.has_value());
    EXPECT_GT(cf->l1_distance, 0.0);
}

TEST(Counterfactual, RedundantChangesPruned) {
    // With max_changed_features = 2 the greedy pass may move both features,
    // but one suffices; the pruning pass must reduce to one.
    ml::Rng rng(9);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return ml::sigmoid(5.0 * x[0] + 5.0 * x[1]);
    });
    const auto cf = xai::find_counterfactual(model, std::vector<double>{0.3, 0.3},
                                             background, rng);
    ASSERT_TRUE(cf.has_value());
    EXPECT_LE(cf->changed.size(), 2u);
}

TEST(Counterfactual, RejectsMisuse) {
    ml::Rng rng(10);
    const auto model = logistic_model();
    EXPECT_THROW((void)xai::find_counterfactual(model, std::vector<double>{0, 0},
                                                xai::BackgroundData{}, rng),
                 std::invalid_argument);
    const xai::BackgroundData background(make_uniform_background(16, 2, rng));
    EXPECT_THROW(
        (void)xai::find_counterfactual(model, std::vector<double>{0}, background, rng),
        std::invalid_argument);
    xai::CounterfactualOptions opt;
    opt.actionable = {true};  // wrong size
    EXPECT_THROW((void)xai::find_counterfactual(model, std::vector<double>{0, 0},
                                                background, rng, opt),
                 std::invalid_argument);
}

// Sweep: flips succeed from a range of starting margins.
class CounterfactualMarginSweep : public ::testing::TestWithParam<double> {};

TEST_P(CounterfactualMarginSweep, FlipsAcrossStartingPoints) {
    ml::Rng rng(11);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const auto model = logistic_model();
    const std::vector<double> x{GetParam(), GetParam() / 2.0};
    if (model.predict(x) <= 0.52) GTEST_SKIP() << "not a violating instance";
    const auto cf = xai::find_counterfactual(model, x, background, rng);
    ASSERT_TRUE(cf.has_value());
    EXPECT_LE(cf->prediction, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Margins, CounterfactualMarginSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.95));
