// Multi-model registry tests (serve/registry.hpp): fingerprinting, load /
// swap / retire semantics, per-model cache isolation, the atomic hot-swap
// contract under live load, per-model snapshot persistence, and the shared
// admin ND-JSON handler.
//
// The two central claims, straight from DESIGN.md section 14:
//
//   * Single-model equivalence — a registry-backed service with one model
//     answers byte-identically to the one-shot explainer path for every
//     request, model field present or absent.
//   * Atomic hot swap — every response produced while swaps land under live
//     load is byte-identical to what a fresh single-model service built on
//     either the old or the new model would produce; no request is dropped,
//     errored, or served by a half-installed model.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "mlcore/serialize.hpp"
#include "mlcore/tree.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/sharded_server.hpp"
#include "serve/ndjson.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

constexpr std::uint64_t kSeed = 11;

struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest_a;  ///< "old" version
    std::shared_ptr<ml::RandomForest> forest_b;  ///< "new" version (retrain)
    std::shared_ptr<ml::DecisionTree> tree;      ///< a second tenant
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 220;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest_a = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 6});
        out.forest_a->fit(out.data, rng);
        ml::Rng rng_b(4242);  // different bootstrap -> different trees
        out.forest_b = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 6});
        out.forest_b->fit(out.data, rng_b);
        out.tree = std::make_shared<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 5});
        out.tree->fit(out.data);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

serve::ExplainRequest row_request(std::uint64_t id, std::size_t row,
                                  const std::string& model = "") {
    const auto& s = scenario();
    serve::ExplainRequest er;
    er.id = id;
    const auto x = s.data.x.row(row % s.data.size());
    er.features.assign(x.begin(), x.end());
    er.method = "tree_shap";
    er.model = model;
    er.seed = kSeed;
    return er;
}

serve::ServiceConfig base_config() {
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = kSeed;
    cfg.queue_depth = 256;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(50);
    return cfg;
}

/// Response bytes a fresh single-model service produces for `row` — the
/// equivalence oracle (and, transitively, the one-shot CLI path: see
/// ServedLineMatchesOneShotExplainer in test_net_sharded.cpp).
std::string solo_answer(const std::shared_ptr<const ml::Model>& model,
                        std::size_t row) {
    serve::ExplanationService service(model, scenario().background, base_config());
    auto r = service.explain_sync(row_request(1, row));
    r.cache_hit = false;  // normalize: oracle services are always cold
    service.stop();
    return serve::render_response(r);
}

}  // namespace

// ---------------------------------------------------------- fingerprints ---

TEST(ModelFingerprint, IdenticalModelsShareItDistinctModelsDiffer) {
    const auto& s = scenario();
    // Deterministic: the same model fingerprints the same twice.
    EXPECT_EQ(serve::fingerprint_model(*s.forest_a),
              serve::fingerprint_model(*s.forest_a));
    // A retrain and a different architecture both change it.
    EXPECT_NE(serve::fingerprint_model(*s.forest_a),
              serve::fingerprint_model(*s.forest_b));
    EXPECT_NE(serve::fingerprint_model(*s.forest_a),
              serve::fingerprint_model(*s.tree));
    // Hex rendering is 16 lower-case digits (snapshot filenames).
    const auto hex = serve::fingerprint_hex(serve::fingerprint_model(*s.forest_a));
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// ------------------------------------------------------ load/swap/retire ---

TEST(ModelRegistry, LoadSwapRetireSemantics) {
    const auto& s = scenario();
    serve::ModelRegistry reg({}, &s.background);
    std::string why;

    // First load becomes the default.
    ASSERT_EQ(reg.load("prod", s.forest_a, 1, 0, &why), serve::ServeError::none);
    EXPECT_EQ(reg.default_name(), "prod");
    EXPECT_EQ(reg.size(), 1u);

    // Duplicate name, empty name, null model, arity mismatch all reject.
    EXPECT_EQ(reg.load("prod", s.forest_b, 1, 0, &why),
              serve::ServeError::bad_request);
    EXPECT_EQ(reg.load("", s.forest_b, 1, 0, &why), serve::ServeError::bad_request);
    EXPECT_EQ(reg.load("null", nullptr, 1, 0, &why),
              serve::ServeError::bad_request);
    // Swap of an unknown name is unknown_model; retire of the default is
    // refused; retire of a secondary tenant works and resolve() then fails.
    EXPECT_EQ(reg.swap("ghost", s.forest_b, &why), serve::ServeError::unknown_model);
    ASSERT_EQ(reg.load("canary", s.tree, 2, 8, &why), serve::ServeError::none);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_NE(reg.resolve("canary"), nullptr);
    EXPECT_EQ(reg.retire("prod", &why), serve::ServeError::bad_request);
    EXPECT_EQ(reg.retire("canary", &why), serve::ServeError::none);
    EXPECT_EQ(reg.resolve("canary"), nullptr);
    EXPECT_EQ(reg.retire("canary", &why), serve::ServeError::unknown_model);
    // Class ids are never reused after a retire.
    ASSERT_EQ(reg.load("canary2", s.tree, 1, 0, &why), serve::ServeError::none);
    EXPECT_EQ(reg.resolve("canary2")->class_id, 2u);
    EXPECT_EQ(reg.classes_created(), 3u);
}

TEST(ModelRegistry, SwapPublishesNewSnapshotOldPinsSurvive) {
    const auto& s = scenario();
    serve::ModelRegistry reg({}, &s.background);
    ASSERT_EQ(reg.load("prod", s.forest_a, 1, 0), serve::ServeError::none);
    const auto entry = reg.resolve("prod");
    const auto pinned = entry->current();  // what an in-flight job would hold
    EXPECT_EQ(pinned->version, 0u);

    ASSERT_EQ(reg.swap("prod", s.forest_b), serve::ServeError::none);
    const auto fresh = entry->current();
    EXPECT_EQ(fresh->version, 1u);
    EXPECT_NE(fresh->fingerprint, pinned->fingerprint);
    // The pinned snapshot is untouched — still the old model, old base value.
    EXPECT_EQ(pinned->version, 0u);
    EXPECT_EQ(pinned->model.get(), s.forest_a.get());
    EXPECT_EQ(entry->swaps.value(), 1u);
}

// -------------------------------------------------- service integration ---

TEST(RegistryService, SingleModelAnswersAreByteIdenticalWithAndWithoutModelField) {
    const auto& s = scenario();
    serve::ExplanationService service(s.forest_a, s.background, base_config());
    for (std::size_t row = 0; row < 4; ++row) {
        auto implicit = service.explain_sync(row_request(1, row));
        auto named = service.explain_sync(row_request(1, row, "default"));
        implicit.cache_hit = false;
        named.cache_hit = false;
        EXPECT_EQ(serve::render_response(implicit), serve::render_response(named));
        EXPECT_EQ(serve::render_response(implicit), solo_answer(s.forest_a, row));
    }
    service.stop();
}

TEST(RegistryService, UnknownModelIsRejectedStructurally) {
    const auto& s = scenario();
    serve::ExplanationService service(s.forest_a, s.background, base_config());
    const auto r = service.explain_sync(row_request(9, 0, "nope"));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, serve::ServeError::unknown_model);
    EXPECT_FALSE(service.feature_dim("nope").has_value());
    EXPECT_TRUE(service.feature_dim("").has_value());
    service.stop();
}

TEST(RegistryService, TenantsAreCacheIsolatedAndCountedSeparately) {
    const auto& s = scenario();
    auto cfg = base_config();
    cfg.extra_models.push_back({"canary", s.tree, 2, 0});
    serve::ExplanationService service(s.forest_a, s.background, cfg);

    // Same instance explained under both tenants: different models, so the
    // answers differ and neither hits the other's cache slice.
    auto prod1 = service.explain_sync(row_request(1, 5));
    auto canary1 = service.explain_sync(row_request(2, 5, "canary"));
    ASSERT_TRUE(prod1.ok);
    ASSERT_TRUE(canary1.ok);
    EXPECT_FALSE(prod1.cache_hit);
    EXPECT_FALSE(canary1.cache_hit);
    EXPECT_NE(prod1.explanation.prediction, canary1.explanation.prediction);

    // Repeats hit each tenant's own slice.
    EXPECT_TRUE(service.explain_sync(row_request(3, 5)).cache_hit);
    EXPECT_TRUE(service.explain_sync(row_request(4, 5, "canary")).cache_hit);

    const auto stats = service.stats();
    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models_registered, 2u);
    EXPECT_EQ(stats.models[0].name, "default");
    EXPECT_EQ(stats.models[1].name, "canary");
    EXPECT_EQ(stats.models[0].admitted, 2u);
    EXPECT_EQ(stats.models[1].admitted, 2u);
    EXPECT_EQ(stats.models[0].completed, 2u);
    EXPECT_EQ(stats.models[1].completed, 2u);
    EXPECT_EQ(stats.models[1].weight, 2u);
    // The rendered stats frame carries the per-model array.
    const auto frame = serve::parse_json(serve::render_stats(stats));
    const auto* models = frame.find("models");
    ASSERT_NE(models, nullptr);
    ASSERT_EQ(models->array.size(), 2u);
    EXPECT_EQ(models->array[1].get_string("name", ""), "canary");
    service.stop();
}

TEST(RegistryService, SwapInvalidatesOldAnswersAndSwapBackRehits) {
    const auto& s = scenario();
    serve::ExplanationService service(s.forest_a, s.background, base_config());
    const auto before = service.explain_sync(row_request(1, 7));
    ASSERT_TRUE(before.ok);

    // Swap to the retrained model: same request now computes fresh (the old
    // version's cache entries are unreachable under the new fingerprint).
    ASSERT_EQ(service.model_swap("", s.forest_b), serve::ServeError::none);
    const auto after = service.explain_sync(row_request(2, 7));
    ASSERT_TRUE(after.ok);
    EXPECT_FALSE(after.cache_hit);
    auto a = before, b = after;
    a.id = b.id = 0;
    a.cache_hit = b.cache_hit = false;
    EXPECT_NE(serve::render_response(a), serve::render_response(b));

    // Swap back to a byte-identical model: the surviving old entries re-hit.
    ASSERT_EQ(service.model_swap("", s.forest_a), serve::ServeError::none);
    const auto back = service.explain_sync(row_request(3, 7));
    ASSERT_TRUE(back.ok);
    EXPECT_TRUE(back.cache_hit);
    auto c = back;
    c.id = before.id;
    c.cache_hit = before.cache_hit;
    EXPECT_EQ(serve::render_response(c), serve::render_response(before));
    EXPECT_EQ(service.stats().model_swaps, 2u);
    service.stop();
}

TEST(RegistryService, HotSwapUnderLiveLoadLosesNothingAndStaysBitwiseExact) {
    // The acceptance gate: a client stream runs while another thread swaps
    // prod -> retrained -> prod repeatedly.  Every single response must be
    // byte-identical to a fresh solo service built on one of the two
    // versions; zero requests may be dropped or errored.
    const auto& s = scenario();
    const std::size_t kRows = 6;
    std::vector<std::string> oracle_a(kRows), oracle_b(kRows);
    for (std::size_t row = 0; row < kRows; ++row) {
        oracle_a[row] = solo_answer(s.forest_a, row);
        oracle_b[row] = solo_answer(s.forest_b, row);
    }
    ASSERT_NE(oracle_a[0], oracle_b[0]);  // the swap must be observable

    serve::ExplanationService service(s.forest_a, s.background, base_config());
    std::atomic<bool> stop{false};
    std::thread swapper([&] {
        bool to_b = true;
        while (!stop.load()) {
            ASSERT_EQ(service.model_swap("", to_b ? s.forest_b : s.forest_a),
                      serve::ServeError::none);
            to_b = !to_b;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    std::size_t matched_a = 0, matched_b = 0;
    for (std::uint64_t i = 0; i < 400; ++i) {
        const std::size_t row = i % kRows;
        auto er = row_request(1, row);
        auto r = service.explain_sync(std::move(er));
        ASSERT_TRUE(r.ok) << "request " << i << ": " << r.error;
        r.cache_hit = false;  // hits are byte-equal to the compute they cached
        const auto line = serve::render_response(r);
        if (line == oracle_a[row]) {
            ++matched_a;
        } else if (line == oracle_b[row]) {
            ++matched_b;
        } else {
            FAIL() << "request " << i << " matched neither model version";
        }
    }
    stop.store(true);
    swapper.join();
    // Both versions actually served (the swap landed mid-stream).
    EXPECT_GT(matched_a, 0u);
    EXPECT_GT(matched_b, 0u);
    EXPECT_EQ(matched_a + matched_b, 400u);
    const auto stats = service.stats();
    EXPECT_EQ(stats.requests_accepted, stats.requests_completed);
    service.stop();
}

TEST(RegistryService, RetiredTenantFinishesInFlightWorkThenRejects) {
    const auto& s = scenario();
    auto cfg = base_config();
    cfg.extra_models.push_back({"canary", s.tree, 1, 0});
    serve::ExplanationService service(s.forest_a, s.background, cfg);

    auto sub = service.submit(row_request(1, 3, "canary"));
    ASSERT_EQ(sub.rejected, serve::ServeError::none);
    ASSERT_EQ(service.model_retire("canary"), serve::ServeError::none);
    // The admitted request still completes on its pinned entry.
    const auto r = sub.response.get();
    EXPECT_TRUE(r.ok);
    // New traffic for the retired name is rejected.
    const auto rejected = service.explain_sync(row_request(2, 3, "canary"));
    EXPECT_EQ(rejected.error_code, serve::ServeError::unknown_model);
    service.stop();
}

// ------------------------------------------------------------- snapshots ---

TEST(RegistrySnapshots, PerModelFilesRoundTripAndMismatchesAreSkipped) {
    const auto& s = scenario();
    const std::string base =
        ::testing::TempDir() + "registry_snap_" +
        std::to_string(::getpid()) + ".bin";
    auto cfg = base_config();
    cfg.snapshot_path = base;
    cfg.extra_models.push_back({"canary", s.tree, 1, 0});
    const auto canary_fp = serve::fingerprint_model(*s.tree);
    const std::string canary_file =
        base + "." + serve::fingerprint_hex(canary_fp);

    std::string prod_line, canary_line;
    {
        serve::ExplanationService service(s.forest_a, s.background, cfg);
        auto p = service.explain_sync(row_request(1, 2));
        auto c = service.explain_sync(row_request(2, 2, "canary"));
        ASSERT_TRUE(p.ok);
        ASSERT_TRUE(c.ok);
        p.cache_hit = c.cache_hit = false;
        prod_line = serve::render_response(p);
        canary_line = serve::render_response(c);
        service.stop();  // writes <base> and <base>.<canary-fp>
    }

    {
        // Restart: both tenants restore their own slice and hit immediately.
        serve::ExplanationService service(s.forest_a, s.background, cfg);
        EXPECT_GT(service.stats().snapshot_records_loaded, 0u);
        auto p = service.explain_sync(row_request(1, 2));
        auto c = service.explain_sync(row_request(2, 2, "canary"));
        EXPECT_TRUE(p.cache_hit);
        EXPECT_TRUE(c.cache_hit);
        p.cache_hit = c.cache_hit = false;
        EXPECT_EQ(serve::render_response(p), prod_line);
        EXPECT_EQ(serve::render_response(c), canary_line);
        service.stop();
    }

    {
        // A snapshot whose header fingerprint matches no registered model
        // (the canary was retrained offline) is skipped, not an error: the
        // tenant just starts cold.
        auto cfg2 = base_config();
        cfg2.snapshot_path = base;
        cfg2.extra_models.push_back({"canary", s.forest_b, 1, 0});
        serve::ExplanationService service(s.forest_a, s.background, cfg2);
        auto c = service.explain_sync(row_request(1, 2, "canary"));
        ASSERT_TRUE(c.ok);
        EXPECT_FALSE(c.cache_hit);
        service.stop();
    }
    std::remove(base.c_str());
    std::remove(canary_file.c_str());
    std::remove((base + "." +
                 serve::fingerprint_hex(serve::fingerprint_model(*s.forest_b)))
                    .c_str());
}

// ------------------------------------------------------------------ TCP ---

TEST(RegistryOverTcp, HotSwapUnderLiveTcpLoadAcrossShards) {
    // The TCP incarnation of the hot-swap gate: a client streams explains at
    // window 1 against a 2-shard server while another connection fires swap
    // admin ops (fanned out to every shard under the admin mutex).  Every
    // response must byte-match a fresh solo server built on the old or the
    // new version; the loadgen accounting proves zero drops.
    namespace net = xnfv::net;
    const auto& s = scenario();
    const std::string file_a = ::testing::TempDir() + "swap_a_" +
                               std::to_string(::getpid()) + ".xnfv";
    const std::string file_b = ::testing::TempDir() + "swap_b_" +
                               std::to_string(::getpid()) + ".xnfv";
    ml::save_model_file(*s.forest_a, file_a);
    ml::save_model_file(*s.forest_b, file_b);

    // All-distinct rows: every answer is a cold compute on both the oracles
    // and the live server, so cache_hit flags can never diverge.
    const std::size_t kRequests = 160;
    std::vector<std::string> script, oracle_a(kRequests), oracle_b(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
        const auto x = s.data.x.row(i % s.data.size());
        net::RequestSpec spec;
        spec.id = i + 1;
        spec.features.assign(x.begin(), x.end());
        spec.method = "tree_shap";
        spec.seed = kSeed;
        script.push_back(net::render_request_line(spec));
    }
    script.push_back("{\"op\":\"quit\"}");
    for (const auto* oracle : {&oracle_a, &oracle_b}) {
        const auto model = oracle == &oracle_a
                               ? std::static_pointer_cast<const ml::Model>(s.forest_a)
                               : std::static_pointer_cast<const ml::Model>(s.forest_b);
        serve::ExplanationService solo(model, s.background, base_config());
        for (std::size_t i = 0; i < kRequests; ++i) {
            auto r = solo.explain_sync(row_request(i + 1, i));
            ASSERT_TRUE(r.ok);
            const_cast<std::vector<std::string>&>(*oracle)[i] =
                serve::render_response(r);
        }
        solo.stop();
    }

    net::ShardedServerConfig shcfg;
    shcfg.shards = 2;
    net::ShardedServer server(s.forest_a, s.background, base_config(), shcfg);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    std::atomic<bool> stop{false};
    std::thread swapper([&] {
        net::Client admin;
        std::string err;
        ASSERT_TRUE(admin.connect("127.0.0.1", server.port(), &err)) << err;
        bool to_b = true;
        std::string line;
        while (!stop.load()) {
            const auto op = std::string("{\"op\":\"swap\",\"name\":\"default\"") +
                            ",\"model\":\"" + (to_b ? file_b : file_a) + "\"}";
            ASSERT_TRUE(admin.send_line(op));
            ASSERT_TRUE(admin.recv_line(line, std::chrono::milliseconds(10000)));
            EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
            to_b = !to_b;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    net::LoadgenConfig lg;
    lg.port = server.port();
    lg.window = 1;
    lg.timeout = std::chrono::milliseconds(120000);
    const auto report = net::run_load(lg, {script});
    stop.store(true);
    swapper.join();
    server.request_drain();
    loop.join();
    server.stop_services();

    ASSERT_FALSE(report.timed_out);
    ASSERT_EQ(report.conns.size(), 1u);
    const auto& conn = report.conns[0];
    EXPECT_FALSE(conn.io_error);
    EXPECT_TRUE(conn.eof);
    ASSERT_EQ(conn.lines.size(), kRequests) << "dropped responses";
    std::size_t matched_a = 0, matched_b = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
        if (conn.lines[i] == oracle_a[i]) {
            ++matched_a;
        } else if (conn.lines[i] == oracle_b[i]) {
            ++matched_b;
        } else {
            FAIL() << "line " << i << " matched neither version: "
                   << conn.lines[i];
        }
    }
    EXPECT_GT(matched_a, 0u);
    EXPECT_GT(matched_b, 0u);

    // The swaps replicated to every shard: both report the same final
    // registry facts, and the fleet aggregate says so once.
    const auto stats = server.stats();
    ASSERT_EQ(stats.models.size(), 1u);
    EXPECT_GT(stats.models[0].swaps, 0u);
    EXPECT_EQ(stats.models_registered, 1u);
    std::remove(file_a.c_str());
    std::remove(file_b.c_str());
}

TEST(RegistryOverTcp, ModelFieldAndUseOpSelectTenantsPerConnection) {
    namespace net = xnfv::net;
    const auto& s = scenario();
    auto cfg = base_config();
    cfg.extra_models.push_back({"canary", s.tree, 1, 0});
    net::ShardedServerConfig shcfg;
    shcfg.shards = 1;
    net::ShardedServer server(s.forest_a, s.background, cfg, shcfg);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    // No row lookup installed on this server, so requests carry features.
    const auto feature_line = [&](std::uint64_t id, std::size_t row,
                                  const std::string& model) {
        const auto x = s.data.x.row(row);
        net::RequestSpec spec;
        spec.id = id;
        spec.features.assign(x.begin(), x.end());
        spec.method = "tree_shap";
        spec.model = model;
        spec.seed = kSeed;
        return net::render_request_line(spec);
    };

    const std::vector<std::string> script{
        feature_line(1, 10, ""),          // default tenant (prod)
        feature_line(2, 11, "canary"),    // explicit per-request override
        "{\"op\":\"use\",\"model\":\"canary\"}",
        feature_line(3, 12, ""),          // now resolves to canary
        feature_line(4, 13, "ghost"),     // unknown -> structured error
        "{\"op\":\"quit\"}",
    };
    net::LoadgenConfig lg;
    lg.port = server.port();
    lg.window = 1;
    lg.timeout = std::chrono::milliseconds(60000);
    const auto report = net::run_load(lg, {script});
    server.request_drain();
    loop.join();
    server.stop_services();

    ASSERT_FALSE(report.timed_out);
    const auto& lines = report.conns[0].lines;
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0], solo_answer(s.forest_a, 10));
    {
        // Byte-identical to a solo canary service answering the same id.
        serve::ExplanationService solo(s.tree, s.background, base_config());
        auto resp = solo.explain_sync(row_request(2, 11));
        resp.cache_hit = false;
        EXPECT_EQ(lines[1], serve::render_response(resp));
        solo.stop();
    }
    EXPECT_NE(lines[2].find("\"op\":\"use\""), std::string::npos);
    {
        serve::ExplanationService solo(s.tree, s.background, base_config());
        auto resp = solo.explain_sync(row_request(3, 12));
        resp.cache_hit = false;
        EXPECT_EQ(lines[3], serve::render_response(resp));
        solo.stop();
    }
    EXPECT_NE(lines[4].find("unknown_model"), std::string::npos) << lines[4];
}

// ------------------------------------------------------------- admin ops ---

TEST(ModelAdmin, LoadSwapRetireModelsOverNdjson) {
    const auto& s = scenario();
    const std::string model_file =
        ::testing::TempDir() + "admin_model_" + std::to_string(::getpid()) +
        ".xnfv";
    ml::save_model_file(*s.tree, model_file);

    serve::ExplanationService service(s.forest_a, s.background, base_config());
    const std::vector<serve::ExplanationService*> services{&service};

    auto loaded = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"load","name":"canary","model":")" +
                          model_file + R"(","weight":2,"quota":8})"),
        services));
    EXPECT_EQ(loaded.get_string("op", ""), "load");
    EXPECT_EQ(loaded.get_string("name", ""), "canary");
    EXPECT_EQ(loaded.get_string("fingerprint", ""),
              serve::fingerprint_hex(serve::fingerprint_model(*s.tree)));
    ASSERT_TRUE(service.feature_dim("canary").has_value());

    // The canary serves; a swap republished from the same file keeps it
    // serving the same bytes (fingerprint unchanged -> cache re-hit).
    const auto before = service.explain_sync(row_request(1, 4, "canary"));
    ASSERT_TRUE(before.ok);
    auto swapped = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"swap","name":"canary","model":")" +
                          model_file + R"("})"),
        services));
    EXPECT_EQ(swapped.get_string("op", ""), "swap");
    EXPECT_TRUE(service.explain_sync(row_request(2, 4, "canary")).cache_hit);

    auto listing = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"models"})"), services));
    EXPECT_EQ(listing.get_string("default", ""), "default");
    const auto* models = listing.find("models");
    ASSERT_NE(models, nullptr);
    ASSERT_EQ(models->array.size(), 2u);
    EXPECT_EQ(models->array[1].get_string("name", ""), "canary");
    EXPECT_EQ(models->array[1].get_number("weight", 0), 2.0);
    EXPECT_EQ(models->array[1].get_number("quota", 0), 8.0);
    EXPECT_EQ(models->array[1].get_number("swaps", 0), 1.0);

    auto retired = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"retire","name":"canary"})"), services));
    EXPECT_EQ(retired.get_string("op", ""), "retire");
    EXPECT_FALSE(service.feature_dim("canary").has_value());

    // Structured failures: unknown op, missing file, unknown swap target.
    auto bad_op = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"frobnicate"})"), services));
    EXPECT_EQ(bad_op.get_string("error_code", ""), "bad_request");
    auto bad_file = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"load","name":"x","model":"/nope.xnfv"})"),
        services));
    EXPECT_EQ(bad_file.get_string("error_code", ""), "bad_request");
    auto bad_swap = serve::parse_json(serve::handle_model_admin(
        serve::parse_json(R"({"op":"swap","name":"ghost","model":")" +
                          model_file + R"("})"),
        services));
    EXPECT_EQ(bad_swap.get_string("error_code", ""), "unknown_model");

    service.stop();
    std::remove(model_file.c_str());
}

TEST(CircuitBreaker, OpensOnErrorWindowRecoversViaHalfOpenProbe) {
    // Per-tenant circuit breaker state machine (DESIGN.md section 15):
    // closed -> open when a full window's error fraction reaches the
    // threshold, open -> half-open single probe after the cooldown, probe
    // outcome alone decides re-close vs re-open.  `now` is a parameter of
    // admit, so the cooldown is simulated without sleeping.
    serve::BreakerConfig cfg;
    cfg.window = 4;
    cfg.error_threshold = 0.5;
    cfg.cooldown = std::chrono::milliseconds(250);
    serve::ModelEntry entry("tenant", 0, 16, 1);
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const auto after_cooldown = t0 + std::chrono::seconds(2);

    // Closed admits freely; a full window of successes stays closed.
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(entry.breaker_admit(cfg, t0));
        entry.breaker_record(cfg, true);
    }
    EXPECT_EQ(entry.breaker_state(), 0);

    // Two failures put the window at 2/4 errors == threshold: opens.
    for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(entry.breaker_admit(cfg, t0));
        entry.breaker_record(cfg, false);
    }
    EXPECT_EQ(entry.breaker_state(), 1);
    EXPECT_EQ(entry.breaker_opens.value(), 1u);

    // Open rejects while the cooldown runs.
    EXPECT_FALSE(entry.breaker_admit(cfg, t0));
    EXPECT_EQ(entry.breaker_rejected.value(), 1u);

    // Cooldown over: exactly one half-open probe; concurrent admits reject.
    EXPECT_TRUE(entry.breaker_admit(cfg, after_cooldown));
    EXPECT_EQ(entry.breaker_state(), 2);
    EXPECT_FALSE(entry.breaker_admit(cfg, after_cooldown));
    EXPECT_EQ(entry.breaker_rejected.value(), 2u);

    // Failed probe re-opens...
    entry.breaker_record(cfg, false);
    EXPECT_EQ(entry.breaker_state(), 1);
    EXPECT_EQ(entry.breaker_opens.value(), 2u);

    // ...an admitted probe lost to a queue rejection is released by
    // abandon (otherwise the breaker would wedge half-open forever)...
    EXPECT_TRUE(entry.breaker_admit(cfg, after_cooldown + std::chrono::seconds(2)));
    entry.breaker_abandon(cfg);
    EXPECT_TRUE(entry.breaker_admit(cfg, after_cooldown + std::chrono::seconds(2)));

    // ...and a successful probe closes with a fresh window: one further
    // failure is 1/4, not enough to re-open.
    entry.breaker_record(cfg, true);
    EXPECT_EQ(entry.breaker_state(), 0);
    EXPECT_TRUE(entry.breaker_admit(cfg, t0));
    entry.breaker_record(cfg, false);
    EXPECT_EQ(entry.breaker_state(), 0);
}

TEST(CircuitBreaker, DisabledByDefaultNeverRejects) {
    serve::BreakerConfig off;  // error_threshold 0.0 = disabled
    serve::ModelEntry entry("tenant", 0, 16, 1);
    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(entry.breaker_admit(off, std::chrono::steady_clock::now()));
        entry.breaker_record(off, false);
    }
    EXPECT_EQ(entry.breaker_state(), 0);
    EXPECT_EQ(entry.breaker_opens.value(), 0u);
    EXPECT_EQ(entry.breaker_rejected.value(), 0u);
}
