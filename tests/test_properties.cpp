// Cross-cutting property sweeps.
//
// Earlier test files validate each component in isolation; this file sweeps
// *shared contracts* across whole families:
//   - every additive explainer satisfies efficiency on random models,
//   - every explainer is invariant to dummy features,
//   - every trainable model round-trips through serialization,
//   - simulator monotonicities hold across every chain template,
//   - agreement metrics are reflexive for every explainer.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <ostream>
#include <string>

#include "core/exact_shapley.hpp"
#include "core/gradient.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/sampling_shapley.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/serialize.hpp"
#include "nfv/placement.hpp"
#include "nfv/simulator.hpp"
#include "test_util.hpp"
#include "workload/scenario.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;
using xnfv::testutil::make_uniform_background;

// ---------------------------------------------------------------------------
// Efficiency axiom across the additive explainer family.
// ---------------------------------------------------------------------------

namespace {

enum class Method { exact, kernel, sampling, tree };

std::string method_name(Method m) {
    switch (m) {
        case Method::exact: return "exact";
        case Method::kernel: return "kernel";
        case Method::sampling: return "sampling";
        case Method::tree: return "tree";
    }
    return "?";
}

/// gtest value printer: ctest's "# GetParam() = ..." annotation shows the
/// method name instead of "4-byte object <..>".
void PrintTo(Method m, std::ostream* os) { *os << method_name(m); }

}  // namespace

class EfficiencySweep : public ::testing::TestWithParam<Method> {};

TEST_P(EfficiencySweep, AdditiveReconstructionMatchesPrediction) {
    ml::Rng rng(99);
    const std::size_t d = 4;
    const auto bg = make_uniform_background(24, d, rng);
    const xai::BackgroundData background(bg);

    // A forest gives every method (incl. TreeSHAP) a common target.
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 600; ++i) {
        std::vector<double> row(d);
        for (auto& v : row) v = rng.uniform(-1, 1);
        data.add(row, row[0] * row[1] + 2.0 * row[2] - std::abs(row[3]));
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 15});
    forest.fit(data, rng);

    std::unique_ptr<xai::Explainer> explainer;
    double tolerance = 1e-8;
    switch (GetParam()) {
        case Method::exact:
            explainer = std::make_unique<xai::ExactShapley>(background);
            break;
        case Method::kernel:
            explainer = std::make_unique<xai::KernelShap>(
                background, ml::Rng(1), xai::KernelShap::Config{.max_coalitions = 14});
            break;
        case Method::sampling:
            explainer = std::make_unique<xai::SamplingShapley>(
                background, ml::Rng(2),
                xai::SamplingShapley::Config{.num_permutations = 50});
            break;
        case Method::tree:
            explainer = std::make_unique<xai::TreeShap>();
            break;
    }

    for (int rep = 0; rep < 5; ++rep) {
        std::vector<double> x(d);
        for (auto& v : x) v = rng.uniform(-1, 1);
        const auto e = explainer->explain(forest, x);
        EXPECT_NEAR(e.additive_reconstruction(), e.prediction, tolerance)
            << method_name(GetParam());
        EXPECT_EQ(e.attributions.size(), d);
    }
}

INSTANTIATE_TEST_SUITE_P(Explainers, EfficiencySweep,
                         ::testing::Values(Method::exact, Method::kernel,
                                           Method::sampling, Method::tree),
                         [](const auto& param_info) { return method_name(param_info.param); });

// ---------------------------------------------------------------------------
// Dummy-feature invariance across every explainer (incl. the non-additive
// ones): a feature the model never reads gets (near-)zero attribution.
// ---------------------------------------------------------------------------

class DummySweep : public ::testing::TestWithParam<int> {};

TEST_P(DummySweep, UnusedFeatureReceivesNoAttribution) {
    ml::Rng rng(123 + GetParam());
    const std::size_t d = 5;  // feature 4 is the dummy
    const xai::BackgroundData background(make_uniform_background(32, d, rng));
    const ml::LambdaModel model(d, [](std::span<const double> x) {
        return x[0] * x[1] + std::tanh(x[2]) - 0.5 * x[3];
    });
    const std::vector<double> x{0.4, -0.6, 0.9, 0.1, 0.7};

    std::unique_ptr<xai::Explainer> explainer;
    double tolerance = 1e-6;
    switch (GetParam()) {
        case 0: explainer = std::make_unique<xai::ExactShapley>(background); break;
        case 1:
            explainer = std::make_unique<xai::KernelShap>(
                background, ml::Rng(3), xai::KernelShap::Config{.max_coalitions = 30});
            break;
        case 2:
            explainer = std::make_unique<xai::SamplingShapley>(
                background, ml::Rng(4),
                xai::SamplingShapley::Config{.num_permutations = 100});
            break;
        case 3: explainer = std::make_unique<xai::Occlusion>(background); break;
        case 4:
            explainer = std::make_unique<xai::IntegratedGradients>(
                background, xai::IntegratedGradients::Config{.steps = 30});
            break;
        case 5:
            explainer = std::make_unique<xai::SmoothGrad>(background, ml::Rng(5));
            break;
        case 6:
            explainer = std::make_unique<xai::Lime>(
                background, ml::Rng(6), xai::Lime::Config{.num_samples = 3000});
            tolerance = 0.05;  // sampling noise in the surrogate fit
            break;
    }
    const auto e = explainer->explain(model, x);
    EXPECT_NEAR(e.attributions[4], 0.0, tolerance) << explainer->name();
}

INSTANTIATE_TEST_SUITE_P(AllExplainers, DummySweep, ::testing::Range(0, 7));

// ---------------------------------------------------------------------------
// Serialization round-trip across every trainable model family.
// ---------------------------------------------------------------------------

class SerializeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSweep, PredictionsSurviveRoundTrip) {
    ml::Rng rng(55);
    const auto clf = xnfv::testutil::make_xor_dataset(400, rng);
    const auto reg = xnfv::testutil::make_linear_dataset(
        std::vector<double>{1.0, -2.0}, 0.5, 400, rng, 0.1);

    std::unique_ptr<ml::Model> model;
    switch (GetParam()) {
        case 0: {
            auto m = std::make_unique<ml::LinearRegression>();
            m->fit(reg);
            model = std::move(m);
            break;
        }
        case 1: {
            auto m = std::make_unique<ml::LogisticRegression>();
            m->fit(clf);
            model = std::move(m);
            break;
        }
        case 2: {
            auto m = std::make_unique<ml::DecisionTree>();
            m->fit(clf);
            model = std::move(m);
            break;
        }
        case 3: {
            auto m = std::make_unique<ml::RandomForest>(
                ml::RandomForest::Config{.num_trees = 8});
            m->fit(clf, rng);
            model = std::move(m);
            break;
        }
        case 4: {
            auto m = std::make_unique<ml::GradientBoostedTrees>(
                ml::GradientBoostedTrees::Config{.num_rounds = 12});
            m->fit(reg, rng);
            model = std::move(m);
            break;
        }
        case 5: {
            auto m = std::make_unique<ml::Mlp>(
                ml::Mlp::Config{.hidden_layers = {6}, .epochs = 10});
            m->fit(reg, rng);
            model = std::move(m);
            break;
        }
    }
    std::stringstream ss;
    ml::save_model(*model, ss);
    const auto restored = ml::load_model(ss);
    for (int rep = 0; rep < 10; ++rep) {
        const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        EXPECT_DOUBLE_EQ(restored->predict(x), model->predict(x));
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, SerializeSweep, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Simulator monotonicity across every chain template.
// ---------------------------------------------------------------------------

class TemplateSweep : public ::testing::TestWithParam<wl::ChainTemplate> {};

TEST_P(TemplateSweep, LatencyMonotoneInLoadAndCapacity) {
    auto build = [&](double cores) {
        nfv::Infrastructure infra =
            nfv::Infrastructure::homogeneous_pop(2, nfv::Server{});
        nfv::Deployment dep;
        nfv::make_chain(dep, "c", wl::chain_types(GetParam()), cores);
        ml::Rng rng(1);
        nfv::place(dep, infra, nfv::PlacementStrategy::first_fit, rng);
        return std::pair{std::move(dep), std::move(infra)};
    };
    const auto load = [](double pps) {
        return nfv::OfferedLoad{.pps = pps, .active_flows = 5e3};
    };

    // Monotone in load.
    {
        auto [dep, infra] = build(2.0);
        double prev = 0.0;
        for (double pps : {1e4, 4e4, 1.6e5}) {
            const auto r = nfv::simulate_epoch(dep, infra, {load(pps)});
            EXPECT_GT(r.chains[0].latency_s, prev);
            prev = r.chains[0].latency_s;
        }
    }
    // Anti-monotone in CPU allocation.
    {
        double prev = std::numeric_limits<double>::infinity();
        for (double cores : {0.5, 1.0, 2.0, 4.0}) {
            auto [dep, infra] = build(cores);
            const auto r = nfv::simulate_epoch(dep, infra, {load(8e4)});
            EXPECT_LT(r.chains[0].latency_s, prev);
            prev = r.chains[0].latency_s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Templates, TemplateSweep,
                         ::testing::Values(wl::ChainTemplate::web_gateway,
                                           wl::ChainTemplate::secure_enterprise,
                                           wl::ChainTemplate::video_cdn,
                                           wl::ChainTemplate::iot_ingest,
                                           wl::ChainTemplate::vpn_tunnel),
                         [](const auto& param_info) {
                             return std::string(wl::to_string(param_info.param));
                         });

// ---------------------------------------------------------------------------
// GBT explains identically through TreeShap before/after serialization —
// covers the full save/load of structure + covers + link parameters.
// ---------------------------------------------------------------------------

TEST(Properties, TreeShapIdenticalAfterGbtRoundTrip) {
    ml::Rng rng(77);
    const auto data = xnfv::testutil::make_xor_dataset(800, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 20});
    gbt.fit(data, rng);
    std::stringstream ss;
    ml::save_model(gbt, ss);
    const auto restored = ml::load_model(ss);
    xai::TreeShap ts;
    const std::vector<double> x{0.3, -0.8};
    const auto before = ts.explain(gbt, x);
    const auto after = ts.explain(*restored, x);
    for (std::size_t j = 0; j < 2; ++j)
        EXPECT_DOUBLE_EQ(before.attributions[j], after.attributions[j]);
    EXPECT_DOUBLE_EQ(before.base_value, after.base_value);
}
