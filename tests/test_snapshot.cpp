// Crash-safe cache snapshot tests: CRC correctness, write/read round-trips,
// truncation at every offset, mid-file corruption with resync, header and
// fingerprint invalidation, and service-level persistence (a restarted
// service serves byte-identical cache hits from the snapshot, including
// after the cache_corrupt fault has scrambled a record).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "serve/fault_injector.hpp"
#include "serve/request_queue.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"

namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;

namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "xnfv_snapshot_" + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spill(const std::string& path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

serve::SnapshotRecord make_record(std::uint64_t tag) {
    serve::SnapshotRecord r;
    r.key_words = {tag, tag * 31 + 7, ~tag};
    r.key_context = 0x9e3779b97f4a7c15ULL ^ tag;
    r.explanation.method = "kernel_shap";
    r.explanation.prediction = 1.5 * static_cast<double>(tag);
    r.explanation.base_value = -0.25;
    r.explanation.attributions = {0.125 * static_cast<double>(tag), -3.0, 42.0};
    r.explanation.feature_names = {"cpu", "mem", "pkt_rate"};
    return r;
}

void expect_record_eq(const serve::SnapshotRecord& a, const serve::SnapshotRecord& b) {
    EXPECT_EQ(a.key_words, b.key_words);
    EXPECT_EQ(a.key_context, b.key_context);
    EXPECT_EQ(a.explanation.method, b.explanation.method);
    EXPECT_EQ(a.explanation.prediction, b.explanation.prediction);
    EXPECT_EQ(a.explanation.base_value, b.explanation.base_value);
    EXPECT_EQ(a.explanation.attributions, b.explanation.attributions);
    EXPECT_EQ(a.explanation.feature_names, b.explanation.feature_names);
}

std::shared_ptr<const ml::Model> sum_model() {
    return std::make_shared<ml::LambdaModel>(3, [](std::span<const double> x) {
        return 0.25 * x[0] + 0.5 * x[1] - x[2];
    });
}

xai::BackgroundData tiny_background() {
    return xai::BackgroundData(
        ml::Matrix::from_rows({{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, {2.0, 0.5, -1.0}}));
}

serve::ExplainRequest request_for(std::uint64_t id, std::vector<double> features) {
    serve::ExplainRequest r;
    r.id = id;
    r.features = std::move(features);
    return r;
}

constexpr serve::SnapshotHeader kHeader{0x1111, 0x2222, 0.0};

}  // namespace

TEST(Crc32, MatchesStandardCheckValue) {
    const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(serve::crc32(check), 0xCBF43926u);
    EXPECT_EQ(serve::crc32({}), 0u);
    // One flipped bit changes the CRC.
    std::uint8_t flipped[sizeof(check)];
    std::copy(std::begin(check), std::end(check), std::begin(flipped));
    flipped[4] ^= 0x01;
    EXPECT_NE(serve::crc32(flipped), 0xCBF43926u);
}

TEST(Snapshot, RoundTripsRecordsInOrder) {
    const auto path = temp_path("roundtrip.bin");
    std::vector<serve::SnapshotRecord> records;
    for (std::uint64_t t = 0; t < 5; ++t) records.push_back(make_record(t));
    // Exercise edge shapes: empty names, empty attributions, empty key words.
    records[2].explanation.feature_names.clear();
    records[3].explanation.attributions.clear();
    records[4].key_words.clear();

    ASSERT_TRUE(serve::write_snapshot(path, kHeader, records));
    const auto result = serve::read_snapshot(path, kHeader);
    ASSERT_TRUE(result.loaded);
    EXPECT_EQ(result.skipped, 0u);
    ASSERT_EQ(result.records.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        expect_record_eq(result.records[i], records[i]);
    std::remove(path.c_str());
}

TEST(Snapshot, EmptySnapshotRoundTrips) {
    const auto path = temp_path("empty.bin");
    ASSERT_TRUE(serve::write_snapshot(path, kHeader, {}));
    const auto result = serve::read_snapshot(path, kHeader);
    EXPECT_TRUE(result.loaded);
    EXPECT_TRUE(result.records.empty());
    EXPECT_EQ(result.skipped, 0u);
    std::remove(path.c_str());
}

TEST(Snapshot, MissingFileStartsCold) {
    const auto result = serve::read_snapshot(temp_path("does_not_exist.bin"), kHeader);
    EXPECT_FALSE(result.loaded);
    EXPECT_TRUE(result.records.empty());
}

TEST(Snapshot, FingerprintMismatchInvalidatesWholeFile) {
    const auto path = temp_path("mismatch.bin");
    ASSERT_TRUE(serve::write_snapshot(path, kHeader, {make_record(1)}));

    serve::SnapshotHeader other_model = kHeader;
    other_model.model_fingerprint ^= 1;
    EXPECT_FALSE(serve::read_snapshot(path, other_model).loaded);

    serve::SnapshotHeader other_bg = kHeader;
    other_bg.background_fingerprint ^= 1;
    EXPECT_FALSE(serve::read_snapshot(path, other_bg).loaded);

    serve::SnapshotHeader other_quantum = kHeader;
    other_quantum.quantum = 0.5;
    EXPECT_FALSE(serve::read_snapshot(path, other_quantum).loaded);
    std::remove(path.c_str());
}

TEST(Snapshot, GarbageFileStartsCold) {
    const auto path = temp_path("garbage.bin");
    spill(path, {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03});
    const auto result = serve::read_snapshot(path, kHeader);
    EXPECT_FALSE(result.loaded);
    EXPECT_TRUE(result.records.empty());
    std::remove(path.c_str());
}

TEST(Snapshot, TruncationAtEveryOffsetNeverFailsStartup) {
    const auto path = temp_path("trunc_src.bin");
    const auto trunc = temp_path("trunc.bin");
    std::vector<serve::SnapshotRecord> records;
    for (std::uint64_t t = 0; t < 4; ++t) records.push_back(make_record(t));
    ASSERT_TRUE(serve::write_snapshot(path, kHeader, records));
    const auto bytes = slurp(path);
    ASSERT_GT(bytes.size(), 36u);

    for (std::size_t len = 0; len <= bytes.size(); ++len) {
        spill(trunc, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len)});
        const auto result = serve::read_snapshot(trunc, kHeader);
        // Whatever survives must be an exact prefix of what was written.
        ASSERT_LE(result.records.size(), records.size()) << "len=" << len;
        for (std::size_t i = 0; i < result.records.size(); ++i)
            expect_record_eq(result.records[i], records[i]);
        if (len == bytes.size()) {
            EXPECT_TRUE(result.loaded);
            EXPECT_EQ(result.records.size(), records.size());
        }
    }
    std::remove(path.c_str());
    std::remove(trunc.c_str());
}

TEST(Snapshot, MidFileCorruptionSkipsOnlyDamagedRecords) {
    const auto path = temp_path("corrupt.bin");
    std::vector<serve::SnapshotRecord> records;
    for (std::uint64_t t = 0; t < 6; ++t) records.push_back(make_record(t));
    ASSERT_TRUE(serve::write_snapshot(path, kHeader, records));
    auto bytes = slurp(path);

    // Flip one byte in the middle of the file — inside some record's payload.
    bytes[bytes.size() / 2] ^= 0xFF;
    spill(path, bytes);

    const auto result = serve::read_snapshot(path, kHeader);
    ASSERT_TRUE(result.loaded);
    EXPECT_GE(result.skipped, 1u);
    EXPECT_LT(result.records.size(), records.size());
    EXPECT_GE(result.records.size(), 1u);  // records before the damage survive
    // Every surviving record is bit-exact against the original with the same
    // (unique) key context.
    for (const auto& got : result.records) {
        bool matched = false;
        for (const auto& want : records) {
            if (want.key_context != got.key_context) continue;
            expect_record_eq(got, want);
            matched = true;
        }
        EXPECT_TRUE(matched);
    }
    std::remove(path.c_str());
}

TEST(Snapshot, WriteIsAtomicAgainstExistingSnapshot) {
    const auto path = temp_path("atomic.bin");
    ASSERT_TRUE(serve::write_snapshot(path, kHeader, {make_record(1)}));
    const auto before = slurp(path);

    // A second successful write replaces the file completely (no partial
    // append) and leaves no temporary behind.
    ASSERT_TRUE(serve::write_snapshot(path, kHeader, {make_record(2), make_record(3)}));
    const auto result = serve::read_snapshot(path, kHeader);
    ASSERT_TRUE(result.loaded);
    ASSERT_EQ(result.records.size(), 2u);
    expect_record_eq(result.records[0], make_record(2));
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
    EXPECT_NE(slurp(path), before);
    std::remove(path.c_str());
}

// ------------------------------------------------------ service-level ---

TEST(ServicePersistence, RestartServesByteIdenticalCacheHits) {
    const auto path = temp_path("service.bin");
    std::remove(path.c_str());

    serve::ServiceConfig cfg;
    cfg.method = "kernel_shap";
    cfg.snapshot_path = path;

    const auto features = [](std::uint64_t k) {
        return std::vector<double>{static_cast<double>(k), 0.5, -1.0};
    };

    // First life: compute and cache three explanations, snapshot at stop().
    std::vector<xai::Explanation> first_life;
    {
        serve::ExplanationService service(sum_model(), tiny_background(), cfg);
        for (std::uint64_t k = 0; k < 3; ++k) {
            auto r = service.explain_sync(request_for(k, features(k)));
            ASSERT_TRUE(r.ok);
            EXPECT_FALSE(r.cache_hit);
            first_life.push_back(std::move(r.explanation));
        }
        service.stop();
        EXPECT_GE(service.stats().snapshot_writes, 1u);
    }

    // Second life: the same requests must be warm hits with identical bytes.
    {
        serve::ExplanationService service(sum_model(), tiny_background(), cfg);
        EXPECT_EQ(service.stats().snapshot_records_loaded, 3u);
        EXPECT_EQ(service.stats().cache_entries, 3u);
        for (std::uint64_t k = 0; k < 3; ++k) {
            const auto r = service.explain_sync(request_for(100 + k, features(k)));
            ASSERT_TRUE(r.ok);
            EXPECT_TRUE(r.cache_hit);
            EXPECT_EQ(r.explanation.method, first_life[k].method);
            EXPECT_EQ(r.explanation.prediction, first_life[k].prediction);
            EXPECT_EQ(r.explanation.base_value, first_life[k].base_value);
            EXPECT_EQ(r.explanation.attributions, first_life[k].attributions);
        }
        // A served hit equals what a cold one-shot computation would produce:
        // the snapshot round-trip preserved the determinism contract.
        const auto cold = serve::make_explainer("kernel_shap", tiny_background(),
                                                cfg.seed, 1)
                              ->explain(*sum_model(), features(1));
        EXPECT_EQ(cold.attributions, first_life[1].attributions);
    }
    std::remove(path.c_str());
}

TEST(ServicePersistence, IncompatibleModelStartsColdNotWrong) {
    const auto path = temp_path("service_mismatch.bin");
    std::remove(path.c_str());

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.snapshot_path = path;
    {
        serve::ExplanationService service(sum_model(), tiny_background(), cfg);
        ASSERT_TRUE(service.explain_sync(request_for(1, {1.0, 2.0, 3.0})).ok);
    }

    // A differently-named model has a different fingerprint: its service must
    // ignore the snapshot rather than serve another model's attributions.
    auto other = std::make_shared<ml::LambdaModel>(
        3, [](std::span<const double> x) { return x[0]; }, "other_model");
    serve::ExplanationService service(other, tiny_background(), cfg);
    EXPECT_EQ(service.stats().snapshot_records_loaded, 0u);
    EXPECT_EQ(service.stats().cache_entries, 0u);
    const auto r = service.explain_sync(request_for(2, {1.0, 2.0, 3.0}));
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.cache_hit);
    std::remove(path.c_str());
}

TEST(ServicePersistence, PeriodicSnapshotsWrittenByWatchdog) {
    const auto path = temp_path("service_periodic.bin");
    std::remove(path.c_str());

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.snapshot_path = path;
    cfg.snapshot_interval = std::chrono::milliseconds(5);
    cfg.watchdog_interval = std::chrono::milliseconds(2);
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);
    ASSERT_TRUE(service.explain_sync(request_for(1, {1.0, 2.0, 3.0})).ok);
    // The watchdog must write at least one snapshot without stop().
    for (int spin = 0; spin < 2000 && service.stats().snapshot_writes == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(service.stats().snapshot_writes, 1u);
    const auto result = serve::read_snapshot(
        path, serve::SnapshotHeader{0, 0, cfg.cache_quantum});
    // Loaded under the service's own fingerprints, not zeros — just assert
    // the file exists and is non-empty.
    (void)result;
    EXPECT_FALSE(slurp(path).empty());
    service.stop();
    std::remove(path.c_str());
}

TEST(ServicePersistence, CacheCorruptFaultDegradesToPartialWarmStart) {
    const auto path = temp_path("service_corrupt.bin");
    std::remove(path.c_str());

    serve::FaultInjector::Config fi;
    fi.seed = 77;
    fi.rate[static_cast<std::size_t>(serve::FaultPoint::cache_corrupt)] = 1.0;
    fi.max_fires[static_cast<std::size_t>(serve::FaultPoint::cache_corrupt)] = 1;

    serve::ServiceConfig cfg;
    cfg.method = "occlusion";
    cfg.snapshot_path = path;
    {
        serve::ServiceConfig chaos = cfg;
        chaos.fault_injector = std::make_shared<serve::FaultInjector>(fi);
        serve::ExplanationService service(sum_model(), tiny_background(), chaos);
        for (std::uint64_t k = 0; k < 8; ++k) {
            ASSERT_TRUE(service
                            .explain_sync(request_for(
                                k, {static_cast<double>(k), 2.0, 3.0}))
                            .ok);
        }
        // stop() writes the snapshot, then the fault scrambles one byte.
    }

    // The next life must still start and serve; the damaged record is
    // dropped, the intact ones are warm.
    serve::ExplanationService service(sum_model(), tiny_background(), cfg);
    const auto stats = service.stats();
    EXPECT_GE(stats.snapshot_records_skipped, 1u);
    EXPECT_GE(stats.snapshot_records_loaded, 1u);
    EXPECT_LT(stats.snapshot_records_loaded, 8u);
    const auto r = service.explain_sync(request_for(99, {0.0, 2.0, 3.0}));
    EXPECT_TRUE(r.ok);
    std::remove(path.c_str());
}
