#include "workload/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace wl = xnfv::wl;
namespace ml = xnfv::ml;

TEST(MmppCa2, PoissonBaselineIsOne) {
    wl::TrafficSpec spec;
    spec.burst_ratio = 1.0;
    EXPECT_DOUBLE_EQ(wl::mmpp_ca2(spec), 1.0);
}

TEST(MmppCa2, IncreasesWithBurstRatio) {
    wl::TrafficSpec spec;
    double prev = 1.0;
    for (double ratio : {2.0, 4.0, 8.0, 16.0}) {
        spec.burst_ratio = ratio;
        const double ca2 = wl::mmpp_ca2(spec);
        EXPECT_GT(ca2, prev);
        prev = ca2;
    }
}

TEST(MmppCa2, SlowerSwitchingMoreDispersion) {
    wl::TrafficSpec fast;
    fast.burst_ratio = 8.0;
    fast.switch_rate = 10.0;
    wl::TrafficSpec slow = fast;
    slow.switch_rate = 0.5;
    EXPECT_GT(wl::mmpp_ca2(slow), wl::mmpp_ca2(fast));
}

TEST(MmppCa2, RejectsRatioBelowOne) {
    wl::TrafficSpec spec;
    spec.burst_ratio = 0.5;
    EXPECT_THROW((void)wl::mmpp_ca2(spec), std::invalid_argument);
}

TEST(TrafficGenerator, MeanRateTracksBase) {
    wl::TrafficSpec spec;
    spec.base_pps = 50e3;
    spec.diurnal_amplitude = 0.0;
    spec.burst_ratio = 1.0;
    spec.flash_crowd_prob = 0.0;
    wl::TrafficGenerator gen(spec, ml::Rng(1));
    double sum = 0.0;
    const int n = 2000;
    for (int t = 0; t < n; ++t) sum += gen.next_epoch(t).pps;
    EXPECT_NEAR(sum / n, 50e3, 2.5e3);  // 5% tolerance (lognormal noise)
}

TEST(TrafficGenerator, BurstStateModulatesRate) {
    wl::TrafficSpec spec;
    spec.base_pps = 100e3;
    spec.diurnal_amplitude = 0.0;
    spec.burst_ratio = 10.0;
    spec.burst_prob = 0.2;
    spec.flash_crowd_prob = 0.0;
    wl::TrafficGenerator gen(spec, ml::Rng(2));
    double lo = 1e18, hi = 0.0;
    for (int t = 0; t < 3000; ++t) {
        const double pps = gen.next_epoch(t).pps;
        lo = std::min(lo, pps);
        hi = std::max(hi, pps);
    }
    // High state is 10x the low state; observed spread must reflect that.
    EXPECT_GT(hi / lo, 5.0);
}

TEST(TrafficGenerator, DiurnalPatternVisible) {
    wl::TrafficSpec spec;
    spec.base_pps = 100e3;
    spec.diurnal_amplitude = 0.5;
    spec.burst_ratio = 1.0;
    spec.flash_crowd_prob = 0.0;
    spec.epochs_per_day = 96;
    wl::TrafficGenerator gen(spec, ml::Rng(3));
    // Average the peak-phase and trough-phase epochs over several days.
    double peak = 0.0, trough = 0.0;
    int count = 0;
    for (int day = 0; day < 30; ++day) {
        peak += gen.next_epoch(day * 96 + 24).pps;    // sin = +1 quarter
        trough += gen.next_epoch(day * 96 + 72).pps;  // sin = -1 quarter
        ++count;
    }
    EXPECT_GT(peak / count, 1.5 * trough / count);
}

TEST(TrafficGenerator, FlashCrowdSpikes) {
    wl::TrafficSpec spec;
    spec.base_pps = 10e3;
    spec.diurnal_amplitude = 0.0;
    spec.burst_ratio = 1.0;
    spec.flash_crowd_prob = 0.2;
    spec.flash_crowd_mult = 10.0;
    wl::TrafficGenerator gen(spec, ml::Rng(4));
    int spikes = 0;
    for (int t = 0; t < 1000; ++t) spikes += gen.next_epoch(t).pps > 50e3;
    EXPECT_GT(spikes, 100);  // ~200 expected
    EXPECT_LT(spikes, 320);
}

TEST(TrafficGenerator, PacketSizesWithinEthernetBounds) {
    wl::TrafficSpec spec;
    spec.pkt_bytes_mean = 700.0;
    spec.pkt_bytes_jitter = 1.0;  // extreme jitter still clamps
    wl::TrafficGenerator gen(spec, ml::Rng(5));
    for (int t = 0; t < 500; ++t) {
        const auto load = gen.next_epoch(t);
        EXPECT_GE(load.avg_pkt_bytes, 64.0);
        EXPECT_LE(load.avg_pkt_bytes, 1500.0);
    }
}

TEST(TrafficGenerator, FlowsScaleWithRate) {
    wl::TrafficSpec spec;
    spec.base_pps = 100e3;
    spec.flows_per_kpps = 100.0;
    spec.diurnal_amplitude = 0.0;
    spec.burst_ratio = 1.0;
    spec.flash_crowd_prob = 0.0;
    wl::TrafficGenerator gen(spec, ml::Rng(6));
    double sum = 0.0;
    const int n = 3000;
    for (int t = 0; t < n; ++t) sum += gen.next_epoch(t).active_flows;
    // Pareto noise is normalized to mean 1, so mean flows ~ 10k.
    EXPECT_NEAR(sum / n, 1e4, 2.5e3);
}

TEST(TrafficGenerator, Ca2PropagatedToLoads) {
    wl::TrafficSpec spec;
    spec.burst_ratio = 6.0;
    wl::TrafficGenerator gen(spec, ml::Rng(7));
    const auto load = gen.next_epoch(0);
    EXPECT_NEAR(load.burstiness_ca2, wl::mmpp_ca2(spec), 1e-12);
    EXPECT_GT(load.burstiness_ca2, 1.0);
}

TEST(TrafficGenerator, RejectsBadSpecs) {
    wl::TrafficSpec bad_rate;
    bad_rate.base_pps = 0.0;
    EXPECT_THROW(wl::TrafficGenerator(bad_rate, ml::Rng(8)), std::invalid_argument);
    wl::TrafficSpec bad_diurnal;
    bad_diurnal.diurnal_amplitude = 1.5;
    EXPECT_THROW(wl::TrafficGenerator(bad_diurnal, ml::Rng(9)), std::invalid_argument);
}

TEST(TrafficGenerator, DeterministicGivenSeed) {
    wl::TrafficSpec spec;
    wl::TrafficGenerator a(spec, ml::Rng(42));
    wl::TrafficGenerator b(spec, ml::Rng(42));
    for (int t = 0; t < 50; ++t)
        EXPECT_DOUBLE_EQ(a.next_epoch(t).pps, b.next_epoch(t).pps);
}

TEST(OfferedLoad, BpsConsistency) {
    const xnfv::nfv::OfferedLoad load{.pps = 1000.0, .avg_pkt_bytes = 500.0};
    EXPECT_DOUBLE_EQ(load.bps(), 1000.0 * 500.0 * 8.0);
}
