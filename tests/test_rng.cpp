#include "mlcore/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace ml = xnfv::ml;

TEST(Rng, SameSeedSameSequence) {
    ml::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    ml::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
    ml::Rng a(7);
    const auto first = a.next_u64();
    (void)a.next_u64();
    a.reseed(7);
    EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
    ml::Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance) {
    ml::Rng rng(4);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
    ml::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 7.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 7.0);
    }
}

TEST(Rng, UniformIndexCoversAllValues) {
    ml::Rng rng(6);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i) ++counts[rng.uniform_index(10)];
    for (int c : counts) EXPECT_GT(c, 700);  // expected 1000 each
}

TEST(Rng, UniformIntInclusiveBounds) {
    ml::Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const long long v = rng.uniform_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
    ml::Rng rng(8);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ExponentialMean) {
    ml::Rng rng(9);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoExceedsScaleAndHasHeavyTail) {
    ml::Rng rng(10);
    const int n = 100000;
    int tail = 0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.pareto(1.0, 2.0);
        EXPECT_GE(v, 1.0);
        tail += v > 10.0;
    }
    // P(X > 10) = 10^-2 = 1% for alpha = 2.
    EXPECT_NEAR(static_cast<double>(tail) / n, 0.01, 0.004);
}

TEST(Rng, LognormalMedian) {
    ml::Rng rng(11);
    std::vector<double> v(50001);
    for (auto& x : v) x = rng.lognormal(1.0, 0.5);
    std::nth_element(v.begin(), v.begin() + 25000, v.end());
    EXPECT_NEAR(v[25000], std::exp(1.0), 0.08);
}

TEST(Rng, PoissonSmallMean) {
    ml::Rng rng(12);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
    EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
    ml::Rng rng(13);
    const int n = 50000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = static_cast<double>(rng.poisson(200.0));
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 200.0, 1.0);
    EXPECT_NEAR(sum_sq / n - mean * mean, 200.0, 15.0);  // Poisson: var == mean
}

TEST(Rng, PoissonZeroMeanIsZero) {
    ml::Rng rng(21);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliRate) {
    ml::Rng rng(14);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 1e5, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
    ml::Rng rng(15);
    const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 100000; ++i) ++counts[rng.weighted_index(w)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / 1e5, 0.1, 0.01);
    EXPECT_NEAR(counts[1] / 1e5, 0.3, 0.01);
    EXPECT_NEAR(counts[3] / 1e5, 0.6, 0.01);
}

TEST(Rng, WeightedIndexAllZeroFallsBack) {
    ml::Rng rng(16);
    const std::vector<double> w{0.0, 0.0, 0.0};
    EXPECT_EQ(rng.weighted_index(w), 2u);
}

TEST(Rng, ShuffleIsPermutation) {
    ml::Rng rng(17);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(v, shuffled);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    ml::Rng rng(18);
    const auto s = rng.sample_without_replacement(50, 20);
    EXPECT_EQ(s.size(), 20u);
    const std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (std::size_t i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithoutReplacementClampsK) {
    ml::Rng rng(19);
    const auto s = rng.sample_without_replacement(5, 99);
    EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, SplitProducesIndependentStream) {
    ml::Rng parent(20);
    ml::Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) same += parent.next_u64() == child.next_u64();
    EXPECT_LT(same, 3);
}

// Property sweep: distribution moments hold across seeds, including edge
// seeds 0 and ~0.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds) {
    ml::Rng rng(GetParam());
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / 50000.0, 0.5, 0.02);
}

TEST_P(RngSeedSweep, NormalSymmetryAcrossSeeds) {
    ml::Rng rng(GetParam());
    int positive = 0;
    for (int i = 0; i < 50000; ++i) positive += rng.normal() > 0.0;
    EXPECT_NEAR(positive / 5e4, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ULL, 42ULL, 1234567ULL, 0ULL,
                                           0xffffffffffffffffULL));
