// Connection-scaling soak tests for the sharded TCP front-end: 10k
// concurrent loopback connections at toy model size with zero dropped or
// garbled responses, exact fleet-wide connection-limit accounting, and a
// SIGTERM-style graceful drain that flushes every in-flight batch.
//
// Scale handling: one loopback connection costs two fds in-process (client
// and accepted side).  The suite raises RLIMIT_NOFILE toward the hard cap;
// if the target still does not fit in one process, the client side runs in
// a fork()ed child with its own fd table (the child only runs the epoll
// load generator, validates response bytes against precomputed expected
// lines, and reports a fixed-size summary over a pipe — safe after fork
// from a threaded parent on glibc).  CI sanitizer jobs set XNFV_SOAK_CONNS
// to a reduced size that stays single-process.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/sharded_server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kHotRows = 8;

struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 200;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 6});
        out.forest->fit(out.data, rng);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

net::ShardedServer::RowLookup row_lookup() {
    return [](std::size_t row, std::vector<double>& features) {
        const auto& sc = scenario();
        if (row >= sc.data.size()) return false;
        const auto x = sc.data.x.row(row);
        features.assign(x.begin(), x.end());
        return true;
    };
}

std::string row_request(std::uint64_t id, std::size_t row) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    w.field("row", static_cast<std::uint64_t>(row));
    w.field("seed", kSeed);
    return w.finish();
}

/// "cache_hit" is cross-connection-timing-dependent (whoever computes the
/// hot row first misses); everything else in the line must be exact.
std::string normalize_hit(std::string line) {
    for (const char* variant : {"\"cache_hit\":true", "\"cache_hit\":false"}) {
        const auto at = line.find(variant);
        if (at != std::string::npos) {
            line.replace(at, std::string(variant).size(), "\"cache_hit\":_");
            break;
        }
    }
    return line;
}

/// Expected (normalized) response line for request `id` on hot row `row`:
/// fresh one-shot explainer, shared wire renderer — the determinism
/// contract's ground truth.
std::string expected_normalized(std::uint64_t id, std::size_t row) {
    const auto& s = scenario();
    const auto explainer = serve::make_explainer("tree_shap", s.background, kSeed);
    serve::ExplainResponse r;
    r.id = id;
    r.ok = true;
    r.explanation = explainer->explain(*s.forest, s.data.x.row(row));
    return normalize_hit(serve::render_response(r));
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (!raw || !*raw) return fallback;
    const long value = std::atol(raw);
    return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

/// Raise the soft fd limit as far as allowed; returns the resulting cap.
std::size_t raise_fd_limit() {
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
    if (lim.rlim_cur < lim.rlim_max) {
        lim.rlim_cur = lim.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &lim);
        ::getrlimit(RLIMIT_NOFILE, &lim);
    }
    return static_cast<std::size_t>(lim.rlim_cur);
}

struct SoakHarness {
    std::unique_ptr<net::ShardedServer> server;
    std::thread thread;

    explicit SoakHarness(std::size_t shards, std::size_t max_conns,
                         std::size_t queue_depth = 4096) {
        const auto& s = scenario();
        serve::ServiceConfig cfg;
        cfg.method = "tree_shap";
        cfg.seed = kSeed;
        cfg.queue_depth = queue_depth;
        cfg.max_batch = 16;
        cfg.max_wait = std::chrono::microseconds(100);
        cfg.cache_capacity = 4096;
        net::ShardedServerConfig shcfg;
        shcfg.shards = shards;
        shcfg.net.max_connections = max_conns;
        server = std::make_unique<net::ShardedServer>(s.forest, s.background,
                                                      cfg, shcfg);
        server->set_row_lookup(row_lookup());
        std::string error;
        if (!server->start(&error))
            throw std::runtime_error("start failed: " + error);
        thread = std::thread([this] { server->run(); });
    }

    ~SoakHarness() { stop(); }

    void stop() {
        if (server) server->request_drain();
        if (thread.joinable()) thread.join();
        if (server) server->stop_services();
    }
};

/// Fixed-size child-to-parent summary for the fork path.
struct SoakSummary {
    std::uint64_t total_lines = 0;
    std::uint64_t bad_lines = 0;       ///< bytes not matching expected
    std::uint64_t short_conns = 0;     ///< fewer lines than scripted
    std::uint64_t connect_failed = 0;
    std::uint64_t io_errors = 0;
    std::uint64_t truncated = 0;       ///< partial trailing line
    std::uint64_t timed_out = 0;
};

/// Runs the storm and validates every response byte.  Callable in-process
/// or inside a fork()ed child.
SoakSummary run_storm(std::uint16_t port,
                      const std::vector<std::vector<std::string>>& scripts,
                      std::size_t per_conn,
                      const std::vector<std::string>& expected_by_row) {
    net::LoadgenConfig lg;
    lg.port = port;
    lg.window = 2;
    lg.timeout = std::chrono::milliseconds(300000);
    const auto report = net::run_load(lg, scripts);
    SoakSummary sum;
    sum.timed_out = report.timed_out ? 1 : 0;
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        if (conn.connect_failed) {
            ++sum.connect_failed;
            continue;
        }
        if (conn.io_error) ++sum.io_errors;
        if (!conn.partial.empty()) ++sum.truncated;
        if (conn.lines.size() != per_conn) ++sum.short_conns;
        for (std::size_t i = 0; i < conn.lines.size(); ++i) {
            ++sum.total_lines;
            // Request i of connection c asked for hot row (c + i) % kHotRows
            // with id i + 1 — recompute what the bytes must be.
            const auto row = (c + i) % kHotRows;
            std::string want = expected_by_row[row];
            const auto id_field = "\"id\":" + std::to_string(i + 1) + ",";
            // expected_by_row is rendered with id 0; patch the id in.
            want.replace(want.find("\"id\":0,"), 7, id_field);
            if (normalize_hit(conn.lines[i]) != want) ++sum.bad_lines;
        }
    }
    return sum;
}

}  // namespace

TEST(NetSoak, TenThousandConcurrentConnectionsZeroDrops) {
    const std::size_t target = env_size("XNFV_SOAK_CONNS", 10000);
    const std::size_t fd_cap = raise_fd_limit();
    const std::size_t per_conn = 2;

    // Two fds per in-process connection pair + headroom for the server's
    // listeners/epoll/eventfds and the test runner's own files.
    const bool needs_fork = 2 * target + 512 > fd_cap;
    const std::size_t conns =
        needs_fork ? std::min(target, fd_cap - 512)  // server side only
                   : target;
    ASSERT_GE(conns, 64u) << "fd limit too low for a meaningful soak";

    std::vector<std::string> expected_by_row(kHotRows);
    for (std::size_t r = 0; r < kHotRows; ++r)
        expected_by_row[r] = expected_normalized(0, r);

    std::vector<std::vector<std::string>> scripts(conns);
    for (std::size_t c = 0; c < conns; ++c) {
        for (std::size_t i = 0; i < per_conn; ++i)
            scripts[c].push_back(row_request(i + 1, (c + i) % kHotRows));
        scripts[c].push_back("{\"op\":\"quit\"}");
    }

    SoakHarness harness(4, conns + 64, /*queue_depth=*/8192);
    const auto port = harness.server->port();

    SoakSummary sum;
    if (!needs_fork) {
        sum = run_storm(port, scripts, per_conn, expected_by_row);
    } else {
        int pipefd[2];
        ASSERT_EQ(::pipe(pipefd), 0);
        const pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            // Child: fresh fd table, full copy of scripts/expected in
            // memory.  Only the load generator runs here; _exit skips
            // destructors that would touch the parent's server threads.
            ::close(pipefd[0]);
            const auto s = run_storm(port, scripts, per_conn, expected_by_row);
            const auto written = ::write(pipefd[1], &s, sizeof(s));
            ::_exit(written == sizeof(s) ? 0 : 1);
        }
        ::close(pipefd[1]);
        ASSERT_EQ(::read(pipefd[0], &sum, sizeof(sum)),
                  static_cast<ssize_t>(sizeof(sum)));
        ::close(pipefd[0]);
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    const auto stats = harness.server->stats();
    harness.stop();

    EXPECT_EQ(sum.timed_out, 0u);
    EXPECT_EQ(sum.connect_failed, 0u);
    EXPECT_EQ(sum.io_errors, 0u);
    EXPECT_EQ(sum.truncated, 0u) << "garbled (torn) response line";
    EXPECT_EQ(sum.short_conns, 0u) << "dropped responses";
    EXPECT_EQ(sum.bad_lines, 0u) << "garbled response bytes";
    EXPECT_EQ(sum.total_lines, conns * per_conn);
    EXPECT_EQ(stats.connections_accepted, conns);
    EXPECT_EQ(stats.connections_rejected, 0u);
    EXPECT_EQ(stats.net_requests, conns * per_conn);
    EXPECT_EQ(stats.net_shards, 4u);
    // With > 1 shard and this many connections the kernel must actually
    // spread them: no shard may have seen everything.
    if (conns >= 1024) {
        for (std::size_t s = 0; s < harness.server->shards(); ++s)
            EXPECT_LT(harness.server->server(s).stats().connections_accepted,
                      conns)
                << "shard " << s << " took every connection";
    }
}

TEST(NetSoak, ConnectionLimitRejectsCountedExactly) {
    // Fill the fleet-wide budget with held connections, then storm: every
    // storm connection must get exactly one backpressure error line and a
    // close, and the reject counter must equal the storm size exactly —
    // kernel hashing across 4 reuseport shards must not overshoot a shared
    // budget.
    constexpr std::size_t kLimit = 32;
    constexpr std::size_t kStorm = 300;
    SoakHarness harness(4, kLimit);
    const auto port = harness.server->port();

    std::vector<net::Client> holders(kLimit);
    std::string line;
    for (std::size_t i = 0; i < kLimit; ++i) {
        ASSERT_TRUE(holders[i].connect("127.0.0.1", port));
        ASSERT_TRUE(holders[i].send_line(row_request(1, i % kHotRows)));
        ASSERT_TRUE(holders[i].recv_line(line, 30000ms));  // established + served
    }

    serve::ExplainResponse reject;
    reject.id = 0;
    reject.error_code = serve::ServeError::backpressure;
    reject.error = "connection limit reached";
    const auto reject_line = serve::render_response(reject);

    std::vector<std::vector<std::string>> scripts(
        kStorm, std::vector<std::string>{row_request(1, 0)});
    net::LoadgenConfig lg;
    lg.port = port;
    lg.shutdown_writes = true;
    lg.timeout = std::chrono::milliseconds(60000);
    const auto report = net::run_load(lg, scripts);
    ASSERT_FALSE(report.timed_out);
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        ASSERT_FALSE(conn.connect_failed) << "conn " << c;
        ASSERT_EQ(conn.lines.size(), 1u) << "conn " << c;
        EXPECT_EQ(conn.lines[0], reject_line) << "conn " << c;
    }

    auto stats = harness.server->stats();
    EXPECT_EQ(stats.connections_rejected, kStorm);
    EXPECT_EQ(stats.connections_accepted, kLimit);

    // Releasing a held connection must free budget for a new one.  Retries
    // while the shard is still noticing the FIN may themselves be rejected;
    // each such attempt must move the counter by exactly one.
    holders[0].close();
    net::Client fresh;
    line.clear();
    std::uint64_t retry_rejects = 0;
    for (int attempt = 0; attempt < 200; ++attempt) {
        if (fresh.connect("127.0.0.1", port) &&
            fresh.send_line(row_request(7, 3)) && fresh.recv_line(line, 30000ms) &&
            line.find("\"ok\":true") != std::string::npos)
            break;
        if (line.find("backpressure") != std::string::npos) ++retry_rejects;
        fresh = net::Client();
        line.clear();
        std::this_thread::sleep_for(20ms);
    }
    EXPECT_NE(line.find("\"id\":7"), std::string::npos)
        << "budget not released after close";
    stats = harness.server->stats();
    EXPECT_EQ(stats.connections_rejected, kStorm + retry_rejects)
        << "reject counter drifted from the true reject count";
}

TEST(NetSoak, GracefulDrainFlushesEveryInFlightBatch) {
    // SIGTERM semantics (request_drain is exactly what the CLI handler
    // calls): stop accepting and reading, but every admitted request is
    // served and flushed before run() returns — clients see a clean EOF
    // after a valid prefix of their expected response stream.
    const std::size_t conns = std::min<std::size_t>(
        64, std::max<std::size_t>(8, env_size("XNFV_SOAK_CONNS", 10000) / 64));
    const std::size_t per_conn = 50;
    SoakHarness harness(2, conns + 16, /*queue_depth=*/4096);
    const auto port = harness.server->port();

    std::vector<std::string> expected_by_row(kHotRows);
    for (std::size_t r = 0; r < kHotRows; ++r)
        expected_by_row[r] = expected_normalized(0, r);

    std::vector<std::vector<std::string>> scripts(conns);
    for (std::size_t c = 0; c < conns; ++c)
        for (std::size_t i = 0; i < per_conn; ++i)
            scripts[c].push_back(row_request(i + 1, (c + i) % kHotRows));
    // No quit and no half-close: only the drain ends these connections.

    net::LoadgenConfig lg;
    lg.port = port;
    lg.window = 8;
    lg.timeout = std::chrono::milliseconds(120000);
    net::LoadReport report;
    std::thread load([&] { report = net::run_load(lg, scripts); });
    std::this_thread::sleep_for(30ms);  // mid-flight
    harness.server->request_drain();
    load.join();

    ASSERT_FALSE(report.timed_out);
    std::uint64_t received = 0;
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        ASSERT_FALSE(conn.connect_failed) << "conn " << c;
        EXPECT_TRUE(conn.eof) << "conn " << c << " not closed cleanly";
        EXPECT_TRUE(conn.partial.empty()) << "conn " << c << " torn line";
        ASSERT_LE(conn.lines.size(), per_conn);
        for (std::size_t i = 0; i < conn.lines.size(); ++i) {
            const auto row = (c + i) % kHotRows;
            std::string want = expected_by_row[row];
            want.replace(want.find("\"id\":0,"), 7,
                         "\"id\":" + std::to_string(i + 1) + ",");
            ASSERT_EQ(normalize_hit(conn.lines[i]), want)
                << "conn " << c << " line " << i
                << " garbled across the drain";
        }
        received += conn.lines.size();
    }

    // Nothing admitted was dropped: the service completed exactly as many
    // requests as clients got lines for, and accepted == completed.
    const auto stats = harness.server->stats();
    EXPECT_EQ(stats.requests_accepted, stats.requests_completed);
    EXPECT_EQ(stats.requests_completed, received);
    EXPECT_EQ(stats.requests_rejected, 0u);
}
