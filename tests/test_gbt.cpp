#include "mlcore/gbt.hpp"

#include <gtest/gtest.h>

#include "mlcore/linear.hpp"
#include "mlcore/metrics.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_logistic_dataset;
using xnfv::testutil::make_xor_dataset;

TEST(Gbt, RegressionFitsSmoothFunction) {
    ml::Rng rng(1);
    const auto d = make_linear_dataset(std::vector<double>{3.0, -2.0}, 1.0, 1000, rng, 0.1);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 150,
                                                                  .learning_rate = 0.1});
    gbt.fit(d, rng);
    EXPECT_GT(ml::r2_score(d.y, gbt.predict_batch(d.x)), 0.95);
}

TEST(Gbt, MoreRoundsReduceTrainError) {
    ml::Rng rng(2);
    const auto d = make_linear_dataset(std::vector<double>{2.0}, 0.0, 500, rng);
    ml::Rng ra(9), rb(9);
    ml::GradientBoostedTrees few(ml::GradientBoostedTrees::Config{.num_rounds = 5});
    ml::GradientBoostedTrees many(ml::GradientBoostedTrees::Config{.num_rounds = 100});
    few.fit(d, ra);
    many.fit(d, rb);
    EXPECT_LT(ml::mse(d.y, many.predict_batch(d.x)), ml::mse(d.y, few.predict_batch(d.x)));
}

TEST(Gbt, BaseScoreIsMeanForRegression) {
    ml::Rng rng(3);
    auto d = make_linear_dataset(std::vector<double>{1.0}, 5.0, 200, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 1});
    gbt.fit(d, rng);
    double mean = 0.0;
    for (double v : d.y) mean += v;
    mean /= static_cast<double>(d.size());
    EXPECT_NEAR(gbt.base_score(), mean, 1e-9);
}

TEST(Gbt, ClassificationSolvesXor) {
    ml::Rng rng(4);
    const auto d = make_xor_dataset(1200, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 80});
    gbt.fit(d, rng);
    EXPECT_GT(ml::roc_auc(d.y, gbt.predict_batch(d.x)), 0.97);
}

TEST(Gbt, ClassificationOutputsProbabilities) {
    ml::Rng rng(5);
    const auto d = make_logistic_dataset(std::vector<double>{2.0}, 0.0, 400, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 30});
    gbt.fit(d, rng);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const double p = gbt.predict(d.x.row(i));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Gbt, MarginAndProbabilityConsistent) {
    ml::Rng rng(6);
    const auto d = make_logistic_dataset(std::vector<double>{2.0, 1.0}, 0.0, 500, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 20});
    gbt.fit(d, rng);
    for (std::size_t i = 0; i < 20; ++i) {
        const auto x = d.x.row(i);
        EXPECT_NEAR(gbt.predict(x), ml::sigmoid(gbt.predict_margin(x)), 1e-12);
    }
}

TEST(Gbt, MarginEqualsPredictForRegression) {
    ml::Rng rng(7);
    const auto d = make_linear_dataset(std::vector<double>{1.0}, 0.0, 200, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 10});
    gbt.fit(d, rng);
    const std::vector<double> x{0.5};
    EXPECT_DOUBLE_EQ(gbt.predict(x), gbt.predict_margin(x));
}

TEST(Gbt, SubsamplingStillLearns) {
    ml::Rng rng(8);
    const auto d = make_linear_dataset(std::vector<double>{4.0}, 0.0, 800, rng, 0.2);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{
        .num_rounds = 120, .learning_rate = 0.1, .subsample = 0.5});
    gbt.fit(d, rng);
    EXPECT_GT(ml::r2_score(d.y, gbt.predict_batch(d.x)), 0.9);
}

TEST(Gbt, ImportancesNormalizedAndInformative) {
    ml::Rng rng(9);
    ml::Dataset d;
    d.task = ml::Task::regression;
    for (int i = 0; i < 600; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        d.add(std::vector<double>{a, b}, 7.0 * a);
    }
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 40});
    gbt.fit(d, rng);
    const auto imp = gbt.feature_importances();
    EXPECT_GT(imp[0], 0.8);
    EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(Gbt, ThrowsOnMisuse) {
    ml::Rng rng(10);
    ml::GradientBoostedTrees gbt;
    EXPECT_THROW((void)gbt.predict(std::vector<double>{1.0}), std::logic_error);
    EXPECT_THROW(gbt.fit(ml::Dataset{}, rng), std::invalid_argument);
}

// Sweep: learning-rate / rounds trade-off — with rounds scaled inversely to
// the learning rate, all configurations reach a good fit.
class GbtLrSweep : public ::testing::TestWithParam<double> {};

TEST_P(GbtLrSweep, EquivalentBudgetsFitWell) {
    const double lr = GetParam();
    ml::Rng rng(11);
    const auto d = make_linear_dataset(std::vector<double>{2.0, -1.0}, 0.0, 600, rng, 0.1);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{
        .num_rounds = static_cast<std::size_t>(20.0 / lr), .learning_rate = lr});
    gbt.fit(d, rng);
    EXPECT_GT(ml::r2_score(d.y, gbt.predict_batch(d.x)), 0.9);
}

INSTANTIATE_TEST_SUITE_P(LearningRates, GbtLrSweep, ::testing::Values(0.05, 0.1, 0.2, 0.4));
