// ThreadPool / parallel_for / parallel_reduce unit tests.
//
// The contracts under test are exactly the ones the explanation engine
// leans on: every index visited exactly once regardless of thread count,
// worker exceptions propagate to the caller, pools are reusable across
// submissions, nested loops don't deadlock, and ordered reduction is
// bitwise-stable across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "mlcore/rng.hpp"

namespace ml = xnfv::ml;

TEST(ThreadPool, RunsSubmittedTasks) {
    xnfv::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
    xnfv::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] {});
    f.get();
}

TEST(ThreadPool, ReusableAcrossSubmissionBatches) {
    xnfv::ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 5; ++batch) {
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 20; ++i)
            futures.push_back(pool.submit([&counter] { ++counter; }));
        for (auto& f : futures) f.get();
        EXPECT_EQ(counter.load(), (batch + 1) * 20);
    }
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
    xnfv::ThreadPool pool(2);
    auto f = pool.submit([] { throw std::runtime_error("worker boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto ok = pool.submit([] {});
    ok.get();
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction) {
    std::atomic<int> counter{0};
    {
        xnfv::ThreadPool pool(1);
        for (int i = 0; i < 50; ++i) (void)pool.submit([&counter] { ++counter; });
    }  // destructor must run all 50 before joining
    EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
    std::atomic<int> calls{0};
    xnfv::parallel_for(0, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanThreadCountVisitsEachIndexOnce) {
    const std::size_t n = 3;
    std::vector<std::atomic<int>> visits(n);
    xnfv::parallel_for(n, 16, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
    const std::size_t n = 10'000;
    std::vector<std::atomic<int>> visits(n);
    xnfv::parallel_for(n, 7, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, ExceptionInWorkerTaskPropagatesToCaller) {
    EXPECT_THROW(xnfv::parallel_for(100, 4,
                                    [](std::size_t i) {
                                        if (i == 57) throw std::invalid_argument("index 57");
                                    }),
                 std::invalid_argument);
    // The shared pool keeps working afterwards.
    std::atomic<int> counter{0};
    xnfv::parallel_for(100, 4, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, NestedLoopRunsInlineWithoutDeadlock) {
    std::atomic<int> inner_total{0};
    xnfv::parallel_for(8, 4, [&](std::size_t) {
        xnfv::parallel_for(10, 4, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 80);
}

TEST(ParallelFor, StressManyIterationsUnderContention) {
    std::atomic<long> total{0};
    for (int iter = 0; iter < 200; ++iter)
        xnfv::parallel_for(500, 8, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 200L * 500L);
}

TEST(ParallelForChunks, CoversTheRangeWithDisjointChunks) {
    const std::size_t n = 1003;  // deliberately not a multiple of the thread count
    std::vector<std::atomic<int>> visits(n);
    xnfv::parallel_for_chunks(n, 6, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        for (std::size_t i = begin; i < end; ++i) ++visits[i];
    });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelReduce, OrderedFoldIsBitwiseStableAcrossThreadCounts) {
    // Sum of magnitudes spanning ~16 decimal orders: any reassociation of
    // the fold changes the rounding, so bitwise equality across thread
    // counts proves the merge tree is fixed.
    const std::size_t n = 4096;
    ml::Rng rng(7);
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-8, 8));

    const auto sum_with = [&](std::size_t threads) {
        return xnfv::parallel_reduce(
            n, threads, 0.0, [&](std::size_t i) { return values[i]; },
            [](double acc, double v) { return acc + v; });
    };
    const double t1 = sum_with(1);
    EXPECT_EQ(t1, sum_with(2));
    EXPECT_EQ(t1, sum_with(8));
    EXPECT_EQ(t1, sum_with(13));
}

TEST(DefaultThreads, OverrideAndRestore) {
    const std::size_t hw = xnfv::default_threads();
    EXPECT_GE(hw, 1u);
    xnfv::set_default_threads(3);
    EXPECT_EQ(xnfv::default_threads(), 3u);
    EXPECT_EQ(xnfv::resolve_threads(0), 3u);
    EXPECT_EQ(xnfv::resolve_threads(5), 5u);
    xnfv::set_default_threads(0);
    EXPECT_EQ(xnfv::default_threads(), hw);
}

TEST(RngStream, KeyedStreamsAreReproducibleAndIndependent) {
    // Same (seed, index) -> identical sequence, no matter when constructed.
    auto a = ml::Rng::stream(42, 7);
    auto b = ml::Rng::stream(42, 7);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

    // Different indices (and seeds) diverge immediately.
    auto c = ml::Rng::stream(42, 8);
    auto d = ml::Rng::stream(43, 7);
    auto base = ml::Rng::stream(42, 7);
    const auto v = base.next_u64();
    EXPECT_NE(v, c.next_u64());
    EXPECT_NE(v, d.next_u64());
}
