// Heap-churn guards for the batched inference path.
//
// The blocked probe rewrites exist to stop allocating per coalition/probe:
// flattened tree kernels write into caller buffers, and explainers reuse one
// ProbeScratch per task.  These tests count global operator new calls to pin
// that down: a warm predict_batch allocates nothing, and an explainer's
// allocation count does not grow with the number of background rows (the old
// per-probe loop allocated per evaluation).
//
// The counting operator new replacement is incompatible with sanitizer
// interceptors — keep this binary out of the ASan/TSan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/kernel_shap.hpp"
#include "core/occlusion.hpp"
#include "core/parallel.hpp"
#include "golden_scenario.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/rng.hpp"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;

namespace {

template <typename Fn>
std::uint64_t count_allocs(Fn&& fn) {
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    fn();
    g_counting.store(false, std::memory_order_relaxed);
    return g_allocs.load(std::memory_order_relaxed);
}

ml::Matrix random_matrix(std::size_t rows, std::size_t cols, ml::Rng& rng) {
    ml::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-2.0, 2.0);
    return m;
}

}  // namespace

TEST(ProbeAlloc, WarmPredictBatchAllocatesNothing) {
    // threads=1 keeps parallel_for_chunks inline, so the only possible
    // allocations are the kernels' own — and the flattened kernels write
    // straight into the caller's buffer.
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto gbt = xnfv::golden::make_gbt(data);
    ml::Rng rng(123);
    const auto x = random_matrix(300, data.num_features(), rng);
    std::vector<double> out(x.rows());
    xnfv::set_default_threads(1);
    forest.predict_batch(x, out);  // warm-up
    gbt.predict_batch(x, out);
    EXPECT_EQ(count_allocs([&] { forest.predict_batch(x, out); }), 0u);
    EXPECT_EQ(count_allocs([&] { gbt.predict_batch(x, out); }), 0u);
    xnfv::set_default_threads(0);  // restore hardware default
}

TEST(ProbeAlloc, OcclusionAllocationCountIndependentOfBackgroundSize) {
    // The legacy loop allocated one probe vector per (feature, background
    // row) evaluation; the blocked path allocates a constant number of
    // scratch buffers per explain() regardless of background size.
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto x = data.x.row(3);
    const auto allocs_with_bg = [&](std::size_t bg_rows) {
        xai::Occlusion occ(xai::BackgroundData(data.x, bg_rows),
                           xai::Occlusion::Config{.threads = 1});
        (void)occ.explain(forest, x);  // warm: base-value cache, pool state
        return count_allocs([&] { (void)occ.explain(forest, x); });
    };
    const auto small = allocs_with_bg(16);
    const auto large = allocs_with_bg(64);
    EXPECT_EQ(small, large) << "allocation count must not scale with background rows";
}

TEST(ProbeAlloc, KernelShapAllocationCountIndependentOfBackgroundSize) {
    // Same invariant for the coalition path: scratch blocks are reused, so
    // only the per-call containers (masks, weights, WLS design) allocate —
    // all sized by the coalition budget, not by background rows.
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto x = data.x.row(3);
    const auto allocs_with_bg = [&](std::size_t bg_rows) {
        xai::KernelShap ks(xai::BackgroundData(data.x, bg_rows), ml::Rng(7),
                           xai::KernelShap::Config{.max_coalitions = 64, .threads = 1});
        (void)ks.explain(forest, x);
        return count_allocs([&] { (void)ks.explain(forest, x); });
    };
    const auto small = allocs_with_bg(16);
    const auto large = allocs_with_bg(64);
    EXPECT_EQ(small, large) << "allocation count must not scale with background rows";
}
