// Closed-loop scenario driver (src/scenario/driver.hpp) against in-process
// servers.
//
// The determinism contract under test: for a fixed (seed, scenario,
// geometry) the simulated event trace is a pure function of the config —
// identical across reruns and across server shard counts — and the
// id-sorted response bytes are identical too when the fleet's features are
// unique (no cache hits) and degradation is disabled.  A second suite arms
// the degradation ladder and drift detection and asserts the flash-crowd
// phase demonstrably drives them: degraded responses and drift flushes are
// how the serving stack is supposed to absorb a flash crowd, and the
// driver's SLO report is where operators see that happen.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "net/sharded_server.hpp"
#include "scenario/driver.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;
namespace scn = xnfv::scenario;

namespace {

/// A forest trained on full-telemetry rows of the same scenario family the
/// driver replays, so served explanations see in-distribution features.
struct Fixture {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
};

const Fixture& fixture() {
    static const Fixture f = [] {
        Fixture out;
        ml::Rng rng(7);
        wl::BuildOptions opt;
        opt.num_samples = 400;
        out.data =
            wl::build_dataset(wl::standard_scenarios()[1], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 8});
        out.forest->fit(out.data, rng);
        return out;
    }();
    return f;
}

/// Starts a sharded server with `cfg`, runs the driver, tears down.
scn::DriverReport drive(const serve::ServiceConfig& cfg, std::size_t shards,
                        const scn::DriverConfig& base) {
    const auto& f = fixture();
    net::ShardedServerConfig shcfg;
    shcfg.shards = shards;
    net::ShardedServer server(f.forest, xai::BackgroundData(f.data.x, 32), cfg,
                              shcfg);
    std::string error;
    if (!server.start(&error)) throw std::runtime_error(error);
    std::thread loop([&server] { server.run(); });
    scn::DriverConfig dcfg = base;
    dcfg.port = server.port();
    const auto report = scn::run_scenario(dcfg);
    server.request_drain();
    loop.join();
    server.stop_services();
    return report;
}

serve::ServiceConfig plain_config() {
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = 11;
    cfg.queue_depth = 512;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(100);
    cfg.cache_capacity = 4096;
    return cfg;
}

scn::DriverConfig small_driver() {
    scn::DriverConfig dcfg;
    dcfg.scenario = "enterprise_edge";
    dcfg.seed = 41;
    dcfg.deployments = 1;
    dcfg.connections = 4;
    dcfg.epochs_per_phase = 2;
    dcfg.window = 2;
    dcfg.method = "tree_shap";
    dcfg.flash_mult = 8.0;
    return dcfg;
}

}  // namespace

TEST(ScenarioDriver, UnknownScenarioThrows) {
    scn::DriverConfig dcfg;
    dcfg.scenario = "no_such_pop";
    dcfg.port = 1;
    EXPECT_THROW((void)scn::run_scenario(dcfg), std::runtime_error);
}

TEST(ScenarioDriver, TraceAndResponsesAreIdenticalAcrossReruns) {
    const auto a = drive(plain_config(), 1, small_driver());
    const auto b = drive(plain_config(), 1, small_driver());
    ASSERT_TRUE(a.transport_ok) << a.error;
    ASSERT_TRUE(b.transport_ok) << b.error;
    ASSERT_EQ(a.phases.size(), 3u);
    EXPECT_EQ(a.phases[0].name, "baseline");
    EXPECT_EQ(a.phases[1].name, "flash_crowd");
    EXPECT_EQ(a.phases[2].name, "remediated");

    // The simulated event trace never touches the server: byte-for-byte.
    ASSERT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_FALSE(a.trace.empty());

    // Fresh server, same seed: raw response bytes replay exactly, so the
    // remediation decision they drive is reproducible too.
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i)
        ASSERT_EQ(a.responses[i], b.responses[i]) << "response " << i;
    EXPECT_EQ(a.responses_hash, b.responses_hash);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.action_driver, b.action_driver);
    EXPECT_EQ(a.action_applied, b.action_applied);
    for (const auto& p : a.phases) {
        EXPECT_EQ(p.requests, p.responses) << p.name;
        EXPECT_EQ(p.errors, 0u) << p.name;
    }
}

TEST(ScenarioDriver, ResponsesAreByteIdenticalAcrossShardCounts) {
    const auto one = drive(plain_config(), 1, small_driver());
    const auto two = drive(plain_config(), 2, small_driver());
    ASSERT_TRUE(one.transport_ok) << one.error;
    ASSERT_TRUE(two.transport_ok) << two.error;
    ASSERT_EQ(one.trace, two.trace);
    // Every chain-epoch's telemetry is unique, so no request can be a cache
    // hit on any shard and even the raw bytes (cache_hit included) must
    // match between a single-loop-equivalent and a two-shard fleet.
    ASSERT_EQ(one.responses.size(), two.responses.size());
    for (std::size_t i = 0; i < one.responses.size(); ++i)
        ASSERT_EQ(one.responses[i], two.responses[i]) << "response " << i;
    EXPECT_EQ(one.responses_hash, two.responses_hash);
}

TEST(ScenarioDriver, ServedInteractionsRideTheScenarioPath) {
    auto dcfg = small_driver();
    dcfg.interactions = 2;
    dcfg.epochs_per_phase = 1;
    const auto report = drive(plain_config(), 2, dcfg);
    ASSERT_TRUE(report.transport_ok) << report.error;
    for (const auto& line : report.responses) {
        EXPECT_NE(line.find("\"interactions\":[{\"i\":"), std::string::npos)
            << line;
    }
    for (const auto& p : report.phases) EXPECT_EQ(p.errors, 0u) << p.name;
}

TEST(ScenarioDriver, FlashCrowdDrivesTheDegradationLadder) {
    // A one-deep ladder: any queueing at admission serves the reduced rung.
    auto cfg = plain_config();
    cfg.degradation.reduced_queue_depth = 1;
    cfg.degradation.baseline_queue_depth = 2;
    auto dcfg = small_driver();
    dcfg.deployments = 2;
    dcfg.epochs_per_phase = 4;
    dcfg.connections = 8;
    dcfg.window = 4;
    const auto report = drive(cfg, 2, dcfg);
    ASSERT_TRUE(report.transport_ok) << report.error;
    ASSERT_EQ(report.phases.size(), 3u);

    const auto& flash = report.phases[1];
    EXPECT_GT(flash.sla_violations, 0u)
        << "an 8x flash crowd must push chains over SLA";
    EXPECT_GT(flash.degraded, 0u)
        << "flash-crowd concurrency must trip the degradation ladder";
    std::uint64_t completed = 0;
    for (const auto& p : report.phases) {
        completed += p.completed;
        EXPECT_EQ(p.errors, 0u) << p.name;
    }
    EXPECT_GT(completed, 0u);

    // The incident explanation picked a driver feature and an action; the
    // report carries both so operators can audit the loop.
    EXPECT_FALSE(report.action_driver.empty());
    EXPECT_FALSE(report.action.empty());
    // to_json is well-formed and machine-readable.
    const auto parsed = serve::parse_json(report.to_json());
    EXPECT_EQ(parsed.get_string("op", ""), "scenario");
    EXPECT_EQ(parsed.find("phases")->array.size(), 3u);
}

TEST(ScenarioDriver, FlashCrowdTelemetryShiftTriggersDriftFlushes) {
    // Degradation off (drift only observes full-fidelity attributions); a
    // small window so the baseline phase fills the reference and the 8x
    // flash shift is compared against it within one run.
    auto cfg = plain_config();
    cfg.drift_window = 8;
    auto dcfg = small_driver();
    dcfg.deployments = 2;
    dcfg.epochs_per_phase = 4;
    const auto report = drive(cfg, 2, dcfg);
    ASSERT_TRUE(report.transport_ok) << report.error;
    std::uint64_t flushes = 0;
    for (const auto& p : report.phases) flushes += p.drift_flushes;
    EXPECT_GT(flushes, 0u)
        << "drifting telemetry must trigger at least one drift flush";
}
