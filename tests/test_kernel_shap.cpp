#include "core/kernel_shap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_shapley.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;
using xnfv::testutil::max_abs_diff;

namespace {

ml::LambdaModel interaction_model(std::size_t d = 5) {
    return ml::LambdaModel(d, [](std::span<const double> x) {
        double v = 1.0 + 2.0 * x[0] - 1.5 * x[1] + x[2] * x[3];
        if (x.size() > 4) v += std::sin(2.0 * x[4]);
        return v;
    });
}

}  // namespace

TEST(KernelShap, MatchesExactWhenBudgetEnumeratesEverything) {
    // d = 5 => 30 interior coalitions; a 64-coalition budget enumerates all,
    // making KernelSHAP *exactly* the Shapley values (Lundberg-Lee theorem).
    ml::Rng rng(1);
    const auto bg = make_uniform_background(64, 5, rng);
    const xai::BackgroundData background(bg);
    const auto model = interaction_model();
    const std::vector<double> x{0.3, -0.7, 0.9, 0.2, -0.4};

    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);

    xai::KernelShap ks(background, ml::Rng(7),
                       xai::KernelShap::Config{.max_coalitions = 64});
    const auto approx = ks.explain(model, x);

    EXPECT_LT(max_abs_diff(truth.attributions, approx.attributions), 1e-6);
    EXPECT_NEAR(truth.base_value, approx.base_value, 1e-9);
}

TEST(KernelShap, EfficiencyHoldsExactlyEvenWhenSampling) {
    // The constraint is eliminated algebraically, so efficiency holds for
    // any budget, not just full enumeration.
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(32, 8, rng));
    const ml::LambdaModel model(8, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) v += (i % 2 ? -1.0 : 1.0) * x[i] * x[i];
        return v;
    });
    const std::vector<double> x(8, 0.5);
    xai::KernelShap ks(background, ml::Rng(3),
                       xai::KernelShap::Config{.max_coalitions = 40});
    const auto e = ks.explain(model, x);
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-6);
}

TEST(KernelShap, LinearModelRecoveredWithSmallBudget) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(64, 4, rng));
    const ml::LambdaModel model(4, [](std::span<const double> x) {
        return 4.0 * x[0] - 2.0 * x[1] + x[2] - 0.5 * x[3];
    });
    const std::vector<double> x{0.9, -0.9, 0.5, -0.5};
    xai::KernelShap ks(background, ml::Rng(4),
                       xai::KernelShap::Config{.max_coalitions = 14});  // full for d=4
    const auto e = ks.explain(model, x);
    const auto& mu = background.means();
    EXPECT_NEAR(e.attributions[0], 4.0 * (x[0] - mu[0]), 1e-6);
    EXPECT_NEAR(e.attributions[1], -2.0 * (x[1] - mu[1]), 1e-6);
    EXPECT_NEAR(e.attributions[2], 1.0 * (x[2] - mu[2]), 1e-6);
    EXPECT_NEAR(e.attributions[3], -0.5 * (x[3] - mu[3]), 1e-6);
}

TEST(KernelShap, SingleFeatureGetsFullDelta) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(32, 1, rng));
    const ml::LambdaModel model(1, [](std::span<const double> x) { return 5.0 * x[0]; });
    xai::KernelShap ks(background, ml::Rng(5));
    const auto e = ks.explain(model, std::vector<double>{0.8});
    EXPECT_NEAR(e.attributions[0], e.prediction - e.base_value, 1e-9);
}

TEST(KernelShap, SamplingConvergesToExactWithBudget) {
    // d = 12 is too big to fully enumerate with a small budget; error vs the
    // exact values must shrink as the budget grows.
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(16, 12, rng));
    const ml::LambdaModel model(12, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); i += 2) v += x[i] * x[i + 1];
        return v + x[0];
    });
    const std::vector<double> x(12, 0.6);

    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);

    auto error_at = [&](std::size_t budget) {
        xai::KernelShap ks(background, ml::Rng(99),
                           xai::KernelShap::Config{.max_coalitions = budget});
        return max_abs_diff(truth.attributions, ks.explain(model, x).attributions);
    };
    const double coarse = error_at(80);
    const double fine = error_at(2000);
    EXPECT_LT(fine, coarse);
    EXPECT_LT(fine, 0.05);
}

TEST(KernelShap, PairedSamplingReducesError) {
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(16, 11, rng));
    const ml::LambdaModel model(11, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) v += x[i] * x[(i + 1) % x.size()];
        return v;
    });
    const std::vector<double> x(11, 0.5);
    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);

    // Average error over several seeds for a stable comparison.
    auto mean_error = [&](bool paired) {
        double total = 0.0;
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
            xai::KernelShap ks(background, ml::Rng(seed),
                               xai::KernelShap::Config{.max_coalitions = 150,
                                                       .paired_sampling = paired});
            total += max_abs_diff(truth.attributions, ks.explain(model, x).attributions);
        }
        return total / 5.0;
    };
    EXPECT_LT(mean_error(true), mean_error(false) * 1.25);  // paired no worse; usually better
}

TEST(KernelShap, DummyFeatureNearZero) {
    ml::Rng rng(7);
    const xai::BackgroundData background(make_uniform_background(32, 6, rng));
    const ml::LambdaModel model(6, [](std::span<const double> x) {
        return x[0] * x[1] + 2.0 * x[2];  // x3..x5 unused
    });
    const std::vector<double> x{0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
    xai::KernelShap ks(background, ml::Rng(8),
                       xai::KernelShap::Config{.max_coalitions = 62});  // full for d=6
    const auto e = ks.explain(model, x);
    EXPECT_NEAR(e.attributions[4], 0.0, 1e-6);
    EXPECT_NEAR(e.attributions[5], 0.0, 1e-6);
}

TEST(KernelShap, RejectsMisuse) {
    ml::Rng rng(8);
    const auto model = interaction_model();
    xai::KernelShap empty_bg(xai::BackgroundData{}, ml::Rng(1));
    EXPECT_THROW((void)empty_bg.explain(model, std::vector<double>(5, 0.0)),
                 std::invalid_argument);
    xai::KernelShap ok(xai::BackgroundData(make_uniform_background(8, 5, rng)), ml::Rng(1));
    EXPECT_THROW((void)ok.explain(model, std::vector<double>(4, 0.0)),
                 std::invalid_argument);
}

// A1-style sweep: error decreases (weakly) with coalition budget.
class KernelShapBudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelShapBudgetSweep, ErrorBoundedByBudgetTier) {
    ml::Rng rng(9);
    const xai::BackgroundData background(make_uniform_background(16, 10, rng));
    const ml::LambdaModel model(10, [](std::span<const double> x) {
        return x[0] * x[1] + x[2] - x[3] * x[4] * x[5];
    });
    const std::vector<double> x(10, 0.4);
    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);
    xai::KernelShap ks(background, ml::Rng(11),
                       xai::KernelShap::Config{.max_coalitions = GetParam()});
    const auto e = ks.explain(model, x);
    // Very loose bound — asserts sanity, not tight convergence rates.
    EXPECT_LT(max_abs_diff(truth.attributions, e.attributions), 0.5);
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, KernelShapBudgetSweep,
                         ::testing::Values(64u, 256u, 1024u));
