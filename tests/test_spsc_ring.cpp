// Unit tests for the lock-free SPSC completion ring and the coalesced
// eventfd wake flag (net/spsc_ring.hpp) — the dispatcher-to-loop data path
// of the TCP front-end.
//
// Covers the boundary conditions a Lamport queue gets wrong first
// (full/empty detection, wrap-around after many laps, capacity rounding),
// the raise/rearm coalescing contract, and producer/consumer threads racing
// through shutdown.  The threaded cases are the reason this suite is in the
// CI TSan job: the release/acquire pair on head/tail is load-bearing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/spsc_ring.hpp"

namespace net = xnfv::net;

TEST(SpscRing, EmptyPopFails) {
    net::SpscRing<int> ring(4);
    int out = 0;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FillToCapacityThenOverflowFails) {
    net::SpscRing<int> ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int{i}));
    EXPECT_FALSE(ring.try_push(99));  // full: push must fail, not overwrite
    EXPECT_EQ(ring.size(), 8u);
    int out = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, i);  // FIFO
    }
    EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
    net::SpscRing<int> ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
    net::SpscRing<int> tiny(0);
    EXPECT_GE(tiny.capacity(), 2u);
    net::SpscRing<int> exact(16);
    EXPECT_EQ(exact.capacity(), 16u);
}

TEST(SpscRing, WrapAroundManyLaps) {
    // Indices keep growing monotonically and are masked on access; dozens of
    // laps over a tiny ring exercises every wrap offset.
    net::SpscRing<std::size_t> ring(4);
    std::size_t next_push = 0, next_pop = 0;
    for (int lap = 0; lap < 100; ++lap) {
        while (ring.try_push(std::size_t{next_push})) ++next_push;
        std::size_t out = 0;
        while (ring.try_pop(out)) {
            ASSERT_EQ(out, next_pop);
            ++next_pop;
        }
    }
    EXPECT_EQ(next_push, next_pop);
    EXPECT_GE(next_push, 100u);
}

TEST(SpscRing, MoveOnlyPayload) {
    net::SpscRing<std::unique_ptr<std::string>> ring(2);
    EXPECT_TRUE(ring.try_push(std::make_unique<std::string>("a")));
    std::unique_ptr<std::string> out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, "a");
}

TEST(SpscRing, ProducerConsumerThreadsDeliverEverythingInOrder) {
    // The TSan-checked core: one producer, one consumer, a ring small enough
    // to hit full and empty constantly.
    constexpr std::size_t kItems = 200000;
    net::SpscRing<std::size_t> ring(16);
    std::thread producer([&ring] {
        for (std::size_t i = 0; i < kItems; ++i)
            while (!ring.try_push(std::size_t{i})) std::this_thread::yield();
    });
    std::size_t expect = 0;
    while (expect < kItems) {
        std::size_t out = 0;
        if (!ring.try_pop(out)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(out, expect);
        ++expect;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ConsumerShutdownRace) {
    // Producer keeps pushing while the consumer walks away mid-stream; the
    // ring must stay structurally sound (every slot either delivered or
    // still queued, nothing torn).  Mirrors a server drain racing the
    // dispatcher's last completions.
    net::SpscRing<std::string> ring(8);
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> pushed{0};
    std::thread producer([&] {
        std::size_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
            if (ring.try_push("payload-" + std::to_string(i))) {
                ++i;
                pushed.store(i, std::memory_order_release);
            }
        }
    });
    std::string out;
    std::size_t popped = 0;
    while (popped < 1000)
        if (ring.try_pop(out)) {
            ASSERT_EQ(out, "payload-" + std::to_string(popped));
            ++popped;
        }
    stop.store(true, std::memory_order_release);  // consumer walks away here
    producer.join();
    // Post-shutdown sweep drains the stragglers, still in order.
    while (ring.try_pop(out)) {
        ASSERT_EQ(out, "payload-" + std::to_string(popped));
        ++popped;
    }
    EXPECT_EQ(popped, pushed.load());
}

TEST(CoalescedWake, FirstRaiseWinsUntilRearm) {
    net::CoalescedWake wake;
    EXPECT_FALSE(wake.pending());
    EXPECT_TRUE(wake.raise());    // first raise: caller must notify
    EXPECT_FALSE(wake.raise());   // coalesced: already pending
    EXPECT_FALSE(wake.raise());
    EXPECT_TRUE(wake.pending());
    wake.rearm();
    EXPECT_FALSE(wake.pending());
    EXPECT_TRUE(wake.raise());    // next burst notifies again
}

TEST(CoalescedWake, RaisesAreNeverLostAcrossThreads) {
    // The rearm-before-drain pattern from the server: if a raise happens
    // after rearm, pending() is observable, so a wake is never swallowed.
    net::CoalescedWake wake;
    std::atomic<std::size_t> notifies{0};
    std::atomic<bool> stop{false};
    std::thread producer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            if (wake.raise()) notifies.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
        }
    });
    std::size_t drains = 0;
    while (drains < 1000) {
        if (!wake.pending()) {
            std::this_thread::yield();  // single-core boxes starve otherwise
            continue;
        }
        wake.rearm();
        ++drains;
    }
    stop.store(true, std::memory_order_release);
    producer.join();
    if (wake.pending()) wake.rearm();
    // Every drain consumed exactly one pending flag, and every successful
    // raise() produced one; the counts can differ by at most the final
    // in-flight raise.
    EXPECT_GE(notifies.load() + 1, drains);
}
