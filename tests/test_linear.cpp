#include "mlcore/linear.hpp"

#include <gtest/gtest.h>

#include "mlcore/metrics.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_logistic_dataset;

TEST(Sigmoid, KnownValuesAndStability) {
    EXPECT_DOUBLE_EQ(ml::sigmoid(0.0), 0.5);
    EXPECT_NEAR(ml::sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
    // No overflow at extremes.
    EXPECT_NEAR(ml::sigmoid(1000.0), 1.0, 1e-12);
    EXPECT_NEAR(ml::sigmoid(-1000.0), 0.0, 1e-12);
    // Symmetry.
    EXPECT_NEAR(ml::sigmoid(3.0) + ml::sigmoid(-3.0), 1.0, 1e-15);
}

TEST(LinearRegression, RecoversPlantedModelExactly) {
    ml::Rng rng(1);
    const std::vector<double> w{2.0, -3.0, 0.5};
    const auto d = make_linear_dataset(w, 7.0, 200, rng);
    ml::LinearRegression lr;
    lr.fit(d);
    for (std::size_t j = 0; j < w.size(); ++j)
        EXPECT_NEAR(lr.coefficients()[j], w[j], 1e-4);
    EXPECT_NEAR(lr.intercept(), 7.0, 1e-4);
}

TEST(LinearRegression, PredictMatchesCoefficients) {
    ml::Rng rng(2);
    const std::vector<double> w{1.5, -0.5};
    const auto d = make_linear_dataset(w, 2.0, 100, rng);
    ml::LinearRegression lr;
    lr.fit(d);
    const std::vector<double> x{0.3, -0.7};
    EXPECT_NEAR(lr.predict(x), 2.0 + 1.5 * 0.3 + 0.5 * 0.7, 1e-3);
}

TEST(LinearRegression, NoisyFitStillClose) {
    ml::Rng rng(3);
    const std::vector<double> w{4.0};
    const auto d = make_linear_dataset(w, 0.0, 2000, rng, /*noise=*/0.5);
    ml::LinearRegression lr;
    lr.fit(d);
    EXPECT_NEAR(lr.coefficients()[0], 4.0, 0.1);
}

TEST(LinearRegression, StrongRidgeShrinksCoefficients) {
    ml::Rng rng(4);
    const std::vector<double> w{5.0};
    const auto d = make_linear_dataset(w, 0.0, 100, rng);
    ml::LinearRegression free(ml::LinearRegression::Config{.l2 = 1e-9});
    ml::LinearRegression ridged(ml::LinearRegression::Config{.l2 = 1000.0});
    free.fit(d);
    ridged.fit(d);
    EXPECT_LT(std::abs(ridged.coefficients()[0]), std::abs(free.coefficients()[0]));
}

TEST(LinearRegression, ThrowsOnEmptyAndMismatch) {
    ml::LinearRegression lr;
    EXPECT_THROW(lr.fit(ml::Dataset{}), std::invalid_argument);
    ml::Rng rng(5);
    lr.fit(make_linear_dataset(std::vector<double>{1.0}, 0.0, 10, rng));
    EXPECT_THROW((void)lr.predict(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(LogisticRegression, SeparatesLinearlySeparableData) {
    ml::Rng rng(6);
    const std::vector<double> w{4.0, -4.0};
    const auto d = make_logistic_dataset(w, 0.0, 800, rng);
    ml::LogisticRegression clf;
    clf.fit(d);
    const auto probs = clf.predict_batch(d.x);
    EXPECT_GT(ml::roc_auc(d.y, probs), 0.85);
}

TEST(LogisticRegression, CoefficientSignsMatchGenerator) {
    ml::Rng rng(7);
    const std::vector<double> w{3.0, -2.0};
    const auto d = make_logistic_dataset(w, 0.5, 1500, rng);
    ml::LogisticRegression clf;
    clf.fit(d);
    EXPECT_GT(clf.coefficients()[0], 0.0);
    EXPECT_LT(clf.coefficients()[1], 0.0);
    EXPECT_GT(clf.intercept(), 0.0);
}

TEST(LogisticRegression, OutputsAreProbabilities) {
    ml::Rng rng(8);
    const auto d = make_logistic_dataset(std::vector<double>{1.0}, 0.0, 300, rng);
    ml::LogisticRegression clf;
    clf.fit(d);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const double p = clf.predict(d.x.row(i));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(LogisticRegression, MonotoneInPositiveFeature) {
    ml::Rng rng(9);
    const auto d = make_logistic_dataset(std::vector<double>{2.5}, 0.0, 1000, rng);
    ml::LogisticRegression clf;
    clf.fit(d);
    EXPECT_LT(clf.predict(std::vector<double>{-1.0}), clf.predict(std::vector<double>{1.0}));
}

// Sweep: the fit improves with sample count (consistency property).
class LogisticSampleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LogisticSampleSweep, AucAboveChance) {
    ml::Rng rng(GetParam());
    const auto d =
        make_logistic_dataset(std::vector<double>{3.0, -1.0}, 0.0, GetParam(), rng);
    ml::LogisticRegression clf;
    clf.fit(d);
    EXPECT_GT(ml::roc_auc(d.y, clf.predict_batch(d.x)), 0.7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LogisticSampleSweep,
                         ::testing::Values(200u, 500u, 1000u, 4000u));
