// Multi-tenant fair-serving tests: the DWRR admission queue
// (serve/request_queue.hpp) and the per-model quota path through the
// assembled service.
//
// Queue-level tests are fully deterministic (single thread, explicit pops).
// The service-level tests assert robust properties — a flooding hot tenant
// is capped by its quota while a cold tenant is never rejected and always
// completes — rather than timing-dependent latency numbers (those live in
// bench_s3_multitenant).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "mlcore/tree.hpp"
#include "serve/request_queue.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

serve::Job class_job(std::uint64_t id, std::size_t model_class) {
    serve::Job job;
    job.request.id = id;
    job.request.features = {1.0};
    job.model_class = model_class;
    job.enqueued_at = std::chrono::steady_clock::now();
    return job;
}

/// Pops everything, returning the class of each popped job in order.
std::vector<std::size_t> drain_classes(serve::RequestQueue& queue) {
    std::vector<std::size_t> order;
    while (auto job = queue.try_pop()) order.push_back(job->model_class);
    return order;
}

}  // namespace

// ------------------------------------------------------------ DWRR queue ---

TEST(DwrrQueue, SingleClassDegeneratesToFifo) {
    serve::RequestQueue queue(16);
    for (std::uint64_t id = 1; id <= 5; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 0)), serve::ServeError::none);
    for (std::uint64_t id = 1; id <= 5; ++id) {
        auto job = queue.try_pop();
        ASSERT_TRUE(job.has_value());
        EXPECT_EQ(job->request.id, id);
    }
}

TEST(DwrrQueue, EqualWeightsInterleaveBackloggedClasses) {
    serve::RequestQueue queue(32);
    queue.configure_class(0, {.quota = 0, .weight = 1});
    queue.configure_class(1, {.quota = 0, .weight = 1});
    // Class 0 queues all its jobs first; DWRR still alternates.
    for (std::uint64_t id = 0; id < 4; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 0)), serve::ServeError::none);
    for (std::uint64_t id = 4; id < 8; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 1)), serve::ServeError::none);
    EXPECT_EQ(drain_classes(queue),
              (std::vector<std::size_t>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(DwrrQueue, WeightsSkewTheRound) {
    serve::RequestQueue queue(32);
    queue.configure_class(0, {.quota = 0, .weight = 2});
    queue.configure_class(1, {.quota = 0, .weight = 1});
    for (std::uint64_t id = 0; id < 6; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 0)), serve::ServeError::none);
    for (std::uint64_t id = 6; id < 9; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 1)), serve::ServeError::none);
    // Weight 2 takes two pops per round to weight 1's one.
    EXPECT_EQ(drain_classes(queue),
              (std::vector<std::size_t>{0, 0, 1, 0, 0, 1, 0, 0, 1}));
}

TEST(DwrrQueue, EmptiedClassForfeitsItsDeficit) {
    serve::RequestQueue queue(32);
    queue.configure_class(0, {.quota = 0, .weight = 4});
    queue.configure_class(1, {.quota = 0, .weight = 1});
    // Class 0 has only one job: it must not bank the unused 3 credits.
    ASSERT_EQ(queue.try_push(class_job(0, 0)), serve::ServeError::none);
    ASSERT_EQ(queue.try_push(class_job(1, 1)), serve::ServeError::none);
    ASSERT_EQ(queue.try_push(class_job(2, 1)), serve::ServeError::none);
    EXPECT_EQ(drain_classes(queue), (std::vector<std::size_t>{0, 1, 1}));
    // Refill class 0: a fresh round starts from a zero deficit (weight 4
    // again earns at most 4 pops, not 4 + the forfeited 3).
    for (std::uint64_t id = 0; id < 6; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 0)), serve::ServeError::none);
    ASSERT_EQ(queue.try_push(class_job(6, 1)), serve::ServeError::none);
    EXPECT_EQ(drain_classes(queue),
              (std::vector<std::size_t>{0, 0, 0, 0, 1, 0, 0}));
}

TEST(DwrrQueue, LateJoiningClassIsServedWithinOneRound) {
    serve::RequestQueue queue(64);
    queue.configure_class(0, {.quota = 0, .weight = 1});
    queue.configure_class(1, {.quota = 0, .weight = 1});
    for (std::uint64_t id = 0; id < 8; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 0)), serve::ServeError::none);
    // Two pops of the monopolist, then the cold tenant arrives.
    ASSERT_EQ(queue.try_pop()->model_class, 0u);
    ASSERT_EQ(queue.try_pop()->model_class, 0u);
    ASSERT_EQ(queue.try_push(class_job(100, 1)), serve::ServeError::none);
    const auto order = drain_classes(queue);
    // The newcomer is popped after at most one more class-0 pop — it cannot
    // be starved behind the whole backlog.
    const auto first_one = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), 1u) - order.begin());
    EXPECT_LE(first_one, 1u);
}

TEST(DwrrQueue, QuotaCapsOneClassUnderTheGlobalDepth) {
    serve::RequestQueue queue(8);
    queue.configure_class(0, {.quota = 0, .weight = 1});
    queue.configure_class(1, {.quota = 2, .weight = 1});
    ASSERT_EQ(queue.try_push(class_job(0, 1)), serve::ServeError::none);
    ASSERT_EQ(queue.try_push(class_job(1, 1)), serve::ServeError::none);
    // The hot class hits its quota; the other class still admits.
    EXPECT_EQ(queue.try_push(class_job(2, 1)), serve::ServeError::quota_exceeded);
    EXPECT_EQ(queue.class_size(1), 2u);
    for (std::uint64_t id = 3; id < 9; ++id)
        ASSERT_EQ(queue.try_push(class_job(id, 0)), serve::ServeError::none);
    // Global depth reached: now everyone sees queue_full, not quota.
    EXPECT_EQ(queue.try_push(class_job(9, 0)), serve::ServeError::queue_full);
    EXPECT_EQ(queue.try_push(class_job(10, 1)), serve::ServeError::queue_full);
    EXPECT_EQ(queue.size(), 8u);
    // Popping a quota-capped job frees its slot.
    while (queue.class_size(1) > 1)
        ASSERT_TRUE(queue.try_pop().has_value());
    EXPECT_EQ(queue.try_push(class_job(11, 1)), serve::ServeError::none);
}

// --------------------------------------------------------------- service ---

namespace {

struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
    std::shared_ptr<ml::DecisionTree> tree;
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 200;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 6});
        out.forest->fit(out.data, rng);
        out.tree = std::make_shared<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 5});
        out.tree->fit(out.data);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

serve::ExplainRequest tenant_request(std::uint64_t id, std::size_t row,
                                     const std::string& model) {
    const auto& s = scenario();
    serve::ExplainRequest er;
    er.id = id;
    const auto x = s.data.x.row(row % s.data.size());
    er.features.assign(x.begin(), x.end());
    er.method = "tree_shap";
    er.model = model;
    er.seed = 11;
    return er;
}

}  // namespace

TEST(MultiTenantService, QuotaRejectionsCountAgainstTheHotTenantOnly) {
    const auto& s = scenario();
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = 11;
    cfg.queue_depth = 64;
    cfg.max_batch = 4;
    cfg.max_wait = std::chrono::microseconds(50);
    cfg.extra_models.push_back({"hot", s.tree, 1, /*quota=*/4});
    serve::ExplanationService service(s.forest, s.background, cfg);

    // Flood the hot tenant from one thread; trickle the cold tenant from
    // this one.  The hot tenant can hold at most 4 queue slots, so the cold
    // tenant (and the 64-deep global queue) never rejects it.
    std::atomic<std::uint64_t> hot_accepted{0}, hot_quota_rejected{0};
    std::atomic<bool> stop{false};
    std::thread flood([&] {
        std::vector<std::future<serve::ExplainResponse>> inflight;
        std::uint64_t id = 1000;
        while (!stop.load()) {
            auto sub = service.submit(tenant_request(id, id % 40, "hot"));
            ++id;
            if (sub.rejected == serve::ServeError::none) {
                hot_accepted.fetch_add(1);
                inflight.push_back(std::move(sub.response));
            } else {
                ASSERT_EQ(sub.rejected, serve::ServeError::quota_exceeded);
                hot_quota_rejected.fetch_add(1);
            }
            if (inflight.size() >= 64) {
                for (auto& f : inflight) (void)f.get();
                inflight.clear();
            }
        }
        for (auto& f : inflight) (void)f.get();
    });

    std::size_t cold_completed = 0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const auto r = service.explain_sync(tenant_request(i, i % 40, ""));
        ASSERT_TRUE(r.ok) << "cold tenant rejected: " << r.error;
        ++cold_completed;
    }
    stop.store(true);
    flood.join();

    EXPECT_EQ(cold_completed, 60u);
    EXPECT_GT(hot_accepted.load(), 0u);
    const auto stats = service.stats();
    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models[0].rejected_quota, 0u);  // cold tenant: never
    EXPECT_EQ(stats.models[1].rejected_quota, hot_quota_rejected.load());
    EXPECT_EQ(stats.models[0].admitted, 60u);
    EXPECT_EQ(stats.models[1].admitted, hot_accepted.load());
    EXPECT_EQ(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::quota_exceeded)],
              hot_quota_rejected.load());
    service.stop();
}

TEST(MultiTenantService, ColdTenantCompletesEverythingUnderSustainedFlood) {
    // Starvation robustness: with DWRR weights equal and the hot tenant
    // quota-capped, a cold tenant submitting strictly serial traffic always
    // finishes — no request is rejected and none is starved behind the hot
    // backlog.  (The quantitative 10x/1x throughput-ratio gate lives in
    // bench_s3_multitenant.)
    const auto& s = scenario();
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = 11;
    cfg.queue_depth = 32;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(50);
    cfg.extra_models.push_back({"hot", s.tree, 1, /*quota=*/8});
    serve::ExplanationService service(s.forest, s.background, cfg);

    std::atomic<bool> stop{false};
    std::vector<std::thread> flooders;
    for (int t = 0; t < 3; ++t) {
        flooders.emplace_back([&, t] {
            std::uint64_t id = 10000 + static_cast<std::uint64_t>(t) * 100000;
            std::vector<std::future<serve::ExplainResponse>> inflight;
            while (!stop.load()) {
                auto sub = service.submit(tenant_request(id, id % 30, "hot"));
                ++id;
                if (sub.rejected == serve::ServeError::none)
                    inflight.push_back(std::move(sub.response));
                if (inflight.size() >= 32) {
                    for (auto& f : inflight) (void)f.get();
                    inflight.clear();
                }
            }
            for (auto& f : inflight) (void)f.get();
        });
    }

    std::size_t completed = 0;
    for (std::uint64_t i = 0; i < 40; ++i) {
        const auto r = service.explain_sync(tenant_request(i, i, ""));
        ASSERT_TRUE(r.ok) << "cold request " << i << ": " << r.error;
        ++completed;
    }
    stop.store(true);
    for (auto& t : flooders) t.join();
    EXPECT_EQ(completed, 40u);

    const auto stats = service.stats();
    ASSERT_EQ(stats.models.size(), 2u);
    EXPECT_EQ(stats.models[0].admitted, 40u);
    EXPECT_EQ(stats.models[0].completed, 40u);
    EXPECT_EQ(stats.models[0].rejected_quota, 0u);
    service.stop();
}
