// Chaos-replay suite for the socket fault injector (net/chaos.hpp).
//
// The central claim mirrors PR 3's compute-side chaos pin, now at the
// network layer: the chunking faults (partial_write / torn_read /
// eintr_storm / stalled_read) only reshape *when* bytes cross the socket,
// never *which* bytes — so a recorded multi-connection request stream
// replayed under an armed injector must produce per-connection response
// streams byte-identical to the fault-free run, and two runs with the same
// --net-fault-seed must match each other.  The transport-killing faults
// (rst_close) are the complementary claim: they DO destroy connections,
// and the loadgen's safe-retry mode must absorb every kill with each
// request still answered exactly once.
//
// Scripts keep per-connection row pools disjoint and run at window 1, the
// same per-connection-determinism discipline as the shard-equivalence
// suite, so cache_hit flags are a pure function of each connection's own
// history and byte comparison is exact.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mlcore/forest.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/sharded_server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

using namespace std::chrono_literals;

namespace {

constexpr std::uint64_t kSeed = 11;

struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 120;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 8});
        out.forest->fit(out.data, rng);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

net::ExplanationServer::RowLookup row_lookup() {
    return [](std::size_t row, std::vector<double>& features) {
        const auto& sc = scenario();
        if (row >= sc.data.size()) return false;
        const auto x = sc.data.x.row(row);
        features.assign(x.begin(), x.end());
        return true;
    };
}

serve::ServiceConfig service_config() {
    serve::ServiceConfig cfg;
    cfg.method = "tree_shap";
    cfg.seed = kSeed;
    cfg.queue_depth = 512;
    cfg.max_batch = 8;
    cfg.max_wait = std::chrono::microseconds(100);
    cfg.cache_capacity = 4096;
    return cfg;
}

std::string row_request(std::uint64_t id, std::size_t row,
                        const std::string& method, std::uint64_t rid = 0) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", id);
    if (rid != 0) w.field("rid", rid);
    w.field("row", static_cast<std::uint64_t>(row));
    w.field("method", method);
    w.field("seed", kSeed);
    return w.finish();
}

/// A deterministic multi-connection stream over every response-bearing
/// request shape: explains by row (with cache repeats), malformed JSON,
/// unknown ops, and nonexistent rows.  Per-connection row pools are
/// disjoint (connection c owns rows {3c, 3c+1, 3c+2}); every script ends
/// with a quit barrier so the server closes after flushing.
std::vector<std::vector<std::string>> chaos_scripts(std::size_t conns) {
    const std::vector<std::string> methods{"tree_shap", "lime", "occlusion"};
    std::vector<std::vector<std::string>> scripts(conns);
    const auto rows = scenario().data.size();
    for (std::size_t c = 0; c < conns; ++c) {
        auto& script = scripts[c];
        const std::size_t pool = 3 * c;
        std::uint64_t id = 1;
        const auto& method = methods[c % methods.size()];
        script.push_back(row_request(id++, pool % rows, method));
        script.push_back(row_request(id++, (pool + 1) % rows, method));
        // Cache repeat: the second answer must carry cache_hit under chaos
        // exactly as it does fault-free.
        script.push_back(row_request(id++, (pool + 1) % rows, method));
        script.push_back("{\"op\":\"explain\",\"row\":");     // bad_request
        script.push_back("{\"op\":\"frobnicate\",\"id\":7}");  // unknown op
        script.push_back(row_request(id++, rows + 17, method));
        script.push_back(row_request(id++, (pool + 2) % rows, method));
        script.push_back("{\"op\":\"quit\"}");
    }
    return scripts;
}

std::vector<std::vector<std::string>> replay(
    std::uint16_t port, const std::vector<std::vector<std::string>>& scripts) {
    net::LoadgenConfig lg;
    lg.port = port;
    lg.window = 1;  // strict order: responses depend only on own history
    lg.timeout = std::chrono::milliseconds(120000);
    const auto report = net::run_load(lg, scripts);
    EXPECT_FALSE(report.timed_out);
    std::vector<std::vector<std::string>> streams(scripts.size());
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        EXPECT_FALSE(conn.connect_failed) << "conn " << c;
        EXPECT_FALSE(conn.io_error) << "conn " << c;
        EXPECT_TRUE(conn.partial.empty()) << "conn " << c << " truncated line";
        streams[c] = conn.lines;
    }
    return streams;
}

/// Chunking faults only — the byte-invisible ones.
std::shared_ptr<net::NetFaultInjector> chunking_injector(std::uint64_t seed) {
    net::NetFaultInjector::Config cfg;
    cfg.seed = seed;
    cfg.rate[static_cast<std::size_t>(net::NetFaultPoint::partial_write)] = 0.30;
    cfg.rate[static_cast<std::size_t>(net::NetFaultPoint::torn_read)] = 0.30;
    cfg.rate[static_cast<std::size_t>(net::NetFaultPoint::eintr_storm)] = 0.25;
    cfg.rate[static_cast<std::size_t>(net::NetFaultPoint::stalled_read)] = 0.25;
    return std::make_shared<net::NetFaultInjector>(cfg);
}

/// Plays the stream against a single-loop server, optionally under chaos.
std::vector<std::vector<std::string>> run_single_loop(
    const std::vector<std::vector<std::string>>& scripts,
    std::shared_ptr<net::NetFaultInjector> chaos = nullptr,
    serve::ServiceStats* stats_out = nullptr) {
    const auto& s = scenario();
    serve::ExplanationService service(s.forest, s.background, service_config());
    net::ServerConfig cfg;
    cfg.chaos = chaos;
    net::ExplanationServer server(service, cfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    if (!server.start(&error)) throw std::runtime_error(error);
    std::thread loop([&server] { server.run(); });
    auto streams = replay(server.port(), scripts);
    if (stats_out) *stats_out = server.stats();
    server.request_drain();
    loop.join();
    service.stop();
    return streams;
}

std::uint64_t extract_id(const std::string& line) {
    const auto pos = line.find("\"id\":");
    if (pos == std::string::npos) return 0;
    return std::strtoull(line.c_str() + pos + 5, nullptr, 10);
}

}  // namespace

TEST(NetChaos, ChunkingFaultsAreByteInvisible) {
    // Acceptance pin: running the same request stream fault-free, under a
    // seeded chaos schedule, and again under the SAME seed yields three
    // byte-identical sets of per-connection response streams — the faults
    // reshape I/O timing, never payloads.
    const auto scripts = chaos_scripts(10);
    const auto baseline = run_single_loop(scripts);

    const auto chaos_a = chunking_injector(0xc4a05);
    serve::ServiceStats stats_a;
    const auto run_a = run_single_loop(scripts, chaos_a, &stats_a);
    EXPECT_GT(chaos_a->total_fired(), 0u) << "injector never fired; rates too low";
    EXPECT_EQ(stats_a.net_faults_injected, chaos_a->total_fired());

    const auto chaos_b = chunking_injector(0xc4a05);
    const auto run_b = run_single_loop(scripts, chaos_b);
    EXPECT_GT(chaos_b->total_fired(), 0u);

    ASSERT_EQ(run_a.size(), baseline.size());
    ASSERT_EQ(run_b.size(), baseline.size());
    for (std::size_t c = 0; c < baseline.size(); ++c) {
        EXPECT_EQ(run_a[c], baseline[c]) << "conn " << c << " diverged under chaos";
        EXPECT_EQ(run_b[c], run_a[c])
            << "conn " << c << " diverged between same-seed chaos runs";
    }
}

TEST(NetChaos, ShardedChunkingFaultsAreByteInvisible) {
    // Same claim through the sharded front-end: the injector is shared
    // across shards but counters are per-connection, so shard placement
    // cannot perturb payload bytes either.
    const auto scripts = chaos_scripts(8);
    const auto baseline = run_single_loop(scripts);

    const auto& s = scenario();
    net::ShardedServerConfig shcfg;
    shcfg.shards = 2;
    shcfg.net.max_connections = scripts.size() + 16;
    shcfg.net.chaos = chunking_injector(0x5eed);
    net::ShardedServer server(s.forest, s.background, service_config(), shcfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });
    const auto streams = replay(server.port(), scripts);
    const auto stats = server.stats();
    server.request_drain();
    loop.join();
    server.stop_services();

    EXPECT_GT(shcfg.net.chaos->total_fired(), 0u);
    EXPECT_EQ(stats.net_faults_injected, shcfg.net.chaos->total_fired());
    ASSERT_EQ(streams.size(), baseline.size());
    for (std::size_t c = 0; c < baseline.size(); ++c)
        EXPECT_EQ(streams[c], baseline[c]) << "conn " << c;
}

TEST(NetChaos, SlowLorisEvictedByIdleTimeout) {
    // A peer that sends a torn frame and then goes silent holds no pipeline
    // slot (the frame never completed), so the idle scan must evict it.
    const auto& s = scenario();
    serve::ExplanationService service(s.forest, s.background, service_config());
    net::ServerConfig cfg;
    cfg.idle_timeout = 100ms;
    cfg.tick = 10ms;
    net::ExplanationServer server(service, cfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    net::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error, 2000ms))
        << error;
    // A frame prefix with no terminating newline — the slow-loris shape.
    const std::string torn = "{\"op\":\"explain\",\"row\":1";
    ASSERT_EQ(::send(client.fd(), torn.data(), torn.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(torn.size()));
    // The server must close us (recv_line sees EOF, not a response) well
    // before the 10s guard — within ~idle_timeout + one tick in practice.
    std::string line;
    EXPECT_FALSE(client.recv_line(line, 10000ms));
    EXPECT_TRUE(line.empty());

    const auto stats = server.stats();
    EXPECT_EQ(stats.connections_closed_idle, 1u);
    server.request_drain();
    loop.join();
    service.stop();
}

TEST(NetChaos, TornFramesReassembleToIdenticalResponse) {
    // A request trickled in 3-byte chunks — with the server's own reads
    // additionally torn and stalled by the injector — must decode to the
    // same frame and produce the byte-identical response of a clean send.
    const auto request = row_request(42, 5, "tree_shap");

    const auto& s = scenario();
    serve::ExplanationService service(s.forest, s.background, service_config());
    net::ServerConfig cfg;
    net::NetFaultInjector::Config nf;
    nf.seed = 77;
    nf.rate[static_cast<std::size_t>(net::NetFaultPoint::torn_read)] = 0.5;
    nf.rate[static_cast<std::size_t>(net::NetFaultPoint::stalled_read)] = 0.3;
    cfg.chaos = std::make_shared<net::NetFaultInjector>(nf);
    net::ExplanationServer server(service, cfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    // Clean reference connection first (its compute warms the cache; the
    // trickled request must then also report cache_hit — a repeat either
    // way, so both paths agree on every byte except none).
    net::Client clean;
    ASSERT_TRUE(clean.connect("127.0.0.1", server.port(), &error)) << error;
    ASSERT_TRUE(clean.send_line(request));
    std::string reference;
    ASSERT_TRUE(clean.recv_line(reference, 30000ms));
    ASSERT_TRUE(clean.send_line(request));  // repeat: cache_hit form
    ASSERT_TRUE(clean.recv_line(reference, 30000ms));
    clean.close();

    net::Client trickle;
    ASSERT_TRUE(trickle.connect("127.0.0.1", server.port(), &error)) << error;
    const std::string wire = request + "\n";
    for (std::size_t off = 0; off < wire.size(); off += 3) {
        const std::size_t n = std::min<std::size_t>(3, wire.size() - off);
        ASSERT_EQ(::send(trickle.fd(), wire.data() + off, n, MSG_NOSIGNAL),
                  static_cast<ssize_t>(n));
        std::this_thread::sleep_for(1ms);
    }
    std::string line;
    ASSERT_TRUE(trickle.recv_line(line, 30000ms));
    EXPECT_EQ(line, reference);

    trickle.close();
    server.request_drain();
    loop.join();
    service.stop();
}

TEST(NetChaos, RstStormAbsorbedBySafeRetries) {
    // The transport-killing fault: rst_close aborts connections mid-stream
    // (SO_LINGER(0) — the peer sees ECONNRESET, possibly after responses
    // were computed but before they were read).  The loadgen's retry mode
    // must reconnect, re-send every unanswered request, and finish with
    // each id answered exactly once.
    const std::size_t conns = 6, per_conn = 5;
    const auto rows = scenario().data.size();
    std::vector<std::vector<std::string>> scripts(conns);
    for (std::size_t c = 0; c < conns; ++c)
        for (std::size_t r = 0; r < per_conn; ++r) {
            const std::uint64_t id = c * per_conn + r + 1;
            scripts[c].push_back(
                row_request(id, (c * per_conn + r) % rows, "tree_shap", id));
        }

    const auto& s = scenario();
    serve::ExplanationService service(s.forest, s.background, service_config());
    net::ServerConfig cfg;
    net::NetFaultInjector::Config nf;
    nf.seed = 99;
    nf.rate[static_cast<std::size_t>(net::NetFaultPoint::rst_close)] = 1.0;
    nf.max_fires[static_cast<std::size_t>(net::NetFaultPoint::rst_close)] = 3;
    cfg.chaos = std::make_shared<net::NetFaultInjector>(nf);
    net::ExplanationServer server(service, cfg);
    server.set_row_lookup(row_lookup());
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });

    net::LoadgenConfig lg;
    lg.port = server.port();
    lg.window = 2;
    lg.timeout = std::chrono::milliseconds(120000);
    lg.max_retries = 16;
    lg.response_timeout = 2000ms;
    lg.connect_timeout = 2000ms;
    lg.backoff_base = 5ms;
    lg.retry_seed = 7;
    const auto report = net::run_load(lg, scripts);
    server.request_drain();
    loop.join();
    service.stop();

    EXPECT_EQ(cfg.chaos->fired(net::NetFaultPoint::rst_close), 3u);
    ASSERT_FALSE(report.timed_out);
    std::size_t reconnects = 0;
    std::set<std::uint64_t> answered;
    for (std::size_t c = 0; c < report.conns.size(); ++c) {
        const auto& conn = report.conns[c];
        EXPECT_FALSE(conn.connect_failed) << "conn " << c;
        EXPECT_FALSE(conn.io_error) << "conn " << c;
        reconnects += conn.reconnects;
        // Every scripted id answered exactly once (duplicates are counted
        // separately, not delivered into the matched set).
        EXPECT_EQ(conn.lines.size() - conn.duplicates, per_conn) << "conn " << c;
        for (const auto& l : conn.lines) {
            EXPECT_NE(l.find("\"ok\":true"), std::string::npos) << l;
            answered.insert(extract_id(l));
        }
    }
    EXPECT_EQ(answered.size(), conns * per_conn);
    // Three kills means at least three re-established connections.
    EXPECT_GE(reconnects, 3u);
}
