// Bitwise contract of the flattened batch kernels (mlcore/flat_tree.hpp and
// the per-family predict_batch overrides).
//
// Every Model::predict_batch override must produce values bitwise identical
// to a per-row predict() loop: the blocked explainer rewrites (core/probe.hpp)
// rely on this to keep attributions independent of how probe rows are
// batched.  The golden tests at the bottom pin whole explanations to
// hex-float values captured from the pre-flattening scalar implementation —
// if a kernel drifts by even one ulp, they fail.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <vector>

#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/pdp.hpp"
#include "core/sampling_shapley.hpp"
#include "golden_scenario.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/model.hpp"
#include "mlcore/rng.hpp"
#include "mlcore/serialize.hpp"
#include "mlcore/tree.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;

namespace {

ml::Matrix random_matrix(std::size_t rows, std::size_t cols, ml::Rng& rng) {
    ml::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-3.0, 3.0);
    return m;
}

/// Both predict_batch overloads against the per-row scalar loop, bitwise.
void expect_batch_bitwise(const ml::Model& model, const ml::Matrix& x) {
    std::vector<double> out(x.rows(), -1.0);
    model.predict_batch(x, out);
    const auto vec = model.predict_batch(x);
    ASSERT_EQ(vec.size(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        EXPECT_EQ(out[r], model.predict(x.row(r))) << "row " << r;
        EXPECT_EQ(vec[r], out[r]) << "row " << r;
    }
}

/// Fuzzes matrix shapes around the batching edges: empty, single row, the
/// parallel cutoff, and sizes straddling the kRowBlock=128 tree block.
void check_model_shapes(const ml::Model& model, std::size_t d) {
    ml::Rng rng(4242);
    for (const std::size_t rows : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                   std::size_t{7}, std::size_t{63}, std::size_t{128},
                                   std::size_t{129}, std::size_t{300}}) {
        SCOPED_TRACE("rows=" + std::to_string(rows));
        expect_batch_bitwise(model, random_matrix(rows, d, rng));
    }
}

ml::Dataset make_classification() {
    ml::Rng rng(555);
    ml::Dataset d;
    d.task = ml::Task::binary_classification;
    std::vector<double> f(5);
    for (int i = 0; i < 200; ++i) {
        for (auto& v : f) v = rng.uniform(-2.0, 2.0);
        const double score = f[0] - 0.5 * f[1] + 0.3 * f[2] * f[3];
        d.add(f, score > 0.0 ? 1.0 : 0.0);
    }
    return d;
}

}  // namespace

TEST(PredictBatch, DecisionTreeMatchesScalarBitwise) {
    const auto data = xnfv::golden::make_dataset();
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 7});
    tree.fit(data);
    check_model_shapes(tree, data.num_features());
}

TEST(PredictBatch, RandomForestMatchesScalarBitwise) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    check_model_shapes(forest, data.num_features());
}

TEST(PredictBatch, GbtRegressionMatchesScalarBitwise) {
    const auto data = xnfv::golden::make_dataset();
    const auto gbt = xnfv::golden::make_gbt(data);
    check_model_shapes(gbt, data.num_features());
}

TEST(PredictBatch, GbtClassificationMatchesScalarBitwise) {
    const auto data = make_classification();
    ml::Rng rng(31);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 15});
    gbt.fit(data, rng);
    check_model_shapes(gbt, data.num_features());
}

TEST(PredictBatch, LinearModelsMatchScalarBitwise) {
    const auto reg_data = xnfv::golden::make_dataset();
    ml::LinearRegression lin;
    lin.fit(reg_data);
    check_model_shapes(lin, reg_data.num_features());

    const auto cls_data = make_classification();
    ml::LogisticRegression logit;
    logit.fit(cls_data);
    check_model_shapes(logit, cls_data.num_features());
}

TEST(PredictBatch, MlpMatchesScalarBitwise) {
    const auto data = xnfv::golden::make_dataset();
    ml::Rng rng(17);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16, 8}, .epochs = 20});
    mlp.fit(data, rng);
    check_model_shapes(mlp, data.num_features());
}

TEST(PredictBatch, LambdaModelUsesDefaultLoop) {
    // No override: exercises Model::predict_batch's row-parallel default.
    const ml::LambdaModel model(4, [](std::span<const double> x) {
        return x[0] * x[1] - x[2] + 0.5 * x[3];
    });
    check_model_shapes(model, 4);
}

TEST(PredictBatch, OutputSizeMismatchThrows) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    ml::Rng rng(4242);
    const auto x = random_matrix(5, data.num_features(), rng);
    std::vector<double> wrong(4);
    EXPECT_THROW(forest.predict_batch(x, wrong), std::invalid_argument);
    const ml::LambdaModel lambda(data.num_features(),
                                 [](std::span<const double>) { return 0.0; });
    EXPECT_THROW(lambda.predict_batch(x, wrong), std::invalid_argument);
}

TEST(PredictBatch, ReloadedModelsRebuildFlatKernels) {
    // load() must leave the deserialized ensemble with the same flattened
    // fast path fit() builds; the reloaded kernels must match the originals
    // bit for bit.
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto gbt = xnfv::golden::make_gbt(data);
    ml::Rng rng(909);
    const auto x = random_matrix(200, data.num_features(), rng);
    for (const ml::Model* model : {static_cast<const ml::Model*>(&forest),
                                   static_cast<const ml::Model*>(&gbt)}) {
        std::stringstream ss;
        ml::save_model(*model, ss);
        const auto reloaded = ml::load_model(ss);
        expect_batch_bitwise(*reloaded, x);
        const auto a = model->predict_batch(x);
        const auto b = reloaded->predict_batch(x);
        for (std::size_t r = 0; r < x.rows(); ++r) EXPECT_EQ(a[r], b[r]);
    }
}

TEST(PredictBatch, MutatedTreeFallsBackToScalarLoop) {
    // mutable_nodes() invalidates the flat cache; predict_batch must then
    // agree with predict() via the default loop, and rebuild_flat() restores
    // the fast path with identical values.
    const auto data = xnfv::golden::make_dataset();
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 5});
    tree.fit(data);
    auto& nodes = tree.mutable_nodes();  // clears the flat kernel
    for (auto& n : nodes)
        if (n.is_leaf()) n.value += 0.25;
    ml::Rng rng(2718);
    const auto x = random_matrix(150, data.num_features(), rng);
    expect_batch_bitwise(tree, x);
    const auto before = tree.predict_batch(x);
    tree.rebuild_flat();
    expect_batch_bitwise(tree, x);
    const auto after = tree.predict_batch(x);
    for (std::size_t r = 0; r < x.rows(); ++r) EXPECT_EQ(before[r], after[r]);
}

// ---------------------------------------------------------------------------
// Golden pins: whole explanations captured from the pre-flattening scalar
// implementation (commit before the blocked rewrite), as hex-float literals.
// The blocked path must reproduce them exactly at any thread count.
// ---------------------------------------------------------------------------

namespace {

struct GoldenExplanation {
    double prediction;
    double base_value;
    std::vector<double> attributions;
};

void expect_matches_golden(const xai::Explanation& e, const GoldenExplanation& g) {
    EXPECT_EQ(e.prediction, g.prediction);
    EXPECT_EQ(e.base_value, g.base_value);
    ASSERT_EQ(e.attributions.size(), g.attributions.size());
    for (std::size_t j = 0; j < g.attributions.size(); ++j)
        EXPECT_EQ(e.attributions[j], g.attributions[j]) << "feature " << j;
}

/// Runs `make(threads)->explain` at 1 and 4 threads against the pin.
template <typename MakeExplainer>
void check_golden(MakeExplainer make, const ml::Model& model,
                  std::span<const double> x, const GoldenExplanation& g) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expect_matches_golden(make(threads)->explain(model, x), g);
    }
}

}  // namespace

TEST(PredictBatchGolden, KernelShapPinnedToScalarImplementation) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto gbt = xnfv::golden::make_gbt(data);
    const auto bg = xnfv::golden::make_background(data);
    const auto x = data.x.row(3);
    const auto make = [&](std::size_t threads) {
        return std::make_unique<xai::KernelShap>(
            bg, ml::Rng(7),
            xai::KernelShap::Config{.max_coalitions = 96, .threads = threads});
    };
    check_golden(make, forest, x,
                 {0x1.5c8b1db671ae4p+0, 0x1.2ebe783c7ce06p+0,
                  {-0x1.4dad73a53b03p-1, 0x1.3e8c3ae88c812p+0, -0x1.e82976bb8d0e3p-3,
                   -0x1.0ad3dd9988014p-3, -0x1.69db7a870105dp-3, 0x1.0d91f1fc4485dp-3}});
    check_golden(make, gbt, x,
                 {0x1.7f17351b36a4ap+0, 0x1.52d3a0835b10fp+0,
                  {-0x1.8dfb0d95230f8p-1, 0x1.b2e78aaebbe19p+0, -0x1.4c20be959273p-2,
                   -0x1.089483790fef9p-4, -0x1.5b67ee4675ad5p-3, -0x1.853fcd3453a7p-3}});
}

TEST(PredictBatchGolden, SamplingShapleyPinnedToScalarImplementation) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto gbt = xnfv::golden::make_gbt(data);
    const auto bg = xnfv::golden::make_background(data);
    const auto x = data.x.row(3);
    const auto make = [&](std::size_t threads) {
        return std::make_unique<xai::SamplingShapley>(
            bg, ml::Rng(8),
            xai::SamplingShapley::Config{.num_permutations = 24, .threads = threads});
    };
    check_golden(make, forest, x,
                 {0x1.5c8b1db671ae4p+0, 0x1.ca0eb6cc032e8p-1,
                  {-0x1.c7864f5d111bdp-2, 0x1.13b9e7195db5cp+0, -0x1.4cc8f089f480ep-3,
                   -0x1.c2ba0182d3761p-4, -0x1.a542a5df58838p-4, 0x1.ae22bcadbfc03p-3}});
    check_golden(make, gbt, x,
                 {0x1.7f17351b36a4ap+0, 0x1.98e21d06fb7c3p-1,
                  {-0x1.4026fb7064b9cp-2, 0x1.97d83d6ba5abdp+0, -0x1.1170c6337411fp-2,
                   -0x1.1d16211573453p-4, -0x1.2947b58cdbdp-4, -0x1.633248068d093p-3}});
}

TEST(PredictBatchGolden, LimePinnedToScalarImplementation) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto gbt = xnfv::golden::make_gbt(data);
    const auto bg = xnfv::golden::make_background(data);
    const auto x = data.x.row(3);
    const auto make = [&](std::size_t threads) {
        return std::make_unique<xai::Lime>(
            bg, ml::Rng(9), xai::Lime::Config{.num_samples = 150, .threads = threads});
    };
    check_golden(make, forest, x,
                 {0x1.5c8b1db671ae4p+0, 0x1.cb5509a2d637ep+0,
                  {-0x1.aa19ffb73febp-2, 0x1.19981e1cf6b53p-2, -0x1.01dfd18cad5ep-2,
                   -0x1.c03ef560d7284p-2, 0x1.b1eec86b4074ap-4, -0x1.9ce9e0771697ap-5}});
    check_golden(make, gbt, x,
                 {0x1.7f17351b36a4ap+0, 0x1.84ada8dec08eep+0,
                  {-0x1.4ff9190a2cbdcp-1, 0x1.3e23e14fff93ap-1, -0x1.5735c264531c3p-3,
                   0x1.bc3304ac4784ep-5, 0x1.b1bcaa359a33cp-3, -0x1.3436bfa5ab868p-3}});
}

TEST(PredictBatchGolden, OcclusionPinnedToScalarImplementation) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto gbt = xnfv::golden::make_gbt(data);
    const auto bg = xnfv::golden::make_background(data);
    const auto x = data.x.row(3);
    const auto make = [&](std::size_t threads) {
        return std::make_unique<xai::Occlusion>(bg,
                                                xai::Occlusion::Config{.threads = threads});
    };
    check_golden(make, forest, x,
                 {0x1.5c8b1db671ae4p+0, 0x1.2ebe783c7ce06p+0,
                  {-0x1.b73f1ce45e9d4p-2, 0x1.4927a54cfdf53p+0, -0x1.0b2be33f208f4p-2,
                   -0x1.fe46d2d566738p-3, -0x1.0ae51d6fc5bp-5, 0x1.56ca8f1885344p-2}});
    check_golden(make, gbt, x,
                 {0x1.7f17351b36a4ap+0, 0x1.52d3a0835b10fp+0,
                  {-0x1.a56f220d44accp-1, 0x1.c822ce62cd6f9p+0, -0x1.a454d4fc355e8p-2,
                   -0x1.8886455c07fp-4, -0x1.52b47b9137b58p-3, -0x1.22f30906f14c4p-2}});
}

TEST(PredictBatchGolden, PdpPinnedToScalarImplementation) {
    const auto data = xnfv::golden::make_dataset();
    const auto forest = xnfv::golden::make_forest(data);
    const auto bg = xnfv::golden::make_background(data);
    const std::vector<double> golden_mean{
        -0x1.8202f779bb1bfp-1, -0x1.a90b197336802p-1, -0x1.6e2f2d07cb06p-2,
        0x1.1455a3737ddc2p-1,  0x1.252ea9df4f331p+0, 0x1.3a12d6c98bb68p+1,
        0x1.79da2eea4f38bp+1,  0x1.8e80c7774e16fp+1};
    const std::vector<double> golden_grid{
        -0x1.d97ec082bf6cep+0, -0x1.4fbcba3693552p+0, -0x1.8bf567d4ce7acp-1,
        -0x1.e1c56cf1d92c8p-3, 0x1.362562b7c3c88p-2,  0x1.ae96bdf43a13cp-1,
        0x1.610d65464921cp+0,  0x1.eacf6b9275396p+0};
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        xai::PdpOptions opt;
        opt.grid_points = 8;
        opt.threads = threads;
        const auto p = xai::partial_dependence(forest, bg, 0, opt);
        ASSERT_EQ(p.mean.size(), golden_mean.size());
        for (std::size_t g = 0; g < golden_mean.size(); ++g) {
            EXPECT_EQ(p.grid[g], golden_grid[g]) << "grid " << g;
            EXPECT_EQ(p.mean[g], golden_mean[g]) << "mean " << g;
        }
    }
}
