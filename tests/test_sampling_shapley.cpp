#include "core/sampling_shapley.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_shapley.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;
using xnfv::testutil::max_abs_diff;

TEST(SamplingShapley, ConvergesToExactOnInteractionModel) {
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(32, 5, rng));
    const ml::LambdaModel model(5, [](std::span<const double> x) {
        return x[0] * x[1] + 2.0 * x[2] - x[3] * x[4] * x[0];
    });
    const std::vector<double> x{0.5, -0.5, 0.7, 0.2, -0.8};

    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);

    xai::SamplingShapley sampler(background, ml::Rng(2),
                                 xai::SamplingShapley::Config{.num_permutations = 4000});
    const auto approx = sampler.explain(model, x);
    EXPECT_LT(max_abs_diff(truth.attributions, approx.attributions), 0.03);
}

TEST(SamplingShapley, ErrorShrinksWithPermutations) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(16, 6, rng));
    const ml::LambdaModel model(6, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); ++i) v += x[i] * x[i + 1];
        return v;
    });
    const std::vector<double> x(6, 0.5);
    xai::ExactShapley exact(background);
    const auto truth = exact.explain(model, x);

    auto err_at = [&](std::size_t perms) {
        double total = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            xai::SamplingShapley s(background, ml::Rng(10 + rep),
                                   xai::SamplingShapley::Config{.num_permutations = perms});
            total += max_abs_diff(truth.attributions, s.explain(model, x).attributions);
        }
        return total / 3.0;
    };
    EXPECT_LT(err_at(2000), err_at(20));
}

TEST(SamplingShapley, TelescopingEfficiencyHoldsExactly) {
    // Each permutation's credits telescope to f(x) - f(b), so even a single
    // permutation satisfies sum(phi) == prediction - base exactly.
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(8, 4, rng));
    const ml::LambdaModel model(4, [](std::span<const double> x) {
        return std::exp(x[0]) * x[1] + x[2] - 3.0 * x[3] * x[3];
    });
    const std::vector<double> x{0.3, -0.9, 0.1, 0.7};
    for (std::size_t perms : {1u, 7u, 50u}) {
        xai::SamplingShapley s(background, ml::Rng(perms),
                               xai::SamplingShapley::Config{.num_permutations = perms});
        const auto e = s.explain(model, x);
        EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-10);
    }
}

TEST(SamplingShapley, LinearModelRecoveredQuickly) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return 5.0 * x[0] - 2.0 * x[1];
    });
    const std::vector<double> x{0.4, -0.6, 0.9};
    xai::SamplingShapley s(background, ml::Rng(6),
                           xai::SamplingShapley::Config{.num_permutations = 800});
    const auto e = s.explain(model, x);
    const auto& mu = background.means();
    // For additive models the only estimator noise is the background draw:
    // sd(phi_0) ~ |w_0| * sd(b_0) / sqrt(runs) ~ 0.07 here.
    EXPECT_NEAR(e.attributions[0], 5.0 * (x[0] - mu[0]), 0.25);
    EXPECT_NEAR(e.attributions[1], -2.0 * (x[1] - mu[1]), 0.12);
    EXPECT_NEAR(e.attributions[2], 0.0, 0.05);
}

TEST(SamplingShapley, AntitheticReducesOrderNoise) {
    // Antithetic replay cancels permutation-*order* noise; it cannot touch
    // background-draw noise.  Isolate order noise with a one-row background
    // (no draw variance) and an interaction model (order matters).
    ml::Rng rng(7);
    const xai::BackgroundData background(make_uniform_background(1, 6, rng));
    const ml::LambdaModel model(6, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); ++i) v += x[i] * x[i + 1];
        return v + x[0] * x[3] * x[5];
    });
    const std::vector<double> x(6, 0.8);
    auto variance_of = [&](bool antithetic) {
        // Equal model-eval budget: antithetic runs half as many base perms.
        const std::size_t perms = antithetic ? 60 : 120;
        std::vector<double> firsts;
        for (int rep = 0; rep < 20; ++rep) {
            xai::SamplingShapley s(
                background, ml::Rng(100 + rep),
                xai::SamplingShapley::Config{.num_permutations = perms,
                                             .antithetic = antithetic});
            firsts.push_back(s.explain(model, x).attributions[0]);
        }
        double m = 0.0;
        for (double v : firsts) m += v;
        m /= static_cast<double>(firsts.size());
        double var = 0.0;
        for (double v : firsts) var += (v - m) * (v - m);
        return var / static_cast<double>(firsts.size());
    };
    EXPECT_LE(variance_of(true), variance_of(false) * 1.1);
}

TEST(SamplingShapley, RejectsMisuse) {
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    xai::SamplingShapley empty(xai::BackgroundData{}, ml::Rng(1));
    EXPECT_THROW((void)empty.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
    ml::Rng rng(8);
    xai::SamplingShapley zero(
        xai::BackgroundData(make_uniform_background(8, 2, rng)), ml::Rng(1),
        xai::SamplingShapley::Config{.num_permutations = 0});
    EXPECT_THROW((void)zero.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
}
