// Fast-path explainer pins (DESIGN.md §16).
//
// 1. FlatTreeShap must be *bitwise identical* to the recursive
//    core/tree_shap walker on DecisionTree / RandomForest / GBT — every
//    attribution, base value and prediction compared with exact double
//    equality, single-threaded and through the tree-major-blocked batch
//    kernel at several thread counts.
// 2. Integrated Gradients must satisfy the completeness axiom
//    (sum phi = f(x) − f(baseline)): ulp-scaled on a linear-regime MLP
//    (constant gradient ⇒ the midpoint Riemann sum is exact up to rounding)
//    and at the discretization-limited tolerance on a trained nonlinear MLP.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <memory>
#include <vector>

#include "core/flat_tree_shap.hpp"
#include "core/gradient.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/model.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_xor_dataset;

namespace {

ml::Dataset nonlinear_dataset(std::size_t n, std::size_t d, ml::Rng& rng) {
    ml::Dataset data;
    data.task = ml::Task::regression;
    std::vector<double> row(d);
    for (std::size_t i = 0; i < n; ++i) {
        for (auto& v : row) v = rng.uniform(-1.0, 1.0);
        double y = 3.0 * row[0];
        if (d > 1) y += (row[0] > 0 ? 2.0 : -1.0) * row[1];
        if (d > 2) y += std::abs(row[2]);
        data.add(row, y);
    }
    return data;
}

ml::Matrix probe_points(std::size_t n, std::size_t d, ml::Rng& rng) {
    ml::Matrix x(n, d);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(-1.0, 1.0);
    return x;
}

void expect_bitwise(const xai::Explanation& flat, const xai::Explanation& ref,
                    const char* what) {
    EXPECT_EQ(flat.method, ref.method) << what;
    EXPECT_EQ(flat.prediction, ref.prediction) << what;
    EXPECT_EQ(flat.base_value, ref.base_value) << what;
    ASSERT_EQ(flat.attributions.size(), ref.attributions.size()) << what;
    for (std::size_t j = 0; j < ref.attributions.size(); ++j)
        EXPECT_EQ(flat.attributions[j], ref.attributions[j])
            << what << " feature " << j;
}

/// Pins flat == recursive per row, then batch(1 thread) == batch(8 threads)
/// == per-row explain — all exact.
void pin_flat_vs_recursive(const ml::Model& model, const ml::Matrix& points,
                           const char* what) {
    const auto flat = xai::FlatTreeShap::build(model);
    ASSERT_NE(flat, nullptr) << what;
    xai::TreeShap recursive;
    xai::FlatShapScratch scratch;
    std::vector<xai::Explanation> singles(points.rows());
    for (std::size_t i = 0; i < points.rows(); ++i) {
        singles[i] = flat->explain(points.row(i), scratch);
        expect_bitwise(singles[i], recursive.explain(model, points.row(i)), what);
    }
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const auto batch = flat->explain_batch(points, threads);
        ASSERT_EQ(batch.size(), points.rows()) << what;
        for (std::size_t i = 0; i < batch.size(); ++i)
            expect_bitwise(batch[i], singles[i], what);
    }
}

}  // namespace

TEST(FlatTreeShap, BitwiseEqualsRecursiveOnDecisionTree) {
    ml::Rng rng(21);
    const auto data = nonlinear_dataset(1200, 4, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 8,
                                                   .min_samples_leaf = 2,
                                                   .min_samples_split = 4});
    tree.fit(data);
    pin_flat_vs_recursive(tree, probe_points(40, 4, rng), "tree");
}

TEST(FlatTreeShap, BitwiseEqualsRecursiveOnForest) {
    ml::Rng rng(22);
    const auto data = nonlinear_dataset(900, 5, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 17});
    forest.fit(data, rng);
    pin_flat_vs_recursive(forest, probe_points(40, 5, rng), "forest");
}

TEST(FlatTreeShap, BitwiseEqualsRecursiveOnGbtRegression) {
    ml::Rng rng(23);
    const auto data = nonlinear_dataset(900, 4, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 35});
    gbt.fit(data, rng);
    pin_flat_vs_recursive(gbt, probe_points(40, 4, rng), "gbt");
}

TEST(FlatTreeShap, BitwiseEqualsRecursiveOnGbtClassifierMarginSpace) {
    ml::Rng rng(24);
    const auto data = make_xor_dataset(1200, rng);
    ml::GradientBoostedTrees gbt(ml::GradientBoostedTrees::Config{.num_rounds = 25});
    gbt.fit(data, rng);
    pin_flat_vs_recursive(gbt, probe_points(40, 2, rng), "gbt-classifier");
}

TEST(FlatTreeShap, StumpRootLeafMatchesRecursive) {
    // Constant labels: no split clears min_impurity_decrease, so the fitted
    // tree is a single root leaf (the m == 0 collapse path).
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 50; ++i)
        data.add(std::vector<double>{static_cast<double>(i), 1.0}, 7.5);
    ml::DecisionTree stump;
    stump.fit(data);
    ASSERT_TRUE(stump.nodes().front().is_leaf());
    ml::Rng rng(25);
    pin_flat_vs_recursive(stump, probe_points(4, 2, rng), "stump");
}

TEST(FlatTreeShap, ScratchReusableAcrossModelsOfDifferentShape) {
    ml::Rng rng(26);
    const auto small_data = nonlinear_dataset(500, 2, rng);
    const auto big_data = nonlinear_dataset(500, 6, rng);
    ml::DecisionTree small_tree(ml::DecisionTree::Config{.max_depth = 3});
    small_tree.fit(small_data);
    ml::RandomForest big_forest(ml::RandomForest::Config{.num_trees = 9});
    big_forest.fit(big_data, rng);
    const auto small_flat = xai::FlatTreeShap::build(small_tree);
    const auto big_flat = xai::FlatTreeShap::build(big_forest);
    xai::TreeShap recursive;
    xai::FlatShapScratch shared;  // alternates between both shapes
    const auto small_x = probe_points(6, 2, rng);
    const auto big_x = probe_points(6, 6, rng);
    for (std::size_t i = 0; i < 6; ++i) {
        expect_bitwise(small_flat->explain(small_x.row(i), shared),
                       recursive.explain(small_tree, small_x.row(i)), "small");
        expect_bitwise(big_flat->explain(big_x.row(i), shared),
                       recursive.explain(big_forest, big_x.row(i)), "big");
    }
}

TEST(FlatTreeShapExplainer, AdapterMatchesRecursiveAndKeepsName) {
    ml::Rng rng(27);
    const auto data = nonlinear_dataset(800, 3, rng);
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 11});
    forest.fit(data, rng);
    xai::FlatTreeShapExplainer fast;
    xai::TreeShap recursive;
    EXPECT_EQ(fast.name(), recursive.name());
    const auto x = probe_points(8, 3, rng);
    for (std::size_t i = 0; i < 8; ++i)
        expect_bitwise(fast.explain(forest, x.row(i)),
                       recursive.explain(forest, x.row(i)), "adapter");
    const auto batch = fast.explain_batch(forest, x);
    for (std::size_t i = 0; i < 8; ++i)
        expect_bitwise(batch[i], recursive.explain(forest, x.row(i)), "adapter-batch");
}

TEST(FlatTreeShapExplainer, RejectsNonTreeModelsWithRecursiveErrorText) {
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    xai::FlatTreeShapExplainer fast;
    try {
        (void)fast.explain(model, std::vector<double>{0, 0});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_STREQ(e.what(), "TreeShap: model 'lambda' is not a supported tree ensemble");
    }
    EXPECT_EQ(xai::FlatTreeShap::build(model), nullptr);
    ml::DecisionTree unfitted;
    EXPECT_THROW((void)fast.explain(unfitted, std::vector<double>{}),
                 std::invalid_argument);
}

// --- Integrated Gradients completeness axiom -------------------------------

namespace {

/// tol = `ulps` units in the last place of the accumulated magnitude.
void expect_complete(const xai::Explanation& e, double ulps_or_abs, bool ulp_scaled) {
    double magnitude = std::abs(e.prediction) + std::abs(e.base_value);
    for (double phi : e.attributions) magnitude += std::abs(phi);
    const double tol =
        ulp_scaled ? ulps_or_abs * DBL_EPSILON * magnitude : ulps_or_abs;
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, tol);
}

}  // namespace

TEST(IntegratedGradientsCompleteness, UlpScaledOnLinearRegimeMlp) {
    // No hidden layers ⇒ the MLP is exactly linear, its analytic gradient is
    // constant along the path, and the midpoint Riemann sum integrates it
    // exactly — completeness must hold to rounding error, not just to the
    // O(1/steps^2) discretization bound.
    ml::Rng rng(31);
    const std::vector<double> w{2.0, -3.0, 0.5};
    const auto data = make_linear_dataset(w, 1.0, 300, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {}, .epochs = 30});
    mlp.fit(data, rng);
    xai::IntegratedGradients ig{xai::BackgroundData(data.x, 64)};
    for (int rep = 0; rep < 10; ++rep) {
        std::vector<double> x(3);
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        const auto e = ig.explain(mlp, x);
        expect_complete(e, 256.0, /*ulp_scaled=*/true);
    }
}

TEST(IntegratedGradientsCompleteness, DiscretizationBoundOnTrainedMlp) {
    // tanh keeps the integrand smooth (midpoint error O(1/steps^2)); relu
    // kinks would degrade that to O(1/steps) and need far more steps.
    ml::Rng rng(32);
    const auto data = make_xor_dataset(900, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16, 16},
                                .activation = ml::Activation::tanh,
                                .epochs = 60});
    mlp.fit(data, rng);
    xai::IntegratedGradients ig{xai::BackgroundData(data.x, 64),
                                xai::IntegratedGradients::Config{.steps = 200}};
    for (int rep = 0; rep < 5; ++rep) {
        std::vector<double> x{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        expect_complete(ig.explain(mlp, x), 1e-3, /*ulp_scaled=*/false);
    }
}

TEST(IntegratedGradientsCompleteness, MoreStepsTightenTheBound) {
    ml::Rng rng(33);
    const auto data = make_xor_dataset(900, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16}, .epochs = 60});
    mlp.fit(data, rng);
    const xai::BackgroundData background(data.x, 64);
    const std::vector<double> x{0.6, -0.4};
    auto gap = [&](std::size_t steps) {
        xai::IntegratedGradients ig{background, xai::IntegratedGradients::Config{steps}};
        const auto e = ig.explain(mlp, x);
        return std::abs(e.additive_reconstruction() - e.prediction);
    };
    // Not strictly monotone per-point in general, but 4 → 256 steps must
    // shrink the completeness gap (or both are already at rounding level).
    const double coarse = gap(4), fine = gap(256);
    EXPECT_LE(fine, coarse + 1e-12);
}
