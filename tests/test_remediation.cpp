#include "nfv/remediation.hpp"

#include <gtest/gtest.h>

#include "nfv/placement.hpp"
#include "nfv/simulator.hpp"

namespace nfv = xnfv::nfv;
namespace ml = xnfv::ml;

namespace {

struct Fixture {
    nfv::Infrastructure infra;
    nfv::Deployment dep;
};

Fixture starved_chain(std::size_t servers = 2) {
    Fixture f;
    f.infra = nfv::Infrastructure::homogeneous_pop(servers, nfv::Server{});
    nfv::make_chain(f.dep, "c",
                    {nfv::VnfType::firewall, nfv::VnfType::ids, nfv::VnfType::nat}, 2.0);
    f.dep.vnf(1).cpu_cores = 0.2;  // the IDS is the bottleneck
    ml::Rng rng(1);
    nfv::place(f.dep, f.infra, nfv::PlacementStrategy::first_fit, rng);
    return f;
}

nfv::OfferedLoad load_of(double pps) {
    return nfv::OfferedLoad{.pps = pps, .active_flows = 1e4};
}

}  // namespace

TEST(Remediation, ActionNamesResolve) {
    for (auto k : {nfv::ActionKind::none, nfv::ActionKind::scale_up_cpu,
                   nfv::ActionKind::migrate_spread, nfv::ActionKind::migrate_colocate,
                   nfv::ActionKind::reduce_rules})
        EXPECT_STRNE(nfv::to_string(k), "unknown");
}

TEST(Remediation, ScaleUpCpuGrowsAllocationWithinCapacity) {
    auto f = starved_chain();
    const double before = f.dep.vnf(1).cpu_cores;
    EXPECT_TRUE(nfv::apply_action(f.dep, f.infra,
                                  {.kind = nfv::ActionKind::scale_up_cpu,
                                   .target_vnf = 1, .magnitude = 1.0}));
    EXPECT_NEAR(f.dep.vnf(1).cpu_cores, 2.0 * before, 1e-9);
    // Capacity still respected.
    const auto used = nfv::committed_cores(f.dep, f.infra);
    for (std::size_t s = 0; s < used.size(); ++s)
        EXPECT_LE(used[s], f.infra.servers()[s].cores + 1e-9);
}

TEST(Remediation, ScaleUpCpuClampedByServerCapacity) {
    auto f = starved_chain(/*servers=*/1);
    // Fill the server almost completely with a second chain.
    nfv::make_chain(f.dep, "filler", {nfv::VnfType::nat}, 11.0);
    f.dep.vnfs.back().server = 0;
    const double residual_before =
        f.infra.servers()[0].cores - nfv::committed_cores(f.dep, f.infra)[0];
    ASSERT_GT(residual_before, 0.0);
    EXPECT_TRUE(nfv::apply_action(f.dep, f.infra,
                                  {.kind = nfv::ActionKind::scale_up_cpu,
                                   .target_vnf = 1, .magnitude = 100.0}));
    const auto used = nfv::committed_cores(f.dep, f.infra);
    EXPECT_NEAR(used[0], f.infra.servers()[0].cores, 1e-9);  // grabbed residual only
}

TEST(Remediation, ScaleUpFailsOnFullServer) {
    auto f = starved_chain(/*servers=*/1);
    nfv::make_chain(f.dep, "filler", {nfv::VnfType::nat}, 11.8);
    f.dep.vnfs.back().server = 0;
    EXPECT_FALSE(nfv::apply_action(f.dep, f.infra,
                                   {.kind = nfv::ActionKind::scale_up_cpu,
                                    .target_vnf = 1, .magnitude = 1.0}));
}

TEST(Remediation, MigrateSpreadMovesToEmptiestServer) {
    auto f = starved_chain(/*servers=*/3);
    // All VNFs land on server 0 (first fit, small chain).
    ASSERT_EQ(f.dep.vnf(1).server, 0);
    EXPECT_TRUE(nfv::apply_action(f.dep, f.infra,
                                  {.kind = nfv::ActionKind::migrate_spread,
                                   .target_vnf = 1}));
    EXPECT_NE(f.dep.vnf(1).server, 0);
}

TEST(Remediation, MigrateColocatePullsToPredecessor) {
    auto f = starved_chain(/*servers=*/2);
    f.dep.vnf(1).server = 1;  // spread out by hand
    EXPECT_TRUE(nfv::apply_action(f.dep, f.infra,
                                  {.kind = nfv::ActionKind::migrate_colocate,
                                   .target_vnf = 1}));
    EXPECT_EQ(f.dep.vnf(1).server, f.dep.vnf(0).server);
}

TEST(Remediation, MigrateColocateFailsForChainHead) {
    auto f = starved_chain();
    EXPECT_FALSE(nfv::apply_action(f.dep, f.infra,
                                   {.kind = nfv::ActionKind::migrate_colocate,
                                    .target_vnf = 0}));
}

TEST(Remediation, ReduceRulesShrinksTable) {
    auto f = starved_chain();
    const auto before = f.dep.vnf(0).num_rules;  // firewall has rules
    ASSERT_GT(before, 0u);
    EXPECT_TRUE(nfv::apply_action(f.dep, f.infra,
                                  {.kind = nfv::ActionKind::reduce_rules,
                                   .target_vnf = 0, .magnitude = 0.5}));
    EXPECT_EQ(f.dep.vnf(0).num_rules, before / 2);
    // NAT has no rules: reduction is a no-op failure.
    EXPECT_FALSE(nfv::apply_action(f.dep, f.infra,
                                   {.kind = nfv::ActionKind::reduce_rules,
                                    .target_vnf = 2, .magnitude = 0.5}));
}

TEST(Remediation, BottleneckDetectionMatchesSimulator) {
    auto f = starved_chain();
    const auto epoch = nfv::simulate_epoch(f.dep, f.infra, {load_of(1e5)});
    EXPECT_EQ(nfv::bottleneck_vnf(f.dep, f.dep.chains[0], epoch), 1u);
    EXPECT_EQ(epoch.chains[0].bottleneck_vnf, 1u);
}

TEST(Remediation, ScalingTheBottleneckCuresTheViolation) {
    // The closed loop in miniature: starved chain violates; scaling the
    // bottleneck (and only the bottleneck) brings latency back under SLA.
    auto f = starved_chain();
    f.dep.chains[0].sla.max_latency_s = 2e-3;
    const auto before = nfv::simulate_epoch(f.dep, f.infra, {load_of(1.5e5)});
    ASSERT_TRUE(before.chains[0].sla_violated);

    auto wrong = f;  // scaling a non-bottleneck VNF should not help much
    ASSERT_TRUE(nfv::apply_action(wrong.dep, wrong.infra,
                                  {.kind = nfv::ActionKind::scale_up_cpu,
                                   .target_vnf = 0, .magnitude = 2.0}));
    const auto after_wrong = nfv::simulate_epoch(wrong.dep, wrong.infra, {load_of(1.5e5)});

    ASSERT_TRUE(nfv::apply_action(f.dep, f.infra,
                                  {.kind = nfv::ActionKind::scale_up_cpu,
                                   .target_vnf = 1, .magnitude = 9.0}));
    const auto after = nfv::simulate_epoch(f.dep, f.infra, {load_of(1.5e5)});
    EXPECT_FALSE(after.chains[0].sla_violated);
    EXPECT_LT(after.chains[0].latency_s, before.chains[0].latency_s);
    EXPECT_LT(after.chains[0].latency_s, after_wrong.chains[0].latency_s);
}

TEST(Remediation, NoneActionIsIdentity) {
    auto f = starved_chain();
    const auto cores_before = f.dep.vnf(1).cpu_cores;
    EXPECT_TRUE(nfv::apply_action(f.dep, f.infra, {.kind = nfv::ActionKind::none}));
    EXPECT_DOUBLE_EQ(f.dep.vnf(1).cpu_cores, cores_before);
}

TEST(Remediation, RejectsMisuse) {
    auto f = starved_chain();
    EXPECT_THROW((void)nfv::apply_action(f.dep, f.infra,
                                         {.kind = nfv::ActionKind::scale_up_cpu,
                                          .target_vnf = 99}),
                 std::out_of_range);
    EXPECT_THROW((void)nfv::apply_action(f.dep, f.infra,
                                         {.kind = nfv::ActionKind::scale_up_cpu,
                                          .target_vnf = 0, .magnitude = -1.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)nfv::apply_action(f.dep, f.infra,
                                         {.kind = nfv::ActionKind::reduce_rules,
                                          .target_vnf = 0, .magnitude = 2.0}),
                 std::invalid_argument);
}

TEST(Remediation, ActionToStringMentionsTarget) {
    auto f = starved_chain();
    const nfv::Action a{.kind = nfv::ActionKind::scale_up_cpu, .target_vnf = 1,
                        .magnitude = 0.5};
    const auto s = a.to_string(f.dep);
    EXPECT_NE(s.find("scale_up_cpu"), std::string::npos);
    EXPECT_NE(s.find("ids"), std::string::npos);
}
