#include "core/lime.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mlcore/forest.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

TEST(Lime, RecoversLinearModelSlopes) {
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(256, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return 1.0 + 4.0 * x[0] - 2.0 * x[1] + 0.0 * x[2];
    });
    xai::Lime lime(background, ml::Rng(2), xai::Lime::Config{.num_samples = 4000});
    const std::vector<double> x{0.3, -0.6, 0.5};
    (void)lime.explain(model, x);
    const auto& coef = lime.last_fit().coefficients;
    EXPECT_NEAR(coef[0], 4.0, 0.1);
    EXPECT_NEAR(coef[1], -2.0, 0.1);
    EXPECT_NEAR(coef[2], 0.0, 0.1);
}

TEST(Lime, AttributionsAreEffectsRelativeToMean) {
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(256, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return 3.0 * x[0] + x[1];
    });
    xai::Lime lime(background, ml::Rng(3), xai::Lime::Config{.num_samples = 4000});
    const std::vector<double> x{0.8, -0.4};
    const auto e = lime.explain(model, x);
    const auto& mu = background.means();
    EXPECT_NEAR(e.attributions[0], 3.0 * (x[0] - mu[0]), 0.1);
    EXPECT_NEAR(e.attributions[1], 1.0 * (x[1] - mu[1]), 0.1);
}

TEST(Lime, HighFidelityOnLinearModels) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(128, 4, rng));
    const ml::LambdaModel model(4, [](std::span<const double> x) {
        return x[0] - x[1] + 2.0 * x[2] - 0.5 * x[3];
    });
    xai::Lime lime(background, ml::Rng(4));
    (void)lime.explain(model, std::vector<double>{0.1, 0.2, 0.3, 0.4});
    EXPECT_GT(lime.last_fit().weighted_r2, 0.999);
}

TEST(Lime, LowerFidelityOnHighlyNonlinearModels) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return std::sin(8.0 * x[0]) * std::cos(8.0 * x[1]);
    });
    xai::Lime lime(background, ml::Rng(5),
                   xai::Lime::Config{.num_samples = 2000, .perturbation_scale = 1.0});
    (void)lime.explain(model, std::vector<double>{0.0, 0.0});
    EXPECT_LT(lime.last_fit().weighted_r2, 0.8);
}

TEST(Lime, NarrowKernelImprovesLocalFidelity) {
    // F1's central claim: a tighter kernel makes the linear surrogate more
    // faithful in the neighborhood of x for a smooth nonlinear model.
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return x[0] * x[0] + x[1] * x[1];
    });
    xai::Lime wide(background, ml::Rng(6),
                   xai::Lime::Config{.num_samples = 3000, .kernel_width = 5.0});
    xai::Lime narrow(background, ml::Rng(6),
                     xai::Lime::Config{.num_samples = 3000, .kernel_width = 0.3});
    const std::vector<double> x{0.7, -0.7};
    (void)wide.explain(model, x);
    (void)narrow.explain(model, x);
    EXPECT_GT(narrow.last_fit().weighted_r2, wide.last_fit().weighted_r2);
}

TEST(Lime, GradientDirectionOnSmoothModel) {
    // At x = (0.5, -0.5), f = x0^2 + x1^2 has local slopes (1, -1): the LIME
    // coefficients must match the local gradient, not the global trend.
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return x[0] * x[0] + x[1] * x[1];
    });
    xai::Lime lime(background, ml::Rng(7),
                   xai::Lime::Config{.num_samples = 6000, .kernel_width = 0.2,
                                     .perturbation_scale = 0.3});
    (void)lime.explain(model, std::vector<double>{0.5, -0.5});
    const auto& coef = lime.last_fit().coefficients;
    EXPECT_NEAR(coef[0], 1.0, 0.25);
    EXPECT_NEAR(coef[1], -1.0, 0.25);
}

TEST(Lime, DeterministicGivenSeed) {
    ml::Rng rng(7);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) { return x[0] * x[1]; });
    xai::Lime a(background, ml::Rng(11));
    xai::Lime b(background, ml::Rng(11));
    const std::vector<double> x{0.2, 0.4};
    const auto ea = a.explain(model, x);
    const auto eb = b.explain(model, x);
    EXPECT_DOUBLE_EQ(ea.attributions[0], eb.attributions[0]);
}

TEST(Lime, WorksOnTreeModels) {
    ml::Rng rng(8);
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 600; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        data.add(std::vector<double>{a, b}, 5.0 * a + b);
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 30});
    forest.fit(data, rng);
    const xai::BackgroundData background(data.x, 128);
    xai::Lime lime(background, ml::Rng(9), xai::Lime::Config{.num_samples = 3000});
    const auto e = lime.explain(forest, std::vector<double>{0.5, 0.5});
    // Feature 0 has 5x the slope of feature 1.
    EXPECT_GT(std::abs(e.attributions[0]), std::abs(e.attributions[1]));
}

TEST(Lime, RejectsMisuse) {
    ml::Rng rng(9);
    EXPECT_THROW(xai::Lime(xai::BackgroundData{}, ml::Rng(1)), std::invalid_argument);
    const xai::BackgroundData background(make_uniform_background(16, 3, rng));
    xai::Lime lime(background, ml::Rng(1), xai::Lime::Config{.num_samples = 2});
    const ml::LambdaModel model(3, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)lime.explain(model, std::vector<double>(3, 0.0)),
                 std::invalid_argument);
    xai::Lime ok(background, ml::Rng(1));
    EXPECT_THROW((void)ok.explain(model, std::vector<double>(2, 0.0)),
                 std::invalid_argument);
}

// Sweep: slope recovery is robust across instances.
class LimeInstanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(LimeInstanceSweep, SlopeRecoveredAtVariousPoints) {
    ml::Rng rng(10);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return 2.0 * x[0] - 3.0 * x[1];
    });
    xai::Lime lime(background, ml::Rng(12), xai::Lime::Config{.num_samples = 3000});
    const double t = GetParam();
    (void)lime.explain(model, std::vector<double>{t, -t});
    EXPECT_NEAR(lime.last_fit().coefficients[0], 2.0, 0.15);
    EXPECT_NEAR(lime.last_fit().coefficients[1], -3.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Points, LimeInstanceSweep,
                         ::testing::Values(-0.8, -0.3, 0.0, 0.3, 0.8));
