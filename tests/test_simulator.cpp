#include "nfv/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "nfv/placement.hpp"

namespace nfv = xnfv::nfv;
namespace ml = xnfv::ml;

namespace {

struct Fixture {
    nfv::Infrastructure infra;
    nfv::Deployment dep;
};

/// One three-stage chain on a small PoP, placed first-fit.
Fixture one_chain(double cores = 2.0, std::size_t servers = 2) {
    Fixture f;
    f.infra = nfv::Infrastructure::homogeneous_pop(servers, nfv::Server{});
    nfv::make_chain(f.dep, "c",
                    {nfv::VnfType::firewall, nfv::VnfType::nat, nfv::VnfType::load_balancer},
                    cores);
    ml::Rng rng(1);
    nfv::place(f.dep, f.infra, nfv::PlacementStrategy::first_fit, rng);
    return f;
}

nfv::OfferedLoad load_of(double pps, double ca2 = 1.0, double flows = 1e4) {
    return nfv::OfferedLoad{.pps = pps, .avg_pkt_bytes = 700.0, .active_flows = flows,
                            .burstiness_ca2 = ca2};
}

}  // namespace

TEST(Simulator, BasicInvariants) {
    auto f = one_chain();
    const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(5e4)});
    ASSERT_EQ(r.chains.size(), 1u);
    const auto& c = r.chains[0];
    EXPECT_GT(c.latency_s, 0.0);
    EXPECT_GT(c.goodput_frac, 0.0);
    EXPECT_LE(c.goodput_frac, 1.0);
    EXPECT_EQ(r.vnfs.size(), 3u);
    EXPECT_EQ(r.servers.size(), 2u);
    for (const auto& v : r.vnfs) {
        EXPECT_GE(v.utilization, 0.0);
        EXPECT_GE(v.sojourn_s, 0.0);
        EXPECT_GE(v.loss_rate, 0.0);
        EXPECT_LE(v.loss_rate, 1.0);
        EXPECT_GE(v.cache_penalty, 1.0);
        EXPECT_GE(v.mem_penalty, 1.0);
    }
}

TEST(Simulator, LatencyMonotoneInOfferedLoad) {
    auto f = one_chain();
    double prev = 0.0;
    for (double pps : {1e4, 5e4, 1e5, 2e5, 4e5}) {
        const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(pps)});
        EXPECT_GT(r.chains[0].latency_s, prev);
        prev = r.chains[0].latency_s;
    }
}

TEST(Simulator, OverloadViolatesSlaAndLosesTraffic) {
    auto f = one_chain(/*cores=*/0.25);
    const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(2e6)});
    EXPECT_TRUE(r.chains[0].sla_violated);
    EXPECT_LT(r.chains[0].goodput_frac, 0.99);
}

TEST(Simulator, LightLoadMeetsSla) {
    auto f = one_chain(/*cores=*/4.0);
    const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(1e4)});
    EXPECT_FALSE(r.chains[0].sla_violated);
    EXPECT_NEAR(r.chains[0].goodput_frac, 1.0, 1e-9);
}

TEST(Simulator, BurstinessRaisesLatency) {
    auto f = one_chain();
    const auto smooth = nfv::simulate_epoch(f.dep, f.infra, {load_of(2e5, 1.0)});
    const auto bursty = nfv::simulate_epoch(f.dep, f.infra, {load_of(2e5, 10.0)});
    EXPECT_GT(bursty.chains[0].latency_s, smooth.chains[0].latency_s);
}

TEST(Simulator, BottleneckIsTheStarvedVnf) {
    Fixture f;
    f.infra = nfv::Infrastructure::homogeneous_pop(1, nfv::Server{});
    nfv::make_chain(f.dep, "c", {nfv::VnfType::firewall, nfv::VnfType::nat}, 4.0);
    f.dep.vnf(1).cpu_cores = 0.2;  // starve the NAT
    ml::Rng rng(2);
    nfv::place(f.dep, f.infra, nfv::PlacementStrategy::first_fit, rng);
    const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(2e5)});
    EXPECT_EQ(r.chains[0].bottleneck_vnf, 1u);
    EXPECT_GT(r.vnfs[1].utilization, r.vnfs[0].utilization);
}

TEST(Simulator, HopCountReflectsPlacement) {
    // Same server: 1 hop (gateway ingress only).  Alternating servers: 3.
    Fixture colocated;
    colocated.infra = nfv::Infrastructure::homogeneous_pop(2, nfv::Server{});
    nfv::make_chain(colocated.dep, "c",
                    {nfv::VnfType::firewall, nfv::VnfType::nat, nfv::VnfType::load_balancer},
                    1.0);
    for (auto& v : colocated.dep.vnfs) v.server = 0;
    const auto rc = nfv::simulate_epoch(colocated.dep, colocated.infra, {load_of(1e4)});
    EXPECT_EQ(rc.chains[0].hop_count, 1u);

    Fixture spread = colocated;
    spread.dep.vnfs[1].server = 1;  // 0 -> 1 -> 0
    const auto rs = nfv::simulate_epoch(spread.dep, spread.infra, {load_of(1e4)});
    EXPECT_EQ(rs.chains[0].hop_count, 3u);
    EXPECT_GT(rs.chains[0].latency_s, rc.chains[0].latency_s);  // extra propagation
}

TEST(Simulator, CacheContentionCouplesColocatedChains) {
    // Two chains on one server; inflating chain B's flow count (cache
    // pressure) must slow chain A even though A's own traffic is unchanged.
    auto build = [](double flows_b) {
        Fixture f;
        f.infra = nfv::Infrastructure::homogeneous_pop(1, nfv::Server{});
        nfv::make_chain(f.dep, "a", {nfv::VnfType::firewall, nfv::VnfType::nat}, 2.0);
        nfv::make_chain(f.dep, "b", {nfv::VnfType::ids, nfv::VnfType::wan_optimizer}, 2.0);
        ml::Rng rng(3);
        nfv::place(f.dep, f.infra, nfv::PlacementStrategy::first_fit, rng);
        return nfv::simulate_epoch(
            f.dep, f.infra, {load_of(1e5, 1.0, 1e4), load_of(5e4, 1.0, flows_b)});
    };
    const auto calm = build(1e3);
    const auto thrash = build(5e6);
    EXPECT_GT(thrash.servers[0].cache_pressure, 1.0);
    EXPECT_GT(thrash.chains[0].latency_s, calm.chains[0].latency_s);
    EXPECT_GT(thrash.vnfs[0].cache_penalty, 1.0);
}

TEST(Simulator, MemoryPressurePenalizesService) {
    auto build = [](double flows) {
        Fixture f;
        f.infra = nfv::Infrastructure::homogeneous_pop(1, nfv::Server{});
        nfv::make_chain(f.dep, "a", {nfv::VnfType::wan_optimizer}, 4.0);
        ml::Rng rng(4);
        nfv::place(f.dep, f.infra, nfv::PlacementStrategy::first_fit, rng);
        return nfv::simulate_epoch(f.dep, f.infra, {load_of(5e4, 1.0, flows)});
    };
    const auto light = build(1e4);
    const auto heavy = build(1e8);  // ~100 GB of flow state > 64 GB RAM
    EXPECT_GT(heavy.servers[0].mem_utilization, 1.0);
    EXPECT_GT(heavy.vnfs[0].mem_penalty, 1.0);
    EXPECT_GT(heavy.chains[0].latency_s, light.chains[0].latency_s);
}

TEST(Simulator, LinkSaturationShowsInStats) {
    Fixture f;
    f.infra = nfv::Infrastructure::homogeneous_pop(2, nfv::Server{}, /*link_bps=*/1e8);
    nfv::make_chain(f.dep, "c", {nfv::VnfType::firewall}, 8.0);
    f.dep.vnf(0).server = 0;
    // 1e5 pps * 700 B = 560 Mbps >> 100 Mbps ingress link.
    const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(1e5)});
    const auto lid = f.infra.link_between(-1, 0);
    EXPECT_GT(r.links[lid].utilization, 1.0);
    EXPECT_GT(r.links[lid].loss_rate, 0.0);
    EXPECT_LT(r.chains[0].goodput_frac, 0.5);
}

TEST(Simulator, LossRelievesDownstreamStages) {
    // With a saturated first stage, the second stage sees less traffic than
    // offered and its utilization reflects the carried (not offered) rate.
    Fixture f;
    f.infra = nfv::Infrastructure::homogeneous_pop(1, nfv::Server{});
    nfv::make_chain(f.dep, "c", {nfv::VnfType::firewall, nfv::VnfType::nat}, 4.0);
    f.dep.vnf(0).cpu_cores = 0.05;  // chokepoint
    ml::Rng rng(5);
    nfv::place(f.dep, f.infra, nfv::PlacementStrategy::first_fit, rng);
    const auto r = nfv::simulate_epoch(f.dep, f.infra, {load_of(1e6)});
    EXPECT_GT(r.vnfs[0].loss_rate, 0.5);
    EXPECT_LT(r.vnfs[1].utilization, 1.0);
}

TEST(Simulator, RejectsBadInputs) {
    auto f = one_chain();
    EXPECT_THROW((void)nfv::simulate_epoch(f.dep, f.infra, {}), std::invalid_argument);
    f.dep.vnf(0).server = -1;
    EXPECT_THROW((void)nfv::simulate_epoch(f.dep, f.infra, {load_of(1e4)}),
                 std::invalid_argument);
}

TEST(Simulator, MultiChainIndependenceWhenIsolated) {
    // Two chains on separate servers must not affect each other.
    Fixture f;
    f.infra = nfv::Infrastructure::homogeneous_pop(2, nfv::Server{});
    nfv::make_chain(f.dep, "a", {nfv::VnfType::firewall}, 2.0);
    nfv::make_chain(f.dep, "b", {nfv::VnfType::firewall}, 2.0);
    f.dep.vnf(0).server = 0;
    f.dep.vnf(1).server = 1;
    const auto quiet = nfv::simulate_epoch(f.dep, f.infra, {load_of(5e4), load_of(1e4)});
    const auto loud = nfv::simulate_epoch(f.dep, f.infra, {load_of(5e4), load_of(8e5)});
    EXPECT_NEAR(quiet.chains[0].latency_s, loud.chains[0].latency_s, 1e-12);
}

// Sweep: the latency-vs-load curve is convex (saturating) — the qualitative
// shape the PDP experiment F5 must recover.
class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, MarginalLatencyGrowsWithLoad) {
    auto f = one_chain();
    const double pps = GetParam();
    const double delta = 1e4;
    const auto lo = nfv::simulate_epoch(f.dep, f.infra, {load_of(pps)});
    const auto mid = nfv::simulate_epoch(f.dep, f.infra, {load_of(pps + delta)});
    const auto hi = nfv::simulate_epoch(f.dep, f.infra, {load_of(pps + 2 * delta)});
    const double d1 = mid.chains[0].latency_s - lo.chains[0].latency_s;
    const double d2 = hi.chains[0].latency_s - mid.chains[0].latency_s;
    EXPECT_GT(d2, d1 * 0.99);  // convexity (tolerate numeric noise)
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep, ::testing::Values(2e4, 8e4, 1.6e5, 2.4e5));
