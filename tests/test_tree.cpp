#include "mlcore/tree.hpp"

#include <gtest/gtest.h>

#include "mlcore/metrics.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_xor_dataset;

namespace {

ml::Dataset step_dataset(std::size_t n, ml::Rng& rng) {
    // y = 1 if x > 0.5 else 0: a single split solves it exactly.
    ml::Dataset d;
    d.task = ml::Task::regression;
    d.feature_names = {"x"};
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        d.add(std::vector<double>{x}, x > 0.5 ? 1.0 : 0.0);
    }
    return d;
}

}  // namespace

TEST(DecisionTree, LearnsSingleStepExactly) {
    ml::Rng rng(1);
    const auto d = step_dataset(500, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 2, .min_samples_leaf = 1,
                                                   .min_samples_split = 2});
    tree.fit(d);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.1}), 0.0);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.9}), 1.0);
    // Threshold should be near 0.5.
    const auto& root = tree.nodes()[0];
    ASSERT_FALSE(root.is_leaf());
    EXPECT_NEAR(root.threshold, 0.5, 0.05);
}

TEST(DecisionTree, SolvesXorWithDepthTwo) {
    ml::Rng rng(2);
    const auto d = make_xor_dataset(1000, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 3, .min_samples_leaf = 5,
                                                   .min_samples_split = 10});
    tree.fit(d);
    const auto probs = tree.predict_batch(d.x);
    EXPECT_GT(ml::roc_auc(d.y, probs), 0.95);
}

TEST(DecisionTree, RespectsMaxDepth) {
    ml::Rng rng(3);
    const auto d = make_linear_dataset(std::vector<double>{1.0, 1.0}, 0.0, 800, rng, 0.1);
    for (int depth : {1, 2, 4}) {
        ml::DecisionTree tree(ml::DecisionTree::Config{
            .max_depth = depth, .min_samples_leaf = 1, .min_samples_split = 2});
        tree.fit(d);
        EXPECT_LE(tree.depth(), depth);
    }
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
    ml::Rng rng(4);
    const auto d = step_dataset(200, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 10, .min_samples_leaf = 20,
                                                   .min_samples_split = 40});
    tree.fit(d);
    for (const auto& node : tree.nodes()) {
        if (node.is_leaf()) {
            EXPECT_GE(node.cover, 20.0);
        }
    }
}

TEST(DecisionTree, LeafValueIsSubsetMean) {
    // Two clusters with known means.
    ml::Dataset d;
    d.task = ml::Task::regression;
    for (int i = 0; i < 10; ++i) d.add(std::vector<double>{0.0 + i * 0.01}, 2.0);
    for (int i = 0; i < 10; ++i) d.add(std::vector<double>{1.0 + i * 0.01}, 8.0);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 1, .min_samples_leaf = 1,
                                                   .min_samples_split = 2});
    tree.fit(d);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.05}), 2.0);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.05}), 8.0);
}

TEST(DecisionTree, CoverAccountsAllSamples) {
    ml::Rng rng(5);
    const auto d = step_dataset(300, rng);
    ml::DecisionTree tree;
    tree.fit(d);
    EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 300.0);
    double leaf_cover = 0.0;
    for (const auto& node : tree.nodes())
        if (node.is_leaf()) leaf_cover += node.cover;
    EXPECT_DOUBLE_EQ(leaf_cover, 300.0);
}

TEST(DecisionTree, PureNodeDoesNotSplit) {
    ml::Dataset d;
    d.task = ml::Task::regression;
    for (int i = 0; i < 50; ++i) d.add(std::vector<double>{double(i)}, 3.0);
    ml::DecisionTree tree;
    tree.fit(d);
    EXPECT_EQ(tree.num_leaves(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{25.0}), 3.0);
}

TEST(DecisionTree, ImportancesConcentrateOnInformativeFeature) {
    ml::Rng rng(6);
    // y depends on x0 only; x1 is noise.
    ml::Dataset d;
    d.task = ml::Task::regression;
    for (int i = 0; i < 600; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
        d.add(std::vector<double>{a, b}, a > 0 ? 5.0 : -5.0);
    }
    ml::DecisionTree tree;
    tree.fit(d);
    const auto imp = tree.feature_importances();
    EXPECT_GT(imp[0], 0.9);
    EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTree, ClassificationLeavesAreProbabilities) {
    ml::Rng rng(7);
    const auto d = make_xor_dataset(400, rng);
    ml::DecisionTree tree;
    tree.fit(d);
    for (const auto& node : tree.nodes()) {
        if (node.is_leaf()) {
            EXPECT_GE(node.value, 0.0);
            EXPECT_LE(node.value, 1.0);
        }
    }
}

TEST(DecisionTree, MaxFeaturesRequiresRng) {
    ml::Rng rng(8);
    const auto d = step_dataset(100, rng);
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_features = 1});
    EXPECT_THROW(tree.fit(d, nullptr), std::invalid_argument);
    EXPECT_NO_THROW(tree.fit(d, &rng));
}

TEST(DecisionTree, PredictBeforeFitThrows) {
    ml::DecisionTree tree;
    EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(DecisionTree, PredictSizeMismatchThrows) {
    ml::Rng rng(9);
    ml::DecisionTree tree;
    tree.fit(step_dataset(100, rng));
    EXPECT_THROW((void)tree.predict(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(DecisionTree, ToTextMentionsFeatureNames) {
    ml::Rng rng(10);
    auto d = step_dataset(200, rng);
    d.feature_names = {"offered_pps"};
    ml::DecisionTree tree;
    tree.fit(d);
    const auto text = tree.to_text(d.feature_names);
    EXPECT_NE(text.find("offered_pps"), std::string::npos);
    EXPECT_NE(text.find("leaf"), std::string::npos);
}

TEST(DecisionTree, FitRowsUsesOnlyGivenRows) {
    ml::Dataset d;
    d.task = ml::Task::regression;
    d.add(std::vector<double>{0.0}, 1.0);
    d.add(std::vector<double>{1.0}, 2.0);
    d.add(std::vector<double>{2.0}, 100.0);  // excluded below
    const std::vector<std::size_t> rows{0, 1};
    ml::DecisionTree tree(ml::DecisionTree::Config{.max_depth = 3, .min_samples_leaf = 1,
                                                   .min_samples_split = 2});
    tree.fit_rows(d, rows);
    // Prediction for large x must not reflect the excluded label 100.
    EXPECT_LE(tree.predict(std::vector<double>{2.0}), 2.0);
}

// Sweep: deeper trees fit a smooth function monotonically better in-sample.
class TreeDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeDepthSweep, DeeperTreesReduceTrainError) {
    ml::Rng rng(11);
    const auto d = make_linear_dataset(std::vector<double>{3.0, -2.0}, 0.0, 1000, rng);
    ml::DecisionTree shallow(ml::DecisionTree::Config{.max_depth = 1});
    ml::DecisionTree deep(ml::DecisionTree::Config{.max_depth = GetParam()});
    shallow.fit(d);
    deep.fit(d);
    const double err_shallow = ml::mse(d.y, shallow.predict_batch(d.x));
    const double err_deep = ml::mse(d.y, deep.predict_batch(d.x));
    EXPECT_LE(err_deep, err_shallow + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep, ::testing::Values(2, 4, 6, 8));
