#include "mlcore/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ml = xnfv::ml;

TEST(Regression, MseRmseMae) {
    const std::vector<double> t{1, 2, 3}, p{1, 3, 5};
    EXPECT_NEAR(ml::mse(t, p), (0.0 + 1.0 + 4.0) / 3.0, 1e-12);
    EXPECT_NEAR(ml::rmse(t, p), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_NEAR(ml::mae(t, p), 1.0, 1e-12);
}

TEST(Regression, PerfectPredictionsZeroError) {
    const std::vector<double> t{1, 2, 3};
    EXPECT_DOUBLE_EQ(ml::mse(t, t), 0.0);
    EXPECT_DOUBLE_EQ(ml::r2_score(t, t), 1.0);
}

TEST(Regression, R2OfMeanPredictionIsZero) {
    const std::vector<double> t{1, 2, 3}, p{2, 2, 2};
    EXPECT_NEAR(ml::r2_score(t, p), 0.0, 1e-12);
}

TEST(Regression, R2WorseThanMeanIsNegative) {
    const std::vector<double> t{1, 2, 3}, p{3, 2, 1};
    EXPECT_LT(ml::r2_score(t, p), 0.0);
}

TEST(Regression, R2ConstantTruthReturnsZero) {
    const std::vector<double> t{2, 2, 2}, p{1, 2, 3};
    EXPECT_DOUBLE_EQ(ml::r2_score(t, p), 0.0);
}

TEST(Regression, EmptyOrMismatchedThrows) {
    const std::vector<double> a{1.0}, b{};
    EXPECT_THROW((void)ml::mse(a, b), std::invalid_argument);
    EXPECT_THROW((void)ml::mse(b, b), std::invalid_argument);
}

TEST(Classification, ConfusionMatrixCounts) {
    const std::vector<double> t{1, 1, 0, 0, 1};
    const std::vector<double> p{0.9, 0.2, 0.8, 0.1, 0.6};
    const auto cm = ml::confusion_matrix(t, p);
    EXPECT_EQ(cm.tp, 2u);
    EXPECT_EQ(cm.fn, 1u);
    EXPECT_EQ(cm.fp, 1u);
    EXPECT_EQ(cm.tn, 1u);
    EXPECT_NEAR(cm.accuracy(), 0.6, 1e-12);
    EXPECT_NEAR(cm.precision(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cm.recall(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Classification, DegenerateConfusionIsZeroNotNan) {
    ml::ConfusionMatrix cm;  // all zero
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
    EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
    EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Classification, AucPerfectSeparation) {
    const std::vector<double> t{0, 0, 1, 1};
    const std::vector<double> p{0.1, 0.2, 0.8, 0.9};
    EXPECT_DOUBLE_EQ(ml::roc_auc(t, p), 1.0);
}

TEST(Classification, AucInverseSeparationIsZero) {
    const std::vector<double> t{0, 0, 1, 1};
    const std::vector<double> p{0.9, 0.8, 0.2, 0.1};
    EXPECT_DOUBLE_EQ(ml::roc_auc(t, p), 0.0);
}

TEST(Classification, AucRandomish) {
    const std::vector<double> t{0, 1, 0, 1};
    const std::vector<double> p{0.5, 0.5, 0.5, 0.5};
    EXPECT_DOUBLE_EQ(ml::roc_auc(t, p), 0.5);  // all tied => 0.5 via avg ranks
}

TEST(Classification, AucOneClassAbsent) {
    const std::vector<double> t{1, 1};
    const std::vector<double> p{0.3, 0.7};
    EXPECT_DOUBLE_EQ(ml::roc_auc(t, p), 0.5);
}

TEST(Classification, AucInvariantToMonotoneTransform) {
    const std::vector<double> t{0, 1, 0, 1, 1, 0};
    const std::vector<double> p{0.1, 0.7, 0.4, 0.9, 0.6, 0.3};
    std::vector<double> squashed(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) squashed[i] = p[i] * p[i];
    EXPECT_DOUBLE_EQ(ml::roc_auc(t, p), ml::roc_auc(t, squashed));
}

TEST(Classification, LogLossKnownValue) {
    const std::vector<double> t{1, 0};
    const std::vector<double> p{0.8, 0.4};
    EXPECT_NEAR(ml::log_loss(t, p), -(std::log(0.8) + std::log(0.6)) / 2.0, 1e-12);
}

TEST(Classification, LogLossClipsExtremes) {
    const std::vector<double> t{1};
    const std::vector<double> p{0.0};
    EXPECT_TRUE(std::isfinite(ml::log_loss(t, p)));
}

TEST(Rank, SpearmanPerfectAndInverse) {
    const std::vector<double> a{1, 2, 3, 4};
    const std::vector<double> up{10, 20, 30, 40};
    const std::vector<double> down{9, 7, 5, 3};
    EXPECT_NEAR(ml::spearman(a, up), 1.0, 1e-12);
    EXPECT_NEAR(ml::spearman(a, down), -1.0, 1e-12);
}

TEST(Rank, SpearmanMonotoneNonlinearIsOne) {
    const std::vector<double> a{1, 2, 3, 4, 5};
    std::vector<double> cubed(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) cubed[i] = a[i] * a[i] * a[i];
    EXPECT_NEAR(ml::spearman(a, cubed), 1.0, 1e-12);
}

TEST(Rank, SpearmanHandlesTies) {
    const std::vector<double> a{1, 1, 2, 2};
    const std::vector<double> b{1, 1, 2, 2};
    EXPECT_NEAR(ml::spearman(a, b), 1.0, 1e-12);
    const std::vector<double> c{5, 5, 5, 5};
    EXPECT_DOUBLE_EQ(ml::spearman(a, c), 0.0);  // zero variance in ranks
}

TEST(Rank, SpearmanShortInputIsZero) {
    const std::vector<double> a{1.0}, b{2.0};
    EXPECT_DOUBLE_EQ(ml::spearman(a, b), 0.0);
}

TEST(Rank, TopkOverlapFullAndNone) {
    const std::vector<double> a{9, 5, 1, 0};
    const std::vector<double> same{8, 6, 2, 1};
    EXPECT_DOUBLE_EQ(ml::topk_overlap(a, same, 2), 1.0);
    const std::vector<double> flipped{0, 1, 5, 9};
    EXPECT_DOUBLE_EQ(ml::topk_overlap(a, flipped, 2), 0.0);
}

TEST(Rank, TopkOverlapPartial) {
    const std::vector<double> a{9, 8, 1, 0};
    const std::vector<double> b{9, 0, 8, 1};  // top2(a)={0,1}, top2(b)={0,2}
    EXPECT_DOUBLE_EQ(ml::topk_overlap(a, b, 2), 0.5);
}

TEST(Rank, TopkClampsK) {
    const std::vector<double> a{1, 2};
    EXPECT_DOUBLE_EQ(ml::topk_overlap(a, a, 10), 1.0);
    EXPECT_DOUBLE_EQ(ml::topk_overlap(a, a, 0), 0.0);
}

// Sweep: AUC equals the probability interpretation on synthetic data with a
// controllable separation.
class AucSeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(AucSeparationSweep, AucIncreasesWithSeparation) {
    const double sep = GetParam();
    std::vector<double> t, p;
    for (int i = 0; i < 200; ++i) {
        const double noise = std::sin(i * 12.9898) * 0.5;  // deterministic pseudo-noise
        t.push_back(i % 2 ? 1.0 : 0.0);
        p.push_back((i % 2 ? sep : -sep) + noise);
    }
    const double auc = ml::roc_auc(t, p);
    if (sep == 0.0) {
        EXPECT_NEAR(auc, 0.5, 0.1);
    } else if (sep >= 1.0) {
        EXPECT_GT(auc, 0.95);
    } else {
        EXPECT_GT(auc, 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Separations, AucSeparationSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0, 2.0));
