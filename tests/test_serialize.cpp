#include "mlcore/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/tree.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_logistic_dataset;
using xnfv::testutil::make_xor_dataset;

namespace {

/// Round-trips a model through the tagged text format and checks that the
/// restored model predicts identically on probe points.
void expect_roundtrip_identical(const ml::Model& model, std::size_t d) {
    std::stringstream ss;
    ml::save_model(model, ss);
    const auto restored = ml::load_model(ss);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->name(), model.name());
    EXPECT_EQ(restored->num_features(), model.num_features());
    ml::Rng rng(777);
    std::vector<double> x(d);
    for (int rep = 0; rep < 25; ++rep) {
        for (auto& v : x) v = rng.uniform(-1.0, 1.0);
        EXPECT_DOUBLE_EQ(restored->predict(x), model.predict(x));
    }
}

}  // namespace

TEST(Serialize, LinearRegressionRoundTrip) {
    ml::Rng rng(1);
    const auto d = make_linear_dataset(std::vector<double>{2.0, -1.0}, 0.5, 200, rng);
    ml::LinearRegression m;
    m.fit(d);
    expect_roundtrip_identical(m, 2);
}

TEST(Serialize, LogisticRegressionRoundTrip) {
    ml::Rng rng(2);
    const auto d = make_logistic_dataset(std::vector<double>{3.0, -2.0}, 0.1, 300, rng);
    ml::LogisticRegression m;
    m.fit(d);
    expect_roundtrip_identical(m, 2);
}

TEST(Serialize, DecisionTreeRoundTrip) {
    ml::Rng rng(3);
    const auto d = make_xor_dataset(500, rng);
    ml::DecisionTree m(ml::DecisionTree::Config{.max_depth = 6});
    m.fit(d);
    expect_roundtrip_identical(m, 2);
}

TEST(Serialize, DecisionTreePreservesStructureAndImportances) {
    ml::Rng rng(4);
    const auto d = make_xor_dataset(400, rng);
    ml::DecisionTree m;
    m.fit(d);
    std::stringstream ss;
    ml::save_model(m, ss);
    const auto restored = ml::load_model(ss);
    const auto* tree = dynamic_cast<const ml::DecisionTree*>(restored.get());
    ASSERT_NE(tree, nullptr);
    EXPECT_EQ(tree->nodes().size(), m.nodes().size());
    EXPECT_EQ(tree->num_leaves(), m.num_leaves());
    const auto ia = m.feature_importances();
    const auto ib = tree->feature_importances();
    for (std::size_t j = 0; j < ia.size(); ++j) EXPECT_DOUBLE_EQ(ia[j], ib[j]);
}

TEST(Serialize, RandomForestRoundTrip) {
    ml::Rng rng(5);
    const auto d = make_xor_dataset(600, rng);
    ml::RandomForest m(ml::RandomForest::Config{.num_trees = 15});
    m.fit(d, rng);
    expect_roundtrip_identical(m, 2);
}

TEST(Serialize, GbtRegressionRoundTrip) {
    ml::Rng rng(6);
    const auto d = make_linear_dataset(std::vector<double>{1.0, 2.0, -1.0}, 0.0, 400, rng);
    ml::GradientBoostedTrees m(ml::GradientBoostedTrees::Config{.num_rounds = 25});
    m.fit(d, rng);
    expect_roundtrip_identical(m, 3);
}

TEST(Serialize, GbtClassifierPreservesLinkAndMargin) {
    ml::Rng rng(7);
    const auto d = make_xor_dataset(600, rng);
    ml::GradientBoostedTrees m(ml::GradientBoostedTrees::Config{.num_rounds = 20});
    m.fit(d, rng);
    std::stringstream ss;
    ml::save_model(m, ss);
    const auto restored = ml::load_model(ss);
    const auto* gbt = dynamic_cast<const ml::GradientBoostedTrees*>(restored.get());
    ASSERT_NE(gbt, nullptr);
    const std::vector<double> x{0.4, -0.7};
    EXPECT_DOUBLE_EQ(gbt->predict(x), m.predict(x));
    EXPECT_DOUBLE_EQ(gbt->predict_margin(x), m.predict_margin(x));
    EXPECT_DOUBLE_EQ(gbt->base_score(), m.base_score());
}

TEST(Serialize, MlpRoundTripBothActivations) {
    for (const auto activation : {ml::Activation::relu, ml::Activation::tanh}) {
        ml::Rng rng(8);
        const auto d = make_linear_dataset(std::vector<double>{1.0, -1.0}, 0.3, 300, rng);
        ml::Mlp m(ml::Mlp::Config{.hidden_layers = {8, 4}, .activation = activation,
                                  .epochs = 15});
        m.fit(d, rng);
        expect_roundtrip_identical(m, 2);
    }
}

TEST(Serialize, MlpClassifierKeepsSigmoidLink) {
    ml::Rng rng(9);
    const auto d = make_xor_dataset(500, rng);
    ml::Mlp m(ml::Mlp::Config{.hidden_layers = {8}, .epochs = 20});
    m.fit(d, rng);
    std::stringstream ss;
    ml::save_model(m, ss);
    const auto restored = ml::load_model(ss);
    const std::vector<double> x{0.2, -0.3};
    const double p = restored->predict(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_DOUBLE_EQ(p, m.predict(x));
}

TEST(Serialize, FileRoundTrip) {
    ml::Rng rng(10);
    const auto d = make_linear_dataset(std::vector<double>{4.0}, 1.0, 100, rng);
    ml::LinearRegression m;
    m.fit(d);
    const std::string path = "/tmp/xnfv_serialize_test.model";
    ml::save_model_file(m, path);
    const auto restored = ml::load_model_file(path);
    EXPECT_DOUBLE_EQ(restored->predict(std::vector<double>{0.5}),
                     m.predict(std::vector<double>{0.5}));
}

TEST(Serialize, RejectsUnsupportedModel) {
    const ml::LambdaModel lambda(1, [](std::span<const double>) { return 0.0; });
    std::stringstream ss;
    EXPECT_THROW(ml::save_model(lambda, ss), std::invalid_argument);
}

TEST(Serialize, RejectsGarbageInput) {
    std::stringstream empty;
    EXPECT_THROW((void)ml::load_model(empty), std::runtime_error);
    std::stringstream wrong_magic("not-a-model 1 linear_regression\n");
    EXPECT_THROW((void)ml::load_model(wrong_magic), std::runtime_error);
    std::stringstream bad_version("xnfv-model 99 linear_regression\n");
    EXPECT_THROW((void)ml::load_model(bad_version), std::runtime_error);
    std::stringstream bad_tag("xnfv-model 1 quantum_svm\n");
    EXPECT_THROW((void)ml::load_model(bad_tag), std::runtime_error);
    std::stringstream truncated("xnfv-model 1 decision_tree\ntree 2 0 1\n");
    EXPECT_THROW((void)ml::load_model(truncated), std::runtime_error);
}

TEST(Serialize, RejectsCorruptTreeIndices) {
    // An internal node pointing outside the node array must be rejected.
    std::stringstream evil(
        "xnfv-model 1 decision_tree\n"
        "tree 1 0 1\n"
        "0 0.5 7 8 0 10\n"  // children 7/8 do not exist
        "1 0\n");
    EXPECT_THROW((void)ml::load_model(evil), std::runtime_error);
}

TEST(Serialize, LoadedForestWorksWithTreeShap) {
    // Serialization must preserve everything TreeSHAP needs (covers!).
    ml::Rng rng(11);
    const auto d = make_xor_dataset(600, rng);
    ml::RandomForest m(ml::RandomForest::Config{.num_trees = 10});
    m.fit(d, rng);
    std::stringstream ss;
    ml::save_model(m, ss);
    const auto restored = ml::load_model(ss);
    const auto* forest = dynamic_cast<const ml::RandomForest*>(restored.get());
    ASSERT_NE(forest, nullptr);
    for (const auto& tree : forest->trees())
        for (const auto& node : tree.nodes()) EXPECT_GT(node.cover, 0.0);
}
