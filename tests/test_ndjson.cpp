// Incremental ND-JSON frame decoding for the TCP wire path.
//
// The stdin loop gets whole lines from getline(); the socket path gets
// arbitrary byte chunks.  LineDecoder must therefore reassemble frames from
// any split — including mid-UTF-8-sequence — and turn every malformed line
// into a structured bad_request frame, never an exception and never a dead
// connection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/errors.hpp"
#include "serve/ndjson.hpp"

namespace serve = xnfv::serve;

namespace {

using Frames = std::vector<serve::Frame>;

Frames feed_all(serve::LineDecoder& decoder, const std::string& bytes) {
    Frames frames;
    decoder.feed(bytes.data(), bytes.size(), frames);
    return frames;
}

/// Feeds one byte at a time — the worst split the kernel can produce.
Frames feed_bytewise(serve::LineDecoder& decoder, const std::string& bytes) {
    Frames frames;
    for (const char c : bytes) decoder.feed(&c, 1, frames);
    return frames;
}

TEST(LineDecoder, SingleLineOneFeed) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "{\"op\":\"stats\"}\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].error, serve::ServeError::none);
    EXPECT_EQ(frames[0].text, "{\"op\":\"stats\"}");
    EXPECT_EQ(d.buffered(), 0u);
}

TEST(LineDecoder, MultipleLinesOneFeed) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "a\nb\nc\n");
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].text, "a");
    EXPECT_EQ(frames[1].text, "b");
    EXPECT_EQ(frames[2].text, "c");
}

TEST(LineDecoder, LineSplitAcrossFeeds) {
    serve::LineDecoder d;
    Frames frames;
    const std::string part1 = "{\"op\":\"explain\",\"ro";
    const std::string part2 = "w\":3}\n";
    EXPECT_EQ(d.feed(part1.data(), part1.size(), frames), 0u);
    EXPECT_EQ(d.buffered(), part1.size());
    EXPECT_EQ(d.feed(part2.data(), part2.size(), frames), 1u);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].text, "{\"op\":\"explain\",\"row\":3}");
}

TEST(LineDecoder, BytewiseFeedMatchesWholeFeed) {
    const std::string wire = "{\"id\":1}\n\n  \n{\"id\":2}\r\n";
    serve::LineDecoder whole;
    serve::LineDecoder bytewise;
    const auto a = feed_all(whole, wire);
    const auto b = feed_bytewise(bytewise, wire);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].text, b[i].text);
        EXPECT_EQ(a[i].error, b[i].error);
    }
}

TEST(LineDecoder, CrlfToleranceStripsOneCarriageReturn) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "{\"op\":\"quit\"}\r\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].text, "{\"op\":\"quit\"}");
    // Only ONE trailing CR is wire framing; an inner CR is payload.
    serve::LineDecoder d2;
    const auto inner = feed_all(d2, "a\rb\r\r\n");
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0].text, "a\rb\r");
}

TEST(LineDecoder, BlankAndWhitespaceLinesSkipped) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "\n \t \n\r\n{\"id\":9}\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].text, "{\"id\":9}");
}

TEST(LineDecoder, Utf8SplitAcrossReadsReassembles) {
    // "λ=π" — both λ (0xCE 0xBB) and π (0xCF 0x80) are two-byte sequences;
    // split the stream in the middle of each.
    const std::string line = "{\"note\":\"\xCE\xBB=\xCF\x80\"}\n";
    for (std::size_t cut = 1; cut + 1 < line.size(); ++cut) {
        serve::LineDecoder d;
        Frames frames;
        d.feed(line.data(), cut, frames);
        d.feed(line.data() + cut, line.size() - cut, frames);
        ASSERT_EQ(frames.size(), 1u) << "cut at " << cut;
        EXPECT_EQ(frames[0].error, serve::ServeError::none);
        EXPECT_EQ(frames[0].text, line.substr(0, line.size() - 1))
            << "cut at " << cut;
    }
}

TEST(LineDecoder, EmbeddedNulRejectedAsBadRequest) {
    serve::LineDecoder d;
    const std::string wire{"{\"a\":\0\"b\"}\nok\n", 14};
    const auto frames = feed_all(d, wire);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].error, serve::ServeError::bad_request);
    EXPECT_EQ(frames[0].message, "embedded NUL byte in request line");
    // The connection survives: the next line decodes normally.
    EXPECT_EQ(frames[1].error, serve::ServeError::none);
    EXPECT_EQ(frames[1].text, "ok");
}

TEST(LineDecoder, OversizedLineOneErrorThenRecovers) {
    serve::LineDecoder d(16);
    const std::string big(100, 'x');
    Frames frames;
    d.feed(big.data(), big.size(), frames);
    // Exactly one error frame no matter how much tail follows the breach.
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].error, serve::ServeError::bad_request);
    EXPECT_EQ(frames[0].message, "request line exceeds 16 bytes");
    // Decoder is not holding the oversized payload.
    EXPECT_EQ(d.buffered(), 0u);
    // The rest of the oversized line is discarded up to its newline; the
    // next line is decoded normally.
    const auto after = feed_all(d, "still-the-big-line\n{\"id\":1}\n");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].error, serve::ServeError::none);
    EXPECT_EQ(after[0].text, "{\"id\":1}");
}

TEST(LineDecoder, OversizedLineSplitAcrossFeeds) {
    serve::LineDecoder d(8);
    Frames frames;
    const std::string a(6, 'a');
    const std::string b(6, 'b');
    d.feed(a.data(), a.size(), frames);
    EXPECT_TRUE(frames.empty());
    d.feed(b.data(), b.size(), frames);  // breaches mid-second-chunk
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].error, serve::ServeError::bad_request);
    const auto after = feed_all(d, "bbb\nnext\n");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].text, "next");
}

TEST(LineDecoder, PartialLineAtEofStaysBuffered) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "half-a-request");
    EXPECT_TRUE(frames.empty());
    EXPECT_EQ(d.buffered(), 14u);
}

TEST(LineDecoder, MaxLineAccessor) {
    serve::LineDecoder d(4096);
    EXPECT_EQ(d.max_line(), 4096u);
    serve::LineDecoder clamped(0);  // clamped to at least 1
    EXPECT_EQ(clamped.max_line(), 1u);
}

}  // namespace
