// Incremental ND-JSON frame decoding for the TCP wire path.
//
// The stdin loop gets whole lines from getline(); the socket path gets
// arbitrary byte chunks.  LineDecoder must therefore reassemble frames from
// any split — including mid-UTF-8-sequence — and turn every malformed line
// into a structured bad_request frame, never an exception and never a dead
// connection.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "serve/errors.hpp"
#include "serve/ndjson.hpp"

namespace serve = xnfv::serve;

namespace {

using Frames = std::vector<serve::Frame>;

Frames feed_all(serve::LineDecoder& decoder, const std::string& bytes) {
    Frames frames;
    decoder.feed(bytes.data(), bytes.size(), frames);
    return frames;
}

/// Feeds one byte at a time — the worst split the kernel can produce.
Frames feed_bytewise(serve::LineDecoder& decoder, const std::string& bytes) {
    Frames frames;
    for (const char c : bytes) decoder.feed(&c, 1, frames);
    return frames;
}

TEST(LineDecoder, SingleLineOneFeed) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "{\"op\":\"stats\"}\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].error, serve::ServeError::none);
    EXPECT_EQ(frames[0].text, "{\"op\":\"stats\"}");
    EXPECT_EQ(d.buffered(), 0u);
}

TEST(LineDecoder, MultipleLinesOneFeed) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "a\nb\nc\n");
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].text, "a");
    EXPECT_EQ(frames[1].text, "b");
    EXPECT_EQ(frames[2].text, "c");
}

TEST(LineDecoder, LineSplitAcrossFeeds) {
    serve::LineDecoder d;
    Frames frames;
    const std::string part1 = "{\"op\":\"explain\",\"ro";
    const std::string part2 = "w\":3}\n";
    EXPECT_EQ(d.feed(part1.data(), part1.size(), frames), 0u);
    EXPECT_EQ(d.buffered(), part1.size());
    EXPECT_EQ(d.feed(part2.data(), part2.size(), frames), 1u);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].text, "{\"op\":\"explain\",\"row\":3}");
}

TEST(LineDecoder, BytewiseFeedMatchesWholeFeed) {
    const std::string wire = "{\"id\":1}\n\n  \n{\"id\":2}\r\n";
    serve::LineDecoder whole;
    serve::LineDecoder bytewise;
    const auto a = feed_all(whole, wire);
    const auto b = feed_bytewise(bytewise, wire);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].text, b[i].text);
        EXPECT_EQ(a[i].error, b[i].error);
    }
}

TEST(LineDecoder, CrlfToleranceStripsOneCarriageReturn) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "{\"op\":\"quit\"}\r\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].text, "{\"op\":\"quit\"}");
    // Only ONE trailing CR is wire framing; an inner CR is payload.
    serve::LineDecoder d2;
    const auto inner = feed_all(d2, "a\rb\r\r\n");
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0].text, "a\rb\r");
}

TEST(LineDecoder, BlankAndWhitespaceLinesSkipped) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "\n \t \n\r\n{\"id\":9}\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].text, "{\"id\":9}");
}

TEST(LineDecoder, Utf8SplitAcrossReadsReassembles) {
    // "λ=π" — both λ (0xCE 0xBB) and π (0xCF 0x80) are two-byte sequences;
    // split the stream in the middle of each.
    const std::string line = "{\"note\":\"\xCE\xBB=\xCF\x80\"}\n";
    for (std::size_t cut = 1; cut + 1 < line.size(); ++cut) {
        serve::LineDecoder d;
        Frames frames;
        d.feed(line.data(), cut, frames);
        d.feed(line.data() + cut, line.size() - cut, frames);
        ASSERT_EQ(frames.size(), 1u) << "cut at " << cut;
        EXPECT_EQ(frames[0].error, serve::ServeError::none);
        EXPECT_EQ(frames[0].text, line.substr(0, line.size() - 1))
            << "cut at " << cut;
    }
}

TEST(LineDecoder, EmbeddedNulRejectedAsBadRequest) {
    serve::LineDecoder d;
    const std::string wire{"{\"a\":\0\"b\"}\nok\n", 14};
    const auto frames = feed_all(d, wire);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].error, serve::ServeError::bad_request);
    EXPECT_EQ(frames[0].message, "embedded NUL byte in request line");
    // The connection survives: the next line decodes normally.
    EXPECT_EQ(frames[1].error, serve::ServeError::none);
    EXPECT_EQ(frames[1].text, "ok");
}

TEST(LineDecoder, OversizedLineOneErrorThenRecovers) {
    serve::LineDecoder d(16);
    const std::string big(100, 'x');
    Frames frames;
    d.feed(big.data(), big.size(), frames);
    // Exactly one error frame no matter how much tail follows the breach.
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].error, serve::ServeError::bad_request);
    EXPECT_EQ(frames[0].message, "request line exceeds 16 bytes");
    // Decoder is not holding the oversized payload.
    EXPECT_EQ(d.buffered(), 0u);
    // The rest of the oversized line is discarded up to its newline; the
    // next line is decoded normally.
    const auto after = feed_all(d, "still-the-big-line\n{\"id\":1}\n");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].error, serve::ServeError::none);
    EXPECT_EQ(after[0].text, "{\"id\":1}");
}

TEST(LineDecoder, OversizedLineSplitAcrossFeeds) {
    serve::LineDecoder d(8);
    Frames frames;
    const std::string a(6, 'a');
    const std::string b(6, 'b');
    d.feed(a.data(), a.size(), frames);
    EXPECT_TRUE(frames.empty());
    d.feed(b.data(), b.size(), frames);  // breaches mid-second-chunk
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].error, serve::ServeError::bad_request);
    const auto after = feed_all(d, "bbb\nnext\n");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].text, "next");
}

TEST(LineDecoder, PartialLineAtEofStaysBuffered) {
    serve::LineDecoder d;
    const auto frames = feed_all(d, "half-a-request");
    EXPECT_TRUE(frames.empty());
    EXPECT_EQ(d.buffered(), 14u);
}

TEST(LineDecoder, MaxLineAccessor) {
    serve::LineDecoder d(4096);
    EXPECT_EQ(d.max_line(), 4096u);
    serve::LineDecoder clamped(0);  // clamped to at least 1
    EXPECT_EQ(clamped.max_line(), 1u);
}

// ---------------------------------------------------------------------------
// Property tests: the decoded frame sequence is a pure function of the byte
// stream — independent of how the kernel splits it into reads.  Seeded
// random schedules make the cases reproducible; any failure prints its seed.

/// One seeded-random wire stream mixing everything the decoder must survive:
/// valid JSON lines, malformed fragments, whitespace, CRLF endings, an
/// embedded NUL, multi-byte UTF-8 runs, and lines past the size cap.
std::string random_wire(std::mt19937_64& rng, std::size_t lines,
                        std::size_t max_line) {
    std::string wire;
    for (std::size_t i = 0; i < lines; ++i) {
        switch (rng() % 8) {
            case 0:
                wire += "{\"op\":\"explain\",\"row\":" + std::to_string(rng() % 100) +
                        "}";
                break;
            case 1:  // malformed JSON — framing must still carry it whole
                wire += "{\"op\":\"explain\",\"row\":";
                break;
            case 2:  // blank / whitespace-only (skipped by the decoder)
                wire += (rng() % 2) ? "" : " \t ";
                break;
            case 3: {  // oversize: breaches the cap, must yield ONE error
                wire += std::string(max_line + 1 + rng() % 40, 'x');
                break;
            }
            case 4:  // multi-byte UTF-8 payload (2-, 3-, and 4-byte runs)
                wire += "{\"note\":\"\xCE\xBB \xE2\x82\xAC \xF0\x9F\x9A\x80\"}";
                break;
            case 5:  // inner CR is payload, not framing
                wire += "{\"a\":\"x\ry\"}";
                break;
            case 6:  // embedded NUL -> structured bad_request
                wire += std::string("{\"z\":\0}", 7);
                break;
            default:
                wire += "{\"id\":" + std::to_string(rng() % 1000) + "}";
                break;
        }
        wire += (rng() % 4 == 0) ? "\r\n" : "\n";
    }
    return wire;
}

TEST(LineDecoderFuzz, FramesIndependentOfSplitSchedule) {
    // 64 random streams x 8 random split schedules each, all compared to
    // the whole-buffer reference decode of the same bytes.
    for (std::uint64_t stream_seed = 1; stream_seed <= 64; ++stream_seed) {
        std::mt19937_64 rng(0x5eed0000 + stream_seed);
        const auto wire = random_wire(rng, 12 + rng() % 20, /*max_line=*/64);

        serve::LineDecoder whole(64);
        Frames reference;
        whole.feed(wire.data(), wire.size(), reference);

        for (std::uint64_t split_seed = 1; split_seed <= 8; ++split_seed) {
            std::mt19937_64 split_rng(0xca11ab1e + split_seed * 7919);
            serve::LineDecoder d(64);
            Frames got;
            std::size_t at = 0;
            while (at < wire.size()) {
                const std::size_t chunk =
                    std::min<std::size_t>(wire.size() - at, split_rng() % 18);
                d.feed(wire.data() + at, chunk, got);
                at += chunk;
            }
            ASSERT_EQ(got.size(), reference.size())
                << "stream " << stream_seed << " split " << split_seed;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].text, reference[i].text)
                    << "stream " << stream_seed << " split " << split_seed
                    << " frame " << i;
                EXPECT_EQ(got[i].error, reference[i].error)
                    << "stream " << stream_seed << " split " << split_seed
                    << " frame " << i;
                EXPECT_EQ(got[i].message, reference[i].message)
                    << "stream " << stream_seed << " split " << split_seed
                    << " frame " << i;
            }
            EXPECT_EQ(d.buffered(), whole.buffered())
                << "stream " << stream_seed << " split " << split_seed;
        }
    }
}

TEST(LineDecoderFuzz, BytewiseEqualsWholeOnRandomStreams) {
    // The pathological 1-byte-read schedule over the same random mixes.
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        std::mt19937_64 rng(0xb17e0000 + seed);
        const auto wire = random_wire(rng, 10 + rng() % 16, /*max_line=*/48);
        serve::LineDecoder whole(48);
        Frames reference;
        whole.feed(wire.data(), wire.size(), reference);
        serve::LineDecoder d(48);
        Frames got;
        for (const char c : wire) d.feed(&c, 1, got);
        ASSERT_EQ(got.size(), reference.size()) << "seed " << seed;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].text, reference[i].text) << "seed " << seed;
            EXPECT_EQ(got[i].error, reference[i].error) << "seed " << seed;
        }
    }
}

TEST(LineDecoderFuzz, RandomSplitsOfConcatenatedKnownStreamsNeverDesync) {
    // Adversarial back-to-back recovery: oversize breach immediately
    // followed by a valid frame, repeated, under random splits — the
    // decoder must re-sync at every newline.
    std::string wire;
    for (int i = 0; i < 20; ++i) {
        wire += std::string(100, 'y') + "\n";        // breach (cap is 32)
        wire += "{\"ok\":" + std::to_string(i) + "}\n";  // must survive
    }
    serve::LineDecoder whole(32);
    Frames reference;
    whole.feed(wire.data(), wire.size(), reference);
    ASSERT_EQ(reference.size(), 40u);  // 20 error frames + 20 valid frames
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        std::mt19937_64 rng(0xdec0de00 + seed);
        serve::LineDecoder d(32);
        Frames got;
        std::size_t at = 0;
        while (at < wire.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(wire.size() - at, 1 + rng() % 7);
            d.feed(wire.data() + at, chunk, got);
            at += chunk;
        }
        ASSERT_EQ(got.size(), reference.size()) << "seed " << seed;
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].text, reference[i].text)
                << "seed " << seed << " frame " << i;
    }
}

}  // namespace
