#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/dataset_builder.hpp"
#include "workload/scenario.hpp"

namespace wl = xnfv::wl;
namespace nfv = xnfv::nfv;
namespace ml = xnfv::ml;

TEST(Scenario, ChainTemplatesResolve) {
    for (auto t : {wl::ChainTemplate::web_gateway, wl::ChainTemplate::secure_enterprise,
                   wl::ChainTemplate::video_cdn, wl::ChainTemplate::iot_ingest,
                   wl::ChainTemplate::vpn_tunnel}) {
        const auto types = wl::chain_types(t);
        EXPECT_GE(types.size(), 2u);
        EXPECT_LE(types.size(), 3u);
        EXPECT_STRNE(wl::to_string(t), "unknown");
    }
}

TEST(Scenario, StandardLibraryHasFiveFamilies) {
    const auto specs = wl::standard_scenarios();
    EXPECT_EQ(specs.size(), 5u);
    std::set<std::string> names;
    for (const auto& s : specs) names.insert(s.name);
    EXPECT_EQ(names.size(), 5u);  // distinct names
}

TEST(Scenario, FaultScenariosCarryTheirFault) {
    for (auto f : {wl::FaultKind::cpu_starvation, wl::FaultKind::link_saturation,
                   wl::FaultKind::traffic_burst, wl::FaultKind::cache_contention,
                   wl::FaultKind::memory_pressure}) {
        const auto s = wl::fault_scenario(f);
        EXPECT_EQ(s.fault, f);
        EXPECT_GT(s.fault_prob, 0.0);
        EXPECT_STRNE(wl::to_string(f), "unknown");
    }
}

TEST(DatasetBuilder, ProducesRequestedRows) {
    ml::Rng rng(1);
    wl::BuildOptions opt;
    opt.num_samples = 300;
    const auto built = wl::build_dataset(wl::standard_scenarios()[0], opt, rng);
    EXPECT_EQ(built.data.size(), 300u);
    EXPECT_EQ(built.fault.size(), 300u);
    EXPECT_EQ(built.chain_kind.size(), 300u);
    EXPECT_EQ(built.latency_ms.size(), 300u);
    EXPECT_NO_THROW(built.data.validate());
}

TEST(DatasetBuilder, FeatureNamesMatchTelemetry) {
    ml::Rng rng(2);
    wl::BuildOptions opt;
    opt.num_samples = 50;
    opt.feature_set = nfv::FeatureSet::full_telemetry;
    const auto built = wl::build_dataset(wl::standard_scenarios()[1], opt, rng);
    EXPECT_EQ(built.data.feature_names, nfv::feature_names(nfv::FeatureSet::full_telemetry));
    EXPECT_EQ(built.data.num_features(), 18u);
}

TEST(DatasetBuilder, ConfigOnlyFeatureSetIsSmaller) {
    ml::Rng rng(3);
    wl::BuildOptions opt;
    opt.num_samples = 50;
    opt.feature_set = nfv::FeatureSet::config_only;
    const auto built = wl::build_dataset(wl::standard_scenarios()[0], opt, rng);
    EXPECT_EQ(built.data.num_features(), 10u);
}

TEST(DatasetBuilder, ClassificationLabelsAreBinaryAndMixed) {
    ml::Rng rng(4);
    wl::BuildOptions opt;
    opt.num_samples = 600;
    opt.label = nfv::LabelKind::sla_violation;
    const auto built = wl::build_dataset(wl::standard_scenarios()[4], opt, rng);
    for (double y : built.data.y) EXPECT_TRUE(y == 0.0 || y == 1.0);
    const double rate = built.data.positive_rate();
    EXPECT_GT(rate, 0.02);  // some violations happen
    EXPECT_LT(rate, 0.98);  // but not all the time
}

TEST(DatasetBuilder, RegressionLabelsArePositiveFiniteLatencies) {
    ml::Rng rng(5);
    wl::BuildOptions opt;
    opt.num_samples = 200;
    opt.label = nfv::LabelKind::latency_ms;
    const auto built = wl::build_dataset(wl::standard_scenarios()[2], opt, rng);
    for (double y : built.data.y) {
        EXPECT_GT(y, 0.0);
        EXPECT_TRUE(std::isfinite(y));
    }
}

TEST(DatasetBuilder, AllFeaturesFinite) {
    ml::Rng rng(6);
    wl::BuildOptions opt;
    opt.num_samples = 300;
    const auto built =
        wl::build_mixed_dataset(wl::standard_scenarios(), opt, rng);
    for (std::size_t r = 0; r < built.data.size(); ++r)
        for (double v : built.data.x.row(r)) EXPECT_TRUE(std::isfinite(v));
}

TEST(DatasetBuilder, FaultInjectionRateNearProbability) {
    ml::Rng rng(7);
    auto spec = wl::fault_scenario(wl::FaultKind::cpu_starvation);
    spec.fault_prob = 0.5;
    wl::BuildOptions opt;
    opt.num_samples = 800;
    const auto built = wl::build_dataset(spec, opt, rng);
    double faulted = 0.0;
    for (auto f : built.fault) faulted += f == wl::FaultKind::cpu_starvation ? 1.0 : 0.0;
    EXPECT_NEAR(faulted / 800.0, 0.5, 0.12);
}

TEST(DatasetBuilder, CpuStarvationRaisesViolationRate) {
    ml::Rng rng(8);
    auto spec = wl::fault_scenario(wl::FaultKind::cpu_starvation);
    wl::BuildOptions opt;
    opt.num_samples = 800;
    const auto built = wl::build_dataset(spec, opt, rng);
    double v_faulted = 0.0, n_faulted = 0.0, v_clean = 0.0, n_clean = 0.0;
    for (std::size_t i = 0; i < built.data.size(); ++i) {
        if (built.fault[i] == wl::FaultKind::cpu_starvation) {
            v_faulted += built.data.y[i];
            n_faulted += 1.0;
        } else {
            v_clean += built.data.y[i];
            n_clean += 1.0;
        }
    }
    ASSERT_GT(n_faulted, 0.0);
    ASSERT_GT(n_clean, 0.0);
    EXPECT_GT(v_faulted / n_faulted, v_clean / n_clean);
}

TEST(DatasetBuilder, MixedDatasetCoversAllTemplates) {
    ml::Rng rng(9);
    wl::BuildOptions opt;
    opt.num_samples = 500;
    const auto built = wl::build_mixed_dataset(wl::standard_scenarios(), opt, rng);
    std::set<wl::ChainTemplate> seen(built.chain_kind.begin(), built.chain_kind.end());
    EXPECT_GE(seen.size(), 4u);
}

TEST(DatasetBuilder, RejectsEmptyScenarioList) {
    ml::Rng rng(10);
    EXPECT_THROW((void)wl::build_mixed_dataset({}, wl::BuildOptions{}, rng),
                 std::invalid_argument);
}

TEST(DatasetBuilder, DeterministicGivenSeed) {
    wl::BuildOptions opt;
    opt.num_samples = 100;
    ml::Rng a(77), b(77);
    const auto da = wl::build_dataset(wl::standard_scenarios()[0], opt, a);
    const auto db = wl::build_dataset(wl::standard_scenarios()[0], opt, b);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(da.data.y[i], db.data.y[i]);
}

// Sweep: every fault family produces a usable labelled dataset.
class FaultFamilySweep : public ::testing::TestWithParam<wl::FaultKind> {};

TEST_P(FaultFamilySweep, BuildsMixedLabelDataset) {
    ml::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    wl::BuildOptions opt;
    opt.num_samples = 400;
    const auto built = wl::build_dataset(wl::fault_scenario(GetParam()), opt, rng);
    EXPECT_EQ(built.data.size(), 400u);
    const double rate = built.data.positive_rate();
    EXPECT_GT(rate, 0.01);
    EXPECT_LT(rate, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Faults, FaultFamilySweep,
                         ::testing::Values(wl::FaultKind::cpu_starvation,
                                           wl::FaultKind::link_saturation,
                                           wl::FaultKind::traffic_burst,
                                           wl::FaultKind::cache_contention,
                                           wl::FaultKind::memory_pressure),
                         [](const auto& param_info) {
                             return std::string(wl::to_string(param_info.param));
                         });
