// Explainer-routing suite (DESIGN.md §16): the ExplainerRouter's static
// table, its integration with the serving path, and the contracts that make
// "auto" safe to expose:
//
//   1. classify_model / route_explainer implement exactly the documented
//      decision table — auto resolves per model kind, forced exact methods
//      on an incompatible kind are structured `unsupported_explainer`
//      failures (never silent degradations), probe methods pass any kind.
//   2. Served fast-path responses are byte-identical to one-shot explainers
//      — in process and over a 2-shard TCP replay — for both exact paths.
//   3. Route decisions are stamped on the model snapshot at load/swap, so a
//      hot swap re-routes and a request races against its *pinned* version.
//   4. Fast-path explainer config (IG step count) is part of the cache key:
//      two services differing only in ig_steps never cross-hit through a
//      snapshot restore.
//   5. The predict_throw chaos point composes with the flat fast path even
//      though that path never calls the (fault-wrapped) serving model.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/flat_tree_shap.hpp"
#include "core/gradient.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/model.hpp"
#include "mlcore/tree.hpp"
#include "net/loadgen.hpp"
#include "net/sharded_server.hpp"
#include "serve/explainers.hpp"
#include "serve/ndjson.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"

namespace ml = xnfv::ml;
namespace net = xnfv::net;
namespace serve = xnfv::serve;
namespace xai = xnfv::xai;
using xnfv::testutil::make_xor_dataset;

namespace {

constexpr std::uint64_t kSeed = 11;

/// One trained model of every routable kind over the same 2-feature XOR
/// data, so any of them can be hot-swapped for any other.
struct Zoo {
    ml::Dataset data;
    std::shared_ptr<ml::DecisionTree> tree;
    std::shared_ptr<ml::RandomForest> forest;
    std::shared_ptr<ml::GradientBoostedTrees> gbt;
    std::shared_ptr<ml::Mlp> mlp;
    std::shared_ptr<ml::LambdaModel> lambda;
    xai::BackgroundData background{ml::Matrix(0, 0)};
};

const Zoo& zoo() {
    static const Zoo z = [] {
        Zoo out;
        ml::Rng rng(2020);
        out.data = make_xor_dataset(600, rng);
        out.tree = std::make_shared<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 6});
        out.tree->fit(out.data);
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 9});
        out.forest->fit(out.data, rng);
        out.gbt = std::make_shared<ml::GradientBoostedTrees>(
            ml::GradientBoostedTrees::Config{.num_rounds = 15});
        out.gbt->fit(out.data, rng);
        out.mlp = std::make_shared<ml::Mlp>(ml::Mlp::Config{
            .hidden_layers = {8}, .activation = ml::Activation::tanh, .epochs = 25});
        out.mlp->fit(out.data, rng);
        out.lambda = std::make_shared<ml::LambdaModel>(
            2, [](std::span<const double> x) { return 0.5 * x[0] - x[1]; });
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return z;
}

serve::ExplainRequest request_for(std::uint64_t id, std::vector<double> features,
                                  const std::string& method = "") {
    serve::ExplainRequest r;
    r.id = id;
    r.features = std::move(features);
    r.method = method;
    return r;
}

serve::ServiceConfig quick_config() {
    serve::ServiceConfig cfg;
    cfg.max_batch = 4;
    cfg.max_wait = std::chrono::microseconds(100);
    cfg.seed = kSeed;
    return cfg;
}

}  // namespace

// ------------------------------------------------------ the static table ---

TEST(RouterTable, ClassifyRecognizesEveryRoutableKind) {
    const auto& z = zoo();
    EXPECT_EQ(serve::classify_model(*z.tree), serve::ModelKind::tree);
    EXPECT_EQ(serve::classify_model(*z.forest), serve::ModelKind::forest);
    EXPECT_EQ(serve::classify_model(*z.gbt), serve::ModelKind::gbt);
    EXPECT_EQ(serve::classify_model(*z.mlp), serve::ModelKind::mlp);
    EXPECT_EQ(serve::classify_model(*z.lambda), serve::ModelKind::other);
}

TEST(RouterTable, AutoResolvesToTheKindsExactFastPath) {
    for (const auto kind : {serve::ModelKind::tree, serve::ModelKind::forest,
                            serve::ModelKind::gbt}) {
        const auto d = serve::route_explainer(serve::kAutoMethod, kind);
        EXPECT_EQ(d.method, "tree_shap");
        EXPECT_TRUE(d.fast_path);
        EXPECT_FALSE(d.unsupported);
    }
    const auto mlp = serve::route_explainer(serve::kAutoMethod, serve::ModelKind::mlp);
    EXPECT_EQ(mlp.method, "integrated_gradients");
    EXPECT_TRUE(mlp.fast_path);
    const auto other =
        serve::route_explainer(serve::kAutoMethod, serve::ModelKind::other);
    EXPECT_EQ(other.method, "kernel_shap");
    EXPECT_FALSE(other.fast_path);
    EXPECT_FALSE(other.unsupported);
}

TEST(RouterTable, ForcedExactMethodOnWrongKindIsUnsupportedWithRegistryList) {
    const auto ts = serve::route_explainer("tree_shap", serve::ModelKind::mlp);
    EXPECT_TRUE(ts.unsupported);
    EXPECT_NE(ts.why.find("requires a tree ensemble"), std::string::npos);
    EXPECT_NE(ts.why.find("'mlp'"), std::string::npos);
    // The message names the valid set from the one shared registry.
    EXPECT_NE(ts.why.find(serve::explainer_list(", ")), std::string::npos);
    const auto ig =
        serve::route_explainer("integrated_gradients", serve::ModelKind::forest);
    EXPECT_TRUE(ig.unsupported);
    EXPECT_NE(ig.why.find("analytic gradients"), std::string::npos);
    // Probe methods treat any model as a black box.
    for (const char* m : {"kernel_shap", "sampling", "lime", "occlusion"}) {
        for (const auto kind :
             {serve::ModelKind::tree, serve::ModelKind::mlp, serve::ModelKind::other}) {
            const auto d = serve::route_explainer(m, kind);
            EXPECT_FALSE(d.unsupported) << m;
            EXPECT_FALSE(d.fast_path) << m;
            EXPECT_EQ(d.method, m);
        }
    }
    // Forced exact methods on their own kind stay fast.
    EXPECT_TRUE(serve::route_explainer("tree_shap", serve::ModelKind::gbt).fast_path);
    EXPECT_TRUE(
        serve::route_explainer("integrated_gradients", serve::ModelKind::mlp).fast_path);
}

// ------------------------------------------------------- served routing ----

TEST(RouterServing, AutoRoutesGbtToFlatTreeShapAndCountsFastPath) {
    const auto& z = zoo();
    serve::ExplanationService service(z.gbt, z.background, quick_config());
    const auto r = service.explain_sync(request_for(1, {0.4, -0.7}, "auto"));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.explanation.method, "tree_shap");  // never "auto" on the wire
    const auto stats = service.stats();
    EXPECT_EQ(stats.fast_path_hits, 1u);
    ASSERT_EQ(stats.explainers.size(), 1u);
    EXPECT_EQ(stats.explainers[0].name, "tree_shap");
    EXPECT_EQ(stats.explainers[0].requests, 1u);
    EXPECT_EQ(stats.explainers[0].fast_path_hits, 1u);
    service.stop();
}

TEST(RouterServing, AutoRoutesMlpToIntegratedGradients) {
    const auto& z = zoo();
    serve::ExplanationService service(z.mlp, z.background, quick_config());
    const auto r = service.explain_sync(request_for(1, {0.4, -0.7}, "auto"));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.explanation.method, "integrated_gradients");
    const auto stats = service.stats();
    EXPECT_EQ(stats.fast_path_hits, 1u);
    ASSERT_EQ(stats.explainers.size(), 1u);
    EXPECT_EQ(stats.explainers[0].name, "integrated_gradients");
    EXPECT_EQ(stats.explainers[0].fast_path_hits, 1u);
    service.stop();
}

TEST(RouterServing, AutoFallsBackToKernelShapOnBlackBoxModels) {
    const auto& z = zoo();
    serve::ExplanationService service(z.lambda, z.background, quick_config());
    const auto r = service.explain_sync(request_for(1, {0.4, -0.7}, "auto"));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.explanation.method, "kernel_shap");
    const auto stats = service.stats();
    EXPECT_EQ(stats.fast_path_hits, 0u);
    ASSERT_EQ(stats.explainers.size(), 1u);
    EXPECT_EQ(stats.explainers[0].name, "kernel_shap");
    EXPECT_EQ(stats.explainers[0].fast_path_hits, 0u);
    EXPECT_GT(stats.model_evals, 0u);  // probe path still counts evals
    service.stop();
}

TEST(RouterServing, ForcedIncompatibleExplainerIsAStructuredError) {
    const auto& z = zoo();
    serve::ExplanationService service(z.mlp, z.background, quick_config());
    const auto forced = service.explain_sync(request_for(1, {0.4, -0.7}, "tree_shap"));
    EXPECT_FALSE(forced.ok);
    EXPECT_EQ(forced.error_code, serve::ServeError::unsupported_explainer);
    EXPECT_NE(forced.error.find("requires a tree ensemble"), std::string::npos);
    // The failure is per-request: the same service keeps serving auto.
    const auto ok = service.explain_sync(request_for(2, {0.4, -0.7}, "auto"));
    EXPECT_TRUE(ok.ok) << ok.error;
    const auto stats = service.stats();
    EXPECT_EQ(stats.errors_by_reason[static_cast<std::size_t>(
                  serve::ServeError::unsupported_explainer)],
              1u);
    EXPECT_EQ(stats.fast_path_hits, 1u);
    service.stop();
}

TEST(RouterServing, ServedFastPathsAreByteIdenticalToOneShotExplainers) {
    const auto& z = zoo();
    const std::vector<double> x{0.3, -0.6};
    {
        serve::ExplanationService service(z.forest, z.background, quick_config());
        const auto served = service.explain_sync(request_for(1, x, "tree_shap"));
        ASSERT_TRUE(served.ok) << served.error;
        const auto one_shot =
            serve::make_explainer("tree_shap", z.background, kSeed)->explain(*z.forest, x);
        EXPECT_EQ(served.explanation.prediction, one_shot.prediction);
        EXPECT_EQ(served.explanation.base_value, one_shot.base_value);
        EXPECT_EQ(served.explanation.attributions, one_shot.attributions);
        service.stop();
    }
    {
        serve::ExplanationService service(z.mlp, z.background, quick_config());
        const auto served =
            service.explain_sync(request_for(1, x, "integrated_gradients"));
        ASSERT_TRUE(served.ok) << served.error;
        const auto one_shot = serve::make_explainer("integrated_gradients",
                                                    z.background, kSeed)
                                  ->explain(*z.mlp, x);
        EXPECT_EQ(served.explanation.prediction, one_shot.prediction);
        EXPECT_EQ(served.explanation.base_value, one_shot.base_value);
        EXPECT_EQ(served.explanation.attributions, one_shot.attributions);
        service.stop();
    }
}

TEST(RouterServing, ServedAutoLinesAreByteIdenticalOverShardedTcp) {
    // Full-stack parity: a 2-shard TCP replay of "auto" requests against a
    // GBT fleet must put the exact one-shot flat-TreeSHAP bytes on the wire,
    // and an unknown method must be refused with the registry's list.
    const auto& z = zoo();
    const std::vector<double> x{0.3, -0.6};
    auto line = [&x](std::uint64_t id, const std::string& method) {
        serve::JsonWriter w;
        w.field("op", "explain");
        w.field("id", id);
        w.field("method", method);
        w.field("seed", kSeed);
        w.field_array("features", x);
        return w.finish();
    };
    std::vector<std::vector<std::string>> scripts{
        {line(1, "auto"), line(2, "astrology"), "{\"op\":\"quit\"}"}};

    net::ShardedServerConfig shcfg;
    shcfg.shards = 2;
    net::ShardedServer server(z.gbt, z.background, quick_config(), shcfg);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::thread loop([&server] { server.run(); });
    net::LoadgenConfig lg;
    lg.port = server.port();
    lg.window = 1;
    lg.timeout = std::chrono::milliseconds(120000);
    const auto report = net::run_load(lg, scripts);
    const auto stats = server.stats();
    server.request_drain();
    loop.join();
    server.stop_services();

    ASSERT_FALSE(report.timed_out);
    ASSERT_EQ(report.conns.size(), 1u);
    ASSERT_EQ(report.conns[0].lines.size(), 2u);
    serve::ExplainResponse want;
    want.id = 1;
    want.ok = true;
    want.explanation =
        serve::make_explainer("tree_shap", z.background, kSeed)->explain(*z.gbt, x);
    EXPECT_EQ(report.conns[0].lines[0], serve::render_response(want));
    const auto& refused = report.conns[0].lines[1];
    EXPECT_NE(refused.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(refused.find(serve::explainer_list_with_auto()), std::string::npos);
    EXPECT_EQ(stats.fast_path_hits, 1u);
}

// ---------------------------------------------------- snapshot stamping ----

TEST(RouterRegistry, RouteDecisionIsStampedAtLoadAndRestampedOnSwap) {
    const auto& z = zoo();
    serve::ExplanationService service(z.forest, z.background, quick_config());
    {
        const auto snap = service.registry().resolve("")->current();
        EXPECT_EQ(snap->kind, serve::ModelKind::forest);
        EXPECT_EQ(snap->auto_method, "tree_shap");
        EXPECT_NE(snap->flat_shap, nullptr);
    }
    ASSERT_EQ(service.model_load("nn", z.mlp), serve::ServeError::none);
    {
        const auto snap = service.registry().resolve("nn")->current();
        EXPECT_EQ(snap->kind, serve::ModelKind::mlp);
        EXPECT_EQ(snap->auto_method, "integrated_gradients");
        EXPECT_EQ(snap->flat_shap, nullptr);  // nothing to prebuild
    }
    // Hot swap the default tenant forest -> gbt -> lambda: each published
    // snapshot carries its own fresh route decision.
    ASSERT_EQ(service.model_swap("", z.gbt), serve::ServeError::none);
    {
        const auto snap = service.registry().resolve("")->current();
        EXPECT_EQ(snap->kind, serve::ModelKind::gbt);
        EXPECT_EQ(snap->auto_method, "tree_shap");
        EXPECT_NE(snap->flat_shap, nullptr);
    }
    ASSERT_EQ(service.model_swap("", z.lambda), serve::ServeError::none);
    {
        const auto snap = service.registry().resolve("")->current();
        EXPECT_EQ(snap->kind, serve::ModelKind::other);
        EXPECT_EQ(snap->auto_method, "kernel_shap");
        EXPECT_EQ(snap->flat_shap, nullptr);
    }
    // And traffic follows the swap: auto now rides the probe path.
    const auto r = service.explain_sync(request_for(1, {0.4, -0.7}, "auto"));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.explanation.method, "kernel_shap");
    service.stop();
}

// ----------------------------------------------------- cache-key hygiene ---

TEST(RouterCacheKeys, IgStepsAreInTheKeySoSnapshotRestoreCannotCrossHit) {
    const auto& z = zoo();
    const auto path = ::testing::TempDir() + "xnfv_router_ig_steps.bin";
    std::remove(path.c_str());
    const std::vector<double> x{0.25, -0.5};
    auto run = [&](std::size_t ig_steps) {
        auto cfg = quick_config();
        cfg.method = "integrated_gradients";
        cfg.ig_steps = ig_steps;
        cfg.snapshot_path = path;
        serve::ExplanationService service(z.mlp, z.background, cfg);
        const auto r = service.explain_sync(request_for(1, x));
        EXPECT_TRUE(r.ok) << r.error;
        const auto stats = service.stats();
        service.stop();  // persists the cache for the next life
        return stats;
    };
    const auto first = run(50);
    EXPECT_EQ(first.cache_misses, 1u);
    EXPECT_EQ(first.snapshot_records_loaded, 0u);
    // Same service config except ig_steps: the restored record must NOT
    // satisfy this request — a 16-step answer is a different computation.
    const auto different = run(16);
    EXPECT_GE(different.snapshot_records_loaded, 1u);
    EXPECT_EQ(different.cache_hits, 0u);
    EXPECT_EQ(different.cache_misses, 1u);
    // Control: an identical config does cross-restore and hits.
    const auto same = run(16);
    EXPECT_EQ(same.cache_hits, 1u);
    EXPECT_EQ(same.cache_misses, 0u);
    std::remove(path.c_str());
}

// ------------------------------------------------------ chaos composition --

TEST(RouterChaos, PredictThrowComposesWithTheFlatFastPath) {
    // The flat kernel never touches the fault-wrapped serving model, so the
    // fast path polls predict_throw explicitly: with rate 1 and max_fires 1,
    // the first explain fails as fault_injected and the second — same
    // features, so it must NOT have been cached — succeeds on the fast path.
    const auto& z = zoo();
    auto cfg = quick_config();
    serve::FaultInjector::Config fic;
    fic.seed = 7;
    fic.rate[static_cast<std::size_t>(serve::FaultPoint::predict_throw)] = 1.0;
    fic.max_fires[static_cast<std::size_t>(serve::FaultPoint::predict_throw)] = 1;
    cfg.fault_injector = std::make_shared<serve::FaultInjector>(fic);
    serve::ExplanationService service(z.forest, z.background, cfg);
    const auto faulted = service.explain_sync(request_for(1, {0.4, -0.7}, "auto"));
    EXPECT_FALSE(faulted.ok);
    EXPECT_EQ(faulted.error_code, serve::ServeError::fault_injected);
    const auto retried = service.explain_sync(request_for(2, {0.4, -0.7}, "auto"));
    ASSERT_TRUE(retried.ok) << retried.error;
    EXPECT_FALSE(retried.cache_hit);  // the faulted attempt cached nothing
    EXPECT_EQ(retried.explanation.method, "tree_shap");
    const auto stats = service.stats();
    EXPECT_EQ(stats.fast_path_hits, 1u);
    EXPECT_EQ(stats.faults_injected, 1u);
    service.stop();
}
