#include "mlcore/preprocess.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mlcore/rng.hpp"

namespace ml = xnfv::ml;

TEST(Standardizer, TransformsToZeroMeanUnitVar) {
    ml::Rng rng(1);
    ml::Matrix x(500, 3);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        x(r, 0) = rng.normal(10.0, 2.0);
        x(r, 1) = rng.normal(-5.0, 0.5);
        x(r, 2) = rng.uniform(0.0, 100.0);
    }
    ml::Standardizer s;
    s.fit(x);
    const auto z = s.transform(x);
    for (std::size_t c = 0; c < 3; ++c) {
        double mean = 0.0, var = 0.0;
        for (std::size_t r = 0; r < z.rows(); ++r) mean += z(r, c);
        mean /= static_cast<double>(z.rows());
        for (std::size_t r = 0; r < z.rows(); ++r)
            var += (z(r, c) - mean) * (z(r, c) - mean);
        var /= static_cast<double>(z.rows());
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(var, 1.0, 1e-9);
    }
}

TEST(Standardizer, RowRoundTrip) {
    ml::Matrix x = ml::Matrix::from_rows({{1, 10}, {2, 20}, {3, 30}});
    ml::Standardizer s;
    s.fit(x);
    const std::vector<double> row{2.5, 15.0};
    const auto z = s.transform_row(row);
    const auto back = s.inverse_row(z);
    EXPECT_NEAR(back[0], 2.5, 1e-12);
    EXPECT_NEAR(back[1], 15.0, 1e-12);
}

TEST(Standardizer, ConstantColumnCenteredNotScaled) {
    ml::Matrix x = ml::Matrix::from_rows({{5, 1}, {5, 2}, {5, 3}});
    ml::Standardizer s;
    s.fit(x);
    const auto z = s.transform_row(std::vector<double>{5.0, 2.0});
    EXPECT_DOUBLE_EQ(z[0], 0.0);  // (5-5)/1
}

TEST(Standardizer, ThrowsBeforeFitAndOnMismatch) {
    ml::Standardizer s;
    EXPECT_THROW((void)s.transform_row(std::vector<double>{1.0}), std::logic_error);
    ml::Matrix x = ml::Matrix::from_rows({{1, 2}});
    s.fit(x);
    EXPECT_THROW((void)s.transform_row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
    ml::Matrix x = ml::Matrix::from_rows({{0, 100}, {5, 200}, {10, 300}});
    ml::MinMaxScaler s;
    s.fit(x);
    const auto z = s.transform(x);
    EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(z(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(z(1, 1), 0.5);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
    ml::Matrix x = ml::Matrix::from_rows({{7}, {7}});
    ml::MinMaxScaler s;
    s.fit(x);
    EXPECT_DOUBLE_EQ(s.transform_row(std::vector<double>{7.0})[0], 0.0);
}

TEST(OneHot, EncodesCategories) {
    const std::vector<double> col{0, 2, 1, 2};
    const auto m = ml::one_hot(col, 3);
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(m(2, 1), 1.0);
    // Each row sums to 1.
    for (std::size_t r = 0; r < 4; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < 3; ++c) s += m(r, c);
        EXPECT_DOUBLE_EQ(s, 1.0);
    }
}

TEST(OneHot, OutOfRangeGivesAllZeros) {
    const std::vector<double> col{5, -1};
    const auto m = ml::one_hot(col, 3);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(StandardizeDataset, PreservesLabelsAndNames) {
    ml::Dataset d;
    d.task = ml::Task::regression;
    d.feature_names = {"f"};
    d.add(std::vector<double>{1.0}, 10.0);
    d.add(std::vector<double>{3.0}, 30.0);
    ml::Standardizer s;
    s.fit(d.x);
    const auto z = ml::standardize(d, s);
    EXPECT_EQ(z.y, d.y);
    EXPECT_EQ(z.feature_names, d.feature_names);
    EXPECT_NEAR(z.x(0, 0) + z.x(1, 0), 0.0, 1e-12);
}
