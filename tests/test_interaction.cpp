#include "core/interaction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mlcore/forest.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

TEST(FriedmanH, ZeroForAdditiveModel) {
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return 2.0 * x[0] + std::sin(x[1]) - x[2] * x[2];
    });
    EXPECT_NEAR(xai::friedman_h2(model, background, 0, 1), 0.0, 1e-9);
    EXPECT_NEAR(xai::friedman_h2(model, background, 1, 2), 0.0, 1e-9);
}

TEST(FriedmanH, OneForPureInteraction) {
    // f = x0 * x1 over a zero-mean background: PD_j are ~0, the joint PD is
    // the product surface, so H^2 -> 1.
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) { return x[0] * x[1]; });
    EXPECT_GT(xai::friedman_h2(model, background, 0, 1), 0.9);
}

TEST(FriedmanH, MixedModelIntermediate) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(128, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return 2.0 * x[0] + 2.0 * x[1] + x[0] * x[1];
    });
    const double h2 = xai::friedman_h2(model, background, 0, 1);
    EXPECT_GT(h2, 0.01);
    EXPECT_LT(h2, 0.5);
}

TEST(FriedmanH, SymmetricInArguments) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return x[0] * x[1] + x[2];
    });
    EXPECT_DOUBLE_EQ(xai::friedman_h2(model, background, 0, 1),
                     xai::friedman_h2(model, background, 1, 0));
}

TEST(FriedmanH, ConstantModelGivesZeroNotNan) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(32, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double>) { return 7.0; });
    EXPECT_DOUBLE_EQ(xai::friedman_h2(model, background, 0, 1), 0.0);
}

TEST(FriedmanH, RejectsMisuse) {
    ml::Rng rng(6);
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)xai::friedman_h2(model, xai::BackgroundData{}, 0, 1),
                 std::invalid_argument);
    const xai::BackgroundData background(make_uniform_background(16, 2, rng));
    EXPECT_THROW((void)xai::friedman_h2(model, background, 0, 0), std::invalid_argument);
    EXPECT_THROW((void)xai::friedman_h2(model, background, 0, 5), std::invalid_argument);
}

TEST(InteractionMatrix, FindsThePlantedPair) {
    ml::Rng rng(7);
    const xai::BackgroundData background(make_uniform_background(96, 4, rng));
    // Only (1, 3) interact.
    const ml::LambdaModel model(4, [](std::span<const double> x) {
        return x[0] + 2.0 * x[2] + 3.0 * x[1] * x[3];
    });
    const auto h = xai::interaction_matrix(model, background,
                                           xai::InteractionOptions{.max_points = 48});
    ASSERT_EQ(h.size(), 4u);
    EXPECT_GT(h[1][3], 0.5);
    EXPECT_DOUBLE_EQ(h[1][3], h[3][1]);
    EXPECT_NEAR(h[0][2], 0.0, 1e-6);
    EXPECT_DOUBLE_EQ(h[0][0], 0.0);  // zero diagonal
}

TEST(InteractionMatrix, WorksOnTreeEnsembles) {
    // Forests learn interactions via nested splits; H must detect the XOR
    // coupling between the two informative features.
    ml::Rng rng(8);
    ml::Dataset data;
    data.task = ml::Task::regression;
    for (int i = 0; i < 1500; ++i) {
        const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1),
                     c = rng.uniform(-1, 1);
        data.add(std::vector<double>{a, b, c}, ((a > 0) != (b > 0)) ? 5.0 : -5.0);
    }
    ml::RandomForest forest(ml::RandomForest::Config{.num_trees = 40});
    forest.fit(data, rng);
    const xai::BackgroundData background(data.x, 64);
    const auto h = xai::interaction_matrix(forest, background,
                                           xai::InteractionOptions{.max_points = 32});
    EXPECT_GT(h[0][1], h[0][2]);
    EXPECT_GT(h[0][1], h[1][2]);
    EXPECT_GT(h[0][1], 0.3);
}
