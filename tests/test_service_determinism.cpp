// Determinism contract of the serving path (DESIGN.md section 9):
//
// > A served explanation is bitwise identical to the one-shot path for the
// > same (model, method, seed, background) — at any batch size, queue
// > timing, and thread count — and a cache hit returns identical bytes.
//
// The one-shot reference is exactly what `xnfv_cli explain` does: build a
// fresh explainer via serve::make_explainer and call explain() once.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "mlcore/forest.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

constexpr std::uint64_t kSeed = 11;  // the `xnfv_cli explain` default

/// Fixed-seed NFV scenario dataset + forest shared by every test here.
struct Scenario {
    ml::Dataset data;
    std::shared_ptr<ml::RandomForest> forest;
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 260;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest = std::make_shared<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 8});
        out.forest->fit(out.data, rng);
        out.background = xai::BackgroundData(out.data.x, 32);
        return out;
    }();
    return s;
}

const std::vector<std::size_t>& test_rows() {
    static const std::vector<std::size_t> rows{0, 7, 42, 99, 7};  // note repeat
    return rows;
}

/// The one-shot path: fresh explainer, one explain() call.
xai::Explanation one_shot(const std::string& method, std::size_t row,
                          std::uint64_t seed = kSeed) {
    const auto& s = scenario();
    const auto explainer = serve::make_explainer(method, s.background, seed);
    return explainer->explain(*s.forest, s.data.x.row(row));
}

void expect_identical(const xai::Explanation& a, const xai::Explanation& b) {
    EXPECT_EQ(a.method, b.method);
    EXPECT_EQ(a.prediction, b.prediction);
    EXPECT_EQ(a.base_value, b.base_value);
    ASSERT_EQ(a.attributions.size(), b.attributions.size());
    for (std::size_t j = 0; j < a.attributions.size(); ++j)
        EXPECT_EQ(a.attributions[j], b.attributions[j]) << "feature " << j;
}

serve::ExplainRequest request_for_row(std::uint64_t id, std::size_t row) {
    const auto& s = scenario();
    serve::ExplainRequest r;
    r.id = id;
    const auto x = s.data.x.row(row);
    r.features.assign(x.begin(), x.end());
    return r;
}

/// Submits every test row asynchronously (so the micro-batcher can coalesce
/// them) and checks each response against the one-shot reference.
void check_service_matches_one_shot(const std::string& method,
                                    serve::ServiceConfig cfg) {
    cfg.method = method;
    cfg.seed = kSeed;
    serve::ExplanationService service(scenario().forest, scenario().background, cfg);

    std::vector<std::future<serve::ExplainResponse>> futures;
    for (std::size_t k = 0; k < test_rows().size(); ++k) {
        auto sub = service.submit(request_for_row(k, test_rows()[k]));
        ASSERT_EQ(sub.rejected, serve::ServeError::none);
        futures.push_back(std::move(sub.response));
    }
    for (std::size_t k = 0; k < futures.size(); ++k) {
        const auto response = futures[k].get();
        ASSERT_TRUE(response.ok) << response.error;
        expect_identical(response.explanation, one_shot(method, test_rows()[k]));
    }
}

serve::ServiceConfig sequential_config() {
    serve::ServiceConfig cfg;
    cfg.max_batch = 1;
    cfg.threads = 1;
    return cfg;
}

serve::ServiceConfig batched_config() {
    serve::ServiceConfig cfg;
    cfg.max_batch = 4;
    cfg.threads = 8;
    return cfg;
}

serve::ServiceConfig coalescing_config() {
    serve::ServiceConfig cfg;
    cfg.max_batch = 16;
    cfg.max_wait = std::chrono::microseconds(20000);  // whole set in one batch
    cfg.threads = 8;
    return cfg;
}

}  // namespace

TEST(ServiceDeterminism, TreeShapServedEqualsOneShotAtAnyBatchSizeAndThreads) {
    check_service_matches_one_shot("tree_shap", sequential_config());
    check_service_matches_one_shot("tree_shap", batched_config());
    check_service_matches_one_shot("tree_shap", coalescing_config());
}

TEST(ServiceDeterminism, KernelShapServedEqualsOneShotAtAnyBatchSizeAndThreads) {
    check_service_matches_one_shot("kernel_shap", sequential_config());
    check_service_matches_one_shot("kernel_shap", batched_config());
    check_service_matches_one_shot("kernel_shap", coalescing_config());
}

TEST(ServiceDeterminism, SamplingShapleyServedEqualsOneShot) {
    check_service_matches_one_shot("sampling", sequential_config());
    check_service_matches_one_shot("sampling", coalescing_config());
}

TEST(ServiceDeterminism, LimeServedEqualsOneShot) {
    check_service_matches_one_shot("lime", sequential_config());
    check_service_matches_one_shot("lime", coalescing_config());
}

TEST(ServiceDeterminism, OcclusionServedEqualsOneShot) {
    check_service_matches_one_shot("occlusion", sequential_config());
    check_service_matches_one_shot("occlusion", batched_config());
}

TEST(ServiceDeterminism, RequestSeedOverrideMatchesOneShotWithThatSeed) {
    serve::ServiceConfig cfg = batched_config();
    cfg.method = "sampling";
    cfg.seed = kSeed;
    serve::ExplanationService service(scenario().forest, scenario().background, cfg);

    auto req = request_for_row(1, 42);
    req.seed = 99;
    const auto r = service.explain_sync(std::move(req));
    ASSERT_TRUE(r.ok) << r.error;
    expect_identical(r.explanation, one_shot("sampling", 42, 99));

    // And the override is honoured (different seed -> different samples).
    const auto base = one_shot("sampling", 42, kSeed);
    bool any_diff = false;
    for (std::size_t j = 0; j < base.attributions.size(); ++j)
        any_diff = any_diff || base.attributions[j] != r.explanation.attributions[j];
    EXPECT_TRUE(any_diff);
}

TEST(ServiceDeterminism, CacheHitReturnsIdenticalBytes) {
    serve::ServiceConfig cfg = batched_config();
    cfg.method = "kernel_shap";
    serve::ExplanationService service(scenario().forest, scenario().background, cfg);

    const auto cold = service.explain_sync(request_for_row(1, 7));
    const auto warm = service.explain_sync(request_for_row(2, 7));
    ASSERT_TRUE(cold.ok);
    ASSERT_TRUE(warm.ok);
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_TRUE(warm.cache_hit);
    expect_identical(warm.explanation, cold.explanation);
    expect_identical(warm.explanation, one_shot("kernel_shap", 7));

    // Byte-level: the served JSON rendering (what `xnfv_cli serve` prints,
    // minus the id and cache_hit flag) must match character for character.
    const auto render = [](const serve::ExplainResponse& r) {
        serve::JsonWriter w;
        w.field("method", r.explanation.method);
        w.field("prediction", r.explanation.prediction);
        w.field("base_value", r.explanation.base_value);
        w.field_array("attributions", r.explanation.attributions);
        return w.finish();
    };
    EXPECT_EQ(render(cold), render(warm));
}

TEST(ServiceDeterminism, RepeatedRowsInOneBatchMatchOneShot) {
    // The row list contains a repeat (rows[1] == rows[4]); with the whole
    // set coalesced into one batch the duplicate is served from the batch-
    // local result and must still equal the one-shot reference bitwise.
    serve::ServiceConfig cfg = coalescing_config();
    cfg.method = "lime";
    cfg.seed = kSeed;
    serve::ExplanationService service(scenario().forest, scenario().background, cfg);

    std::vector<std::future<serve::ExplainResponse>> futures;
    for (std::size_t k = 0; k < test_rows().size(); ++k) {
        auto sub = service.submit(request_for_row(k, test_rows()[k]));
        ASSERT_EQ(sub.rejected, serve::ServeError::none);
        futures.push_back(std::move(sub.response));
    }
    for (std::size_t k = 0; k < futures.size(); ++k) {
        const auto response = futures[k].get();
        ASSERT_TRUE(response.ok) << response.error;
        expect_identical(response.explanation, one_shot("lime", test_rows()[k]));
    }
    EXPECT_GT(service.stats().cache_hits, 0u);
}
