// Thread-count invariance of the explanation engine.
//
// The reproducibility contract: for every explainer, attributions computed
// with threads=1 and threads=8 are *bitwise identical* on the same fixed-seed
// NFV scenario data, and explain_batch() matches a sequential explain() loop
// element for element.  These tests are also the ThreadSanitizer target for
// the CI race-detection job, so they deliberately push real work through the
// pool (forest model, full-telemetry feature vectors).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/parallel.hpp"
#include "core/pdp.hpp"
#include "core/sampling_shapley.hpp"
#include "mlcore/forest.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

/// Fixed-seed NFV scenario dataset + forest, built once for the whole file.
struct Scenario {
    ml::Dataset data;
    ml::RandomForest forest{ml::RandomForest::Config{.num_trees = 10}};
    xai::BackgroundData background;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario out;
        ml::Rng rng(2020);
        wl::BuildOptions opt;
        opt.num_samples = 300;
        out.data = wl::build_dataset(wl::standard_scenarios()[0], opt, rng).data;
        out.forest.fit(out.data, rng);
        out.background = xai::BackgroundData(out.data.x, 48);
        return out;
    }();
    return s;
}

void expect_identical(const xai::Explanation& a, const xai::Explanation& b) {
    EXPECT_EQ(a.prediction, b.prediction);
    EXPECT_EQ(a.base_value, b.base_value);
    ASSERT_EQ(a.attributions.size(), b.attributions.size());
    for (std::size_t j = 0; j < a.attributions.size(); ++j)
        EXPECT_EQ(a.attributions[j], b.attributions[j]) << "feature " << j;
}

/// Runs `make_explainer(threads)` at 1 and 8 threads over the same rows and
/// requires bitwise-identical explanations, plus batch/sequential parity.
template <typename MakeExplainer>
void check_thread_invariance(MakeExplainer make_explainer) {
    const auto& s = scenario();
    std::vector<std::size_t> rows{0, 7, 42, 99};
    const ml::Matrix instances = s.data.x.take_rows(rows);

    // Sequential explain() calls: both explainers advance their RNG the
    // same way, so call k must match call k bitwise.
    auto seq1 = make_explainer(std::size_t{1});
    auto seq8 = make_explainer(std::size_t{8});
    for (std::size_t r = 0; r < instances.rows(); ++r) {
        const auto e1 = seq1->explain(s.forest, instances.row(r));
        const auto e8 = seq8->explain(s.forest, instances.row(r));
        expect_identical(e1, e8);
    }

    // Row-parallel batch vs the sequential loop.
    auto batch8 = make_explainer(std::size_t{8});
    auto loop1 = make_explainer(std::size_t{1});
    const auto batched = batch8->explain_batch(s.forest, instances);
    ASSERT_EQ(batched.size(), instances.rows());
    for (std::size_t r = 0; r < instances.rows(); ++r) {
        const auto expected = loop1->explain(s.forest, instances.row(r));
        expect_identical(batched[r], expected);
    }
}

}  // namespace

TEST(ParallelDeterminism, KernelShapBitwiseIdenticalAcrossThreadCounts) {
    check_thread_invariance([](std::size_t threads) {
        return std::make_unique<xai::KernelShap>(
            scenario().background, ml::Rng(11),
            xai::KernelShap::Config{.max_coalitions = 128, .threads = threads});
    });
}

TEST(ParallelDeterminism, SamplingShapleyBitwiseIdenticalAcrossThreadCounts) {
    check_thread_invariance([](std::size_t threads) {
        return std::make_unique<xai::SamplingShapley>(
            scenario().background, ml::Rng(12),
            xai::SamplingShapley::Config{.num_permutations = 40, .threads = threads});
    });
}

TEST(ParallelDeterminism, LimeBitwiseIdenticalAcrossThreadCounts) {
    check_thread_invariance([](std::size_t threads) {
        return std::make_unique<xai::Lime>(
            scenario().background, ml::Rng(13),
            xai::Lime::Config{.num_samples = 200, .threads = threads});
    });
}

TEST(ParallelDeterminism, LimeFitDiagnosticsMatchSequential) {
    const auto& s = scenario();
    std::vector<std::size_t> rows{3, 17};
    const ml::Matrix instances = s.data.x.take_rows(rows);

    xai::Lime batch(s.background, ml::Rng(14), xai::Lime::Config{.num_samples = 150, .threads = 8});
    (void)batch.explain_batch(s.forest, instances);
    xai::Lime seq(s.background, ml::Rng(14), xai::Lime::Config{.num_samples = 150, .threads = 1});
    for (std::size_t r = 0; r < instances.rows(); ++r) (void)seq.explain(s.forest, instances.row(r));

    // last_fit() reports the final row for both paths.
    EXPECT_EQ(batch.last_fit().weighted_r2, seq.last_fit().weighted_r2);
    EXPECT_EQ(batch.last_fit().holdout_r2, seq.last_fit().holdout_r2);
    EXPECT_EQ(batch.last_fit().intercept, seq.last_fit().intercept);
    ASSERT_EQ(batch.last_fit().coefficients.size(), seq.last_fit().coefficients.size());
    for (std::size_t j = 0; j < seq.last_fit().coefficients.size(); ++j)
        EXPECT_EQ(batch.last_fit().coefficients[j], seq.last_fit().coefficients[j]);
}

TEST(ParallelDeterminism, OcclusionBitwiseIdenticalAcrossThreadCounts) {
    check_thread_invariance([](std::size_t threads) {
        return std::make_unique<xai::Occlusion>(scenario().background,
                                                xai::Occlusion::Config{.threads = threads});
    });
}

TEST(ParallelDeterminism, PdpGridIdenticalAcrossThreadCounts) {
    const auto& s = scenario();
    for (const std::size_t feature : {std::size_t{0}, std::size_t{5}}) {
        xai::PdpOptions opt1;
        opt1.grid_points = 12;
        opt1.keep_ice = true;
        opt1.threads = 1;
        xai::PdpOptions opt8 = opt1;
        opt8.threads = 8;
        const auto p1 = xai::partial_dependence(s.forest, s.background, feature, opt1);
        const auto p8 = xai::partial_dependence(s.forest, s.background, feature, opt8);
        ASSERT_EQ(p1.grid.size(), p8.grid.size());
        for (std::size_t g = 0; g < p1.grid.size(); ++g) {
            EXPECT_EQ(p1.grid[g], p8.grid[g]);
            EXPECT_EQ(p1.mean[g], p8.mean[g]);
        }
        ASSERT_EQ(p1.ice.size(), p8.ice.size());
        for (std::size_t r = 0; r < p1.ice.size(); ++r)
            for (std::size_t g = 0; g < p1.ice[r].size(); ++g)
                EXPECT_EQ(p1.ice[r][g], p8.ice[r][g]);
    }
}

TEST(ParallelDeterminism, BlockedProbePathMatchesScalarModelProxy) {
    // The blocked explainers send probe rows through predict_batch.  A
    // LambdaModel proxy forwarding to the forest's scalar predict() strips
    // the flattened kernels away, so any divergence between the blocked and
    // scalar inference paths would show up as differing attributions here.
    const auto& s = scenario();
    const ml::LambdaModel scalar_proxy(
        s.forest.num_features(),
        [&](std::span<const double> x) { return s.forest.predict(x); },
        s.forest.name());
    const auto x = s.data.x.row(7);
    {
        xai::KernelShap blocked(s.background, ml::Rng(21),
                                xai::KernelShap::Config{.max_coalitions = 96});
        xai::KernelShap scalar(s.background, ml::Rng(21),
                               xai::KernelShap::Config{.max_coalitions = 96});
        expect_identical(blocked.explain(s.forest, x), scalar.explain(scalar_proxy, x));
    }
    {
        xai::SamplingShapley blocked(s.background, ml::Rng(22),
                                     xai::SamplingShapley::Config{.num_permutations = 24});
        xai::SamplingShapley scalar(s.background, ml::Rng(22),
                                    xai::SamplingShapley::Config{.num_permutations = 24});
        expect_identical(blocked.explain(s.forest, x), scalar.explain(scalar_proxy, x));
    }
    {
        xai::Occlusion blocked(s.background, xai::Occlusion::Config{});
        xai::Occlusion scalar(s.background, xai::Occlusion::Config{});
        expect_identical(blocked.explain(s.forest, x), scalar.explain(scalar_proxy, x));
    }
}

TEST(ParallelDeterminism, PredictBatchMatchesPerRowPredict) {
    const auto& s = scenario();
    xnfv::set_default_threads(8);
    const auto par = s.forest.predict_batch(s.data.x);
    xnfv::set_default_threads(1);
    const auto seq = s.forest.predict_batch(s.data.x);
    xnfv::set_default_threads(0);  // restore hardware default
    ASSERT_EQ(par.size(), s.data.size());
    ASSERT_EQ(seq.size(), s.data.size());
    for (std::size_t r = 0; r < s.data.size(); ++r) {
        EXPECT_EQ(par[r], seq[r]);
        EXPECT_EQ(par[r], s.forest.predict(s.data.x.row(r)));
    }
}
