#include "mlcore/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "mlcore/rng.hpp"

namespace ml = xnfv::ml;

namespace {

ml::Dataset small_regression() {
    ml::Dataset d;
    d.task = ml::Task::regression;
    d.feature_names = {"a", "b"};
    d.add(std::vector<double>{1.0, 2.0}, 3.0);
    d.add(std::vector<double>{2.0, 4.0}, 6.0);
    d.add(std::vector<double>{3.0, 6.0}, 9.0);
    return d;
}

}  // namespace

TEST(Dataset, AddAndSize) {
    const auto d = small_regression();
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d.num_features(), 2u);
    EXPECT_NO_THROW(d.validate());
}

TEST(Dataset, ValidateCatchesNameMismatch) {
    auto d = small_regression();
    d.feature_names.push_back("extra");
    EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateCatchesBadClassificationLabels) {
    ml::Dataset d;
    d.task = ml::Task::binary_classification;
    d.add(std::vector<double>{1.0}, 0.5);
    EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, FeatureMeans) {
    const auto d = small_regression();
    const auto m = d.feature_means();
    EXPECT_DOUBLE_EQ(m[0], 2.0);
    EXPECT_DOUBLE_EQ(m[1], 4.0);
}

TEST(Dataset, FeatureStddevs) {
    const auto d = small_regression();
    const auto s = d.feature_stddevs();
    EXPECT_NEAR(s[0], std::sqrt(2.0 / 3.0), 1e-12);
    EXPECT_NEAR(s[1], 2.0 * std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(Dataset, FeatureRanges) {
    const auto d = small_regression();
    const auto r = d.feature_ranges();
    EXPECT_DOUBLE_EQ(r[0].first, 1.0);
    EXPECT_DOUBLE_EQ(r[0].second, 3.0);
    EXPECT_DOUBLE_EQ(r[1].first, 2.0);
    EXPECT_DOUBLE_EQ(r[1].second, 6.0);
}

TEST(Dataset, SubsetPreservesMetadataAndRepeats) {
    const auto d = small_regression();
    const std::vector<std::size_t> idx{2, 2, 0};
    const auto s = d.subset(idx);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.feature_names, d.feature_names);
    EXPECT_DOUBLE_EQ(s.y[0], 9.0);
    EXPECT_DOUBLE_EQ(s.y[1], 9.0);
    EXPECT_DOUBLE_EQ(s.y[2], 3.0);
}

TEST(Dataset, PositiveRate) {
    ml::Dataset d;
    d.task = ml::Task::binary_classification;
    d.add(std::vector<double>{0.0}, 1.0);
    d.add(std::vector<double>{0.0}, 0.0);
    d.add(std::vector<double>{0.0}, 1.0);
    d.add(std::vector<double>{0.0}, 1.0);
    EXPECT_DOUBLE_EQ(d.positive_rate(), 0.75);
}

TEST(TrainTestSplit, SizesAndDisjointness) {
    ml::Rng rng(1);
    ml::Dataset d;
    d.task = ml::Task::regression;
    // Unique labels let us verify the split is a partition.
    for (int i = 0; i < 100; ++i) d.add(std::vector<double>{double(i)}, double(i));
    const auto split = ml::train_test_split(d, 0.25, rng);
    EXPECT_EQ(split.test.size(), 25u);
    EXPECT_EQ(split.train.size(), 75u);
    std::vector<double> all;
    all.insert(all.end(), split.train.y.begin(), split.train.y.end());
    all.insert(all.end(), split.test.y.begin(), split.test.y.end());
    std::sort(all.begin(), all.end());
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(all[i], double(i));
}

TEST(TrainTestSplit, RejectsBadFraction) {
    ml::Rng rng(1);
    const auto d = small_regression();
    EXPECT_THROW((void)ml::train_test_split(d, 0.0, rng), std::invalid_argument);
    EXPECT_THROW((void)ml::train_test_split(d, 1.0, rng), std::invalid_argument);
}

TEST(Csv, RoundTripPreservesData) {
    const auto d = small_regression();
    std::stringstream ss;
    ml::write_csv(d, ss);
    const auto back = ml::read_csv(ss, ml::Task::regression);
    ASSERT_EQ(back.size(), d.size());
    ASSERT_EQ(back.feature_names, d.feature_names);
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_DOUBLE_EQ(back.y[i], d.y[i]);
        for (std::size_t j = 0; j < d.num_features(); ++j)
            EXPECT_DOUBLE_EQ(back.x(i, j), d.x(i, j));
    }
}

TEST(Csv, RejectsMalformedRows) {
    std::stringstream ss("a,b,label\n1.0,2.0\n");
    EXPECT_THROW((void)ml::read_csv(ss, ml::Task::regression), std::runtime_error);
    std::stringstream ss2("a,b,label\n1.0,zzz,3.0\n");
    EXPECT_THROW((void)ml::read_csv(ss2, ml::Task::regression), std::runtime_error);
    std::stringstream empty("");
    EXPECT_THROW((void)ml::read_csv(empty, ml::Task::regression), std::runtime_error);
}

TEST(Csv, SkipsBlankLines) {
    std::stringstream ss("a,label\n1.0,2.0\n\n3.0,4.0\n");
    const auto d = ml::read_csv(ss, ml::Task::regression);
    EXPECT_EQ(d.size(), 2u);
}

// Sweep: split fractions produce the expected sizes.
class SplitFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionSweep, SplitSizesMatchFraction) {
    ml::Rng rng(7);
    ml::Dataset d;
    d.task = ml::Task::regression;
    for (int i = 0; i < 200; ++i) d.add(std::vector<double>{double(i)}, 0.0);
    const auto split = ml::train_test_split(d, GetParam(), rng);
    const auto expected =
        static_cast<std::size_t>(std::round(GetParam() * 200.0));
    EXPECT_EQ(split.test.size(), expected);
    EXPECT_EQ(split.train.size(), 200u - expected);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionSweep,
                         ::testing::Values(0.1, 0.2, 0.33, 0.5, 0.9));
