#include "core/exact_shapley.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

namespace {

/// Linear model f(x) = 1 + 2 x0 - 3 x1 + 0 * x2 (x2 is a dummy player).
ml::LambdaModel linear_model() {
    return ml::LambdaModel(3, [](std::span<const double> x) {
        return 1.0 + 2.0 * x[0] - 3.0 * x[1] + 0.0 * x[2];
    });
}

}  // namespace

TEST(ShapleyKernel, WeightsMatchClosedForm) {
    // d = 4, s = 1: (d-1)/(C(4,1)*1*3) = 3/12 = 0.25.
    EXPECT_NEAR(xai::shapley_kernel_weight(4, 1), 0.25, 1e-12);
    // d = 4, s = 2: 3/(6*2*2) = 0.125.
    EXPECT_NEAR(xai::shapley_kernel_weight(4, 2), 0.125, 1e-12);
    // Symmetry: w(d, s) == w(d, d-s).
    EXPECT_NEAR(xai::shapley_kernel_weight(10, 3), xai::shapley_kernel_weight(10, 7), 1e-12);
    // Boundary coalitions get infinite weight (handled as constraints).
    EXPECT_TRUE(std::isinf(xai::shapley_kernel_weight(5, 0)));
    EXPECT_TRUE(std::isinf(xai::shapley_kernel_weight(5, 5)));
}

TEST(LogBinomial, KnownValues) {
    EXPECT_NEAR(std::exp(xai::log_binomial(5, 2)), 10.0, 1e-9);
    EXPECT_NEAR(std::exp(xai::log_binomial(10, 0)), 1.0, 1e-9);
    EXPECT_TRUE(std::isinf(xai::log_binomial(3, 5)));
}

TEST(ExactShapley, LinearModelClosedForm) {
    // For linear f and interventional v, phi_i = w_i (x_i - mean(bg_i)).
    ml::Rng rng(1);
    const auto bg = make_uniform_background(128, 3, rng);
    xai::BackgroundData background(bg);
    xai::ExactShapley explainer(background);

    const auto model = linear_model();
    const std::vector<double> x{0.7, -0.5, 0.3};
    const auto e = explainer.explain(model, x);

    EXPECT_NEAR(e.attributions[0], 2.0 * (x[0] - background.means()[0]), 1e-9);
    EXPECT_NEAR(e.attributions[1], -3.0 * (x[1] - background.means()[1]), 1e-9);
    EXPECT_NEAR(e.attributions[2], 0.0, 1e-9);
}

TEST(ExactShapley, EfficiencyAxiom) {
    ml::Rng rng(2);
    xai::BackgroundData background(make_uniform_background(64, 3, rng));
    xai::ExactShapley explainer(background);
    // Nonlinear model with interactions.
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return x[0] * x[1] + std::sin(x[2]) + 0.5 * x[0];
    });
    const std::vector<double> x{0.4, -0.8, 0.9};
    const auto e = explainer.explain(model, x);
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-9);
}

TEST(ExactShapley, SymmetryAxiom) {
    // f symmetric in x0, x1; symmetric background => equal attributions at
    // symmetric inputs.
    xnfv::ml::Matrix bg(4, 2);
    bg(0, 0) = -1.0; bg(0, 1) = -1.0;
    bg(1, 0) = -1.0; bg(1, 1) = 1.0;
    bg(2, 0) = 1.0;  bg(2, 1) = -1.0;
    bg(3, 0) = 1.0;  bg(3, 1) = 1.0;
    xai::BackgroundData background(bg);
    xai::ExactShapley explainer(background);
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return x[0] + x[1] + x[0] * x[1];
    });
    const std::vector<double> x{0.5, 0.5};
    const auto e = explainer.explain(model, x);
    EXPECT_NEAR(e.attributions[0], e.attributions[1], 1e-12);
}

TEST(ExactShapley, DummyAxiom) {
    ml::Rng rng(3);
    xai::BackgroundData background(make_uniform_background(64, 4, rng));
    xai::ExactShapley explainer(background);
    // x3 never used by the model.
    const ml::LambdaModel model(4, [](std::span<const double> x) {
        return x[0] * x[0] - 2.0 * x[1] * x[2];
    });
    const std::vector<double> x{0.3, 0.6, -0.2, 0.9};
    const auto e = explainer.explain(model, x);
    EXPECT_NEAR(e.attributions[3], 0.0, 1e-12);
}

TEST(ExactShapley, InteractionSplitEvenly) {
    // f = x0 * x1 with a zero-mean symmetric background and x0 == x1: the
    // product interaction must split evenly.
    xnfv::ml::Matrix bg(2, 2);
    bg(0, 0) = -1.0; bg(0, 1) = -1.0;
    bg(1, 0) = 1.0;  bg(1, 1) = 1.0;
    xai::BackgroundData background(bg);
    xai::ExactShapley explainer(background);
    const ml::LambdaModel model(2,
                                [](std::span<const double> x) { return x[0] * x[1]; });
    const std::vector<double> x{1.0, 1.0};
    const auto e = explainer.explain(model, x);
    EXPECT_NEAR(e.attributions[0], e.attributions[1], 1e-12);
    EXPECT_NEAR(e.additive_reconstruction(), 1.0, 1e-12);
}

TEST(ExactShapley, BaseValueIsBackgroundMeanPrediction) {
    ml::Rng rng(4);
    const auto bgm = make_uniform_background(32, 2, rng);
    xai::BackgroundData background(bgm);
    xai::ExactShapley explainer(background);
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return 3.0 * x[0] - x[1];
    });
    const auto e = explainer.explain(model, std::vector<double>{0.1, 0.2});
    double mean_pred = 0.0;
    for (std::size_t r = 0; r < bgm.rows(); ++r) mean_pred += model.predict(bgm.row(r));
    EXPECT_NEAR(e.base_value, mean_pred / static_cast<double>(bgm.rows()), 1e-9);
}

TEST(ExactShapley, GuardsAgainstExplosions) {
    ml::Rng rng(5);
    xai::BackgroundData background(make_uniform_background(8, 25, rng));
    xai::ExactShapley explainer(background);
    const ml::LambdaModel model(25, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)explainer.explain(model, std::vector<double>(25, 0.0)),
                 std::invalid_argument);
}

TEST(ExactShapley, RejectsEmptyBackgroundAndBadSizes) {
    xai::ExactShapley explainer{xai::BackgroundData{}};
    const auto model = linear_model();
    EXPECT_THROW((void)explainer.explain(model, std::vector<double>{0, 0, 0}),
                 std::invalid_argument);
    ml::Rng rng(6);
    xai::ExactShapley ok{xai::BackgroundData(make_uniform_background(8, 3, rng))};
    EXPECT_THROW((void)ok.explain(model, std::vector<double>{0, 0}), std::invalid_argument);
}
