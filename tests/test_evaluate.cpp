#include "core/evaluate.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/exact_shapley.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

namespace {

/// f = 10 x0 + x1 (+0 x2): feature 0 dominates by construction.
ml::LambdaModel dominated_model() {
    return ml::LambdaModel(3, [](std::span<const double> x) {
        return 10.0 * x[0] + x[1];
    });
}

}  // namespace

TEST(DeletionCurve, StartsAtPredictionAndHasExpectedLength) {
    ml::Rng rng(1);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const auto model = dominated_model();
    const std::vector<double> x{0.9, 0.9, 0.9};
    const std::vector<std::size_t> ranking{0, 1, 2};
    const auto curve = xai::deletion_curve(model, x, ranking, background);
    ASSERT_EQ(curve.curve.size(), 4u);
    EXPECT_DOUBLE_EQ(curve.curve[0], model.predict(x));
}

TEST(DeletionCurve, InformedRankingDropsFasterThanReversed) {
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const auto model = dominated_model();
    const std::vector<double> x{0.9, 0.9, 0.9};
    const std::vector<std::size_t> informed{0, 1, 2};
    const std::vector<std::size_t> reversed{2, 1, 0};
    const auto good = xai::deletion_curve(model, x, informed, background);
    const auto bad = xai::deletion_curve(model, x, reversed, background);
    EXPECT_GT(good.aopc, bad.aopc);
    // Deleting feature 0 first must collapse the prediction toward base.
    EXPECT_LT(good.curve[1], good.curve[0] - 5.0);
}

TEST(DeletionCurve, ShapleyRankingBeatsRandom) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const auto model = dominated_model();
    const std::vector<double> x{0.8, -0.7, 0.5};
    xai::ExactShapley shap(background);
    const auto e = shap.explain(model, x);
    const auto ranking = e.top_k(3);
    const auto informed = xai::deletion_curve(model, x, ranking, background);
    ml::Rng rand_rng(4);
    const auto random = xai::random_deletion_curve(model, x, background, rand_rng, 20);
    EXPECT_GE(informed.aopc, random.aopc);
}

TEST(InsertionCurve, StartsAtBaseAndEndsAtPrediction) {
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const auto model = dominated_model();
    const std::vector<double> x{0.5, -0.5, 0.2};
    std::vector<std::size_t> ranking(3);
    std::iota(ranking.begin(), ranking.end(), std::size_t{0});
    const auto curve = xai::insertion_curve(model, x, ranking, background);
    ASSERT_EQ(curve.curve.size(), 4u);
    // Linear model: inserting every feature reconstructs the prediction.
    EXPECT_NEAR(curve.curve.back(), model.predict(x), 1e-9);
}

TEST(DeletionCurve, RejectsBadRanking) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(16, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) { return x[0]; });
    const std::vector<std::size_t> bad{5};
    EXPECT_THROW((void)xai::deletion_curve(model, std::vector<double>{0, 0}, bad, background),
                 std::out_of_range);
    EXPECT_THROW(
        (void)xai::deletion_curve(model, std::vector<double>{0, 0}, bad,
                                  xai::BackgroundData{}),
        std::invalid_argument);
}

TEST(InputStability, DeterministicAdditiveExplainerIsStable) {
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const auto model = ml::LambdaModel(2, [](std::span<const double> x) {
        return 2.0 * x[0] - x[1];
    });
    xai::ExactShapley shap(background);
    const xai::ExplainFn fn = [&](std::span<const double> x) {
        return shap.explain(model, x);
    };
    ml::Rng pert_rng(7);
    const std::vector<double> x{0.3, 0.3};
    const auto result = xai::input_stability(fn, x, background, pert_rng, 0.01, 5);
    // Linear model + tiny perturbation: attribution drift bounded by the
    // perturbation scale times the slopes.
    EXPECT_LT(result.mean_l2_drift, 0.1);
    EXPECT_GT(result.mean_topk_jaccard, 0.9);
}

TEST(InputStability, LimeLessStableThanExactShap) {
    // The F4 claim in miniature: sampling-based LIME drifts more under input
    // perturbation than the deterministic exact explainer.
    ml::Rng rng(8);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const auto model = ml::LambdaModel(2, [](std::span<const double> x) {
        return x[0] * x[1] + x[0];
    });
    xai::ExactShapley shap(background);
    xai::Lime lime(background, ml::Rng(9), xai::Lime::Config{.num_samples = 200});
    const std::vector<double> x{0.5, -0.5};
    ml::Rng ra(10), rb(10);
    const auto s_shap = xai::input_stability(
        [&](std::span<const double> p) { return shap.explain(model, p); }, x, background,
        ra, 0.05, 8);
    const auto s_lime = xai::input_stability(
        [&](std::span<const double> p) { return lime.explain(model, p); }, x, background,
        rb, 0.05, 8);
    EXPECT_LT(s_shap.mean_l2_drift, s_lime.mean_l2_drift);
}

TEST(RerunVariance, ZeroForDeterministicExplainer) {
    ml::Rng rng(11);
    const xai::BackgroundData background(make_uniform_background(32, 2, rng));
    const auto model = ml::LambdaModel(2, [](std::span<const double> x) {
        return x[0] + x[1];
    });
    xai::ExactShapley shap(background);
    const double var = xai::rerun_variance(
        [&](std::span<const double> x) { return shap.explain(model, x); },
        std::vector<double>{0.2, 0.8}, 5);
    EXPECT_LT(var, 1e-20);  // identical runs up to floating-point noise
}

TEST(RerunVariance, PositiveForSamplingExplainer) {
    ml::Rng rng(12);
    const xai::BackgroundData background(make_uniform_background(32, 6, rng));
    const auto model = ml::LambdaModel(6, [](std::span<const double> x) {
        return x[0] * x[1] + x[2] * x[3] + x[4] - x[5];
    });
    // Fresh RNG state per call => run-to-run variation.
    ml::Rng seeder(13);
    const double var = xai::rerun_variance(
        [&](std::span<const double> x) {
            xai::KernelShap ks(background, seeder.split(),
                               xai::KernelShap::Config{.max_coalitions = 20});
            return ks.explain(model, x);
        },
        std::vector<double>(6, 0.5), 6);
    EXPECT_GT(var, 0.0);
}

TEST(RerunVariance, BudgetShrinksVariance) {
    ml::Rng rng(14);
    const xai::BackgroundData background(make_uniform_background(16, 8, rng));
    const auto model = ml::LambdaModel(8, [](std::span<const double> x) {
        double v = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); ++i) v += x[i] * x[i + 1];
        return v;
    });
    auto variance_at = [&](std::size_t budget) {
        ml::Rng seeder(15);
        return xai::rerun_variance(
            [&](std::span<const double> x) {
                xai::KernelShap ks(background, seeder.split(),
                                   xai::KernelShap::Config{.max_coalitions = budget});
                return ks.explain(model, x);
            },
            std::vector<double>(8, 0.4), 6);
    };
    EXPECT_LT(variance_at(800), variance_at(30));
}

TEST(StabilityHelpers, RejectMisuse) {
    ml::Rng rng(16);
    const xai::BackgroundData background(make_uniform_background(8, 1, rng));
    const xai::ExplainFn fn = [](std::span<const double>) { return xai::Explanation{}; };
    EXPECT_THROW((void)xai::input_stability(fn, std::vector<double>{0}, background, rng,
                                            0.1, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)xai::rerun_variance(fn, std::vector<double>{0}, 1),
                 std::invalid_argument);
    const ml::LambdaModel model(1, [](std::span<const double> x) { return x[0]; });
    EXPECT_THROW((void)xai::random_deletion_curve(model, std::vector<double>{0},
                                                  background, rng, 0),
                 std::invalid_argument);
}
