#include "core/aggregate.hpp"

#include <gtest/gtest.h>

#include "core/exact_shapley.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_uniform_background;

namespace {

const std::vector<std::string> kNames{"big", "small", "dummy"};

ml::LambdaModel planted_model() {
    return ml::LambdaModel(3, [](std::span<const double> x) {
        return 10.0 * x[0] + 1.0 * x[1];  // x2 unused
    });
}

}  // namespace

TEST(Aggregate, GlobalRankingMatchesPlantedMagnitudes) {
    ml::Rng rng(1);
    const auto bg = make_uniform_background(64, 3, rng);
    const xai::BackgroundData background(bg);
    xai::ExactShapley shap(background);
    const auto model = planted_model();
    const auto instances = make_uniform_background(40, 3, rng);
    const auto g = xai::aggregate_explanations(shap, model, instances, kNames);

    EXPECT_EQ(g.num_instances, 40u);
    const auto order = g.ranking();
    EXPECT_EQ(order[0], 0u);  // "big" first
    EXPECT_EQ(order[1], 1u);
    EXPECT_NEAR(g.mean_abs[2], 0.0, 1e-9);  // dummy gets nothing
    // Linear symmetric setting: signed means cancel, abs means don't.
    EXPECT_LT(std::abs(g.mean_signed[0]), g.mean_abs[0]);
}

TEST(Aggregate, MeanAbsScalesWithCoefficient) {
    ml::Rng rng(2);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    xai::ExactShapley shap(background);
    const auto model = planted_model();
    const auto instances = make_uniform_background(60, 3, rng);
    const auto g = xai::aggregate_explanations(shap, model, instances, kNames);
    // |phi_big| should be ~10x |phi_small| on average.
    EXPECT_NEAR(g.mean_abs[0] / g.mean_abs[1], 10.0, 2.0);
}

TEST(Aggregate, ToStringShowsTopFeature) {
    ml::Rng rng(3);
    const xai::BackgroundData background(make_uniform_background(32, 3, rng));
    xai::ExactShapley shap(background);
    const auto model = planted_model();
    const auto instances = make_uniform_background(10, 3, rng);
    const auto g = xai::aggregate_explanations(shap, model, instances, kNames);
    EXPECT_NE(g.to_string(2).find("big"), std::string::npos);
}

TEST(Aggregate, GroupSplitSeparatesRegimes) {
    // Group "a" instances exercise x0, group "b" instances exercise x1:
    // the per-group aggregates must rank them differently.
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    xai::ExactShapley shap(background);
    // Model with regime interaction: big effect of x0 when x2 > 0, else x1.
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return x[2] > 0.0 ? 8.0 * x[0] : 8.0 * x[1];
    });
    ml::Matrix instances(20, 3);
    std::vector<std::string> groups;
    for (std::size_t r = 0; r < 20; ++r) {
        const bool first_regime = r < 10;
        instances(r, 0) = rng.uniform(-1, 1);
        instances(r, 1) = rng.uniform(-1, 1);
        instances(r, 2) = first_regime ? 0.9 : -0.9;
        groups.push_back(first_regime ? "a" : "b");
    }
    const auto by_group =
        xai::aggregate_by_group(shap, model, instances, groups, kNames);
    ASSERT_EQ(by_group.size(), 2u);
    EXPECT_EQ(by_group.at("a").ranking()[0], 0u);
    EXPECT_EQ(by_group.at("b").ranking()[0], 1u);
    EXPECT_EQ(by_group.at("a").num_instances, 10u);
}

TEST(Aggregate, RejectsMisuse) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(16, 3, rng));
    xai::ExactShapley shap(background);
    const auto model = planted_model();
    EXPECT_THROW(
        (void)xai::aggregate_explanations(shap, model, ml::Matrix{}, kNames),
        std::invalid_argument);
    const auto instances = make_uniform_background(4, 3, rng);
    const std::vector<std::string> wrong_groups{"a", "b"};
    EXPECT_THROW((void)xai::aggregate_by_group(shap, model, instances, wrong_groups,
                                               kNames),
                 std::invalid_argument);
}
