// Shared fixture for the blocked-path golden tests (test_predict_batch.cpp).
//
// The hex-float golden values embedded in those tests were captured from the
// pre-flattening scalar implementation (per-row Model::predict inside every
// explainer loop).  Everything here must stay byte-for-byte stable: the
// dataset draws, the model configs and the seeds together define the models
// whose attributions the blocked kernels are pinned to.
#pragma once

#include <vector>

#include "core/explanation.hpp"
#include "mlcore/dataset.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/rng.hpp"

namespace xnfv::golden {

inline xnfv::ml::Dataset make_dataset() {
    xnfv::ml::Rng rng(1234);
    xnfv::ml::Dataset d;
    d.task = xnfv::ml::Task::regression;
    std::vector<double> f(6);
    for (int i = 0; i < 160; ++i) {
        for (auto& v : f) v = rng.uniform(-2.0, 2.0);
        const double label = 2.0 * f[0] - 1.5 * f[1] + f[2] * f[3] +
                             0.5 * f[4] * f[4] + 0.1 * rng.normal();
        d.add(f, label);
    }
    return d;
}

inline xnfv::ml::RandomForest make_forest(const xnfv::ml::Dataset& d) {
    xnfv::ml::Rng rng(99);
    xnfv::ml::RandomForest forest(xnfv::ml::RandomForest::Config{
        .num_trees = 12, .tree = {.max_depth = 6, .min_samples_leaf = 3,
                                  .min_samples_split = 6}});
    forest.fit(d, rng);
    return forest;
}

inline xnfv::ml::GradientBoostedTrees make_gbt(const xnfv::ml::Dataset& d) {
    xnfv::ml::Rng rng(77);
    xnfv::ml::GradientBoostedTrees gbt(
        xnfv::ml::GradientBoostedTrees::Config{.num_rounds = 25});
    gbt.fit(d, rng);
    return gbt;
}

inline xnfv::xai::BackgroundData make_background(const xnfv::ml::Dataset& d) {
    return xnfv::xai::BackgroundData(d.x, 32);
}

}  // namespace xnfv::golden
