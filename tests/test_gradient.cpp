#include "core/gradient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_shapley.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/preprocess.hpp"
#include "test_util.hpp"

namespace xai = xnfv::xai;
namespace ml = xnfv::ml;
using xnfv::testutil::make_linear_dataset;
using xnfv::testutil::make_uniform_background;
using xnfv::testutil::max_abs_diff;

TEST(ModelGradient, FiniteDifferencesOnSmoothLambda) {
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return std::sin(x[0]) + x[1] * x[1];
    });
    const std::vector<double> x{0.4, -0.7};
    const auto g = xai::model_gradient(model, x);
    EXPECT_NEAR(g[0], std::cos(0.4), 1e-6);
    EXPECT_NEAR(g[1], -1.4, 1e-6);
}

TEST(ModelGradient, RejectsSizeMismatch) {
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)xai::model_gradient(model, std::vector<double>{1.0}),
                 std::invalid_argument);
}

TEST(MlpGradient, MatchesFiniteDifferencesRegression) {
    ml::Rng rng(1);
    const auto d = make_linear_dataset(std::vector<double>{2.0, -1.0}, 0.5, 500, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16, 8},
                                .activation = ml::Activation::tanh, .epochs = 40});
    mlp.fit(d, rng);
    for (int rep = 0; rep < 5; ++rep) {
        const std::vector<double> x{rng.uniform(-1, 1), rng.uniform(-1, 1)};
        const auto analytic = mlp.input_gradient(x);
        // Finite differences computed generically (dispatch bypassed by
        // wrapping the MLP in a lambda).
        const ml::LambdaModel wrapped(
            2, [&](std::span<const double> p) { return mlp.predict(p); });
        const auto numeric = xai::model_gradient(wrapped, x);
        EXPECT_LT(max_abs_diff(analytic, numeric), 1e-4);
    }
}

TEST(MlpGradient, MatchesFiniteDifferencesClassification) {
    ml::Rng rng(2);
    const auto d = xnfv::testutil::make_logistic_dataset(
        std::vector<double>{3.0, -2.0}, 0.0, 600, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {8},
                                .activation = ml::Activation::tanh, .epochs = 40});
    mlp.fit(d, rng);
    const std::vector<double> x{0.3, -0.3};
    const auto analytic = mlp.input_gradient(x);
    const ml::LambdaModel wrapped(
        2, [&](std::span<const double> p) { return mlp.predict(p); });
    const auto numeric = xai::model_gradient(wrapped, x);
    EXPECT_LT(max_abs_diff(analytic, numeric), 1e-4);
}

TEST(MlpGradient, ReluKinksHandled) {
    ml::Rng rng(3);
    const auto d = make_linear_dataset(std::vector<double>{1.0}, 0.0, 300, rng);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {8},
                                .activation = ml::Activation::relu, .epochs = 30});
    mlp.fit(d, rng);
    // Gradient exists and is finite everywhere we ask.
    for (double t : {-0.9, -0.1, 0.0, 0.1, 0.9}) {
        const auto g = mlp.input_gradient(std::vector<double>{t});
        EXPECT_TRUE(std::isfinite(g[0]));
    }
}

TEST(MlpGradient, ThrowsBeforeFit) {
    ml::Mlp mlp;
    EXPECT_THROW((void)mlp.input_gradient(std::vector<double>{0.0}), std::logic_error);
}

TEST(IntegratedGradients, ExactOnLinearModels) {
    // For linear f, IG is exact at any step count: phi_i = w_i (x_i - b_i).
    ml::Rng rng(4);
    const xai::BackgroundData background(make_uniform_background(64, 3, rng));
    const ml::LambdaModel model(3, [](std::span<const double> x) {
        return 4.0 * x[0] - 2.0 * x[1];
    });
    xai::IntegratedGradients ig(background, xai::IntegratedGradients::Config{.steps = 3});
    const std::vector<double> x{0.8, -0.5, 0.3};
    const auto e = ig.explain(model, x);
    const auto& mu = background.means();
    EXPECT_NEAR(e.attributions[0], 4.0 * (x[0] - mu[0]), 1e-9);
    EXPECT_NEAR(e.attributions[1], -2.0 * (x[1] - mu[1]), 1e-9);
    EXPECT_NEAR(e.attributions[2], 0.0, 1e-9);
}

TEST(IntegratedGradients, CompletenessOnSmoothNonlinearModel) {
    ml::Rng rng(5);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return std::tanh(x[0] + 2.0 * x[1]) + x[0] * x[1];
    });
    xai::IntegratedGradients ig(background,
                                xai::IntegratedGradients::Config{.steps = 200});
    const std::vector<double> x{0.7, -0.6};
    const auto e = ig.explain(model, x);
    // Completeness: sum(phi) = f(x) - f(baseline), up to discretization.
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-4);
}

TEST(IntegratedGradients, MoreStepsTightenCompleteness) {
    ml::Rng rng(6);
    const xai::BackgroundData background(make_uniform_background(32, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return std::sin(3.0 * x[0]) * std::cos(2.0 * x[1]);
    });
    const std::vector<double> x{0.9, 0.8};
    auto gap_at = [&](std::size_t steps) {
        xai::IntegratedGradients ig(background,
                                    xai::IntegratedGradients::Config{.steps = steps});
        const auto e = ig.explain(model, x);
        return std::abs(e.additive_reconstruction() - e.prediction);
    };
    EXPECT_LT(gap_at(256), gap_at(4) + 1e-12);
}

TEST(IntegratedGradients, UsesMlpAnalyticGradient) {
    // IG on a trained MLP must satisfy completeness tightly (analytic path).
    ml::Rng rng(7);
    const auto d = make_linear_dataset(std::vector<double>{1.0, 2.0}, 0.0, 500, rng, 0.1);
    ml::Mlp mlp(ml::Mlp::Config{.hidden_layers = {16},
                                .activation = ml::Activation::tanh, .epochs = 60});
    mlp.fit(d, rng);
    const xai::BackgroundData background(d.x, 64);
    xai::IntegratedGradients ig(background,
                                xai::IntegratedGradients::Config{.steps = 300});
    const auto e = ig.explain(mlp, std::vector<double>{0.5, -0.5});
    EXPECT_NEAR(e.additive_reconstruction(), e.prediction, 1e-3);
}

TEST(IntegratedGradients, RejectsMisuse) {
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    xai::IntegratedGradients empty{xai::BackgroundData{}};
    EXPECT_THROW((void)empty.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
    ml::Rng rng(8);
    xai::IntegratedGradients zero_steps(
        xai::BackgroundData(make_uniform_background(8, 2, rng)),
        xai::IntegratedGradients::Config{.steps = 0});
    EXPECT_THROW((void)zero_steps.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
}

TEST(SmoothGrad, EqualsGradientOnLinearModel) {
    ml::Rng rng(9);
    const xai::BackgroundData background(make_uniform_background(64, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) {
        return 3.0 * x[0] - x[1];
    });
    xai::SmoothGrad sg(background, ml::Rng(10));
    (void)sg.explain(model, std::vector<double>{0.2, 0.2});
    EXPECT_NEAR(sg.last_gradient()[0], 3.0, 1e-9);
    EXPECT_NEAR(sg.last_gradient()[1], -1.0, 1e-9);
}

TEST(SmoothGrad, SmoothsOscillatoryGradient) {
    // f = sin(20 x): raw gradient at x oscillates wildly; the smoothed
    // gradient has much smaller magnitude (averages toward zero).
    ml::Rng rng(11);
    const xai::BackgroundData background(make_uniform_background(64, 1, rng));
    const ml::LambdaModel model(1, [](std::span<const double> x) {
        return std::sin(20.0 * x[0]) / 20.0;
    });
    xai::SmoothGrad sg(background, ml::Rng(12),
                       xai::SmoothGrad::Config{.samples = 200, .noise_fraction = 0.6});
    (void)sg.explain(model, std::vector<double>{0.0});
    const auto raw = xai::model_gradient(model, std::vector<double>{0.0});
    EXPECT_LT(std::abs(sg.last_gradient()[0]), std::abs(raw[0]) * 0.5);
}

TEST(SmoothGrad, DeterministicGivenSeed) {
    ml::Rng rng(13);
    const xai::BackgroundData background(make_uniform_background(32, 2, rng));
    const ml::LambdaModel model(2, [](std::span<const double> x) { return x[0] * x[1]; });
    xai::SmoothGrad a(background, ml::Rng(5));
    xai::SmoothGrad b(background, ml::Rng(5));
    const std::vector<double> x{0.4, 0.4};
    EXPECT_DOUBLE_EQ(a.explain(model, x).attributions[0],
                     b.explain(model, x).attributions[0]);
}

TEST(SmoothGrad, RejectsMisuse) {
    ml::Rng rng(14);
    EXPECT_THROW(xai::SmoothGrad(xai::BackgroundData{}, ml::Rng(1)),
                 std::invalid_argument);
    xai::SmoothGrad sg(xai::BackgroundData(make_uniform_background(8, 2, rng)),
                       ml::Rng(1), xai::SmoothGrad::Config{.samples = 0});
    const ml::LambdaModel model(2, [](std::span<const double>) { return 0.0; });
    EXPECT_THROW((void)sg.explain(model, std::vector<double>{0, 0}),
                 std::invalid_argument);
}

// IG and exact Shapley coincide for additive models.
class IgAdditiveSweep : public ::testing::TestWithParam<double> {};

TEST_P(IgAdditiveSweep, MatchesExactShapleyOnAdditiveModel) {
    ml::Rng rng(15);
    const xai::BackgroundData background(make_uniform_background(48, 2, rng));
    const double a = GetParam();
    // Additive but nonlinear per-coordinate.
    const ml::LambdaModel model(2, [a](std::span<const double> x) {
        return a * x[0] * x[0] * x[0] + std::tanh(x[1]);
    });
    const std::vector<double> x{0.6, -0.4};
    xai::IntegratedGradients ig(background,
                                xai::IntegratedGradients::Config{.steps = 400});
    xai::ExactShapley exact(background);
    const auto ei = ig.explain(model, x);
    const auto es = exact.explain(model, x);
    // IG integrates from the mean baseline, exact Shapley marginalizes over
    // the sample — for additive models both equal f_i(x_i) - E[f_i], up to
    // (a) IG discretization and (b) mean-vs-sample baseline discrepancy on
    // the nonlinear coordinate.  Keep the tolerance commensurate.
    EXPECT_NEAR(ei.attributions[0], es.attributions[0], 0.05 * std::max(1.0, std::abs(a)));
    EXPECT_NEAR(ei.attributions[1], es.attributions[1], 0.05);
}

INSTANTIATE_TEST_SUITE_P(Coeffs, IgAdditiveSweep, ::testing::Values(0.5, 1.0, 2.0));
