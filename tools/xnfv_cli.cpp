// xnfv command-line interface.
//
// End-to-end workflow without writing C++:
//
//   xnfv_cli generate --samples 5000 --out data.csv            # simulate NFV PoP
//   xnfv_cli train    --data data.csv --model rf --out m.xnfv  # fit a model
//   xnfv_cli evaluate --model m.xnfv --data data.csv           # metrics
//   xnfv_cli explain  --model m.xnfv --data data.csv --row 3   # incident report
//   xnfv_cli global   --model m.xnfv --data data.csv           # fleet ranking
//   xnfv_cli serve    --model m.xnfv --data data.csv           # ND-JSON service
//
// Every command accepts --seed for reproducibility; see `xnfv_cli help`.
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/kernel_shap.hpp"
#include "core/parallel.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/report.hpp"
#include "core/sampling_shapley.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/metrics.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/preprocess.hpp"
#include "mlcore/serialize.hpp"
#include "mlcore/tree.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

/// Minimal --key value argument map; flags without a value store "true".
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                throw std::runtime_error("unexpected argument '" + key + "'");
            key = key.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "true";
            }
        }
    }

    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values_.find(key);
        if (it == values_.end()) throw std::runtime_error("missing --" + key);
        return it->second;
    }
    [[nodiscard]] long long get_int(const std::string& key, long long fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoll(it->second);
    }
    [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

private:
    std::map<std::string, std::string> values_;
};

int usage() {
    std::printf(
        "xnfv — explainable AI for NFV (see README.md)\n\n"
        "usage: xnfv_cli <command> [--key value ...]\n\n"
        "commands:\n"
        "  generate  --samples N [--out data.csv] [--scenario mixed|web_pop|\n"
        "            enterprise_edge|video_edge|iot_aggregation|dense_colocation]\n"
        "            [--label sla|latency] [--features full|config] [--seed S]\n"
        "  train     --data data.csv --out model.xnfv [--model rf|gbt|tree|linear|\n"
        "            logistic|mlp] [--task clf|reg] [--seed S]\n"
        "  evaluate  --model model.xnfv --data data.csv\n"
        "  explain   --model model.xnfv --data data.csv --row K\n"
        "            [--method tree_shap|kernel_shap|sampling|lime|occlusion]\n"
        "            [--counterfactual]\n"
        "  global    --model model.xnfv --data data.csv [--rows N]\n"
        "            [--method tree_shap|kernel_shap|sampling|lime|occlusion]\n"
        "  serve     --model model.xnfv --data data.csv [--method M] [--seed S]\n"
        "            [--batch N] [--wait-us U] [--queue N] [--cache N]\n"
        "            [--quantum Q]\n"
        "            [--degrade N] [--degrade-scale S]   overload ladder: at\n"
        "            admission depth N serve reduced budget, at 2N occlusion\n"
        "            [--snapshot FILE] [--snapshot-interval-ms M]   crash-safe\n"
        "            cache persistence (restored on startup, written on stop)\n"
        "            [--fault-seed S] [--fault-predict-rate R]\n"
        "            [--fault-stall-rate R] [--fault-worker-kill N]\n"
        "            deterministic chaos injection for fault-tolerance tests\n"
        "            ND-JSON requests on stdin, one per line:\n"
        "              {\"op\":\"explain\",\"row\":3}\n"
        "              {\"op\":\"explain\",\"features\":[...],\"method\":\"lime\"}\n"
        "              {\"op\":\"explain\",\"row\":3,\"deadline_ms\":50}\n"
        "              {\"op\":\"stats\"}   {\"op\":\"quit\"}\n"
        "            responses are printed in request order\n"
        "  help\n\n"
        "common flags:\n"
        "  --seed S     deterministic RNG seed (per command defaults)\n"
        "  --threads N  worker threads for explanation/prediction hot paths\n"
        "               (default: hardware concurrency; results are identical\n"
        "               for any N)\n");
    return 2;
}

ml::Task task_from(const Args& args, const std::string& fallback) {
    const auto t = args.get("task", fallback);
    if (t == "clf" || t == "sla") return ml::Task::binary_classification;
    if (t == "reg" || t == "latency") return ml::Task::regression;
    throw std::runtime_error("unknown task '" + t + "'");
}

int cmd_generate(const Args& args) {
    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2020)));
    wl::BuildOptions opt;
    opt.num_samples = static_cast<std::size_t>(args.get_int("samples", 5000));
    opt.label = args.get("label", "sla") == "latency" ? nfv::LabelKind::latency_ms
                                                      : nfv::LabelKind::sla_violation;
    opt.feature_set = args.get("features", "full") == "config"
                          ? nfv::FeatureSet::config_only
                          : nfv::FeatureSet::full_telemetry;

    const auto scenario = args.get("scenario", "mixed");
    std::vector<wl::ScenarioSpec> specs;
    if (scenario == "mixed") {
        specs = wl::standard_scenarios();
    } else {
        for (const auto& s : wl::standard_scenarios())
            if (s.name == scenario) specs.push_back(s);
        if (specs.empty()) throw std::runtime_error("unknown scenario '" + scenario + "'");
    }

    const auto built = wl::build_mixed_dataset(specs, opt, rng);
    const auto out = args.get("out", "data.csv");
    ml::write_csv_file(built.data, out);
    std::printf("wrote %zu rows x %zu features to %s (positive rate %.3f)\n",
                built.data.size(), built.data.num_features(), out.c_str(),
                built.data.positive_rate());
    return 0;
}

int cmd_train(const Args& args) {
    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
    const auto kind = args.get("model", "rf");
    const auto data = ml::read_csv_file(args.require("data"),
                                        task_from(args, "clf"));
    std::unique_ptr<ml::Model> model;
    if (kind == "rf") {
        auto m = std::make_unique<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 100});
        m->fit(data, rng);
        model = std::move(m);
    } else if (kind == "gbt") {
        auto m = std::make_unique<ml::GradientBoostedTrees>(
            ml::GradientBoostedTrees::Config{.num_rounds = 150});
        m->fit(data, rng);
        model = std::move(m);
    } else if (kind == "tree") {
        auto m = std::make_unique<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 8});
        m->fit(data);
        model = std::move(m);
    } else if (kind == "linear") {
        auto m = std::make_unique<ml::LinearRegression>();
        m->fit(data);
        model = std::move(m);
    } else if (kind == "logistic") {
        auto m = std::make_unique<ml::LogisticRegression>();
        m->fit(data);
        model = std::move(m);
    } else if (kind == "mlp") {
        // Note: the CLI MLP trains on raw features; standardize upstream or
        // prefer tree models for heterogeneous telemetry scales.
        auto m = std::make_unique<ml::Mlp>(
            ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 60});
        m->fit(data, rng);
        model = std::move(m);
    } else {
        throw std::runtime_error("unknown model '" + kind + "'");
    }
    const auto out = args.get("out", "model.xnfv");
    ml::save_model_file(*model, out);
    std::printf("trained %s on %zu rows; saved to %s\n", model->name().c_str(),
                data.size(), out.c_str());
    return 0;
}

// Explainer construction is shared with the serving subsystem so that the
// one-shot path here and `serve` produce byte-identical explainers.
using serve::make_explainer;

int cmd_evaluate(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto preds = model->predict_batch(data.x);
    if (data.task == ml::Task::binary_classification) {
        const auto cm = ml::confusion_matrix(data.y, preds);
        std::printf("%s on %zu rows:\n  accuracy %.4f  f1 %.4f  auc %.4f  logloss %.4f\n",
                    model->name().c_str(), data.size(), cm.accuracy(), cm.f1(),
                    ml::roc_auc(data.y, preds), ml::log_loss(data.y, preds));
    } else {
        std::printf("%s on %zu rows:\n  mae %.4f  rmse %.4f  r2 %.4f\n",
                    model->name().c_str(), data.size(), ml::mae(data.y, preds),
                    ml::rmse(data.y, preds), ml::r2_score(data.y, preds));
    }
    return 0;
}

int cmd_explain(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto row = static_cast<std::size_t>(args.get_int("row", 0));
    if (row >= data.size()) throw std::runtime_error("--row out of range");

    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 11)));
    const xai::BackgroundData background(data.x, 128);
    const auto explainer =
        make_explainer(args.get("method", "tree_shap"), background, 11);

    xai::ReportOptions options;
    if (args.has("counterfactual")) options.counterfactual = xai::CounterfactualOptions{};
    std::printf("%s", xai::incident_report(*model, *explainer, data.x.row(row),
                                           data.feature_names, background, rng, options)
                          .c_str());
    return 0;
}

int cmd_global(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto n = std::min<std::size_t>(
        data.size(), static_cast<std::size_t>(args.get_int("rows", 100)));
    const xai::BackgroundData background(data.x, 128);
    const auto explainer =
        make_explainer(args.get("method", "tree_shap"), background, 13);

    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    const auto g = xai::aggregate_explanations(*explainer, *model,
                                               data.x.take_rows(rows),
                                               data.feature_names);
    std::printf("%s", g.to_string(12).c_str());
    return 0;
}

/// Renders one served response as a single JSON line.
std::string render_response(const serve::ExplainResponse& r) {
    serve::JsonWriter w;
    w.field("id", r.id);
    w.field("ok", r.ok);
    if (r.ok) {
        w.field("cache_hit", r.cache_hit);
        w.field("degraded", r.degraded);
        if (r.degraded) w.field("budget_used", r.budget_used);
        w.field("method", r.explanation.method);
        w.field("prediction", r.explanation.prediction);
        w.field("base_value", r.explanation.base_value);
        w.field_array("attributions", r.explanation.attributions);
    } else {
        w.field("error_code", to_string(r.error_code));
        w.field("error", r.error);
    }
    return w.finish();
}

std::string render_stats(const serve::ServiceStats& s) {
    serve::JsonWriter w;
    w.field("ok", true);
    w.field("op", "stats");
    w.field("requests_accepted", s.requests_accepted);
    w.field("requests_rejected", s.requests_rejected);
    w.field("requests_completed", s.requests_completed);
    w.field("requests_degraded", s.requests_degraded);
    w.field("batches", s.batches);
    w.field("batch_size_mean", s.batch_size_mean);
    w.field("cache_hits", s.cache_hits);
    w.field("cache_misses", s.cache_misses);
    w.field("cache_hit_rate", s.cache_hit_rate());
    w.field("cache_evictions", s.cache_evictions);
    w.field("service_us_p50", s.service_us_p50);
    w.field("service_us_p95", s.service_us_p95);
    w.field("service_us_p99", s.service_us_p99);
    w.field("model_evals", s.model_evals);
    w.field("probe_rows_p50", s.probe_rows_p50);
    w.field("probe_rows_mean", s.probe_rows_mean);
    w.field("probe_rows_max", s.probe_rows_max);
    w.field("worker_respawns", s.worker_respawns);
    w.field("worker_stalls", s.worker_stalls);
    w.field("faults_injected", s.faults_injected);
    w.field("snapshot_writes", s.snapshot_writes);
    w.field("snapshot_records_loaded", s.snapshot_records_loaded);
    w.field("snapshot_records_skipped", s.snapshot_records_skipped);
    {
        // {"queue_full":2,...} — only reasons that occurred.
        std::string by_reason = "{";
        for (std::size_t i = 1; i < serve::kNumServeErrors; ++i) {
            if (s.errors_by_reason[i] == 0) continue;
            if (by_reason.size() > 1) by_reason += ',';
            by_reason += '"';
            by_reason += to_string(static_cast<serve::ServeError>(i));
            by_reason += "\":" + std::to_string(s.errors_by_reason[i]);
        }
        by_reason += '}';
        w.field_raw("errors_by_reason", by_reason);
    }
    w.field("report", s.to_string());
    return w.finish();
}

/// Newline-delimited-JSON request loop on stdin/stdout.  Explain requests
/// are submitted asynchronously (so the micro-batcher can coalesce them) and
/// answered in request order; `stats`/`quit` first drain everything pending.
int cmd_serve(const Args& args) {
    const std::shared_ptr<const ml::Model> model =
        ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));

    serve::ServiceConfig cfg;
    cfg.method = args.get("method", "tree_shap");
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
    cfg.queue_depth = static_cast<std::size_t>(args.get_int("queue", 256));
    cfg.max_batch = static_cast<std::size_t>(args.get_int("batch", 16));
    cfg.max_wait = std::chrono::microseconds(args.get_int("wait-us", 200));
    cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 4096));
    cfg.cache_quantum = std::stod(args.get("quantum", "0"));
    cfg.threads = static_cast<std::size_t>(args.get_int("threads", 0));

    // Degradation ladder: --degrade N arms the reduced rung at admission
    // depth N and the baseline rung at 2N.
    if (const auto degrade = args.get_int("degrade", 0); degrade > 0) {
        cfg.degradation.reduced_queue_depth = static_cast<std::size_t>(degrade);
        cfg.degradation.baseline_queue_depth = static_cast<std::size_t>(2 * degrade);
    }
    cfg.degradation.reduced_budget_scale = std::stod(args.get("degrade-scale", "0.25"));

    // Crash-safe cache snapshots.
    cfg.snapshot_path = args.get("snapshot", "");
    cfg.snapshot_interval =
        std::chrono::milliseconds(args.get_int("snapshot-interval-ms", 0));

    // Deterministic chaos: any nonzero rate wires in a seeded injector.
    const double fault_predict = std::stod(args.get("fault-predict-rate", "0"));
    const double fault_stall = std::stod(args.get("fault-stall-rate", "0"));
    const auto fault_kill = args.get_int("fault-worker-kill", 0);
    if (fault_predict > 0.0 || fault_stall > 0.0 || fault_kill > 0) {
        serve::FaultInjector::Config fi;
        fi.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
        const auto point = [](serve::FaultPoint p) { return static_cast<std::size_t>(p); };
        fi.rate[point(serve::FaultPoint::predict_throw)] = fault_predict;
        fi.rate[point(serve::FaultPoint::queue_stall)] = fault_stall;
        if (fault_kill > 0) {
            fi.rate[point(serve::FaultPoint::worker_death)] = 1.0;
            fi.max_fires[point(serve::FaultPoint::worker_death)] =
                static_cast<std::uint64_t>(fault_kill);
        }
        cfg.fault_injector = std::make_shared<serve::FaultInjector>(fi);
    }

    serve::ExplanationService service(model, xai::BackgroundData(data.x, 128), cfg);

    std::vector<std::future<serve::ExplainResponse>> pending;
    const auto drain = [&pending] {
        for (auto& f : pending) std::printf("%s\n", render_response(f.get()).c_str());
        pending.clear();
        std::fflush(stdout);
    };
    const auto print_error = [&drain](std::uint64_t id, serve::ServeError code,
                                      const std::string& message) {
        drain();  // keep responses in request order
        serve::ExplainResponse r;
        r.id = id;
        r.error_code = code;
        r.error = message;
        std::printf("%s\n", render_response(r).c_str());
        std::fflush(stdout);
    };

    std::uint64_t next_id = 1;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        serve::JsonValue req;
        try {
            req = serve::parse_json(line);
        } catch (const std::exception& e) {
            print_error(0, serve::ServeError::bad_request, e.what());
            continue;
        }
        const auto op = req.get_string("op", "explain");
        if (op == "quit") break;
        if (op == "stats") {
            drain();  // complete in-flight requests so the snapshot covers them
            std::printf("%s\n", render_stats(service.stats()).c_str());
            std::fflush(stdout);
            continue;
        }
        if (op != "explain") {
            print_error(0, serve::ServeError::bad_request, "unknown op '" + op + "'");
            continue;
        }

        serve::ExplainRequest er;
        er.id = static_cast<std::uint64_t>(
            req.get_number("id", static_cast<double>(next_id)));
        ++next_id;
        er.method = req.get_string("method", "");
        er.seed = static_cast<std::uint64_t>(req.get_number("seed", 0));
        er.deadline_ms = static_cast<std::int64_t>(req.get_number("deadline_ms", -1));
        if (req.has("features")) {
            auto extracted =
                serve::extract_features(req, model->num_features());
            if (extracted.error != serve::ServeError::none) {
                print_error(er.id, extracted.error, extracted.message);
                continue;
            }
            er.features = std::move(extracted.features);
        } else if (req.has("row")) {
            const auto row = static_cast<std::size_t>(req.get_number("row", 0));
            if (row >= data.size()) {
                print_error(er.id, serve::ServeError::bad_request, "row out of range");
                continue;
            }
            const auto x = data.x.row(row);
            er.features.assign(x.begin(), x.end());
        } else {
            print_error(er.id, serve::ServeError::bad_request,
                        "explain needs \"row\" or \"features\"");
            continue;
        }

        const std::uint64_t id = er.id;
        auto sub = service.submit(std::move(er));
        if (sub.rejected != serve::ServeError::none) {
            print_error(id, sub.rejected,
                        std::string("rejected: ") + to_string(sub.rejected));
            continue;
        }
        pending.push_back(std::move(sub.response));
        // Bounded client window: flush periodically so a socketless pipe
        // producer cannot outrun the queue.
        if (pending.size() >= 64) drain();
    }
    drain();
    service.stop();
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        const Args args(argc, argv, 2);
        const long long threads = args.get_int("threads", 0);
        if (threads < 0) throw std::runtime_error("--threads must be >= 0");
        xnfv::set_default_threads(static_cast<std::size_t>(threads));
        if (command == "generate") return cmd_generate(args);
        if (command == "train") return cmd_train(args);
        if (command == "evaluate") return cmd_evaluate(args);
        if (command == "explain") return cmd_explain(args);
        if (command == "global") return cmd_global(args);
        if (command == "serve") return cmd_serve(args);
        if (command == "help") return usage();
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
