// xnfv command-line interface.
//
// End-to-end workflow without writing C++:
//
//   xnfv_cli generate --samples 5000 --out data.csv            # simulate NFV PoP
//   xnfv_cli train    --data data.csv --model rf --out m.xnfv  # fit a model
//   xnfv_cli evaluate --model m.xnfv --data data.csv           # metrics
//   xnfv_cli explain  --model m.xnfv --data data.csv --row 3   # incident report
//   xnfv_cli global   --model m.xnfv --data data.csv           # fleet ranking
//
// Every command accepts --seed for reproducibility; see `xnfv_cli help`.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/kernel_shap.hpp"
#include "core/parallel.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/report.hpp"
#include "core/sampling_shapley.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/metrics.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/preprocess.hpp"
#include "mlcore/serialize.hpp"
#include "mlcore/tree.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

/// Minimal --key value argument map; flags without a value store "true".
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                throw std::runtime_error("unexpected argument '" + key + "'");
            key = key.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "true";
            }
        }
    }

    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values_.find(key);
        if (it == values_.end()) throw std::runtime_error("missing --" + key);
        return it->second;
    }
    [[nodiscard]] long long get_int(const std::string& key, long long fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoll(it->second);
    }
    [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

private:
    std::map<std::string, std::string> values_;
};

int usage() {
    std::printf(
        "xnfv — explainable AI for NFV (see README.md)\n\n"
        "usage: xnfv_cli <command> [--key value ...]\n\n"
        "commands:\n"
        "  generate  --samples N [--out data.csv] [--scenario mixed|web_pop|\n"
        "            enterprise_edge|video_edge|iot_aggregation|dense_colocation]\n"
        "            [--label sla|latency] [--features full|config] [--seed S]\n"
        "  train     --data data.csv --out model.xnfv [--model rf|gbt|tree|linear|\n"
        "            logistic|mlp] [--task clf|reg] [--seed S]\n"
        "  evaluate  --model model.xnfv --data data.csv\n"
        "  explain   --model model.xnfv --data data.csv --row K\n"
        "            [--method tree_shap|kernel_shap|sampling|lime|occlusion]\n"
        "            [--counterfactual]\n"
        "  global    --model model.xnfv --data data.csv [--rows N]\n"
        "            [--method tree_shap|kernel_shap|sampling|lime|occlusion]\n"
        "  help\n\n"
        "common flags:\n"
        "  --seed S     deterministic RNG seed (per command defaults)\n"
        "  --threads N  worker threads for explanation/prediction hot paths\n"
        "               (default: hardware concurrency; results are identical\n"
        "               for any N)\n");
    return 2;
}

ml::Task task_from(const Args& args, const std::string& fallback) {
    const auto t = args.get("task", fallback);
    if (t == "clf" || t == "sla") return ml::Task::binary_classification;
    if (t == "reg" || t == "latency") return ml::Task::regression;
    throw std::runtime_error("unknown task '" + t + "'");
}

int cmd_generate(const Args& args) {
    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2020)));
    wl::BuildOptions opt;
    opt.num_samples = static_cast<std::size_t>(args.get_int("samples", 5000));
    opt.label = args.get("label", "sla") == "latency" ? nfv::LabelKind::latency_ms
                                                      : nfv::LabelKind::sla_violation;
    opt.feature_set = args.get("features", "full") == "config"
                          ? nfv::FeatureSet::config_only
                          : nfv::FeatureSet::full_telemetry;

    const auto scenario = args.get("scenario", "mixed");
    std::vector<wl::ScenarioSpec> specs;
    if (scenario == "mixed") {
        specs = wl::standard_scenarios();
    } else {
        for (const auto& s : wl::standard_scenarios())
            if (s.name == scenario) specs.push_back(s);
        if (specs.empty()) throw std::runtime_error("unknown scenario '" + scenario + "'");
    }

    const auto built = wl::build_mixed_dataset(specs, opt, rng);
    const auto out = args.get("out", "data.csv");
    ml::write_csv_file(built.data, out);
    std::printf("wrote %zu rows x %zu features to %s (positive rate %.3f)\n",
                built.data.size(), built.data.num_features(), out.c_str(),
                built.data.positive_rate());
    return 0;
}

int cmd_train(const Args& args) {
    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
    const auto kind = args.get("model", "rf");
    const auto data = ml::read_csv_file(args.require("data"),
                                        task_from(args, "clf"));
    std::unique_ptr<ml::Model> model;
    if (kind == "rf") {
        auto m = std::make_unique<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 100});
        m->fit(data, rng);
        model = std::move(m);
    } else if (kind == "gbt") {
        auto m = std::make_unique<ml::GradientBoostedTrees>(
            ml::GradientBoostedTrees::Config{.num_rounds = 150});
        m->fit(data, rng);
        model = std::move(m);
    } else if (kind == "tree") {
        auto m = std::make_unique<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 8});
        m->fit(data);
        model = std::move(m);
    } else if (kind == "linear") {
        auto m = std::make_unique<ml::LinearRegression>();
        m->fit(data);
        model = std::move(m);
    } else if (kind == "logistic") {
        auto m = std::make_unique<ml::LogisticRegression>();
        m->fit(data);
        model = std::move(m);
    } else if (kind == "mlp") {
        // Note: the CLI MLP trains on raw features; standardize upstream or
        // prefer tree models for heterogeneous telemetry scales.
        auto m = std::make_unique<ml::Mlp>(
            ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 60});
        m->fit(data, rng);
        model = std::move(m);
    } else {
        throw std::runtime_error("unknown model '" + kind + "'");
    }
    const auto out = args.get("out", "model.xnfv");
    ml::save_model_file(*model, out);
    std::printf("trained %s on %zu rows; saved to %s\n", model->name().c_str(),
                data.size(), out.c_str());
    return 0;
}

std::unique_ptr<xai::Explainer> make_explainer(const std::string& method,
                                               const xai::BackgroundData& background,
                                               std::uint64_t seed) {
    if (method == "tree_shap") return std::make_unique<xai::TreeShap>();
    if (method == "kernel_shap")
        return std::make_unique<xai::KernelShap>(background, ml::Rng(seed));
    if (method == "sampling")
        return std::make_unique<xai::SamplingShapley>(background, ml::Rng(seed));
    if (method == "lime") return std::make_unique<xai::Lime>(background, ml::Rng(seed));
    if (method == "occlusion") return std::make_unique<xai::Occlusion>(background);
    throw std::runtime_error("unknown method '" + method + "'");
}

int cmd_evaluate(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto preds = model->predict_batch(data.x);
    if (data.task == ml::Task::binary_classification) {
        const auto cm = ml::confusion_matrix(data.y, preds);
        std::printf("%s on %zu rows:\n  accuracy %.4f  f1 %.4f  auc %.4f  logloss %.4f\n",
                    model->name().c_str(), data.size(), cm.accuracy(), cm.f1(),
                    ml::roc_auc(data.y, preds), ml::log_loss(data.y, preds));
    } else {
        std::printf("%s on %zu rows:\n  mae %.4f  rmse %.4f  r2 %.4f\n",
                    model->name().c_str(), data.size(), ml::mae(data.y, preds),
                    ml::rmse(data.y, preds), ml::r2_score(data.y, preds));
    }
    return 0;
}

int cmd_explain(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto row = static_cast<std::size_t>(args.get_int("row", 0));
    if (row >= data.size()) throw std::runtime_error("--row out of range");

    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 11)));
    const xai::BackgroundData background(data.x, 128);
    const auto explainer =
        make_explainer(args.get("method", "tree_shap"), background, 11);

    xai::ReportOptions options;
    if (args.has("counterfactual")) options.counterfactual = xai::CounterfactualOptions{};
    std::printf("%s", xai::incident_report(*model, *explainer, data.x.row(row),
                                           data.feature_names, background, rng, options)
                          .c_str());
    return 0;
}

int cmd_global(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto n = std::min<std::size_t>(
        data.size(), static_cast<std::size_t>(args.get_int("rows", 100)));
    const xai::BackgroundData background(data.x, 128);
    const auto explainer =
        make_explainer(args.get("method", "tree_shap"), background, 13);

    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    const auto g = xai::aggregate_explanations(*explainer, *model,
                                               data.x.take_rows(rows),
                                               data.feature_names);
    std::printf("%s", g.to_string(12).c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        const Args args(argc, argv, 2);
        const long long threads = args.get_int("threads", 0);
        if (threads < 0) throw std::runtime_error("--threads must be >= 0");
        xnfv::set_default_threads(static_cast<std::size_t>(threads));
        if (command == "generate") return cmd_generate(args);
        if (command == "train") return cmd_train(args);
        if (command == "evaluate") return cmd_evaluate(args);
        if (command == "explain") return cmd_explain(args);
        if (command == "global") return cmd_global(args);
        if (command == "help") return usage();
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
