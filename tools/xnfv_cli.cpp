// xnfv command-line interface.
//
// End-to-end workflow without writing C++:
//
//   xnfv_cli generate --samples 5000 --out data.csv            # simulate NFV PoP
//   xnfv_cli train    --data data.csv --model rf --out m.xnfv  # fit a model
//   xnfv_cli evaluate --model m.xnfv --data data.csv           # metrics
//   xnfv_cli explain  --model m.xnfv --data data.csv --row 3   # incident report
//   xnfv_cli global   --model m.xnfv --data data.csv           # fleet ranking
//   xnfv_cli serve    --model m.xnfv --data data.csv           # ND-JSON service
//
// Every command accepts --seed for reproducibility; see `xnfv_cli help`.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/kernel_shap.hpp"
#include "core/parallel.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/report.hpp"
#include "core/sampling_shapley.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/linear.hpp"
#include "mlcore/metrics.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/preprocess.hpp"
#include "mlcore/serialize.hpp"
#include "mlcore/tree.hpp"
#include "net/chaos.hpp"
#include "net/client.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/sharded_server.hpp"
#include "scenario/driver.hpp"
#include "serve/explainers.hpp"
#include "serve/ndjson.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "workload/dataset_builder.hpp"

namespace ml = xnfv::ml;
namespace nfv = xnfv::nfv;
namespace serve = xnfv::serve;
namespace wl = xnfv::wl;
namespace xai = xnfv::xai;

namespace {

/// Minimal --key value argument map; flags without a value store "true".
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                throw std::runtime_error("unexpected argument '" + key + "'");
            key = key.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "true";
            }
        }
    }

    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values_.find(key);
        if (it == values_.end()) throw std::runtime_error("missing --" + key);
        return it->second;
    }
    [[nodiscard]] long long get_int(const std::string& key, long long fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::stoll(it->second);
    }
    [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

private:
    std::map<std::string, std::string> values_;
};

int usage() {
    // The method lists come from the shared explainer registry
    // (serve/explainers.hpp), so --help can never drift from what the
    // service and the ND-JSON protocol actually accept.  "auto" routes to
    // the model's exact fast path: flat TreeSHAP for tree ensembles,
    // analytic integrated gradients for MLPs, kernel SHAP otherwise.
    const std::string methods = xnfv::serve::explainer_list_with_auto();
    std::printf(
        "xnfv — explainable AI for NFV (see README.md)\n\n"
        "usage: xnfv_cli <command> [--key value ...]\n\n"
        "commands:\n"
        "  generate  --samples N [--out data.csv] [--scenario mixed|web_pop|\n"
        "            enterprise_edge|video_edge|iot_aggregation|dense_colocation]\n"
        "            [--label sla|latency] [--features full|config] [--seed S]\n"
        "  train     --data data.csv --out model.xnfv [--model rf|gbt|tree|linear|\n"
        "            logistic|mlp] [--task clf|reg] [--seed S]\n"
        "  evaluate  --model model.xnfv --data data.csv\n"
        "  explain   --model model.xnfv --data data.csv --row K\n"
        "            [--method %s]\n"
        "            [--ig-steps N]   integrated-gradients path resolution\n"
        "            [--counterfactual]\n"
        "  global    --model model.xnfv --data data.csv [--rows N]\n"
        "            [--method %s]\n"
        "  serve     --model model.xnfv --data data.csv [--method M] [--seed S]\n"
        "            [--ig-steps N]   integrated-gradients path resolution\n"
        "            [--models manifest.ndjson]   multi-model registry: one\n"
        "            JSON object per line, {\"name\":\"a\",\"model\":\"a.xnfv\",\n"
        "            \"weight\":2,\"quota\":64,\"default\":true}; the flagged\n"
        "            (else first) entry is the default model and --model is\n"
        "            then optional.  weight = DWRR share, quota = per-model\n"
        "            admission cap (0 = uncapped)\n"
        "            [--batch N] [--wait-us U] [--queue N] [--cache N]\n"
        "            [--quantum Q]\n"
        "            [--degrade N] [--degrade-scale S]   overload ladder: at\n"
        "            admission depth N serve reduced budget, at 2N occlusion\n"
        "            [--snapshot FILE] [--snapshot-interval-ms M]   crash-safe\n"
        "            cache persistence (restored on startup, written on stop)\n"
        "            [--fault-seed S] [--fault-predict-rate R]\n"
        "            [--fault-stall-rate R] [--fault-worker-kill N]\n"
        "            deterministic chaos injection for fault-tolerance tests\n"
        "            [--slo-us U] [--min-wait-us U]   adaptive micro-batching:\n"
        "            shrink the flush wait as the service p99 nears the SLO\n"
        "            [--drift-window N]   drift-triggered cache invalidation\n"
        "            [--interaction-points N]   background rows sampled per\n"
        "            Friedman-H2 pair for \"interactions\" requests\n"
        "            [--listen PORT] [--host A] [--max-conns N]\n"
        "            [--idle-timeout-ms M] [--max-output BYTES]   serve the\n"
        "            same ND-JSON protocol over TCP (PORT 0 = ephemeral;\n"
        "            first line printed is `listening on HOST:PORT`;\n"
        "            SIGTERM drains gracefully)\n"
        "            [--shards N]   thread-per-core serving: N SO_REUSEPORT\n"
        "            event-loop+service shards (0 = hardware concurrency;\n"
        "            --max-conns stays a fleet-wide limit and responses are\n"
        "            byte-identical at any shard count)\n"
        "            [--heartbeat-ms M]   shard supervisor sampling period:\n"
        "            a dead shard is respawned within one interval\n"
        "            [--dedup-window N]   per-connection idempotent-retry\n"
        "            window: a re-sent \"rid\" is answered from the recorded\n"
        "            response instead of recomputed (0 disables)\n"
        "            [--breaker-threshold R] [--breaker-window N]\n"
        "            [--breaker-cooldown-ms M]   per-tenant circuit breaker:\n"
        "            a model whose compute error rate over a full window\n"
        "            reaches R is rejected with circuit_open until a\n"
        "            half-open probe succeeds (R 0 disables)\n"
        "            [--net-fault-seed S] [--net-fault-partial-write-rate R]\n"
        "            [--net-fault-torn-read-rate R] [--net-fault-eintr-rate R]\n"
        "            [--net-fault-stall-rate R] [--net-fault-rst-rate R]\n"
        "            [--net-fault-shard-death-rate R] [--net-fault-max-deaths N]\n"
        "            [--net-fault-max-rst N]\n"
        "            deterministic socket-layer chaos (seeded; byte-stream\n"
        "            shaping faults never change response bytes)\n"
        "            ND-JSON requests on stdin (or the socket), one per line:\n"
        "              {\"op\":\"explain\",\"row\":3}\n"
        "              {\"op\":\"explain\",\"features\":[...],\"method\":\"lime\"}\n"
        "              {\"op\":\"explain\",\"row\":3,\"model\":\"canary\"}\n"
        "              {\"op\":\"explain\",\"row\":3,\"interactions\":2}   adds\n"
        "              the top-K Friedman-H2 interaction pairs to the response\n"
        "              {\"op\":\"stats\"}   {\"op\":\"stats_reset\"}   {\"op\":\"quit\"}\n"
        "            model admin / selection ops (applied to every shard):\n"
        "              {\"op\":\"load\",\"name\":\"b\",\"model\":\"b.xnfv\",\n"
        "               \"weight\":1,\"quota\":0}\n"
        "              {\"op\":\"swap\",\"name\":\"b\",\"model\":\"b2.xnfv\"}\n"
        "              {\"op\":\"retire\",\"name\":\"b\"}   {\"op\":\"models\"}\n"
        "              {\"op\":\"use\",\"model\":\"b\"}   set this session's\n"
        "              default model for later explain lines\n"
        "            responses are printed in request order\n"
        "  netprobe  --port P [--host A] [--row K | --features \"v1,v2,...\"]\n"
        "            [--method M] [--model-name NAME] [--seed S]\n"
        "            [--deadline-ms D] [--count N] [--stats] [--quit]\n"
        "            [--timeout-ms T] [--connect-timeout-ms T] [--line 'JSON']\n"
        "            probe a running `serve --listen` instance and print the\n"
        "            response lines; --line sends the given raw ND-JSON line\n"
        "            instead of a built explain request (admin ops from the\n"
        "            shell; must not be a quit frame — use --quit)\n"
        "  scenario  --port P [--host A] [--scenario NAME] [--seed S]\n"
        "            [--deployments N] [--connections N] [--epochs N]\n"
        "            [--window W] [--method M] [--interactions K]\n"
        "            [--flash-mult X] [--slo-us U] [--timeout-ms T]\n"
        "            closed-loop NOC fleet driver against a running\n"
        "            `serve --listen` instance: simulates a fleet live\n"
        "            (baseline / flash_crowd / remediated phases), replays\n"
        "            every chain-epoch's telemetry as concurrent explain\n"
        "            clients, applies the explanation-chosen remediation\n"
        "            between phases, and prints a JSON SLO report; exits 0\n"
        "            when the SLO verdict holds, 2 when missed, 3 on\n"
        "            transport failure\n"
        "  loadgen   --port P [--host A] [--conns N] [--requests N] [--rows N]\n"
        "            [--window W] [--method M] [--seed S] [--max-retries K]\n"
        "            [--response-timeout-ms T] [--connect-timeout-ms T]\n"
        "            [--backoff-ms B] [--retry-seed S] [--timeout-ms T]\n"
        "            retry-storm load driver: idempotent rid-tagged requests,\n"
        "            deterministic backoff, reconnect on reset; prints a JSON\n"
        "            summary and exits 0 iff every request was answered\n"
        "  help\n\n"
        "common flags:\n"
        "  --seed S     deterministic RNG seed (per command defaults)\n"
        "  --threads N  worker threads for explanation/prediction hot paths\n"
        "               (default: hardware concurrency; results are identical\n"
        "               for any N)\n",
        methods.c_str(), methods.c_str());
    return 2;
}

ml::Task task_from(const Args& args, const std::string& fallback) {
    const auto t = args.get("task", fallback);
    if (t == "clf" || t == "sla") return ml::Task::binary_classification;
    if (t == "reg" || t == "latency") return ml::Task::regression;
    throw std::runtime_error("unknown task '" + t + "'");
}

int cmd_generate(const Args& args) {
    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2020)));
    wl::BuildOptions opt;
    opt.num_samples = static_cast<std::size_t>(args.get_int("samples", 5000));
    opt.label = args.get("label", "sla") == "latency" ? nfv::LabelKind::latency_ms
                                                      : nfv::LabelKind::sla_violation;
    opt.feature_set = args.get("features", "full") == "config"
                          ? nfv::FeatureSet::config_only
                          : nfv::FeatureSet::full_telemetry;

    const auto scenario = args.get("scenario", "mixed");
    std::vector<wl::ScenarioSpec> specs;
    if (scenario == "mixed") {
        specs = wl::standard_scenarios();
    } else {
        for (const auto& s : wl::standard_scenarios())
            if (s.name == scenario) specs.push_back(s);
        if (specs.empty()) throw std::runtime_error("unknown scenario '" + scenario + "'");
    }

    const auto built = wl::build_mixed_dataset(specs, opt, rng);
    const auto out = args.get("out", "data.csv");
    ml::write_csv_file(built.data, out);
    std::printf("wrote %zu rows x %zu features to %s (positive rate %.3f)\n",
                built.data.size(), built.data.num_features(), out.c_str(),
                built.data.positive_rate());
    return 0;
}

int cmd_train(const Args& args) {
    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
    const auto kind = args.get("model", "rf");
    const auto data = ml::read_csv_file(args.require("data"),
                                        task_from(args, "clf"));
    std::unique_ptr<ml::Model> model;
    if (kind == "rf") {
        auto m = std::make_unique<ml::RandomForest>(
            ml::RandomForest::Config{.num_trees = 100});
        m->fit(data, rng);
        model = std::move(m);
    } else if (kind == "gbt") {
        auto m = std::make_unique<ml::GradientBoostedTrees>(
            ml::GradientBoostedTrees::Config{.num_rounds = 150});
        m->fit(data, rng);
        model = std::move(m);
    } else if (kind == "tree") {
        auto m = std::make_unique<ml::DecisionTree>(
            ml::DecisionTree::Config{.max_depth = 8});
        m->fit(data);
        model = std::move(m);
    } else if (kind == "linear") {
        auto m = std::make_unique<ml::LinearRegression>();
        m->fit(data);
        model = std::move(m);
    } else if (kind == "logistic") {
        auto m = std::make_unique<ml::LogisticRegression>();
        m->fit(data);
        model = std::move(m);
    } else if (kind == "mlp") {
        // Note: the CLI MLP trains on raw features; standardize upstream or
        // prefer tree models for heterogeneous telemetry scales.
        auto m = std::make_unique<ml::Mlp>(
            ml::Mlp::Config{.hidden_layers = {32, 32}, .epochs = 60});
        m->fit(data, rng);
        model = std::move(m);
    } else {
        throw std::runtime_error("unknown model '" + kind + "'");
    }
    const auto out = args.get("out", "model.xnfv");
    ml::save_model_file(*model, out);
    std::printf("trained %s on %zu rows; saved to %s\n", model->name().c_str(),
                data.size(), out.c_str());
    return 0;
}

// Explainer construction is shared with the serving subsystem so that the
// one-shot path here and `serve` produce byte-identical explainers.
using serve::make_explainer;

int cmd_evaluate(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto preds = model->predict_batch(data.x);
    if (data.task == ml::Task::binary_classification) {
        const auto cm = ml::confusion_matrix(data.y, preds);
        std::printf("%s on %zu rows:\n  accuracy %.4f  f1 %.4f  auc %.4f  logloss %.4f\n",
                    model->name().c_str(), data.size(), cm.accuracy(), cm.f1(),
                    ml::roc_auc(data.y, preds), ml::log_loss(data.y, preds));
    } else {
        std::printf("%s on %zu rows:\n  mae %.4f  rmse %.4f  r2 %.4f\n",
                    model->name().c_str(), data.size(), ml::mae(data.y, preds),
                    ml::rmse(data.y, preds), ml::r2_score(data.y, preds));
    }
    return 0;
}

/// Resolves the --method flag against the loaded model exactly like the
/// serving path does: "auto" routes to the model kind's exact fast path,
/// and a forced exact method the kind cannot run fails with the router's
/// message instead of a deeper explainer error.  Shared by explain/global
/// so one-shot output stays byte-identical to a served response.
std::string resolve_method(const Args& args, const ml::Model& model) {
    const auto route = serve::route_explainer(args.get("method", "tree_shap"),
                                              serve::classify_model(model));
    if (route.unsupported) throw std::runtime_error(route.why);
    return route.method;
}

serve::ExplainerLimits one_shot_limits(const Args& args) {
    serve::ExplainerLimits limits;
    limits.ig_steps = static_cast<std::size_t>(args.get_int("ig-steps", 50));
    return limits;
}

int cmd_explain(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto row = static_cast<std::size_t>(args.get_int("row", 0));
    if (row >= data.size()) throw std::runtime_error("--row out of range");

    ml::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 11)));
    const xai::BackgroundData background(data.x, 128);
    const auto explainer = make_explainer(resolve_method(args, *model), background,
                                          11, 0, one_shot_limits(args));

    xai::ReportOptions options;
    if (args.has("counterfactual")) options.counterfactual = xai::CounterfactualOptions{};
    std::printf("%s", xai::incident_report(*model, *explainer, data.x.row(row),
                                           data.feature_names, background, rng, options)
                          .c_str());
    return 0;
}

int cmd_global(const Args& args) {
    const auto model = ml::load_model_file(args.require("model"));
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));
    const auto n = std::min<std::size_t>(
        data.size(), static_cast<std::size_t>(args.get_int("rows", 100)));
    const xai::BackgroundData background(data.x, 128);
    const auto explainer = make_explainer(resolve_method(args, *model), background,
                                          13, 0, one_shot_limits(args));

    std::vector<std::size_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) rows[i] = i;
    const auto g = xai::aggregate_explanations(*explainer, *model,
                                               data.x.take_rows(rows),
                                               data.feature_names);
    std::printf("%s", g.to_string(12).c_str());
    return 0;
}

// The serving wire format (render_response / render_stats) lives in
// serve/ndjson.hpp, shared with the TCP front-end so both transports emit
// byte-identical responses.

/// The SIGTERM/SIGINT target when `serve --listen` is active: the handler
/// may only call the async-signal-safe request_drain().
std::atomic<xnfv::net::ShardedServer*> g_drain_target{nullptr};

extern "C" void serve_signal_handler(int) {
    if (auto* server = g_drain_target.load()) server->request_drain();
}

/// Newline-delimited-JSON request loop on stdin/stdout, or — with --listen —
/// the same protocol served over TCP.  Explain requests are submitted
/// asynchronously (so the micro-batcher can coalesce them) and answered in
/// request order; `stats`/`quit` first drain everything pending.
int cmd_serve(const Args& args) {
    const auto data = ml::read_csv_file(args.require("data"), task_from(args, "clf"));

    serve::ServiceConfig cfg;
    cfg.method = args.get("method", "tree_shap");
    cfg.ig_steps = static_cast<std::size_t>(args.get_int("ig-steps", 50));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
    cfg.queue_depth = static_cast<std::size_t>(args.get_int("queue", 256));
    cfg.max_batch = static_cast<std::size_t>(args.get_int("batch", 16));
    cfg.max_wait = std::chrono::microseconds(args.get_int("wait-us", 200));
    cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 4096));
    cfg.cache_quantum = std::stod(args.get("quantum", "0"));
    cfg.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    cfg.interaction_points =
        static_cast<std::size_t>(args.get_int("interaction-points", 64));

    // Degradation ladder: --degrade N arms the reduced rung at admission
    // depth N and the baseline rung at 2N.
    if (const auto degrade = args.get_int("degrade", 0); degrade > 0) {
        cfg.degradation.reduced_queue_depth = static_cast<std::size_t>(degrade);
        cfg.degradation.baseline_queue_depth = static_cast<std::size_t>(2 * degrade);
    }
    cfg.degradation.reduced_budget_scale = std::stod(args.get("degrade-scale", "0.25"));

    // Adaptive micro-batching: --slo-us arms the latency term; the depth
    // term floors the wait when the queue reaches half its capacity.
    if (const auto slo = args.get_int("slo-us", 0); slo > 0) {
        cfg.adaptive.slo_p99_us = static_cast<double>(slo);
        cfg.adaptive.queue_high = cfg.queue_depth / 2;
        cfg.adaptive.min_wait =
            std::chrono::microseconds(args.get_int("min-wait-us", 0));
    }

    // Drift-triggered cache invalidation (core/drift.hpp): compare every
    // --drift-window full-fidelity explanations against the first window.
    cfg.drift_window = static_cast<std::size_t>(args.get_int("drift-window", 0));

    // Per-tenant circuit breaker: --breaker-threshold arms it (fraction of
    // errors over a full outcome window that trips the model open).
    cfg.breaker.error_threshold = std::stod(args.get("breaker-threshold", "0"));
    cfg.breaker.window = static_cast<std::size_t>(args.get_int("breaker-window", 32));
    cfg.breaker.cooldown =
        std::chrono::milliseconds(args.get_int("breaker-cooldown-ms", 250));

    // Crash-safe cache snapshots.
    cfg.snapshot_path = args.get("snapshot", "");
    cfg.snapshot_interval =
        std::chrono::milliseconds(args.get_int("snapshot-interval-ms", 0));

    // Deterministic chaos: any nonzero rate wires in a seeded injector.
    const double fault_predict = std::stod(args.get("fault-predict-rate", "0"));
    const double fault_stall = std::stod(args.get("fault-stall-rate", "0"));
    const auto fault_kill = args.get_int("fault-worker-kill", 0);
    if (fault_predict > 0.0 || fault_stall > 0.0 || fault_kill > 0) {
        serve::FaultInjector::Config fi;
        fi.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
        const auto point = [](serve::FaultPoint p) { return static_cast<std::size_t>(p); };
        fi.rate[point(serve::FaultPoint::predict_throw)] = fault_predict;
        fi.rate[point(serve::FaultPoint::queue_stall)] = fault_stall;
        if (fault_kill > 0) {
            fi.rate[point(serve::FaultPoint::worker_death)] = 1.0;
            fi.max_fires[point(serve::FaultPoint::worker_death)] =
                static_cast<std::uint64_t>(fault_kill);
        }
        cfg.fault_injector = std::make_shared<serve::FaultInjector>(fi);
    }

    // --models: multi-model registry manifest, one JSON object per line
    // ({"name","model"[,"weight","quota","default"]}).  The flagged (else
    // first) entry becomes the default model; the rest are registered as
    // extra models before serving starts.
    std::shared_ptr<const ml::Model> model;
    if (args.has("models")) {
        const auto manifest_path = args.get("models", "");
        std::ifstream manifest_in(manifest_path);
        if (!manifest_in)
            throw std::runtime_error("cannot open --models manifest '" +
                                     manifest_path + "'");
        struct ManifestEntry {
            serve::ModelSpec spec;
            bool is_default = false;
        };
        std::vector<ManifestEntry> manifest;
        std::string mline;
        std::size_t lineno = 0;
        while (std::getline(manifest_in, mline)) {
            ++lineno;
            if (mline.find_first_not_of(" \t\r") == std::string::npos) continue;
            const auto at = manifest_path + ":" + std::to_string(lineno) + ": ";
            serve::JsonValue entry;
            try {
                entry = serve::parse_json(mline);
            } catch (const std::exception& e) {
                throw std::runtime_error(at + e.what());
            }
            ManifestEntry m;
            m.spec.name = entry.get_string("name", "");
            const auto file = entry.get_string("model", "");
            if (m.spec.name.empty() || file.empty())
                throw std::runtime_error(
                    at + "manifest lines need \"name\" and \"model\"");
            m.spec.model = ml::load_model_file(file);
            m.spec.weight =
                static_cast<std::size_t>(entry.get_number("weight", 1));
            m.spec.quota = static_cast<std::size_t>(entry.get_number("quota", 0));
            const auto* def = entry.find("default");
            m.is_default = def != nullptr &&
                           def->type == serve::JsonValue::Type::boolean &&
                           def->boolean;
            manifest.push_back(std::move(m));
        }
        if (manifest.empty())
            throw std::runtime_error("--models manifest '" + manifest_path +
                                     "' has no entries");
        std::size_t def = 0;
        for (std::size_t i = 0; i < manifest.size(); ++i)
            if (manifest[i].is_default) { def = i; break; }
        model = manifest[def].spec.model;
        cfg.default_model_name = manifest[def].spec.name;
        cfg.default_weight = manifest[def].spec.weight;
        cfg.default_quota = manifest[def].spec.quota;
        for (std::size_t i = 0; i < manifest.size(); ++i)
            if (i != def) cfg.extra_models.push_back(std::move(manifest[i].spec));
    } else {
        model = ml::load_model_file(args.require("model"));
    }

    // --listen: serve the same protocol over TCP instead of stdin/stdout,
    // thread-per-core sharded (--shards N, 0 = hardware concurrency).  The
    // sharded server owns one service per shard, so the stdin-loop service
    // below is only built for the stdin path.
    if (args.has("listen")) {
        xnfv::net::ShardedServerConfig shcfg;
        shcfg.net.host = args.get("host", "127.0.0.1");
        shcfg.net.port = static_cast<std::uint16_t>(args.get_int("listen", 0));
        shcfg.net.max_connections =
            static_cast<std::size_t>(args.get_int("max-conns", 256));
        shcfg.net.idle_timeout =
            std::chrono::milliseconds(args.get_int("idle-timeout-ms", 0));
        shcfg.net.max_output_bytes =
            static_cast<std::size_t>(args.get_int("max-output", 8 << 20));
        shcfg.shards = static_cast<std::size_t>(args.get_int("shards", 0));
        shcfg.heartbeat_interval =
            std::chrono::milliseconds(args.get_int("heartbeat-ms", 50));
        shcfg.net.dedup_window =
            static_cast<std::size_t>(args.get_int("dedup-window", 1024));

        // Network-layer chaos: any nonzero rate arms a seeded socket fault
        // injector shared by every shard (fires are fleet-global counters).
        {
            const auto point = [](xnfv::net::NetFaultPoint p) {
                return static_cast<std::size_t>(p);
            };
            xnfv::net::NetFaultInjector::Config nf;
            nf.seed = static_cast<std::uint64_t>(args.get_int("net-fault-seed", 1));
            nf.rate[point(xnfv::net::NetFaultPoint::partial_write)] =
                std::stod(args.get("net-fault-partial-write-rate", "0"));
            nf.rate[point(xnfv::net::NetFaultPoint::torn_read)] =
                std::stod(args.get("net-fault-torn-read-rate", "0"));
            nf.rate[point(xnfv::net::NetFaultPoint::eintr_storm)] =
                std::stod(args.get("net-fault-eintr-rate", "0"));
            nf.rate[point(xnfv::net::NetFaultPoint::stalled_read)] =
                std::stod(args.get("net-fault-stall-rate", "0"));
            nf.rate[point(xnfv::net::NetFaultPoint::rst_close)] =
                std::stod(args.get("net-fault-rst-rate", "0"));
            nf.rate[point(xnfv::net::NetFaultPoint::shard_death)] =
                std::stod(args.get("net-fault-shard-death-rate", "0"));
            nf.max_fires[point(xnfv::net::NetFaultPoint::shard_death)] =
                static_cast<std::uint64_t>(args.get_int("net-fault-max-deaths", 1));
            nf.max_fires[point(xnfv::net::NetFaultPoint::rst_close)] =
                static_cast<std::uint64_t>(args.get_int("net-fault-max-rst", 0));
            bool armed = false;
            for (const double r : nf.rate) armed = armed || r > 0.0;
            if (armed)
                shcfg.net.chaos = std::make_shared<xnfv::net::NetFaultInjector>(nf);
        }

        xnfv::net::ShardedServer server(model, xai::BackgroundData(data.x, 128),
                                        cfg, shcfg);
        server.set_row_lookup(
            [&data](std::size_t row, std::vector<double>& features) {
                if (row >= data.size()) return false;
                const auto x = data.x.row(row);
                features.assign(x.begin(), x.end());
                return true;
            });
        std::string err;
        if (!server.start(&err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 1;
        }
        g_drain_target.store(&server);
        std::signal(SIGTERM, serve_signal_handler);
        std::signal(SIGINT, serve_signal_handler);
        // First stdout line is machine-readable so scripts can discover an
        // ephemeral port (--listen 0); its format is load-bearing.
        std::printf("listening on %s:%u\n", shcfg.net.host.c_str(),
                    static_cast<unsigned>(server.port()));
        std::printf("shards %zu\n", server.shards());
        std::fflush(stdout);
        server.run();
        g_drain_target.store(nullptr);
        std::signal(SIGTERM, SIG_DFL);
        std::signal(SIGINT, SIG_DFL);
        server.stop_services();
        std::printf("drained\n");
        return 0;
    }

    serve::ExplanationService service(model, xai::BackgroundData(data.x, 128), cfg);

    std::vector<std::future<serve::ExplainResponse>> pending;
    const auto drain = [&pending] {
        for (auto& f : pending)
            std::printf("%s\n", serve::render_response(f.get()).c_str());
        pending.clear();
        std::fflush(stdout);
    };
    const auto print_error = [&drain](std::uint64_t id, serve::ServeError code,
                                      const std::string& message) {
        drain();  // keep responses in request order
        serve::ExplainResponse r;
        r.id = id;
        r.error_code = code;
        r.error = message;
        std::printf("%s\n", serve::render_response(r).c_str());
        std::fflush(stdout);
    };

    std::uint64_t next_id = 1;
    std::string session_model;  // set by {"op":"use"}; "" = server default
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        serve::JsonValue req;
        try {
            req = serve::parse_json(line);
        } catch (const std::exception& e) {
            print_error(0, serve::ServeError::bad_request, e.what());
            continue;
        }
        const auto op = req.get_string("op", "explain");
        if (op == "quit") break;
        if (op == "stats") {
            drain();  // complete in-flight requests so the snapshot covers them
            std::printf("%s\n", serve::render_stats(service.stats()).c_str());
            std::fflush(stdout);
            continue;
        }
        if (op == "stats_reset") {
            drain();  // reset after everything already admitted completed
            service.stats_reset();
            serve::JsonWriter w;
            w.field("ok", true);
            w.field("op", "stats_reset");
            std::printf("%s\n", w.finish().c_str());
            std::fflush(stdout);
            continue;
        }
        if (op == "load" || op == "swap" || op == "retire" || op == "models") {
            drain();  // admin lands after everything already admitted
            std::printf("%s\n", serve::handle_model_admin(req, {&service}).c_str());
            std::fflush(stdout);
            continue;
        }
        if (op == "use") {
            drain();  // keep responses in request order
            const auto name = req.get_string("model", "");
            if (!service.feature_dim(name)) {
                print_error(0, serve::ServeError::unknown_model,
                            "unknown model '" + name + "'");
                continue;
            }
            session_model = name;
            serve::JsonWriter w;
            w.field("ok", true);
            w.field("op", "use");
            w.field("model", name);
            std::printf("%s\n", w.finish().c_str());
            std::fflush(stdout);
            continue;
        }
        if (op != "explain") {
            print_error(0, serve::ServeError::bad_request, "unknown op '" + op + "'");
            continue;
        }

        serve::ExplainRequest er;
        er.id = static_cast<std::uint64_t>(
            req.get_number("id", static_cast<double>(next_id)));
        ++next_id;
        er.method = req.get_string("method", "");
        er.model = req.get_string("model", session_model);
        er.seed = static_cast<std::uint64_t>(req.get_number("seed", 0));
        er.deadline_ms = static_cast<std::int64_t>(req.get_number("deadline_ms", -1));
        if (const double k = req.get_number("interactions", 0); k > 0)
            er.interactions = static_cast<std::size_t>(k);
        const auto dim = service.feature_dim(er.model);
        if (!dim) {
            print_error(er.id, serve::ServeError::unknown_model,
                        "unknown model '" + er.model + "'");
            continue;
        }
        if (!er.method.empty() && er.method != serve::kAutoMethod &&
            !serve::known_explainer(er.method)) {
            print_error(er.id, serve::ServeError::bad_request,
                        "unknown method '" + er.method + "' (expected " +
                            serve::explainer_list_with_auto() + ")");
            continue;
        }
        if (req.has("features")) {
            auto extracted = serve::extract_features(req, *dim);
            if (extracted.error != serve::ServeError::none) {
                print_error(er.id, extracted.error, extracted.message);
                continue;
            }
            er.features = std::move(extracted.features);
        } else if (req.has("row")) {
            const auto row = static_cast<std::size_t>(req.get_number("row", 0));
            if (row >= data.size()) {
                print_error(er.id, serve::ServeError::bad_request, "row out of range");
                continue;
            }
            const auto x = data.x.row(row);
            er.features.assign(x.begin(), x.end());
        } else {
            print_error(er.id, serve::ServeError::bad_request,
                        "explain needs \"row\" or \"features\"");
            continue;
        }

        const std::uint64_t id = er.id;
        auto sub = service.submit(std::move(er));
        if (sub.rejected != serve::ServeError::none) {
            print_error(id, sub.rejected,
                        std::string("rejected: ") + to_string(sub.rejected));
            continue;
        }
        pending.push_back(std::move(sub.response));
        // Bounded client window: flush periodically so a socketless pipe
        // producer cannot outrun the queue.
        if (pending.size() >= 64) drain();
    }
    drain();
    service.stop();
    return 0;
}

/// Closed-loop NOC fleet driver (src/scenario/): simulate a fleet live,
/// replay its telemetry as concurrent explain clients against a running
/// server, remediate from the served explanation, and report per-phase SLOs.
int cmd_scenario(const Args& args) {
    xnfv::scenario::DriverConfig cfg;
    cfg.host = args.get("host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    if (cfg.port == 0) throw std::runtime_error("missing --port");
    cfg.scenario = args.get("scenario", "enterprise_edge");
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
    cfg.deployments = static_cast<std::size_t>(args.get_int("deployments", 2));
    cfg.connections = static_cast<std::size_t>(args.get_int("connections", 32));
    cfg.epochs_per_phase = static_cast<std::size_t>(args.get_int("epochs", 4));
    cfg.window = static_cast<std::size_t>(args.get_int("window", 4));
    cfg.method = args.get("method", "tree_shap");
    cfg.interactions = static_cast<std::size_t>(args.get_int("interactions", 0));
    cfg.flash_mult = std::stod(args.get("flash-mult", "6"));
    cfg.slo_us = std::stod(args.get("slo-us", "0"));
    cfg.timeout = std::chrono::milliseconds(args.get_int("timeout-ms", 120000));

    const auto report = xnfv::scenario::run_scenario(cfg);
    std::printf("%s\n", report.to_json().c_str());
    std::fflush(stdout);
    if (!report.transport_ok) {
        std::fprintf(stderr, "error: %s\n", report.error.c_str());
        return 3;
    }
    return report.slo_met ? 0 : 2;
}

/// Minimal TCP client for a running `serve --listen` instance: sends a few
/// ND-JSON requests and prints each response line to stdout.  Needs no model
/// or dataset, which makes it the smoke-test probe for the TCP path.
int cmd_netprobe(const Args& args) {
    const auto host = args.get("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
    if (port == 0) throw std::runtime_error("missing --port");
    const auto timeout =
        std::chrono::milliseconds(args.get_int("timeout-ms", 10000));
    const auto connect_timeout =
        std::chrono::milliseconds(args.get_int("connect-timeout-ms", 0));

    xnfv::net::Client client;
    std::string err;
    if (!client.connect(host, port, &err, connect_timeout))
        throw std::runtime_error("connect failed: " + err);

    // Build the explain request once; --count repeats it (cache-hit probe).
    // --line overrides it with a caller-supplied raw ND-JSON frame (admin
    // ops), still expected to produce one response per send.
    std::string request;
    if (args.has("line")) {
        request = args.get("line", "");
    } else {
        serve::JsonWriter w;
        w.field("op", "explain");
        if (args.has("features")) {
            // Comma-separated literal features, passed through verbatim.
            w.field_raw("features", "[" + args.get("features", "") + "]");
        } else {
            w.field("row", static_cast<double>(args.get_int("row", 0)));
        }
        if (args.has("method")) w.field("method", args.get("method", ""));
        if (args.has("model-name")) w.field("model", args.get("model-name", ""));
        if (const auto seed = args.get_int("seed", 0); seed > 0)
            w.field("seed", static_cast<std::uint64_t>(seed));
        if (const auto dl = args.get_int("deadline-ms", -1); dl >= 0)
            w.field("deadline_ms", static_cast<double>(dl));
        request = w.finish();
    }

    const auto count = static_cast<std::size_t>(args.get_int("count", 1));
    std::size_t expected = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (!client.send_line(request)) throw std::runtime_error("send failed");
        ++expected;
    }
    if (args.has("stats")) {
        if (!client.send_line(R"({"op":"stats"})"))
            throw std::runtime_error("send failed");
        ++expected;
    }
    if (args.has("quit")) {
        if (!client.send_line(R"({"op":"quit"})"))
            throw std::runtime_error("send failed");
    }

    std::string line;
    for (std::size_t i = 0; i < expected; ++i) {
        if (!client.recv_line(line, timeout))
            throw std::runtime_error("timed out waiting for response " +
                                     std::to_string(i + 1) + "/" +
                                     std::to_string(expected));
        std::printf("%s\n", line.c_str());
    }
    return 0;
}

/// Retry-storm load driver against a running `serve --listen` instance:
/// every request carries an idempotent rid, responses are matched by id,
/// unanswered lines are re-sent with deterministic backoff, and dead
/// connections are re-established — the client-side half of the resilience
/// contract.  Prints a one-line JSON summary for scripts (the CI chaos
/// smoke asserts answered == sent and errors == 0 from it).
int cmd_loadgen(const Args& args) {
    xnfv::net::LoadgenConfig cfg;
    cfg.host = args.get("host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    if (cfg.port == 0) throw std::runtime_error("missing --port");
    cfg.window = static_cast<std::size_t>(args.get_int("window", 4));
    cfg.timeout = std::chrono::milliseconds(args.get_int("timeout-ms", 60000));
    cfg.max_retries = static_cast<std::size_t>(args.get_int("max-retries", 8));
    cfg.response_timeout =
        std::chrono::milliseconds(args.get_int("response-timeout-ms", 2000));
    cfg.connect_timeout =
        std::chrono::milliseconds(args.get_int("connect-timeout-ms", 2000));
    cfg.backoff_base = std::chrono::milliseconds(args.get_int("backoff-ms", 10));
    cfg.retry_seed = static_cast<std::uint64_t>(args.get_int("retry-seed", 1));

    const auto conns = static_cast<std::size_t>(args.get_int("conns", 8));
    const auto requests = static_cast<std::size_t>(args.get_int("requests", 16));
    const auto rows = static_cast<std::size_t>(args.get_int("rows", 8));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

    std::vector<std::vector<std::string>> scripts(conns);
    for (std::size_t c = 0; c < conns; ++c) {
        scripts[c].reserve(requests);
        for (std::size_t r = 0; r < requests; ++r) {
            xnfv::net::RequestSpec spec;
            spec.id = c * requests + r + 1;  // fleet-unique id == rid
            spec.rid = spec.id;
            spec.row = static_cast<long>(rows == 0 ? 0 : (c + r) % rows);
            spec.seed = seed;
            if (args.has("method")) spec.method = args.get("method", "");
            scripts[c].push_back(xnfv::net::render_request_line(spec));
        }
    }

    const auto report = xnfv::net::run_load(cfg, scripts);
    std::size_t answered = 0, sent = 0, errors = 0, retries = 0, reconnects = 0,
                duplicates = 0;
    for (const auto& conn : report.conns) {
        sent += conn.sent_lines;
        retries += conn.retries;
        reconnects += conn.reconnects;
        duplicates += conn.duplicates;
        if (conn.connect_failed || conn.io_error) ++errors;
        // In retry mode answered = matched responses (duplicates excluded).
        answered += conn.lines.size() - conn.duplicates;
    }
    serve::JsonWriter w;
    w.field("conns", static_cast<std::uint64_t>(conns));
    w.field("requests", static_cast<std::uint64_t>(conns * requests));
    w.field("answered", static_cast<std::uint64_t>(answered));
    w.field("sent_lines", static_cast<std::uint64_t>(sent));
    w.field("errors", static_cast<std::uint64_t>(errors));
    w.field("retries", static_cast<std::uint64_t>(retries));
    w.field("reconnects", static_cast<std::uint64_t>(reconnects));
    w.field("duplicates", static_cast<std::uint64_t>(duplicates));
    w.field("timed_out", report.timed_out);
    std::printf("%s\n", w.finish().c_str());
    return errors == 0 && !report.timed_out &&
                   answered == static_cast<std::size_t>(conns * requests)
               ? 0
               : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        const Args args(argc, argv, 2);
        const long long threads = args.get_int("threads", 0);
        if (threads < 0) throw std::runtime_error("--threads must be >= 0");
        xnfv::set_default_threads(static_cast<std::size_t>(threads));
        if (command == "generate") return cmd_generate(args);
        if (command == "train") return cmd_train(args);
        if (command == "evaluate") return cmd_evaluate(args);
        if (command == "explain") return cmd_explain(args);
        if (command == "global") return cmd_global(args);
        if (command == "serve") return cmd_serve(args);
        if (command == "scenario") return cmd_scenario(args);
        if (command == "netprobe") return cmd_netprobe(args);
        if (command == "loadgen") return cmd_loadgen(args);
        if (command == "help") return usage();
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
