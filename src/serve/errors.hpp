// The single error taxonomy of the serving layer.
//
// Every way a request can fail — at admission (rejection before entering
// the queue) or after acceptance (an error response) — is one enumerator
// here, with a stable wire string.  The service counts occurrences
// per-reason (ServiceStats::errors_by_reason), so an operator can tell a
// backpressure storm (queue_full) from a client bug (bad_request /
// bad_features) from an SLO miss (deadline_exceeded) at a glance, instead
// of grepping free-form message strings.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xnfv::serve {

/// Why a request failed.  `none` means success.
enum class ServeError : std::uint8_t {
    none = 0,
    queue_full,          ///< backpressure: admission-queue depth limit reached
    service_stopped,     ///< queue closed during shutdown
    bad_request,         ///< malformed payload (wrong arity, unknown method/op)
    bad_features,        ///< non-finite (NaN/Inf) or non-numeric feature values
    deadline_exceeded,   ///< request deadline passed before or during compute
    internal_error,      ///< explainer or model threw during computation
    fault_injected,      ///< failure produced by the chaos-testing injector
    backpressure,        ///< slow/half-open consumer: output cap or conn limit
    unknown_model,       ///< request named a model the registry does not hold
    quota_exceeded,      ///< per-model admission quota reached (tenant, not fleet)
    retry_duplicate,     ///< retried rid answered from the dedup window (no recompute)
    circuit_open,        ///< per-tenant circuit breaker rejected the request
    shard_respawn,       ///< supervisor restarted a dead shard thread
    net_fault_injected,  ///< socket-level chaos fault fired (counting, not a failure)
    unsupported_explainer,  ///< forced exact explainer incompatible with the model kind
};

/// Number of enumerators (for per-reason counter arrays).
inline constexpr std::size_t kNumServeErrors = 16;

[[nodiscard]] constexpr const char* to_string(ServeError error) noexcept {
    switch (error) {
        case ServeError::none: return "none";
        case ServeError::queue_full: return "queue_full";
        case ServeError::service_stopped: return "service_stopped";
        case ServeError::bad_request: return "bad_request";
        case ServeError::bad_features: return "bad_features";
        case ServeError::deadline_exceeded: return "deadline_exceeded";
        case ServeError::internal_error: return "internal_error";
        case ServeError::fault_injected: return "fault_injected";
        case ServeError::backpressure: return "backpressure";
        case ServeError::unknown_model: return "unknown_model";
        case ServeError::quota_exceeded: return "quota_exceeded";
        case ServeError::retry_duplicate: return "retry_duplicate";
        case ServeError::circuit_open: return "circuit_open";
        case ServeError::shard_respawn: return "shard_respawn";
        case ServeError::net_fault_injected: return "net_fault_injected";
        case ServeError::unsupported_explainer: return "unsupported_explainer";
    }
    return "unknown";
}

}  // namespace xnfv::serve
