// Adaptive micro-batching policy: shrink the flush timeout under pressure.
//
// The static max_wait trades a lone request's latency for the chance of
// coalescing: at low load the wait costs little (the queue is empty anyway)
// and at saturation flushes happen by size, so the timeout never fires.  The
// painful regime is in between — enough traffic that the p99 creeps toward
// the SLO, not enough that batches fill — where a fixed wait adds itself to
// every request's tail latency.  This policy closes that gap: as the
// observed service p99 approaches the configured SLO, or the queue-depth
// gauge approaches its high-water threshold, the effective max_wait shrinks
// linearly from the configured ceiling down to `min_wait`.
//
// Like DegradationPolicy next door, this is a *pure* object: it maps
// observed load to a wait and never reads a clock, a queue, or a histogram
// itself — the dispatcher (or a test with hand-built loads and injected
// time points) feeds it.  Determinism note: the policy changes only *when*
// a batch flushes, never what a request computes, so served bytes remain
// bitwise identical under any wait schedule (DESIGN.md section 9).
#pragma once

#include <chrono>
#include <cstddef>

namespace xnfv::serve {

struct AdaptiveBatchConfig {
    /// Ceiling: the configured micro-batch wait (what an unpressured service
    /// uses).  Set by the service from ServiceConfig::max_wait.
    std::chrono::microseconds max_wait{200};
    /// Floor the wait shrinks to at full pressure (>= 0; 0 = flush
    /// immediately when a request is pending).
    std::chrono::microseconds min_wait{0};
    /// Service-time p99 SLO in microseconds; the wait starts shrinking at
    /// `shrink_start` of this and floors at the SLO itself.  0 disables the
    /// latency term.
    double slo_p99_us = 0.0;
    /// Queue depth at which the wait floors (the depth term ramps from 0).
    /// 0 disables the depth term.
    std::size_t queue_high = 0;
    /// Fraction of the SLO at which latency pressure begins, in (0, 1).
    double shrink_start = 0.5;

    [[nodiscard]] bool enabled() const noexcept {
        return slo_p99_us > 0.0 || queue_high != 0;
    }
};

/// Pure (load -> effective max_wait) map.
class AdaptiveBatchPolicy {
public:
    AdaptiveBatchPolicy() = default;
    explicit AdaptiveBatchPolicy(AdaptiveBatchConfig config);

    struct Load {
        std::size_t queue_depth = 0;  ///< current admission-queue depth
        double service_p99_us = 0.0;  ///< current end-to-end p99
    };

    /// The wait the batcher should use right now: max_wait scaled down by
    /// the strongest pressure signal, clamped to [min_wait, max_wait].
    /// Monotone: more pressure never yields a longer wait.
    [[nodiscard]] std::chrono::microseconds effective_wait(
        const Load& load) const noexcept;

    /// Pressure in [0, 1]: 0 = unloaded (full wait), 1 = floor the wait.
    [[nodiscard]] double pressure(const Load& load) const noexcept;

    [[nodiscard]] const AdaptiveBatchConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }

private:
    AdaptiveBatchConfig config_{};
};

}  // namespace xnfv::serve
