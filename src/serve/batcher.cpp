#include "serve/batcher.hpp"

#include <algorithm>
#include <utility>

namespace xnfv::serve {

MicroBatcher::MicroBatcher(BatcherConfig config) : config_(config) {
    config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
    pending_.reserve(config_.max_batch);
}

bool MicroBatcher::add(Job job, TimePoint now) {
    if (pending_.empty()) oldest_ = now;
    earliest_deadline_ = std::min(earliest_deadline_, job.deadline);
    pending_.push_back(std::move(job));
    return pending_.size() >= config_.max_batch;
}

bool MicroBatcher::due(TimePoint now) const noexcept {
    if (pending_.empty()) return false;
    return pending_.size() >= config_.max_batch || now - oldest_ >= config_.max_wait ||
           now >= earliest_deadline_;
}

std::optional<MicroBatcher::TimePoint> MicroBatcher::deadline() const noexcept {
    if (pending_.empty()) return std::nullopt;
    return std::min(oldest_ + config_.max_wait, earliest_deadline_);
}

std::vector<Job> MicroBatcher::flush() {
    std::vector<Job> batch = std::move(pending_);
    pending_.clear();
    pending_.reserve(config_.max_batch);
    earliest_deadline_ = TimePoint::max();
    return batch;
}

}  // namespace xnfv::serve
