#include "serve/fault_injector.hpp"

#include "serve/explanation_cache.hpp"  // fnv1a_u64

namespace xnfv::serve {

bool FaultInjector::should_fire(FaultPoint point) noexcept {
    const std::size_t i = index(point);
    const double rate = config_.rate[i];
    const std::uint64_t k = polls_[i].fetch_add(1, std::memory_order_relaxed);
    if (rate <= 0.0) return false;
    // Uniform in [0, 1) from the (seed, point, k) hash; fires when it lands
    // under the configured rate — the k-th poll's verdict never changes.
    const std::uint64_t h =
        fnv1a_u64(k, fnv1a_u64(static_cast<std::uint64_t>(i),
                               fnv1a_u64(config_.seed, 0xcbf29ce484222325ULL)));
    const double draw =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // top 53 bits -> [0, 1)
    if (draw >= rate) return false;
    const std::uint64_t cap = config_.max_fires[i];
    const std::uint64_t nth = fired_[i].fetch_add(1, std::memory_order_relaxed);
    if (cap != 0 && nth >= cap) {
        fired_[i].fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

std::uint64_t FaultInjector::total_fired() const noexcept {
    std::uint64_t total = 0;
    for (const auto& f : fired_) total += f.load(std::memory_order_relaxed);
    return total;
}

double FaultInjectingModel::predict(std::span<const double> x) const {
    if (fault_fires(injector_.get(), FaultPoint::predict_throw))
        throw InjectedFault(FaultPoint::predict_throw);
    return inner_->predict(x);
}

void FaultInjectingModel::predict_batch(const xnfv::ml::Matrix& x,
                                        std::span<double> out) const {
    if (out.size() != x.rows())
        throw std::invalid_argument("FaultInjectingModel::predict_batch: output size mismatch");
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
}

}  // namespace xnfv::serve
