#include "serve/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace xnfv::serve {

namespace {

/// Bucket index for a sample: 0 holds the value 0, bucket i >= 1 holds
/// [2^(i-1), 2^i).  bit_width(1)=1 -> bucket 1, bit_width(2..3)=2 -> 2, ...
[[nodiscard]] std::size_t bucket_of(std::uint64_t sample) noexcept {
    if (sample == 0) return 0;
    return std::min<std::size_t>(std::bit_width(sample), Histogram::kBuckets - 1);
}

/// Inclusive value range covered by bucket i (see bucket_of).
[[nodiscard]] std::pair<double, double> bucket_range(std::size_t i) noexcept {
    if (i == 0) return {0.0, 0.0};
    const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
    return {lo, 2.0 * lo - 1.0};
}

}  // namespace

void Histogram::record(std::uint64_t sample) noexcept {
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (sample < seen &&
           !min_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (sample > seen &&
           !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
    }
}

double Histogram::mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::min() const noexcept {
    const auto v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::max() const noexcept {
    return max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested quantile among n samples (1-based, ceil).
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
        if (in_bucket == 0) continue;
        if (seen + in_bucket >= rank) {
            const auto [lo, hi] = bucket_range(i);
            // The final bucket also absorbs every sample past its nominal
            // range (bucket_of clamps bit_width), so interpolating against
            // the nominal bound under-reports heavy tails; the recorded max
            // is the true upper edge.  Inner buckets clamp to max() too, so
            // a quantile never exceeds any observed sample.
            const double top = static_cast<double>(max());
            const double hi_eff =
                i == kBuckets - 1 ? top : std::min(hi, top);
            const double frac =
                static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
            return lo + (hi_eff - lo) * frac;
        }
        seen += in_bucket;
    }
    return static_cast<double>(max());
}

void Histogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

void ServiceMetrics::reset() noexcept {
    requests_accepted.reset();
    requests_rejected.reset();
    requests_completed.reset();
    requests_degraded.reset();
    batches.reset();
    cache_hits.reset();
    cache_misses.reset();
    for (auto& c : errors_by_reason) c.reset();
    worker_respawns.reset();
    worker_stalls.reset();
    snapshot_writes.reset();
    snapshot_records_loaded.reset();
    snapshot_records_skipped.reset();
    model_evals.reset();
    drift_checks.reset();
    drift_flushes.reset();
    fast_path_hits.reset();
    for (auto& c : explainer_requests) c.reset();
    for (auto& c : explainer_fast_hits) c.reset();
    for (auto& h : explainer_compute_us) h.reset();
    queue_depth.reset();
    adaptive_wait_us.reset();
    batch_size.reset();
    service_time_us.reset();
    compute_time_us.reset();
    probe_rows.reset();
}

double ServiceStats::cache_hit_rate() const noexcept {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) / static_cast<double>(lookups);
}

std::string ServiceStats::to_string() const {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "service stats\n"
        "  requests    accepted %llu  rejected %llu  completed %llu  degraded %llu\n"
        "  queue       depth %llu  max-depth %llu\n"
        "  batches     %llu  mean-size %.2f  max-size %llu\n"
        "  cache       hits %llu  misses %llu  hit-rate %.3f  entries %llu  evictions %llu\n"
        "  latency-us  p50 %.1f  p95 %.1f  p99 %.1f  mean %.1f\n"
        "  compute-us  mean %.1f (per cache miss)\n",
        static_cast<unsigned long long>(requests_accepted),
        static_cast<unsigned long long>(requests_rejected),
        static_cast<unsigned long long>(requests_completed),
        static_cast<unsigned long long>(requests_degraded),
        static_cast<unsigned long long>(queue_depth),
        static_cast<unsigned long long>(queue_depth_max),
        static_cast<unsigned long long>(batches), batch_size_mean,
        static_cast<unsigned long long>(batch_size_max),
        static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(cache_misses), cache_hit_rate(),
        static_cast<unsigned long long>(cache_entries),
        static_cast<unsigned long long>(cache_evictions), service_us_p50,
        service_us_p95, service_us_p99, service_us_mean, compute_us_mean);
    std::string out = buf;
    // Per-reason failure tally, only the reasons that actually occurred.
    std::string errors;
    for (std::size_t i = 1; i < kNumServeErrors; ++i) {
        if (errors_by_reason[i] == 0) continue;
        char item[64];
        std::snprintf(item, sizeof(item), "  %s %llu",
                      xnfv::serve::to_string(static_cast<ServeError>(i)),
                      static_cast<unsigned long long>(errors_by_reason[i]));
        errors += item;
    }
    if (!errors.empty()) out += "  errors    " + errors + "\n";
    if (model_evals != 0) {
        std::snprintf(buf, sizeof(buf),
                      "  probes      model-evals %llu  rows/explanation p50 %.1f  "
                      "mean %.1f  max %llu\n",
                      static_cast<unsigned long long>(model_evals), probe_rows_p50,
                      probe_rows_mean, static_cast<unsigned long long>(probe_rows_max));
        out += buf;
    }
    if (fast_path_hits != 0 || !explainers.empty()) {
        std::snprintf(buf, sizeof(buf), "  fast-path   hits %llu\n",
                      static_cast<unsigned long long>(fast_path_hits));
        out += buf;
        for (const auto& e : explainers) {
            std::snprintf(buf, sizeof(buf),
                          "    %-20s requests %llu  fast %llu  compute-us "
                          "p50 %.1f  p99 %.1f  mean %.1f\n",
                          e.name.c_str(),
                          static_cast<unsigned long long>(e.requests),
                          static_cast<unsigned long long>(e.fast_path_hits),
                          e.compute_us_p50, e.compute_us_p99, e.compute_us_mean);
            out += buf;
        }
    }
    if (drift_checks != 0 || drift_flushes != 0 || cache_epoch != 0) {
        std::snprintf(buf, sizeof(buf),
                      "  drift       checks %llu  flushes %llu  cache-epoch %llu\n",
                      static_cast<unsigned long long>(drift_checks),
                      static_cast<unsigned long long>(drift_flushes),
                      static_cast<unsigned long long>(cache_epoch));
        out += buf;
    }
    // Registry section only when the fleet is interesting (more than the
    // single default model, or a swap has happened).
    if (models_registered > 1 || model_swaps != 0) {
        std::snprintf(buf, sizeof(buf), "  models      registered %llu  swaps %llu\n",
                      static_cast<unsigned long long>(models_registered),
                      static_cast<unsigned long long>(model_swaps));
        out += buf;
        for (const auto& m : models) {
            std::snprintf(buf, sizeof(buf),
                          "    %-16s fp %s  admitted %llu  quota-rejected %llu  "
                          "swaps %llu  evals %llu  cache %llu  w %llu  q %llu\n",
                          m.name.c_str(), m.fingerprint.c_str(),
                          static_cast<unsigned long long>(m.admitted),
                          static_cast<unsigned long long>(m.rejected_quota),
                          static_cast<unsigned long long>(m.swaps),
                          static_cast<unsigned long long>(m.evals),
                          static_cast<unsigned long long>(m.cache_entries),
                          static_cast<unsigned long long>(m.weight),
                          static_cast<unsigned long long>(m.quota));
            out += buf;
            if (m.breaker_state != 0 || m.breaker_opens != 0 ||
                m.breaker_rejected != 0) {
                const char* state = m.breaker_state == 1   ? "open"
                                    : m.breaker_state == 2 ? "half-open"
                                                           : "closed";
                std::snprintf(buf, sizeof(buf),
                              "      breaker %s  opens %llu  rejected %llu\n", state,
                              static_cast<unsigned long long>(m.breaker_opens),
                              static_cast<unsigned long long>(m.breaker_rejected));
                out += buf;
            }
        }
    }
    if (net_enabled) {
        std::snprintf(
            buf, sizeof(buf),
            "  net         shards %llu  conns accepted %llu  active %llu "
            "(max %llu)  rejected %llu\n"
            "              closed idle %llu  backpressure %llu\n"
            "              bytes in %llu  out %llu  requests %llu  "
            "reqs/conn p50 %.1f  max %llu\n",
            static_cast<unsigned long long>(net_shards),
            static_cast<unsigned long long>(connections_accepted),
            static_cast<unsigned long long>(connections_active),
            static_cast<unsigned long long>(connections_active_max),
            static_cast<unsigned long long>(connections_rejected),
            static_cast<unsigned long long>(connections_closed_idle),
            static_cast<unsigned long long>(connections_closed_backpressure),
            static_cast<unsigned long long>(net_bytes_in),
            static_cast<unsigned long long>(net_bytes_out),
            static_cast<unsigned long long>(net_requests), conn_requests_p50,
            static_cast<unsigned long long>(conn_requests_max));
        out += buf;
        if (net_faults_injected != 0 || net_retry_duplicates != 0 ||
            net_shard_respawns != 0) {
            std::snprintf(buf, sizeof(buf),
                          "              chaos faults %llu  retry-duplicates %llu  "
                          "shard-respawns %llu\n",
                          static_cast<unsigned long long>(net_faults_injected),
                          static_cast<unsigned long long>(net_retry_duplicates),
                          static_cast<unsigned long long>(net_shard_respawns));
            out += buf;
        }
    }
    if (worker_respawns != 0 || worker_stalls != 0 || faults_injected != 0) {
        std::snprintf(buf, sizeof(buf),
                      "  faults      injected %llu  worker-respawns %llu  "
                      "worker-stalls %llu\n",
                      static_cast<unsigned long long>(faults_injected),
                      static_cast<unsigned long long>(worker_respawns),
                      static_cast<unsigned long long>(worker_stalls));
        out += buf;
    }
    if (snapshot_writes != 0 || snapshot_records_loaded != 0 ||
        snapshot_records_skipped != 0) {
        std::snprintf(buf, sizeof(buf),
                      "  snapshot    writes %llu  records-loaded %llu  "
                      "records-skipped %llu\n",
                      static_cast<unsigned long long>(snapshot_writes),
                      static_cast<unsigned long long>(snapshot_records_loaded),
                      static_cast<unsigned long long>(snapshot_records_skipped));
        out += buf;
    }
    return out;
}

}  // namespace xnfv::serve
