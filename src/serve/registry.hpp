// Multi-model registry with atomic hot swap (DESIGN.md section 14).
//
// One ExplanationService used to bind one model for the life of the process;
// the registry turns it into an explanation fleet.  Each registered model is
// a ModelEntry that owns everything model-scoped:
//
//   * the published ModelSnapshot — an immutable (model, fingerprint,
//     base value) triple behind a mutex-guarded shared_ptr.  A swap builds a
//     complete new snapshot and publishes it with one pointer store
//     (RCU-in-spirit): requests pin the snapshot they resolved at admission
//     and finish on it, no matter how many swaps land while they are queued
//     or computing;
//   * an explanation-cache slice with its own drift epoch.  Cache keys are
//     derived from the *pinned* fingerprint, so a swap self-invalidates the
//     old version's entries (they age out through the LRU) and swapping back
//     to a byte-identical model re-hits the surviving ones;
//   * per-model counters (admitted / rejected_quota / swaps / evals /
//     completed) folded into ServiceStats, and the DWRR weight/quota the
//     admission queue schedules this model's class with.
//
// Thread model: resolve() and current() are hot-path reads guarded by small
// mutexes (one map lookup + one shared_ptr copy per request).  load/swap/
// retire are rare admin operations serialized on the registry mutex.  The
// drift window state inside an entry is touched only by the single thread
// executing batches, exactly like the pre-registry service.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "serve/errors.hpp"
#include "serve/explanation_cache.hpp"
#include "serve/fault_injector.hpp"
#include "serve/metrics.hpp"
#include "serve/router.hpp"

namespace xnfv::xai {
class FlatTreeShap;  // core/flat_tree_shap.hpp
}

namespace xnfv::serve {

class ExplanationService;  // serve/service.hpp
class JsonValue;           // serve/ndjson.hpp

/// Fingerprint of a model's inference state: hash of its serialized text,
/// falling back to name/arity for unserializable models (LambdaModel).
[[nodiscard]] std::uint64_t fingerprint_model(const xnfv::ml::Model& model);

/// Lower-case hex rendering of a fingerprint (snapshot filenames, stats).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fingerprint);

/// Per-tenant circuit-breaker knobs (ServiceConfig embeds one; every
/// ModelEntry runs its own instance).  Disabled while `error_threshold` is
/// 0, which is the default — the breaker changes nothing unless asked for.
struct BreakerConfig {
    /// Compute outcomes per evaluation window; the breaker only trips on a
    /// *full* window, so a single early failure can never open it.
    std::size_t window = 32;
    /// Open when errors/window >= this fraction over a full window.
    /// 0 disables the breaker entirely.
    double error_threshold = 0.0;
    /// How long an open breaker rejects before admitting one half-open
    /// probe request.
    std::chrono::milliseconds cooldown{250};
};

/// One published model version.  Immutable once built: a swap replaces the
/// whole snapshot, never mutates one.
struct ModelSnapshot {
    /// The model as loaded (fingerprinted before any fault wrapping).
    std::shared_ptr<const xnfv::ml::Model> model;
    /// What explainers actually probe: `model`, possibly wrapped in the
    /// predict_throw fault proxy (wrapped *after* fingerprinting so cache
    /// keys and non-faulted results are fault-invariant).
    std::shared_ptr<const xnfv::ml::Model> serving;
    std::uint64_t fingerprint = 0;
    /// E_b[f(b)] as observed from completed explanations on this snapshot
    /// (stats-only).  Deliberately not probed at publish time: a snapshot
    /// build must never call into the model outside the serving path —
    /// instrumented models (gates, fault counters) rely on the request
    /// stream being the only thing that drives predictions.
    mutable std::atomic<double> base_value{0.0};
    /// 0 for the initially loaded version, +1 per swap.
    std::uint64_t version = 0;

    // --- Router decision, stamped once at load/swap (DESIGN.md §16) -----
    //
    // Per-request routing must not pay a dynamic_cast, so the structural
    // classification and the "auto" resolution are computed when the
    // snapshot is built and pinned with it: a request that raced a hot swap
    // routes (and caches) against the version it is explained on.

    /// Structural family of `model` (tree / forest / gbt / mlp / other).
    ModelKind kind = ModelKind::other;
    /// The concrete explainer "auto" resolves to on this snapshot.
    std::string auto_method;
    /// Prebuilt flat-tree TreeSHAP state for tree-family models — the exact
    /// fast path every tree_shap request against this version shares.  Null
    /// for non-tree models and for ensembles the builder rejects (unfitted);
    /// requests then fall back to the per-request explainer, which reports
    /// the recursive walker's error text.
    std::shared_ptr<const xnfv::xai::FlatTreeShap> flat_shap;
};

/// Everything the service keeps per registered model.
class ModelEntry {
public:
    ModelEntry(std::string model_name, std::size_t model_class,
               std::size_t cache_capacity, std::size_t cache_shards)
        : name(std::move(model_name)),
          class_id(model_class),
          cache(cache_capacity, cache_shards) {}

    ModelEntry(const ModelEntry&) = delete;
    ModelEntry& operator=(const ModelEntry&) = delete;

    /// The currently published version (never null for a live entry).
    [[nodiscard]] std::shared_ptr<const ModelSnapshot> current() const {
        std::lock_guard lock(mutex_);
        return current_;
    }
    /// Atomic publish: in-flight requests keep the snapshot they pinned.
    void publish(std::shared_ptr<const ModelSnapshot> next) {
        std::lock_guard lock(mutex_);
        current_ = std::move(next);
    }

    const std::string name;
    const std::size_t class_id;  ///< DWRR scheduling class in the queue

    /// This model's explanation-cache slice and drift epoch (mixed into
    /// every cache key; bumping it re-keys only this model's entries).
    ExplanationCache cache;
    std::atomic<std::uint64_t> epoch{0};

    // Per-model counters (ServiceStats::models).
    Counter admitted;
    Counter rejected_quota;
    Counter swaps;
    Counter evals;
    Counter completed;

    // --- Circuit breaker (DESIGN.md section 15) -------------------------
    //
    // A sliding window of this tenant's recent compute outcomes.  When the
    // error fraction over a full window crosses the configured threshold
    // the breaker opens: new requests for this model are rejected at
    // admission with `circuit_open` (cheap — no queue slot, no compute)
    // until the cooldown elapses, after which exactly one probe request is
    // admitted (half-open).  A successful probe closes the breaker and
    // resets the window; a failed probe re-opens it for another cooldown.
    // One tenant's failure storm is thereby contained: its breaker sheds
    // its own load while every other entry keeps serving.

    /// Admission gate, called by the service after validation: true admits
    /// the request (possibly as the half-open probe), false means reject
    /// with `circuit_open` (breaker_rejected already counted).
    [[nodiscard]] bool breaker_admit(const BreakerConfig& cfg,
                                     std::chrono::steady_clock::time_point now);
    /// Records one compute outcome (`ok` = served without a compute-path
    /// error) and advances the state machine.  Called once per executed job.
    void breaker_record(const BreakerConfig& cfg, bool ok);
    /// Releases a half-open probe that was admitted but never executed
    /// (queue rejection after admission) so the next request can probe.
    void breaker_abandon(const BreakerConfig& cfg);
    /// 0 closed / 1 open / 2 half-open (ServiceStats::models).
    [[nodiscard]] int breaker_state() const;

    Counter breaker_opens;     ///< closed/half-open -> open transitions
    Counter breaker_rejected;  ///< requests shed while open

    /// Admission-quota / DWRR-weight knobs (mirrored into the queue's class
    /// config by the service whenever they change).
    std::atomic<std::uint64_t> weight{1};
    std::atomic<std::uint64_t> quota{0};

    /// Drift-monitor window state.  Touched only by the thread executing
    /// batches; `fingerprint` records which model version the windows were
    /// accumulated against, so a swap resets them instead of comparing
    /// attributions across models.
    struct DriftState {
        std::uint64_t fingerprint = 0;
        std::vector<double> ref_abs, ref_signed, cur_abs, cur_signed;
        std::size_t ref_count = 0;
        std::size_t cur_count = 0;
    };
    DriftState drift;

private:
    /// Breaker state machine, guarded by breaker_mutex_ (admission runs on
    /// connection threads, outcome recording on the dispatcher).
    struct BreakerState {
        enum { closed = 0, open = 1, half_open = 2 };
        std::vector<std::uint8_t> ring;  ///< 1 = error, ring[head_] is oldest
        std::size_t head = 0;
        std::size_t filled = 0;
        std::size_t errors = 0;
        int state = closed;
        std::chrono::steady_clock::time_point opened_at{};
        bool probe_inflight = false;
    };
    mutable std::mutex breaker_mutex_;
    BreakerState breaker_;

    mutable std::mutex mutex_;
    std::shared_ptr<const ModelSnapshot> current_;
};

/// Registry construction knobs (derived from ServiceConfig).
struct RegistryConfig {
    /// Cache geometry of each per-model slice.
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
    /// Chaos seam: when the injector arms predict_throw, every published
    /// snapshot's serving model is fault-wrapped.
    std::shared_ptr<FaultInjector> fault_injector;
};

/// Name -> ModelEntry map plus the admin operations.  Owned by the service;
/// `background` must outlive the registry (it pins the feature arity every
/// loaded model must match, and the base-value probe distribution).
class ModelRegistry {
public:
    ModelRegistry(RegistryConfig config, const xnfv::xai::BackgroundData* background);

    ModelRegistry(const ModelRegistry&) = delete;
    ModelRegistry& operator=(const ModelRegistry&) = delete;

    /// Looks up `name` ("" = the default model).  Null when unknown.
    [[nodiscard]] std::shared_ptr<ModelEntry> resolve(const std::string& name) const;

    /// Registers a new model under `name`.  The first load becomes the
    /// default model.  Fails with bad_request on a duplicate name, an empty
    /// name, or a feature-arity mismatch with the background.
    ServeError load(const std::string& name, std::shared_ptr<const xnfv::ml::Model> model,
                    std::size_t weight, std::size_t quota, std::string* why = nullptr);

    /// Atomically publishes a new version of an existing model.  In-flight
    /// requests finish on the snapshot they pinned at admission.  Fails with
    /// unknown_model on an unregistered name, bad_request on arity mismatch.
    ServeError swap(const std::string& name, std::shared_ptr<const xnfv::ml::Model> model,
                    std::string* why = nullptr);

    /// Removes `name` from the registry.  Queued and in-flight jobs that
    /// pinned the entry still complete (shared ownership); new requests get
    /// unknown_model.  The default model cannot be retired.
    ServeError retire(const std::string& name, std::string* why = nullptr);

    /// Live entries in registration order (stable across swaps).
    [[nodiscard]] std::vector<std::shared_ptr<ModelEntry>> entries() const;

    [[nodiscard]] std::shared_ptr<ModelEntry> default_entry() const;
    [[nodiscard]] std::string default_name() const;
    [[nodiscard]] std::size_t size() const;
    /// Class ids handed out so far (monotonic; never reused, so a retired
    /// model's queued jobs can never be mistaken for a later tenant's).
    [[nodiscard]] std::size_t classes_created() const;

private:
    [[nodiscard]] std::shared_ptr<const ModelSnapshot> make_snapshot(
        std::shared_ptr<const xnfv::ml::Model> model, std::uint64_t version) const;

    RegistryConfig config_;
    const xnfv::xai::BackgroundData* background_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<ModelEntry>> by_name_;
    std::vector<std::shared_ptr<ModelEntry>> order_;  ///< registration order
    std::string default_name_;
    std::size_t next_class_ = 0;
};

/// Shared handler for the `load` / `swap` / `retire` / `models` admin ops:
/// parses the request object, applies the operation to every service in
/// `services` (all shards of a sharded server, or just one), and returns the
/// rendered single-line ND-JSON response.  Model files are loaded from disk
/// once and shared across services.  Callers serialize concurrent admin ops
/// (the sharded server holds its admin mutex across the fan-out).
[[nodiscard]] std::string handle_model_admin(
    const JsonValue& request, const std::vector<ExplanationService*>& services);

}  // namespace xnfv::serve
