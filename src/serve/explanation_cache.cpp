#include "serve/explanation_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace xnfv::serve {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t seed) noexcept {
    std::uint64_t h = seed;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t seed) noexcept {
    std::uint8_t bytes[8];
    std::memcpy(bytes, &value, sizeof(bytes));
    return fnv1a(bytes, seed);
}

CacheKey::CacheKey(std::span<const double> features, double quantum,
                   std::uint64_t context)
    : context_(context) {
    words_.reserve(features.size());
    for (const double v : features) {
        if (quantum > 0.0) {
            // Grid index; +0.0 normalizes -0.0 so both sides share a cell.
            words_.push_back(std::bit_cast<std::uint64_t>(
                std::nearbyint(v / quantum) + 0.0));
        } else {
            words_.push_back(std::bit_cast<std::uint64_t>(v));
        }
    }
    rehash();
}

CacheKey::CacheKey(std::vector<std::uint64_t> words, std::uint64_t context)
    : words_(std::move(words)), context_(context) {
    rehash();
}

void CacheKey::rehash() noexcept {
    std::uint64_t h = fnv1a_u64(context_, 0xcbf29ce484222325ULL);
    for (const std::uint64_t w : words_) h = fnv1a_u64(w, h);
    hash_ = h;
}

ExplanationCache::ExplanationCache(std::size_t capacity, std::size_t shards) {
    capacity = std::max<std::size_t>(1, capacity);
    shards = std::min(std::max<std::size_t>(1, std::bit_floor(shards)), capacity);
    shards_ = std::vector<Shard>(shards);
    shard_mask_ = shards - 1;
    shard_capacity_ = (capacity + shards - 1) / shards;
}

std::optional<xnfv::xai::Explanation> ExplanationCache::lookup(const CacheKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        misses_.inc();
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.inc();
    return it->second->explanation;
}

void ExplanationCache::insert(const CacheKey& key, xnfv::xai::Explanation explanation) {
    Shard& shard = shard_for(key);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->explanation = std::move(explanation);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        evictions_.inc();
    }
    shard.lru.push_front(Entry{key, std::move(explanation)});
    shard.index.emplace(key, shard.lru.begin());
}

std::vector<std::pair<CacheKey, xnfv::xai::Explanation>>
ExplanationCache::export_lru_oldest_first() const {
    std::vector<std::pair<CacheKey, xnfv::xai::Explanation>> out;
    out.reserve(size());
    for (const Shard& shard : shards_) {
        std::lock_guard lock(shard.mutex);
        // front = most recent, so walk back-to-front for oldest-first.
        for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it)
            out.emplace_back(it->key, it->explanation);
    }
    return out;
}

CacheStats ExplanationCache::stats() const {
    CacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evictions_.value();
    s.entries = size();
    return s;
}

std::size_t ExplanationCache::size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard lock(shard.mutex);
        total += shard.lru.size();
    }
    return total;
}

std::size_t ExplanationCache::capacity() const noexcept {
    return shard_capacity_ * shards_.size();
}

}  // namespace xnfv::serve
