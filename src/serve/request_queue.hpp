// Bounded MPMC request queue with reject-on-full backpressure and
// deficit-weighted-round-robin service across model classes.
//
// The admission edge of the explanation service: producers (CLI front-end,
// tests, embedding applications) try_push() jobs; the dispatcher thread
// pop_wait()s them into the micro-batcher.  The queue is bounded because an
// overload policy of "grow forever" just converts overload into latency and
// eventually OOM — a full queue instead rejects immediately with a reason the
// caller can surface (HTTP 429 semantics, in-process).
//
// Multi-tenant fairness (DESIGN.md section 14): each job carries a model
// class index; the queue keeps one FIFO per class, enforces an optional
// per-class quota *under* the global depth bound (so one hot model cannot
// occupy the whole queue), and pops in deficit-weighted round-robin order —
// a backlogged class with weight W receives W pops per scheduling round.
// With a single class the pop order degenerates to plain FIFO, which is what
// keeps single-model serving byte-identical to the pre-registry service.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/explanation.hpp"
#include "serve/errors.hpp"

namespace xnfv::serve {

class ModelEntry;     // serve/registry.hpp
struct ModelSnapshot; // serve/registry.hpp

/// One explanation request.  `features` is the full telemetry vector of the
/// instance to explain; `seed` makes the request self-describing so a served
/// answer is reproducible by a one-shot CLI call with the same seed.
struct ExplainRequest {
    std::uint64_t id = 0;
    std::vector<double> features;
    /// Explainer method — any serve/explainers.hpp registry name, or "auto"
    /// to route to the pinned model's exact fast path (flat TreeSHAP on tree
    /// ensembles, integrated gradients on MLPs, kernel SHAP otherwise);
    /// empty selects the service default.
    std::string method;
    /// Registry model name; empty selects the service's default model.  An
    /// unregistered name is rejected with `unknown_model`.
    std::string model;
    /// RNG seed for sampling-based explainers; 0 selects the service default.
    std::uint64_t seed = 0;
    /// Relative deadline in milliseconds from submission; -1 = none.  0 is
    /// rejected at submit() with deadline_exceeded (an already-dead request
    /// must never trigger a silent full computation); > 0 arms both an
    /// expiry check at batch execution and a cooperative cancellation token
    /// inside the explainer.
    std::int64_t deadline_ms = -1;
    /// Opt-in interaction-aware explanation: > 0 returns the top-k mutual
    /// feature-interaction pairs (Friedman H², core/interaction.hpp) next to
    /// the attributions.  0 keeps the response — and the cache key — byte-
    /// identical to the pre-interaction wire format.
    std::size_t interactions = 0;
};

/// Completed answer for one request.
struct ExplainResponse {
    std::uint64_t id = 0;
    bool ok = false;
    bool cache_hit = false;
    /// True when overload stepped this result down the degradation ladder
    /// (reduced sample budget or the occlusion baseline); `budget_used` then
    /// records the effective sample budget.  Degraded results are
    /// deterministic for a fixed (seed, level) but are never cached.
    bool degraded = false;
    /// Sample budget the explainer actually ran with (coalitions,
    /// permutations, or neighborhood samples; 0 for non-sampling methods).
    std::uint64_t budget_used = 0;
    xnfv::xai::Explanation explanation;
    ServeError error_code = ServeError::none;  ///< reason when !ok
    std::string error;                         ///< human-readable detail when !ok
};

/// A request travelling through the service with its completion channel and
/// admission timestamp (for end-to-end service-time accounting).
struct Job {
    ExplainRequest request;
    std::promise<ExplainResponse> promise;
    /// Optional push-style completion channel (the TCP front-end): when set,
    /// the dispatcher invokes it with the response *instead of* fulfilling
    /// `promise`.  Called exactly once, on the thread executing the batch,
    /// in admission order; it must be fast and must not throw.
    std::function<void(ExplainResponse)> on_complete;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Absolute expiry derived from request.deadline_ms at admission;
    /// time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /// Queue depth observed at admission — the load signal the degradation
    /// policy classifies on (deterministically testable, unlike the depth at
    /// batch-execution time).
    std::size_t depth_at_enqueue = 0;
    /// Registry entry the request resolved to at admission (owns the cache
    /// slice, epoch, and per-model counters).  Shared ownership keeps a
    /// retired model's state alive until its last in-flight job completes.
    std::shared_ptr<ModelEntry> model_entry;
    /// The model version pinned at admission: an atomic swap published after
    /// this point does not touch this job — it finishes on the snapshot it
    /// started with (RCU semantics).
    std::shared_ptr<const ModelSnapshot> model_snapshot;
    /// Scheduling class for the DWRR queue (the entry's class id).
    std::size_t model_class = 0;
};

/// Admission/scheduling parameters of one model class.
struct ClassConfig {
    /// Max jobs of this class queued at once; 0 = no per-class cap (the
    /// global depth bound still applies).  Exceeding it rejects with
    /// `quota_exceeded`.
    std::size_t quota = 0;
    /// DWRR weight: pops per scheduling round while backlogged (clamped to
    /// at least 1).
    std::size_t weight = 1;
};

/// Bounded multi-producer / multi-consumer queue of Jobs with per-class
/// quotas and deficit-weighted-round-robin pop order.
///
/// try_push never blocks: a full or closed queue rejects with a reason.
/// pop_wait blocks up to a deadline so the dispatcher can honor the
/// micro-batcher's flush timer while parked on an empty queue.
class RequestQueue {
public:
    /// `depth` is the global backpressure limit (clamped to at least 1).
    explicit RequestQueue(std::size_t depth);

    RequestQueue(const RequestQueue&) = delete;
    RequestQueue& operator=(const RequestQueue&) = delete;

    /// Sets quota/weight for `model_class` (growing the class table as
    /// needed).  Safe to call concurrently with push/pop — the registry
    /// calls this on load/swap/retire while traffic is flowing.
    void configure_class(std::size_t model_class, ClassConfig config);

    /// Admits `job` (into its model_class's FIFO) unless the queue is full,
    /// the class quota is reached, or the queue is closed.  On admission the
    /// job's depth_at_enqueue is stamped with the resulting total depth.
    [[nodiscard]] ServeError try_push(Job job);

    /// Pops the next job in DWRR order, waiting until one arrives,
    /// `deadline` passes, or the queue is closed and drained.  nullopt =
    /// timed out or drained.
    [[nodiscard]] std::optional<Job> pop_wait(
        std::chrono::steady_clock::time_point deadline);

    /// Non-blocking pop (used to drain without waiting).
    [[nodiscard]] std::optional<Job> try_pop();

    /// Marks the queue closed: future try_push calls reject, and consumers
    /// waiting on an empty queue wake up.  Already-queued jobs stay poppable.
    void close();

    [[nodiscard]] bool closed() const;
    [[nodiscard]] std::size_t size() const;
    /// Jobs currently queued in one class (0 for an unknown class).
    [[nodiscard]] std::size_t class_size(std::size_t model_class) const;
    [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

private:
    /// One scheduling class: its FIFO, admission quota, and DWRR state.
    struct ClassQueue {
        std::deque<Job> jobs;
        std::size_t quota = 0;
        std::size_t weight = 1;
        /// Pops this class may still take in the current round.
        std::size_t deficit = 0;
        bool in_round = false;  ///< queued on the active round-robin list
    };

    void ensure_class_locked(std::size_t model_class);
    [[nodiscard]] Job pop_locked();

    const std::size_t depth_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    /// Deque, not vector: growth must never relocate (and thus copy/move)
    /// a ClassQueue holding queued move-only Jobs.
    std::deque<ClassQueue> classes_;
    /// Round-robin order of classes with queued jobs (DWRR active list).
    std::deque<std::size_t> active_;
    std::size_t total_ = 0;
    bool closed_ = false;
};

}  // namespace xnfv::serve
