// Bounded MPMC request queue with reject-on-full backpressure.
//
// The admission edge of the explanation service: producers (CLI front-end,
// tests, embedding applications) try_push() jobs; the dispatcher thread
// pop_wait()s them into the micro-batcher.  The queue is bounded because an
// overload policy of "grow forever" just converts overload into latency and
// eventually OOM — a full queue instead rejects immediately with a reason the
// caller can surface (HTTP 429 semantics, in-process).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/explanation.hpp"

namespace xnfv::serve {

/// One explanation request.  `features` is the full telemetry vector of the
/// instance to explain; `seed` makes the request self-describing so a served
/// answer is reproducible by a one-shot CLI call with the same seed.
struct ExplainRequest {
    std::uint64_t id = 0;
    std::vector<double> features;
    /// Explainer method ("tree_shap", "kernel_shap", "sampling", "lime",
    /// "occlusion"); empty selects the service default.
    std::string method;
    /// RNG seed for sampling-based explainers; 0 selects the service default.
    std::uint64_t seed = 0;
};

/// Why a submission did not enter the queue.
enum class RejectReason : std::uint8_t {
    none = 0,
    queue_full,       ///< backpressure: depth limit reached
    service_stopped,  ///< queue closed during shutdown
    bad_request,      ///< malformed payload (wrong feature count, ...)
};

[[nodiscard]] const char* to_string(RejectReason reason) noexcept;

/// Completed answer for one request.
struct ExplainResponse {
    std::uint64_t id = 0;
    bool ok = false;
    bool cache_hit = false;
    xnfv::xai::Explanation explanation;
    std::string error;  ///< set when !ok
};

/// A request travelling through the service with its completion channel and
/// admission timestamp (for end-to-end service-time accounting).
struct Job {
    ExplainRequest request;
    std::promise<ExplainResponse> promise;
    std::chrono::steady_clock::time_point enqueued_at;
};

/// Bounded multi-producer / multi-consumer FIFO of Jobs.
///
/// try_push never blocks: a full or closed queue rejects with a reason.
/// pop_wait blocks up to a deadline so the dispatcher can honor the
/// micro-batcher's flush timer while parked on an empty queue.
class RequestQueue {
public:
    /// `depth` is the backpressure limit (clamped to at least 1).
    explicit RequestQueue(std::size_t depth);

    RequestQueue(const RequestQueue&) = delete;
    RequestQueue& operator=(const RequestQueue&) = delete;

    /// Admits `job` unless the queue is full or closed.
    [[nodiscard]] RejectReason try_push(Job job);

    /// Pops the oldest job, waiting until one arrives, `deadline` passes, or
    /// the queue is closed and drained.  nullopt = timed out or drained.
    [[nodiscard]] std::optional<Job> pop_wait(
        std::chrono::steady_clock::time_point deadline);

    /// Non-blocking pop (used to drain without waiting).
    [[nodiscard]] std::optional<Job> try_pop();

    /// Marks the queue closed: future try_push calls reject, and consumers
    /// waiting on an empty queue wake up.  Already-queued jobs stay poppable.
    void close();

    [[nodiscard]] bool closed() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

private:
    const std::size_t depth_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::deque<Job> jobs_;
    bool closed_ = false;
};

}  // namespace xnfv::serve
