// Bounded MPMC request queue with reject-on-full backpressure.
//
// The admission edge of the explanation service: producers (CLI front-end,
// tests, embedding applications) try_push() jobs; the dispatcher thread
// pop_wait()s them into the micro-batcher.  The queue is bounded because an
// overload policy of "grow forever" just converts overload into latency and
// eventually OOM — a full queue instead rejects immediately with a reason the
// caller can surface (HTTP 429 semantics, in-process).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/explanation.hpp"
#include "serve/errors.hpp"

namespace xnfv::serve {

/// One explanation request.  `features` is the full telemetry vector of the
/// instance to explain; `seed` makes the request self-describing so a served
/// answer is reproducible by a one-shot CLI call with the same seed.
struct ExplainRequest {
    std::uint64_t id = 0;
    std::vector<double> features;
    /// Explainer method ("tree_shap", "kernel_shap", "sampling", "lime",
    /// "occlusion"); empty selects the service default.
    std::string method;
    /// RNG seed for sampling-based explainers; 0 selects the service default.
    std::uint64_t seed = 0;
    /// Relative deadline in milliseconds from submission; -1 = none.  0 is
    /// rejected at submit() with deadline_exceeded (an already-dead request
    /// must never trigger a silent full computation); > 0 arms both an
    /// expiry check at batch execution and a cooperative cancellation token
    /// inside the explainer.
    std::int64_t deadline_ms = -1;
};

/// Completed answer for one request.
struct ExplainResponse {
    std::uint64_t id = 0;
    bool ok = false;
    bool cache_hit = false;
    /// True when overload stepped this result down the degradation ladder
    /// (reduced sample budget or the occlusion baseline); `budget_used` then
    /// records the effective sample budget.  Degraded results are
    /// deterministic for a fixed (seed, level) but are never cached.
    bool degraded = false;
    /// Sample budget the explainer actually ran with (coalitions,
    /// permutations, or neighborhood samples; 0 for non-sampling methods).
    std::uint64_t budget_used = 0;
    xnfv::xai::Explanation explanation;
    ServeError error_code = ServeError::none;  ///< reason when !ok
    std::string error;                         ///< human-readable detail when !ok
};

/// A request travelling through the service with its completion channel and
/// admission timestamp (for end-to-end service-time accounting).
struct Job {
    ExplainRequest request;
    std::promise<ExplainResponse> promise;
    /// Optional push-style completion channel (the TCP front-end): when set,
    /// the dispatcher invokes it with the response *instead of* fulfilling
    /// `promise`.  Called exactly once, on the thread executing the batch,
    /// in admission order; it must be fast and must not throw.
    std::function<void(ExplainResponse)> on_complete;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Absolute expiry derived from request.deadline_ms at admission;
    /// time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /// Queue depth observed at admission — the load signal the degradation
    /// policy classifies on (deterministically testable, unlike the depth at
    /// batch-execution time).
    std::size_t depth_at_enqueue = 0;
};

/// Bounded multi-producer / multi-consumer FIFO of Jobs.
///
/// try_push never blocks: a full or closed queue rejects with a reason.
/// pop_wait blocks up to a deadline so the dispatcher can honor the
/// micro-batcher's flush timer while parked on an empty queue.
class RequestQueue {
public:
    /// `depth` is the backpressure limit (clamped to at least 1).
    explicit RequestQueue(std::size_t depth);

    RequestQueue(const RequestQueue&) = delete;
    RequestQueue& operator=(const RequestQueue&) = delete;

    /// Admits `job` unless the queue is full or closed.  On admission the
    /// job's depth_at_enqueue is stamped with the resulting queue depth.
    [[nodiscard]] ServeError try_push(Job job);

    /// Pops the oldest job, waiting until one arrives, `deadline` passes, or
    /// the queue is closed and drained.  nullopt = timed out or drained.
    [[nodiscard]] std::optional<Job> pop_wait(
        std::chrono::steady_clock::time_point deadline);

    /// Non-blocking pop (used to drain without waiting).
    [[nodiscard]] std::optional<Job> try_pop();

    /// Marks the queue closed: future try_push calls reject, and consumers
    /// waiting on an empty queue wake up.  Already-queued jobs stay poppable.
    void close();

    [[nodiscard]] bool closed() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

private:
    const std::size_t depth_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::deque<Job> jobs_;
    bool closed_ = false;
};

}  // namespace xnfv::serve
