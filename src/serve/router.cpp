#include "serve/router.hpp"

#include "mlcore/forest.hpp"
#include "mlcore/gbt.hpp"
#include "mlcore/mlp.hpp"
#include "mlcore/tree.hpp"
#include "serve/explainers.hpp"

namespace xnfv::serve {

namespace ml = xnfv::ml;

const char* to_string(ModelKind kind) noexcept {
    switch (kind) {
        case ModelKind::tree: return "tree";
        case ModelKind::forest: return "forest";
        case ModelKind::gbt: return "gbt";
        case ModelKind::mlp: return "mlp";
        case ModelKind::other: return "other";
    }
    return "other";
}

ModelKind classify_model(const ml::Model& model) noexcept {
    if (dynamic_cast<const ml::DecisionTree*>(&model) != nullptr)
        return ModelKind::tree;
    if (dynamic_cast<const ml::RandomForest*>(&model) != nullptr)
        return ModelKind::forest;
    if (dynamic_cast<const ml::GradientBoostedTrees*>(&model) != nullptr)
        return ModelKind::gbt;
    if (dynamic_cast<const ml::Mlp*>(&model) != nullptr) return ModelKind::mlp;
    return ModelKind::other;
}

RouteDecision route_explainer(const std::string& requested, ModelKind kind) {
    RouteDecision d;
    if (requested == kAutoMethod) {
        if (is_tree_kind(kind)) {
            d.method = "tree_shap";
            d.fast_path = true;
        } else if (kind == ModelKind::mlp) {
            d.method = "integrated_gradients";
            d.fast_path = true;
        } else {
            d.method = "kernel_shap";  // black-box probe default
        }
        return d;
    }
    d.method = requested;
    if (requested == "tree_shap") {
        if (is_tree_kind(kind)) {
            d.fast_path = true;
        } else {
            d.unsupported = true;
            d.why = "explainer 'tree_shap' requires a tree ensemble, model kind is '" +
                    std::string(to_string(kind)) +
                    "'; use \"auto\" or one of " + explainer_list(", ");
        }
        return d;
    }
    if (requested == "integrated_gradients") {
        if (kind == ModelKind::mlp) {
            d.fast_path = true;
        } else {
            d.unsupported = true;
            d.why =
                "explainer 'integrated_gradients' requires an mlp model with "
                "analytic gradients, model kind is '" +
                std::string(to_string(kind)) + "'; use \"auto\" or one of " +
                explainer_list(", ");
        }
        return d;
    }
    // Probe methods (kernel_shap, sampling, lime, occlusion) treat the model
    // as a black box: any kind, no fast path.
    return d;
}

}  // namespace xnfv::serve
