#include "serve/registry.hpp"

#include <cstdio>
#include <exception>
#include <sstream>
#include <utility>

#include "core/flat_tree_shap.hpp"
#include "mlcore/serialize.hpp"
#include "serve/explainers.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"

namespace xnfv::serve {

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;

namespace {

[[nodiscard]] std::uint64_t hash_string(const std::string& s, std::uint64_t seed) {
    return fnv1a({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}, seed);
}

void set_why(std::string* why, std::string message) {
    if (why != nullptr) *why = std::move(message);
}

}  // namespace

std::uint64_t fingerprint_model(const ml::Model& model) {
    try {
        std::ostringstream os;
        ml::save_model(model, os);
        return hash_string(os.str(), 0xcbf29ce484222325ULL);
    } catch (const std::exception&) {
        return fnv1a_u64(model.num_features(),
                         hash_string(model.name(), 0xcbf29ce484222325ULL));
    }
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buf;
}

bool ModelEntry::breaker_admit(const BreakerConfig& cfg,
                               std::chrono::steady_clock::time_point now) {
    if (cfg.error_threshold <= 0.0 || cfg.window == 0) return true;
    std::lock_guard lock(breaker_mutex_);
    switch (breaker_.state) {
        case BreakerState::closed:
            return true;
        case BreakerState::open:
            if (now - breaker_.opened_at >= cfg.cooldown) {
                // Cooldown over: this request becomes the half-open probe.
                breaker_.state = BreakerState::half_open;
                breaker_.probe_inflight = true;
                return true;
            }
            breaker_rejected.inc();
            return false;
        case BreakerState::half_open:
            if (!breaker_.probe_inflight) {
                breaker_.probe_inflight = true;
                return true;
            }
            breaker_rejected.inc();
            return false;
    }
    return true;  // unreachable
}

void ModelEntry::breaker_record(const BreakerConfig& cfg, bool ok) {
    if (cfg.error_threshold <= 0.0 || cfg.window == 0) return;
    std::lock_guard lock(breaker_mutex_);
    if (breaker_.state == BreakerState::half_open) {
        // The probe's outcome decides alone; the old window is history.
        breaker_.probe_inflight = false;
        if (ok) {
            breaker_.state = BreakerState::closed;
            breaker_.ring.clear();
            breaker_.head = breaker_.filled = breaker_.errors = 0;
        } else {
            breaker_.state = BreakerState::open;
            breaker_.opened_at = std::chrono::steady_clock::now();
            breaker_opens.inc();
        }
        return;
    }
    if (breaker_.state == BreakerState::open) return;  // straggler from before
    if (breaker_.ring.size() != cfg.window) {
        // First outcome, or the window was reconfigured: start fresh.
        breaker_.ring.assign(cfg.window, 0);
        breaker_.head = breaker_.filled = breaker_.errors = 0;
    }
    breaker_.errors -= breaker_.ring[breaker_.head];
    breaker_.ring[breaker_.head] = ok ? 0 : 1;
    breaker_.errors += breaker_.ring[breaker_.head];
    breaker_.head = (breaker_.head + 1) % cfg.window;
    if (breaker_.filled < cfg.window) ++breaker_.filled;
    if (breaker_.filled == cfg.window &&
        static_cast<double>(breaker_.errors) >=
            cfg.error_threshold * static_cast<double>(cfg.window)) {
        breaker_.state = BreakerState::open;
        breaker_.opened_at = std::chrono::steady_clock::now();
        breaker_opens.inc();
    }
}

void ModelEntry::breaker_abandon(const BreakerConfig& cfg) {
    if (cfg.error_threshold <= 0.0 || cfg.window == 0) return;
    std::lock_guard lock(breaker_mutex_);
    if (breaker_.state == BreakerState::half_open) breaker_.probe_inflight = false;
}

int ModelEntry::breaker_state() const {
    std::lock_guard lock(breaker_mutex_);
    return breaker_.state;
}

ModelRegistry::ModelRegistry(RegistryConfig config,
                             const xai::BackgroundData* background)
    : config_(std::move(config)), background_(background) {}

std::shared_ptr<const ModelSnapshot> ModelRegistry::make_snapshot(
    std::shared_ptr<const ml::Model> model, std::uint64_t version) const {
    auto snap = std::make_shared<ModelSnapshot>();
    snap->fingerprint = fingerprint_model(*model);
    snap->version = version;
    // Router stamp: classify once, resolve "auto" once, and prebuild the
    // flat TreeSHAP state for tree ensembles.  Built from the *real* model
    // (pre-wrap) so fast-path attributions are fault-invariant, like cache
    // keys.  A builder rejection (unfitted ensemble) must not fail the
    // load: the snapshot just serves without the fast path and the
    // per-request explainer reports the error.
    snap->kind = classify_model(*model);
    snap->auto_method = route_explainer(kAutoMethod, snap->kind).method;
    try {
        snap->flat_shap = xai::FlatTreeShap::build(*model);
    } catch (const std::exception&) {
        snap->flat_shap = nullptr;
    }
    snap->serving = model;
    if (config_.fault_injector &&
        config_.fault_injector->config()
                .rate[static_cast<std::size_t>(FaultPoint::predict_throw)] > 0.0) {
        snap->serving =
            std::make_shared<FaultInjectingModel>(model, config_.fault_injector);
    }
    snap->model = std::move(model);
    return snap;
}

std::shared_ptr<ModelEntry> ModelRegistry::resolve(const std::string& name) const {
    std::lock_guard lock(mutex_);
    const std::string& key = name.empty() ? default_name_ : name;
    const auto it = by_name_.find(key);
    return it == by_name_.end() ? nullptr : it->second;
}

ServeError ModelRegistry::load(const std::string& name,
                               std::shared_ptr<const ml::Model> model,
                               std::size_t weight, std::size_t quota,
                               std::string* why) {
    if (name.empty()) {
        set_why(why, "model name must be non-empty");
        return ServeError::bad_request;
    }
    if (!model) {
        set_why(why, "model must be non-null");
        return ServeError::bad_request;
    }
    if (model->num_features() != background_->num_features()) {
        set_why(why, "model '" + name + "' expects " +
                         std::to_string(model->num_features()) +
                         " features, background has " +
                         std::to_string(background_->num_features()));
        return ServeError::bad_request;
    }
    // Build the snapshot outside the registry lock (it hashes the model).
    auto snap = make_snapshot(std::move(model), 0);
    std::lock_guard lock(mutex_);
    if (by_name_.count(name) > 0) {
        set_why(why, "model '" + name + "' is already registered");
        return ServeError::bad_request;
    }
    auto entry = std::make_shared<ModelEntry>(name, next_class_++,
                                              config_.cache_capacity,
                                              config_.cache_shards);
    entry->weight.store(std::max<std::size_t>(1, weight), std::memory_order_relaxed);
    entry->quota.store(quota, std::memory_order_relaxed);
    entry->publish(std::move(snap));
    by_name_.emplace(name, entry);
    order_.push_back(std::move(entry));
    if (default_name_.empty()) default_name_ = name;
    return ServeError::none;
}

ServeError ModelRegistry::swap(const std::string& name,
                               std::shared_ptr<const ml::Model> model,
                               std::string* why) {
    if (!model) {
        set_why(why, "model must be non-null");
        return ServeError::bad_request;
    }
    if (model->num_features() != background_->num_features()) {
        set_why(why, "model '" + name + "' expects " +
                         std::to_string(model->num_features()) +
                         " features, background has " +
                         std::to_string(background_->num_features()));
        return ServeError::bad_request;
    }
    std::shared_ptr<ModelEntry> entry = resolve(name);
    if (!entry) {
        set_why(why, "unknown model '" + name + "'");
        return ServeError::unknown_model;
    }
    // Retrain -> publish: the complete new snapshot (fingerprint, base
    // value, fault wrap) is built first, then installed with one pointer
    // store.  Requests admitted before this line keep the old snapshot.
    auto snap = make_snapshot(std::move(model), entry->current()->version + 1);
    entry->publish(std::move(snap));
    entry->swaps.inc();
    return ServeError::none;
}

ServeError ModelRegistry::retire(const std::string& name, std::string* why) {
    std::lock_guard lock(mutex_);
    const std::string& key = name.empty() ? default_name_ : name;
    const auto it = by_name_.find(key);
    if (it == by_name_.end()) {
        set_why(why, "unknown model '" + name + "'");
        return ServeError::unknown_model;
    }
    if (key == default_name_) {
        set_why(why, "cannot retire the default model '" + key + "'");
        return ServeError::bad_request;
    }
    for (auto order_it = order_.begin(); order_it != order_.end(); ++order_it) {
        if ((*order_it)->name == key) {
            order_.erase(order_it);
            break;
        }
    }
    by_name_.erase(it);
    return ServeError::none;
}

std::vector<std::shared_ptr<ModelEntry>> ModelRegistry::entries() const {
    std::lock_guard lock(mutex_);
    return order_;
}

std::shared_ptr<ModelEntry> ModelRegistry::default_entry() const {
    return resolve("");
}

std::string ModelRegistry::default_name() const {
    std::lock_guard lock(mutex_);
    return default_name_;
}

std::size_t ModelRegistry::size() const {
    std::lock_guard lock(mutex_);
    return order_.size();
}

std::size_t ModelRegistry::classes_created() const {
    std::lock_guard lock(mutex_);
    return next_class_;
}

namespace {

[[nodiscard]] std::string admin_error(ServeError code, const std::string& message) {
    ExplainResponse r;
    r.id = 0;
    r.ok = false;
    r.error_code = code;
    r.error = message;
    return render_response(r);
}

}  // namespace

std::string handle_model_admin(const JsonValue& request,
                               const std::vector<ExplanationService*>& services) {
    const auto op = request.get_string("op", "");
    if (services.empty()) return admin_error(ServeError::internal_error, "no services");

    if (op == "models") {
        const auto stats = services.front()->stats();
        std::string arr = "[";
        for (const auto& m : stats.models) {
            if (arr.size() > 1) arr += ',';
            JsonWriter mw;
            mw.field("name", m.name);
            mw.field("fingerprint", m.fingerprint);
            mw.field("weight", m.weight);
            mw.field("quota", m.quota);
            mw.field("swaps", m.swaps);
            arr += mw.finish();
        }
        arr += ']';
        JsonWriter w;
        w.field("ok", true);
        w.field("op", "models");
        w.field("default", services.front()->registry().default_name());
        w.field_raw("models", arr);
        return w.finish();
    }

    const auto name = request.get_string("name", "");
    if (op == "retire") {
        std::string why;
        for (ExplanationService* service : services) {
            const auto err = service->model_retire(name, &why);
            if (err != ServeError::none) return admin_error(err, why);
        }
        JsonWriter w;
        w.field("ok", true);
        w.field("op", "retire");
        w.field("name", name);
        return w.finish();
    }

    if (op != "load" && op != "swap")
        return admin_error(ServeError::bad_request, "unknown admin op '" + op + "'");

    const auto path = request.get_string("model", "");
    if (path.empty())
        return admin_error(ServeError::bad_request,
                           "'" + op + "' needs a \"model\" file path");
    std::shared_ptr<const ml::Model> model;
    try {
        model = ml::load_model_file(path);
    } catch (const std::exception& e) {
        return admin_error(ServeError::bad_request,
                           "cannot load model '" + path + "': " + e.what());
    }

    std::string why;
    if (op == "load") {
        const auto weight =
            static_cast<std::size_t>(request.get_number("weight", 1.0));
        const auto quota =
            static_cast<std::size_t>(request.get_number("quota", 0.0));
        for (ExplanationService* service : services) {
            const auto err = service->model_load(name, model, weight, quota, &why);
            if (err != ServeError::none) return admin_error(err, why);
        }
        JsonWriter w;
        w.field("ok", true);
        w.field("op", "load");
        w.field("name", name);
        w.field("fingerprint", fingerprint_hex(fingerprint_model(*model)));
        w.field("num_features", static_cast<std::uint64_t>(model->num_features()));
        w.field("weight", static_cast<std::uint64_t>(std::max<std::size_t>(1, weight)));
        w.field("quota", static_cast<std::uint64_t>(quota));
        return w.finish();
    }

    for (ExplanationService* service : services) {
        const auto err = service->model_swap(name, model, &why);
        if (err != ServeError::none) return admin_error(err, why);
    }
    JsonWriter w;
    w.field("ok", true);
    w.field("op", "swap");
    w.field("name", name);
    w.field("fingerprint", fingerprint_hex(fingerprint_model(*model)));
    return w.finish();
}

}  // namespace xnfv::serve
