// Deterministic fault injection for chaos-testing the serving layer.
//
// The failure paths of a fault-tolerant service are exactly the paths that
// never run in a clean test environment.  The FaultInjector is a seam
// compiled into the service permanently (a null/zero-rate injector costs
// one pointer check) with *named* failure points; each poll of a point
// draws from a counter-keyed hash of the injector seed, so a chaos run is
// reproducible: the k-th poll of a point fires or not as a pure function of
// (seed, point, k), independent of wall-clock time or thread identity.
// Which *request* absorbs the k-th poll can still vary with scheduling —
// that is real-world chaos — but the number and pattern of fired faults is
// fixed, and (by the serving determinism contract) every non-faulted
// response is bitwise identical to a fault-free run.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "mlcore/model.hpp"

namespace xnfv::serve {

/// Named failure points the service exposes to the injector.
enum class FaultPoint : std::uint8_t {
    predict_throw = 0,  ///< a model evaluation throws mid-explanation
    clock_skew,         ///< the dispatcher's clock jumps forward
    queue_stall,        ///< the dispatcher pauses before executing a batch
    cache_corrupt,      ///< the snapshot writer scrambles a record's bytes
    worker_death,       ///< the dispatcher thread exits mid-run
};

inline constexpr std::size_t kNumFaultPoints = 5;

[[nodiscard]] constexpr const char* to_string(FaultPoint point) noexcept {
    switch (point) {
        case FaultPoint::predict_throw: return "predict_throw";
        case FaultPoint::clock_skew: return "clock_skew";
        case FaultPoint::queue_stall: return "queue_stall";
        case FaultPoint::cache_corrupt: return "cache_corrupt";
        case FaultPoint::worker_death: return "worker_death";
    }
    return "unknown";
}

/// Seeded, counter-driven fault schedule.  Thread-safe; a default
/// (zero-rate) injector never fires.
class FaultInjector {
public:
    struct Config {
        std::uint64_t seed = 0;
        /// Per-point firing probability in [0, 1] for each poll.
        std::array<double, kNumFaultPoints> rate{};
        /// Per-point cap on total fires; 0 = unlimited.  (worker_death with
        /// max_fires = 1 models "kill one worker during the run".)
        std::array<std::uint64_t, kNumFaultPoints> max_fires{};
    };

    FaultInjector() = default;
    explicit FaultInjector(Config config) : config_(config) {}

    /// Polls a failure point; true = the caller must act out the fault.
    /// Deterministic per (seed, point, poll index).
    [[nodiscard]] bool should_fire(FaultPoint point) noexcept;

    [[nodiscard]] std::uint64_t polls(FaultPoint point) const noexcept {
        return polls_[index(point)].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t fired(FaultPoint point) const noexcept {
        return fired_[index(point)].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total_fired() const noexcept;
    [[nodiscard]] const Config& config() const noexcept { return config_; }

private:
    [[nodiscard]] static constexpr std::size_t index(FaultPoint point) noexcept {
        return static_cast<std::size_t>(point);
    }

    Config config_{};
    std::array<std::atomic<std::uint64_t>, kNumFaultPoints> polls_{};
    std::array<std::atomic<std::uint64_t>, kNumFaultPoints> fired_{};
};

/// Null-safe poll: a service without an injector pays one pointer check.
[[nodiscard]] inline bool fault_fires(FaultInjector* injector, FaultPoint point) noexcept {
    return injector != nullptr && injector->should_fire(point);
}

/// Model proxy that throws on a scheduled fraction of predict() calls —
/// the predict_throw failure point.  Wraps the service's model *after*
/// fingerprinting, so cache keys are unaffected and every non-faulted
/// response stays bitwise identical to a fault-free run.
class FaultInjectingModel final : public xnfv::ml::Model {
public:
    FaultInjectingModel(std::shared_ptr<const xnfv::ml::Model> inner,
                        std::shared_ptr<FaultInjector> injector)
        : inner_(std::move(inner)), injector_(std::move(injector)) {}

    [[nodiscard]] double predict(std::span<const double> x) const override;
    /// Batched probes stay one fault poll per model evaluation: the blocked
    /// explainer path must present the same (seed, point, k) schedule as the
    /// scalar path, so each row is polled and evaluated individually.  The
    /// throughput cost only exists under an active injector (chaos tests).
    void predict_batch(const xnfv::ml::Matrix& x, std::span<double> out) const override;
    using xnfv::ml::Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override {
        return inner_->num_features();
    }
    [[nodiscard]] std::string name() const override { return inner_->name(); }

private:
    std::shared_ptr<const xnfv::ml::Model> inner_;
    std::shared_ptr<FaultInjector> injector_;
};

/// Thrown by FaultInjectingModel when predict_throw fires.
class InjectedFault : public std::runtime_error {
public:
    explicit InjectedFault(FaultPoint point)
        : std::runtime_error(std::string("injected fault: ") + to_string(point)) {}
};

}  // namespace xnfv::serve
