#include "serve/request_queue.hpp"

#include <algorithm>

namespace xnfv::serve {

const char* to_string(RejectReason reason) noexcept {
    switch (reason) {
        case RejectReason::none: return "none";
        case RejectReason::queue_full: return "queue_full";
        case RejectReason::service_stopped: return "service_stopped";
        case RejectReason::bad_request: return "bad_request";
    }
    return "unknown";
}

RequestQueue::RequestQueue(std::size_t depth) : depth_(std::max<std::size_t>(1, depth)) {}

RejectReason RequestQueue::try_push(Job job) {
    {
        std::lock_guard lock(mutex_);
        if (closed_) return RejectReason::service_stopped;
        if (jobs_.size() >= depth_) return RejectReason::queue_full;
        jobs_.push_back(std::move(job));
    }
    not_empty_.notify_one();
    return RejectReason::none;
}

std::optional<Job> RequestQueue::pop_wait(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return !jobs_.empty() || closed_; });
    if (jobs_.empty()) return std::nullopt;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
}

std::optional<Job> RequestQueue::try_pop() {
    std::lock_guard lock(mutex_);
    if (jobs_.empty()) return std::nullopt;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
}

void RequestQueue::close() {
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

bool RequestQueue::closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
}

std::size_t RequestQueue::size() const {
    std::lock_guard lock(mutex_);
    return jobs_.size();
}

}  // namespace xnfv::serve
