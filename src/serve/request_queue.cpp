#include "serve/request_queue.hpp"

#include <algorithm>

namespace xnfv::serve {

RequestQueue::RequestQueue(std::size_t depth) : depth_(std::max<std::size_t>(1, depth)) {
    classes_.resize(1);  // class 0 (the default model) always exists
}

void RequestQueue::ensure_class_locked(std::size_t model_class) {
    if (model_class >= classes_.size()) classes_.resize(model_class + 1);
}

void RequestQueue::configure_class(std::size_t model_class, ClassConfig config) {
    std::lock_guard lock(mutex_);
    ensure_class_locked(model_class);
    classes_[model_class].quota = config.quota;
    classes_[model_class].weight = std::max<std::size_t>(1, config.weight);
}

ServeError RequestQueue::try_push(Job job) {
    {
        std::lock_guard lock(mutex_);
        if (closed_) return ServeError::service_stopped;
        if (total_ >= depth_) return ServeError::queue_full;
        ensure_class_locked(job.model_class);
        ClassQueue& cls = classes_[job.model_class];
        if (cls.quota > 0 && cls.jobs.size() >= cls.quota)
            return ServeError::quota_exceeded;
        job.depth_at_enqueue = ++total_;
        if (!cls.in_round) {
            cls.in_round = true;
            active_.push_back(job.model_class);
        }
        cls.jobs.push_back(std::move(job));
    }
    not_empty_.notify_one();
    return ServeError::none;
}

Job RequestQueue::pop_locked() {
    // Deficit-weighted round robin with unit job cost: when a class reaches
    // the head of the active list with an exhausted deficit, it earns a new
    // quantum of `weight` pops.  An emptied class leaves the round (and
    // forfeits its remaining deficit — credit never accumulates while idle,
    // which is what bounds a returning class's burst).
    const std::size_t c = active_.front();
    ClassQueue& cls = classes_[c];
    if (cls.deficit == 0) cls.deficit = cls.weight;
    Job job = std::move(cls.jobs.front());
    cls.jobs.pop_front();
    --total_;
    --cls.deficit;
    if (cls.jobs.empty()) {
        cls.deficit = 0;
        cls.in_round = false;
        active_.pop_front();
    } else if (cls.deficit == 0) {
        active_.pop_front();
        active_.push_back(c);
    }
    return job;
}

std::optional<Job> RequestQueue::pop_wait(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_until(lock, deadline, [this] { return total_ > 0 || closed_; });
    if (total_ == 0) return std::nullopt;
    return pop_locked();
}

std::optional<Job> RequestQueue::try_pop() {
    std::lock_guard lock(mutex_);
    if (total_ == 0) return std::nullopt;
    return pop_locked();
}

void RequestQueue::close() {
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

bool RequestQueue::closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
}

std::size_t RequestQueue::size() const {
    std::lock_guard lock(mutex_);
    return total_;
}

std::size_t RequestQueue::class_size(std::size_t model_class) const {
    std::lock_guard lock(mutex_);
    if (model_class >= classes_.size()) return 0;
    return classes_[model_class].jobs.size();
}

}  // namespace xnfv::serve
