#include "serve/request_queue.hpp"

#include <algorithm>

namespace xnfv::serve {

RequestQueue::RequestQueue(std::size_t depth) : depth_(std::max<std::size_t>(1, depth)) {}

ServeError RequestQueue::try_push(Job job) {
    {
        std::lock_guard lock(mutex_);
        if (closed_) return ServeError::service_stopped;
        if (jobs_.size() >= depth_) return ServeError::queue_full;
        job.depth_at_enqueue = jobs_.size() + 1;
        jobs_.push_back(std::move(job));
    }
    not_empty_.notify_one();
    return ServeError::none;
}

std::optional<Job> RequestQueue::pop_wait(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return !jobs_.empty() || closed_; });
    if (jobs_.empty()) return std::nullopt;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
}

std::optional<Job> RequestQueue::try_pop() {
    std::lock_guard lock(mutex_);
    if (jobs_.empty()) return std::nullopt;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
}

void RequestQueue::close() {
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

bool RequestQueue::closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
}

std::size_t RequestQueue::size() const {
    std::lock_guard lock(mutex_);
    return jobs_.size();
}

}  // namespace xnfv::serve
