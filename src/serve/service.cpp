#include "serve/service.hpp"

#include <bit>
#include <chrono>
#include <exception>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/parallel.hpp"
#include "core/sampling_shapley.hpp"
#include "core/tree_shap.hpp"
#include "mlcore/serialize.hpp"

namespace xnfv::serve {

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;

using Clock = std::chrono::steady_clock;

namespace {

[[nodiscard]] std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

[[nodiscard]] std::uint64_t hash_string(const std::string& s, std::uint64_t seed) {
    return fnv1a({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}, seed);
}

/// Fingerprint of the model's inference state: hash of its serialized text,
/// falling back to name/arity for unserializable models (LambdaModel).
[[nodiscard]] std::uint64_t model_fingerprint(const ml::Model& model) {
    try {
        std::ostringstream os;
        ml::save_model(model, os);
        return hash_string(os.str(), 0xcbf29ce484222325ULL);
    } catch (const std::exception&) {
        return fnv1a_u64(model.num_features(),
                         hash_string(model.name(), 0xcbf29ce484222325ULL));
    }
}

[[nodiscard]] std::uint64_t background_fingerprint(const xai::BackgroundData& bg) {
    const auto data = bg.samples().data();
    std::uint64_t h = fnv1a_u64(bg.samples().cols(), 0xcbf29ce484222325ULL);
    for (const double v : data)
        h = fnv1a_u64(std::bit_cast<std::uint64_t>(v), h);
    return h;
}

}  // namespace

std::unique_ptr<xai::Explainer> make_explainer(const std::string& method,
                                               const xai::BackgroundData& background,
                                               std::uint64_t seed,
                                               std::size_t threads) {
    if (method == "tree_shap") return std::make_unique<xai::TreeShap>();
    if (method == "kernel_shap") {
        xai::KernelShap::Config cfg;
        cfg.threads = threads;
        return std::make_unique<xai::KernelShap>(background, ml::Rng(seed), cfg);
    }
    if (method == "sampling") {
        xai::SamplingShapley::Config cfg;
        cfg.threads = threads;
        return std::make_unique<xai::SamplingShapley>(background, ml::Rng(seed), cfg);
    }
    if (method == "lime") {
        xai::Lime::Config cfg;
        cfg.threads = threads;
        return std::make_unique<xai::Lime>(background, ml::Rng(seed), cfg);
    }
    if (method == "occlusion") {
        xai::Occlusion::Config cfg;
        cfg.threads = threads;
        return std::make_unique<xai::Occlusion>(background, cfg);
    }
    throw std::runtime_error("unknown method '" + method + "'");
}

bool known_method(const std::string& method) noexcept {
    return method == "tree_shap" || method == "kernel_shap" || method == "sampling" ||
           method == "lime" || method == "occlusion";
}

ExplanationService::ExplanationService(std::shared_ptr<const ml::Model> model,
                                       xai::BackgroundData background,
                                       ServiceConfig config)
    : model_(std::move(model)),
      background_(std::move(background)),
      config_(std::move(config)),
      model_fingerprint_(model_fingerprint(*model_)),
      background_fingerprint_(background_fingerprint(background_)),
      queue_(config_.queue_depth),
      batcher_(BatcherConfig{config_.max_batch, config_.max_wait}),
      cache_(config_.cache_capacity, config_.cache_shards) {
    if (!known_method(config_.method))
        throw std::runtime_error("unknown method '" + config_.method + "'");
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ExplanationService::~ExplanationService() { stop(); }

void ExplanationService::stop() {
    std::call_once(stop_once_, [this] {
        queue_.close();
        if (dispatcher_.joinable()) dispatcher_.join();
    });
}

ExplanationService::Submission ExplanationService::submit(ExplainRequest request) {
    Submission out;
    if (request.features.size() != model_->num_features() ||
        (!request.method.empty() && !known_method(request.method))) {
        out.rejected = RejectReason::bad_request;
        metrics_.requests_rejected.inc();
        return out;
    }
    Job job;
    job.request = std::move(request);
    job.enqueued_at = Clock::now();
    out.response = job.promise.get_future();
    out.rejected = queue_.try_push(std::move(job));
    if (out.rejected != RejectReason::none) {
        metrics_.requests_rejected.inc();
        out.response = {};
        return out;
    }
    metrics_.requests_accepted.inc();
    metrics_.queue_depth.set(queue_.size());
    return out;
}

ExplainResponse ExplanationService::explain_sync(ExplainRequest request) {
    const std::uint64_t id = request.id;
    Submission sub = submit(std::move(request));
    if (sub.rejected != RejectReason::none) {
        ExplainResponse r;
        r.id = id;
        r.ok = false;
        r.error = std::string("rejected: ") + to_string(sub.rejected);
        return r;
    }
    return sub.response.get();
}

void ExplanationService::dispatcher_loop() {
    for (;;) {
        const auto now = Clock::now();
        if (batcher_.due(now)) {
            execute_batch(batcher_.flush());
            continue;
        }
        // Park on the queue until the flush timer fires or (with no pending
        // batch) a periodic wake-up to notice shutdown.
        const auto deadline =
            batcher_.deadline().value_or(now + std::chrono::milliseconds(50));
        if (auto job = queue_.pop_wait(deadline)) {
            metrics_.queue_depth.set(queue_.size());
            if (batcher_.add(std::move(*job), Clock::now()))
                execute_batch(batcher_.flush());
        } else if (queue_.closed()) {
            // Drained: serve the stragglers and exit.
            if (batcher_.pending() > 0) execute_batch(batcher_.flush());
            if (queue_.size() == 0) return;
        }
    }
}

CacheKey ExplanationService::key_for(const ExplainRequest& request) const {
    const std::string& method = request.method.empty() ? config_.method : request.method;
    const std::uint64_t seed = request.seed == 0 ? config_.seed : request.seed;
    std::uint64_t context = hash_string(method, model_fingerprint_);
    context = fnv1a_u64(seed, context);
    context = fnv1a_u64(std::bit_cast<std::uint64_t>(config_.cache_quantum), context);
    context = fnv1a_u64(background_fingerprint_, context);
    return CacheKey(request.features, config_.cache_quantum, context);
}

ExplainResponse ExplanationService::run_request(const ExplainRequest& request) const {
    ExplainResponse r;
    r.id = request.id;
    const std::string& method = request.method.empty() ? config_.method : request.method;
    const std::uint64_t seed = request.seed == 0 ? config_.seed : request.seed;
    try {
        const auto explainer =
            make_explainer(method, background_, seed, config_.threads);
        r.explanation = explainer->explain(*model_, request.features);
        r.ok = true;
    } catch (const std::exception& e) {
        r.ok = false;
        r.error = e.what();
    }
    return r;
}

void ExplanationService::execute_batch(std::vector<Job> batch) {
    metrics_.batches.inc();
    metrics_.batch_size.record(batch.size());

    // Phase 1 — cache probe, in admission order so hit/miss accounting (and
    // duplicate handling inside one batch) is deterministic.  A key that
    // misses the cache but equals an earlier miss in the same batch is not
    // recomputed: it shares the primary's result (a batch-local hit).
    struct KeyHash {
        std::size_t operator()(const CacheKey& k) const noexcept {
            return static_cast<std::size_t>(k.hash());
        }
    };
    std::vector<CacheKey> keys;
    keys.reserve(batch.size());
    for (const Job& job : batch) keys.push_back(key_for(job.request));

    std::vector<ExplainResponse> responses(batch.size());
    std::vector<std::size_t> to_compute;
    to_compute.reserve(batch.size());
    std::unordered_map<CacheKey, std::size_t, KeyHash> inflight;
    std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // (i, primary)
    for (std::size_t i = 0; i < batch.size(); ++i) {
        responses[i].id = batch[i].request.id;
        if (auto cached = cache_.lookup(keys[i])) {
            responses[i].ok = true;
            responses[i].cache_hit = true;
            responses[i].explanation = std::move(*cached);
            metrics_.cache_hits.inc();
        } else if (const auto it = inflight.find(keys[i]); it != inflight.end()) {
            duplicates.emplace_back(i, it->second);
        } else {
            inflight.emplace(keys[i], i);
            metrics_.cache_misses.inc();
            to_compute.push_back(i);
        }
    }

    // Phase 2 — compute all misses across the shared pool.  Each request is
    // keyed by its own seed, so results do not depend on batch composition,
    // order, or thread count.
    std::vector<std::uint64_t> compute_us(to_compute.size(), 0);
    xnfv::parallel_for(to_compute.size(), config_.threads, [&](std::size_t k) {
        const auto start = Clock::now();
        responses[to_compute[k]] = run_request(batch[to_compute[k]].request);
        compute_us[k] = elapsed_us(start, Clock::now());
    });

    // Phase 3 — resolve duplicates, populate the cache, complete futures.
    for (const auto& [i, primary] : duplicates) {
        const std::uint64_t id = responses[i].id;
        responses[i] = responses[primary];
        responses[i].id = id;
        responses[i].cache_hit = responses[i].ok;
        metrics_.cache_hits.inc();
    }
    for (std::size_t k = 0; k < to_compute.size(); ++k) {
        const std::size_t i = to_compute[k];
        metrics_.compute_time_us.record(compute_us[k]);
        if (responses[i].ok) cache_.insert(keys[i], responses[i].explanation);
    }
    const auto done = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        metrics_.service_time_us.record(elapsed_us(batch[i].enqueued_at, done));
        metrics_.requests_completed.inc();
        batch[i].promise.set_value(std::move(responses[i]));
    }
}

ServiceStats ExplanationService::stats() const {
    ServiceStats s;
    s.requests_accepted = metrics_.requests_accepted.value();
    s.requests_rejected = metrics_.requests_rejected.value();
    s.requests_completed = metrics_.requests_completed.value();
    s.batches = metrics_.batches.value();
    s.cache_hits = metrics_.cache_hits.value();
    s.cache_misses = metrics_.cache_misses.value();
    const CacheStats cs = cache_.stats();
    s.cache_evictions = cs.evictions;
    s.cache_entries = cs.entries;
    s.queue_depth = metrics_.queue_depth.value();
    s.queue_depth_max = metrics_.queue_depth.max();
    s.batch_size_mean = metrics_.batch_size.mean();
    s.batch_size_max = metrics_.batch_size.max();
    s.service_us_p50 = metrics_.service_time_us.quantile(0.50);
    s.service_us_p95 = metrics_.service_time_us.quantile(0.95);
    s.service_us_p99 = metrics_.service_time_us.quantile(0.99);
    s.service_us_mean = metrics_.service_time_us.mean();
    s.compute_us_mean = metrics_.compute_time_us.mean();
    return s;
}

}  // namespace xnfv::serve
