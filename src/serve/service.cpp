#include "serve/service.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <unordered_map>
#include <utility>

#include "core/flat_tree_shap.hpp"
#include "core/gradient.hpp"
#include "core/interaction.hpp"
#include "core/kernel_shap.hpp"
#include "core/lime.hpp"
#include "core/occlusion.hpp"
#include "core/parallel.hpp"
#include "core/sampling_shapley.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"

namespace xnfv::serve {

namespace ml = xnfv::ml;
namespace xai = xnfv::xai;

using Clock = std::chrono::steady_clock;

namespace {

[[nodiscard]] std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

[[nodiscard]] std::uint64_t hash_string(const std::string& s, std::uint64_t seed) {
    return fnv1a({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()}, seed);
}

[[nodiscard]] std::uint64_t background_fingerprint(const xai::BackgroundData& bg) {
    const auto data = bg.samples().data();
    std::uint64_t h = fnv1a_u64(bg.samples().cols(), 0xcbf29ce484222325ULL);
    for (const double v : data)
        h = fnv1a_u64(std::bit_cast<std::uint64_t>(v), h);
    return h;
}

[[nodiscard]] double clamp_scale(double scale) noexcept {
    return std::clamp(scale, 0.001, 1.0);
}

/// Counts model evaluations (probe rows) flowing out of an explainer so the
/// service can report per-explanation probe volume.  Batches are forwarded
/// to the inner model wholesale, so the flattened batch kernels stay
/// engaged; the count is rows, making scalar and batched probes comparable.
class EvalCountingModel final : public ml::Model {
public:
    explicit EvalCountingModel(const ml::Model& inner) : inner_(inner) {}

    [[nodiscard]] double predict(std::span<const double> x) const override {
        evals_.fetch_add(1, std::memory_order_relaxed);
        return inner_.predict(x);
    }
    void predict_batch(const ml::Matrix& x, std::span<double> out) const override {
        evals_.fetch_add(x.rows(), std::memory_order_relaxed);
        inner_.predict_batch(x, out);
    }
    using ml::Model::predict_batch;
    [[nodiscard]] std::size_t num_features() const override {
        return inner_.num_features();
    }
    [[nodiscard]] std::string name() const override { return inner_.name(); }

    [[nodiscard]] std::uint64_t evals() const noexcept {
        return evals_.load(std::memory_order_relaxed);
    }

private:
    const ml::Model& inner_;
    mutable std::atomic<std::uint64_t> evals_{0};
};

/// base * scale, rounded, but never below `floor` (a degraded sampling
/// explainer must still be a well-posed estimator).
[[nodiscard]] std::size_t scaled_budget(std::size_t base, double scale,
                                        std::size_t floor) noexcept {
    const auto want = static_cast<std::size_t>(
        std::llround(scale * static_cast<double>(base)));
    return std::max(floor, want);
}

}  // namespace

std::uint64_t effective_budget(const std::string& method, double budget_scale,
                               const xai::BackgroundData& background,
                               std::size_t ig_steps) {
    const double scale = clamp_scale(budget_scale);
    if (method == "kernel_shap")
        return scaled_budget(xai::KernelShap::Config{}.max_coalitions, scale, 16);
    if (method == "sampling")
        return scaled_budget(xai::SamplingShapley::Config{}.num_permutations, scale, 8);
    if (method == "lime")
        return scaled_budget(xai::Lime::Config{}.num_samples, scale,
                             background.num_features() + 2);
    if (method == "occlusion") return background.num_features();
    if (method == "integrated_gradients") return scaled_budget(ig_steps, scale, 8);
    return 0;  // tree_shap: exact, no sample budget
}

std::unique_ptr<xai::Explainer> make_explainer(const std::string& method,
                                               const xai::BackgroundData& background,
                                               std::uint64_t seed, std::size_t threads,
                                               const ExplainerLimits& limits) {
    const double scale = clamp_scale(limits.budget_scale);
    // The flat kernel is the tree_shap implementation everywhere — one-shot
    // and served paths alike — and is pinned bitwise-identical to the
    // recursive walker by tests/test_fast_path.cpp.
    if (method == "tree_shap")
        return std::make_unique<xai::FlatTreeShapExplainer>(threads);
    if (method == "integrated_gradients") {
        xai::IntegratedGradients::Config cfg;
        cfg.steps = scaled_budget(limits.ig_steps, scale, 8);
        return std::make_unique<xai::IntegratedGradients>(background, cfg);
    }
    if (method == "kernel_shap") {
        xai::KernelShap::Config cfg;
        cfg.max_coalitions = scaled_budget(cfg.max_coalitions, scale, 16);
        cfg.threads = threads;
        cfg.cancel = limits.cancel;
        return std::make_unique<xai::KernelShap>(background, ml::Rng(seed), cfg);
    }
    if (method == "sampling") {
        xai::SamplingShapley::Config cfg;
        cfg.num_permutations = scaled_budget(cfg.num_permutations, scale, 8);
        cfg.threads = threads;
        cfg.cancel = limits.cancel;
        return std::make_unique<xai::SamplingShapley>(background, ml::Rng(seed), cfg);
    }
    if (method == "lime") {
        xai::Lime::Config cfg;
        cfg.num_samples =
            scaled_budget(cfg.num_samples, scale, background.num_features() + 2);
        cfg.threads = threads;
        cfg.cancel = limits.cancel;
        return std::make_unique<xai::Lime>(background, ml::Rng(seed), cfg);
    }
    if (method == "occlusion") {
        xai::Occlusion::Config cfg;
        cfg.threads = threads;
        cfg.cancel = limits.cancel;
        return std::make_unique<xai::Occlusion>(background, cfg);
    }
    throw std::runtime_error("unknown method '" + method + "' (expected " +
                             explainer_list_with_auto() + ")");
}

bool known_method(const std::string& method) noexcept {
    return known_explainer(method);
}

ExplanationService::ExplanationService(std::shared_ptr<const ml::Model> model,
                                       xai::BackgroundData background,
                                       ServiceConfig config)
    : background_(std::move(background)),
      config_(std::move(config)),
      background_fingerprint_(background_fingerprint(background_)),
      registry_(RegistryConfig{config_.cache_capacity, config_.cache_shards,
                              config_.fault_injector},
                &background_),
      queue_(config_.queue_depth),
      batcher_(BatcherConfig{config_.max_batch, config_.max_wait}),
      degrade_(config_.degradation),
      adaptive_([this] {
          // The policy's ceiling is always the configured wait; only the
          // pressure terms come from the adaptive config.
          AdaptiveBatchConfig a = config_.adaptive;
          a.max_wait = config_.max_wait;
          return AdaptiveBatchPolicy(a);
      }()) {
    if (config_.method != kAutoMethod && !known_method(config_.method))
        throw std::runtime_error("unknown method '" + config_.method +
                                 "' (expected " + explainer_list_with_auto() + ")");
    // Cache-key fingerprints of the fast-path explainer configs: the
    // tree_shap kernel variant tag, and the IG step count.  Probe methods
    // keep a zero component, so their keys are byte-for-byte what this
    // service has always produced.
    explainer_config_fp_[explainer_index("tree_shap")] =
        hash_string("flat_tree_shap_v1", 0xcbf29ce484222325ULL);
    explainer_config_fp_[explainer_index("integrated_gradients")] = fnv1a_u64(
        config_.ig_steps, hash_string("ig_steps", 0xcbf29ce484222325ULL));
    metrics_.adaptive_wait_us.set(
        static_cast<std::uint64_t>(config_.max_wait.count()));
    // The constructor's model becomes the default (first-loaded) entry; any
    // configured extra models follow, in order.  The registry wires each
    // entry's DWRR class config into the queue as it is created.
    std::string why;
    const std::string default_name =
        config_.default_model_name.empty() ? "default" : config_.default_model_name;
    if (model_load(default_name, std::move(model), config_.default_weight,
                   config_.default_quota, &why) != ServeError::none)
        throw std::runtime_error("cannot register default model: " + why);
    for (const ModelSpec& spec : config_.extra_models) {
        if (model_load(spec.name, spec.model, spec.weight, spec.quota, &why) !=
            ServeError::none)
            throw std::runtime_error("cannot register model '" + spec.name +
                                     "': " + why);
    }
    if (!config_.snapshot_path.empty()) load_snapshot();
    heartbeat();
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

ServeError ExplanationService::model_load(const std::string& name,
                                          std::shared_ptr<const ml::Model> model,
                                          std::size_t weight, std::size_t quota,
                                          std::string* why) {
    const ServeError err = registry_.load(name, std::move(model), weight, quota, why);
    if (err != ServeError::none) return err;
    const auto entry = registry_.resolve(name);
    queue_.configure_class(
        entry->class_id,
        ClassConfig{static_cast<std::size_t>(entry->quota.load(std::memory_order_relaxed)),
                    static_cast<std::size_t>(entry->weight.load(std::memory_order_relaxed))});
    return ServeError::none;
}

ServeError ExplanationService::model_swap(const std::string& name,
                                          std::shared_ptr<const ml::Model> model,
                                          std::string* why) {
    return registry_.swap(name, std::move(model), why);
}

ServeError ExplanationService::model_retire(const std::string& name,
                                            std::string* why) {
    return registry_.retire(name, why);
}

ExplanationService::~ExplanationService() { stop(); }

void ExplanationService::stop() {
    std::call_once(stop_once_, [this] {
        stopping_.store(true, std::memory_order_release);
        stop_wait_cv_.notify_all();
        queue_.close();
        // Join the watchdog first so it cannot respawn a dispatcher we are
        // about to join.
        if (watchdog_.joinable()) watchdog_.join();
        {
            std::lock_guard lock(dispatcher_mutex_);
            if (dispatcher_.joinable()) dispatcher_.join();
        }
        // If the dispatcher died to a fault with work still queued, serve
        // the stragglers on this thread — stop() never drops a promise.
        drain_inline();
        if (!config_.snapshot_path.empty()) save_snapshot();
    });
}

void ExplanationService::heartbeat() noexcept {
    heartbeat_ns_.store(Clock::now().time_since_epoch().count(),
                        std::memory_order_relaxed);
}

ServeError ExplanationService::prepare_job(ExplainRequest request, Job& job) {
    // Resolve the model first: an unknown name is its own failure class, not
    // a malformed payload.  The snapshot pinned here is what the job will be
    // explained against, no matter how many hot swaps land after this line.
    std::shared_ptr<ModelEntry> entry = registry_.resolve(request.model);
    if (!entry) return ServeError::unknown_model;
    std::shared_ptr<const ModelSnapshot> snapshot = entry->current();
    if (request.features.size() != snapshot->model->num_features() ||
        (!request.method.empty() && request.method != kAutoMethod &&
         !known_method(request.method)))
        return ServeError::bad_request;
    if (std::any_of(request.features.begin(), request.features.end(),
                    [](double v) { return !std::isfinite(v); }))
        return ServeError::bad_features;
    if (request.deadline_ms == 0) {
        // Already expired at the door; a silent full computation would be a
        // worse bug than the rejection.
        return ServeError::deadline_exceeded;
    }
    const Clock::time_point now = Clock::now();
    // Breaker check comes last so an admitted half-open probe can only be
    // lost to a queue rejection (which breaker_abandon() undoes), never to
    // a validation failure.
    if (!entry->breaker_admit(config_.breaker, now))
        return ServeError::circuit_open;
    job.request = std::move(request);
    job.model_entry = std::move(entry);
    job.model_snapshot = std::move(snapshot);
    job.model_class = job.model_entry->class_id;
    job.enqueued_at = now;
    if (job.request.deadline_ms > 0)
        job.deadline =
            job.enqueued_at + std::chrono::milliseconds(job.request.deadline_ms);
    return ServeError::none;
}

ExplanationService::Submission ExplanationService::submit(ExplainRequest request) {
    Submission out;
    Job job;
    ServeError reject = prepare_job(std::move(request), job);
    const std::shared_ptr<ModelEntry> entry = job.model_entry;
    if (reject == ServeError::none) {
        out.response = job.promise.get_future();
        reject = queue_.try_push(std::move(job));
    }
    if (reject != ServeError::none) {
        out.rejected = reject;
        out.response = {};
        metrics_.requests_rejected.inc();
        metrics_.count_error(reject);
        if (entry && reject == ServeError::quota_exceeded) entry->rejected_quota.inc();
        // prepare_job admitted (possibly as a half-open probe) but the
        // queue refused: release the probe so the next request can retry it.
        if (entry) entry->breaker_abandon(config_.breaker);
        return out;
    }
    entry->admitted.inc();
    metrics_.requests_accepted.inc();
    metrics_.queue_depth.set(queue_.size());
    return out;
}

ServeError ExplanationService::submit_async(
    ExplainRequest request, std::function<void(ExplainResponse)> on_complete) {
    // Same validation as submit(); the callback rides in the Job so the
    // batch executor completes it in place of the promise.
    Job job;
    ServeError reject = prepare_job(std::move(request), job);
    const std::shared_ptr<ModelEntry> entry = job.model_entry;
    if (reject == ServeError::none) {
        job.on_complete = std::move(on_complete);
        reject = queue_.try_push(std::move(job));
    }
    if (reject != ServeError::none) {
        metrics_.requests_rejected.inc();
        metrics_.count_error(reject);
        if (entry && reject == ServeError::quota_exceeded) entry->rejected_quota.inc();
        if (entry) entry->breaker_abandon(config_.breaker);
        return reject;
    }
    entry->admitted.inc();
    metrics_.requests_accepted.inc();
    metrics_.queue_depth.set(queue_.size());
    return ServeError::none;
}

ExplainResponse ExplanationService::explain_sync(ExplainRequest request) {
    const std::uint64_t id = request.id;
    Submission sub = submit(std::move(request));
    if (sub.rejected != ServeError::none) {
        ExplainResponse r;
        r.id = id;
        r.ok = false;
        r.error_code = sub.rejected;
        r.error = std::string("rejected: ") + to_string(sub.rejected);
        return r;
    }
    return sub.response.get();
}

void ExplanationService::dispatcher_loop() {
    FaultInjector* const inj = config_.fault_injector.get();
    for (;;) {
        heartbeat();
        if (fault_fires(inj, FaultPoint::worker_death)) {
            // Simulated crash: exit without draining.  The watchdog notices
            // and respawns; queued jobs survive in the queue/batcher.
            dispatcher_exited_.store(true, std::memory_order_release);
            return;
        }
        if (fault_fires(inj, FaultPoint::queue_stall))
            std::this_thread::sleep_for(config_.fault_stall);
        if (adaptive_.enabled()) {
            // Re-plan the flush timeout from the live load signals; the
            // policy is pure, so this is just arithmetic on two gauges.
            const auto wait = adaptive_.effective_wait(
                {queue_.size(), metrics_.service_time_us.quantile(0.99)});
            batcher_.set_max_wait(wait);
            metrics_.adaptive_wait_us.set(static_cast<std::uint64_t>(wait.count()));
        }
        const auto now = Clock::now();
        if (batcher_.due(now)) {
            execute_batch(batcher_.flush());
            continue;
        }
        // Park on the queue until the flush timer fires or (with no pending
        // batch) a periodic wake-up to notice shutdown.
        const auto deadline =
            batcher_.deadline().value_or(now + std::chrono::milliseconds(50));
        if (auto job = queue_.pop_wait(deadline)) {
            metrics_.queue_depth.set(queue_.size());
            if (batcher_.add(std::move(*job), Clock::now()))
                execute_batch(batcher_.flush());
        } else if (queue_.closed()) {
            // Drained: serve the stragglers and exit.
            if (batcher_.pending() > 0) execute_batch(batcher_.flush());
            if (queue_.size() == 0) return;
        }
    }
}

void ExplanationService::watchdog_loop() {
    bool stalled = false;
    auto last_snapshot = Clock::now();
    for (;;) {
        {
            std::unique_lock lock(stop_wait_mutex_);
            stop_wait_cv_.wait_for(lock, config_.watchdog_interval, [this] {
                return stopping_.load(std::memory_order_acquire);
            });
        }
        if (stopping_.load(std::memory_order_acquire)) return;

        // Respawn a dispatcher the worker_death fault killed.
        if (dispatcher_exited_.load(std::memory_order_acquire)) {
            std::lock_guard lock(dispatcher_mutex_);
            if (dispatcher_.joinable()) dispatcher_.join();
            dispatcher_exited_.store(false, std::memory_order_release);
            heartbeat();
            dispatcher_ = std::thread([this] { dispatcher_loop(); });
            metrics_.worker_respawns.inc();
        }

        // Stall detection: a stale heartbeat while work is waiting.  A stuck
        // thread cannot be safely killed, so stalls are counted (one per
        // episode) for the operator, not "fixed".
        const auto hb = Clock::time_point(
            Clock::duration(heartbeat_ns_.load(std::memory_order_relaxed)));
        const bool stale =
            queue_.size() > 0 && Clock::now() - hb > config_.watchdog_stall_threshold;
        if (stale && !stalled) metrics_.worker_stalls.inc();
        stalled = stale;

        if (!config_.snapshot_path.empty() && config_.snapshot_interval.count() > 0 &&
            Clock::now() - last_snapshot >= config_.snapshot_interval) {
            save_snapshot();
            last_snapshot = Clock::now();
        }
    }
}

void ExplanationService::drain_inline() {
    while (auto job = queue_.try_pop()) {
        if (batcher_.add(std::move(*job), Clock::now()))
            execute_batch(batcher_.flush());
    }
    if (batcher_.pending() > 0) execute_batch(batcher_.flush());
}

CacheKey ExplanationService::key_for(const Job& job) const {
    const ExplainRequest& request = job.request;
    const std::string& requested =
        request.method.empty() ? config_.method : request.method;
    // Keys hash the *resolved* method, so "auto" and an explicit request for
    // the same explainer share cache entries.  Routing against the pinned
    // snapshot keeps keys consistent across hot swaps that change the kind.
    const std::string method =
        requested == kAutoMethod ? job.model_snapshot->auto_method : requested;
    const std::uint64_t seed = request.seed == 0 ? config_.seed : request.seed;
    // Seeded with the fingerprint the job *pinned*, so a request that raced
    // a hot swap keys (and caches) against the version it was computed with.
    std::uint64_t context = hash_string(method, job.model_snapshot->fingerprint);
    context = fnv1a_u64(seed, context);
    // Fast-path explainer config (kernel variant / IG steps): two services
    // differing only in ig_steps must never cross-hit via snapshot restore.
    // A zero fingerprint (probe methods) is skipped, keeping those keys
    // byte-identical to what this service always produced.
    if (const std::size_t ei = explainer_index(method);
        ei < kNumExplainers && explainer_config_fp_[ei] != 0)
        context = fnv1a_u64(explainer_config_fp_[ei], context);
    context = fnv1a_u64(std::bit_cast<std::uint64_t>(config_.cache_quantum), context);
    context = fnv1a_u64(background_fingerprint_, context);
    // Drift epoch: bumping it re-keys this model's cache slice, so stale
    // entries age out through the LRU instead of being served after the
    // traffic shifted.
    context = fnv1a_u64(job.model_entry->epoch.load(std::memory_order_relaxed), context);
    // Interaction-aware requests key separately: the cached Explanation then
    // carries its top-k H² pairs, and a later plain request can never hit an
    // interaction-carrying entry (or vice versa).  k == 0 skips all three
    // mixes, so pre-interaction keys stay byte-identical.
    if (request.interactions > 0) {
        context = hash_string("interactions_v1", context);
        context = fnv1a_u64(request.interactions, context);
        context = fnv1a_u64(config_.interaction_points, context);
    }
    return CacheKey(request.features, config_.cache_quantum, context);
}

std::shared_ptr<const std::vector<xai::InteractionPair>>
ExplanationService::interaction_table(const ModelSnapshot& snapshot) const {
    // The H² statistic is deterministic and feature-independent — it depends
    // only on (model version, background, pair, max_points) — so the full
    // pair table is computed once per model fingerprint and memoized.  The
    // mutex is held across the computation deliberately: racing requests for
    // a cold table would duplicate O(d² · points²) model probes, and one-time
    // serialization is the cheaper failure mode.
    std::lock_guard lock(interactions_mutex_);
    if (const auto it = interaction_tables_.find(snapshot.fingerprint);
        it != interaction_tables_.end())
        return it->second;
    const std::size_t d = background_.num_features();
    auto table = std::make_shared<std::vector<xai::InteractionPair>>();
    if (d >= 2) table->reserve(d * (d - 1) / 2);
    const xai::InteractionOptions options{config_.interaction_points};
    for (std::size_t j = 0; j + 1 < d; ++j)
        for (std::size_t k = j + 1; k < d; ++k)
            table->push_back(
                {j, k, xai::friedman_h2(*snapshot.model, background_, j, k, options)});
    // Strongest interaction first; (i, j) ascending on ties so the order —
    // and therefore the served top-k slice — is fully deterministic.
    std::sort(table->begin(), table->end(),
              [](const xai::InteractionPair& a, const xai::InteractionPair& b) {
                  if (a.h2 != b.h2) return a.h2 > b.h2;
                  return a.i != b.i ? a.i < b.i : a.j < b.j;
              });
    interaction_tables_.emplace(snapshot.fingerprint, table);
    return table;
}

ExplainResponse ExplanationService::run_request(const Job& job,
                                               DegradeLevel level,
                                               Clock::time_point deadline,
                                               ComputeOutcome& outcome) const {
    const ExplainRequest& request = job.request;
    const ModelSnapshot& snap = *job.model_snapshot;
    ExplainResponse r;
    r.id = request.id;
    const std::string& requested =
        request.method.empty() ? config_.method : request.method;
    // Route against the pinned snapshot's kind (stamped at load/swap):
    // "auto" resolves to the kind's exact fast path or the probe default; a
    // forced exact method the kind cannot run is a structured failure, not
    // a silent degradation.
    const RouteDecision route = route_explainer(requested, snap.kind);
    if (route.unsupported) {
        r.ok = false;
        r.error_code = ServeError::unsupported_explainer;
        r.error = route.why;
        return r;
    }
    std::string method = route.method;
    bool fast_path = route.fast_path;
    const std::uint64_t seed = request.seed == 0 ? config_.seed : request.seed;
    double scale = 1.0;
    if (level == DegradeLevel::reduced) {
        scale = config_.degradation.reduced_budget_scale;
    } else if (level == DegradeLevel::baseline) {
        method = "occlusion";  // cheapest rung: one evaluation per feature
        fast_path = false;
    }
    xai::CancelToken token;
    ExplainerLimits limits;
    limits.budget_scale = scale;
    limits.ig_steps = config_.ig_steps;
    if (deadline != Clock::time_point::max()) {
        token.set_deadline(deadline);
        limits.cancel = &token;
    }
    // tree_shap walks the trees and integrated_gradients downcasts to the
    // MLP's analytic gradient, so both must see the real serving model;
    // every other method probes through the counting proxy (which forwards
    // batches wholesale — results are unaffected).
    const bool direct = method == "tree_shap" || method == "integrated_gradients";
    const ml::Model& serving = *snap.serving;
    const EvalCountingModel counting(serving);
    const ml::Model& probed =
        direct ? serving : static_cast<const ml::Model&>(counting);
    try {
        if (method == "tree_shap" && snap.flat_shap) {
            // Exact tree fast path: the snapshot's prebuilt flat walker with
            // per-thread scratch — zero allocations once warm, bitwise equal
            // to the per-request explainer below.  The flat state bypasses
            // the serving wrapper, so the predict_throw chaos point is
            // polled explicitly (once per explain) to keep fault schedules
            // composing with the fast path.
            if (fault_fires(config_.fault_injector.get(), FaultPoint::predict_throw))
                throw InjectedFault(FaultPoint::predict_throw);
            thread_local xai::FlatShapScratch scratch;
            r.explanation = snap.flat_shap->explain(request.features, scratch);
        } else {
            const auto explainer =
                make_explainer(method, background_, seed, config_.threads, limits);
            r.explanation = explainer->explain(probed, request.features);
        }
        r.ok = true;
        r.degraded = level != DegradeLevel::full;
        r.budget_used = effective_budget(method, scale, background_, config_.ig_steps);
        outcome.fast_path = fast_path;
        // Opt-in interaction pairs ride the explanation at every fidelity
        // level: the memoized table costs nothing after the first request per
        // model version, and a degraded attribution next to exact H² pairs is
        // still a coherent answer (the pairs never depend on the budget).
        if (request.interactions > 0) {
            const auto table = interaction_table(snap);
            const auto take = std::min(request.interactions, table->size());
            r.explanation.interactions.assign(
                table->begin(),
                table->begin() + static_cast<std::ptrdiff_t>(take));
        }
    } catch (const xai::BudgetExceeded&) {
        r.ok = false;
        r.error_code = ServeError::deadline_exceeded;
        r.error = "deadline exceeded during computation";
    } catch (const InjectedFault& e) {
        r.ok = false;
        r.error_code = ServeError::fault_injected;
        r.error = e.what();
    } catch (const std::exception& e) {
        r.ok = false;
        r.error_code = ServeError::internal_error;
        r.error = e.what();
    }
    outcome.probe_rows = counting.evals();
    outcome.explainer = explainer_index(method);
    return r;
}

void ExplanationService::execute_batch(std::vector<Job> batch) {
    metrics_.batches.inc();
    metrics_.batch_size.record(batch.size());

    // One clock read per batch; the clock_skew fault jumps it forward, which
    // can only expire deadlines early — never extend them.
    Clock::time_point batch_now = Clock::now();
    if (fault_fires(config_.fault_injector.get(), FaultPoint::clock_skew))
        batch_now += config_.fault_clock_skew;
    const double p99 = metrics_.service_time_us.quantile(0.99);

    // Phase 1 — deadline triage, degradation classification, and the cache
    // probe, in admission order so hit/miss accounting (and duplicate
    // handling inside one batch) is deterministic.  A key that misses the
    // cache but equals an earlier miss *at the same degradation level* is
    // not recomputed: it shares the primary's result (a batch-local hit).
    // A cache hit is always served at full fidelity — a stored answer beats
    // a degraded recomputation.
    struct KeyHash {
        std::size_t operator()(const CacheKey& k) const noexcept {
            return static_cast<std::size_t>(k.hash());
        }
    };
    std::vector<CacheKey> keys;
    keys.reserve(batch.size());
    for (const Job& job : batch) keys.push_back(key_for(job));

    std::vector<ExplainResponse> responses(batch.size());
    std::vector<DegradeLevel> levels(batch.size(), DegradeLevel::full);
    std::vector<std::size_t> to_compute;
    to_compute.reserve(batch.size());
    std::array<std::unordered_map<CacheKey, std::size_t, KeyHash>, 3> inflight;
    std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // (i, primary)
    for (std::size_t i = 0; i < batch.size(); ++i) {
        responses[i].id = batch[i].request.id;
        if (batch_now >= batch[i].deadline) {
            responses[i].ok = false;
            responses[i].error_code = ServeError::deadline_exceeded;
            responses[i].error = "deadline expired before execution";
            continue;
        }
        if (degrade_.enabled())
            levels[i] = degrade_.classify({batch[i].depth_at_enqueue, p99});
        auto& level_inflight = inflight[static_cast<std::size_t>(levels[i])];
        if (auto cached = batch[i].model_entry->cache.lookup(keys[i])) {
            responses[i].ok = true;
            responses[i].cache_hit = true;
            responses[i].explanation = std::move(*cached);
            metrics_.cache_hits.inc();
        } else if (const auto it = level_inflight.find(keys[i]);
                   it != level_inflight.end()) {
            duplicates.emplace_back(i, it->second);
        } else {
            level_inflight.emplace(keys[i], i);
            metrics_.cache_misses.inc();
            to_compute.push_back(i);
        }
    }

    // Phase 2 — compute all misses across the shared pool.  Each request is
    // keyed by its own seed, so results do not depend on batch composition,
    // order, or thread count.
    std::vector<std::uint64_t> compute_us(to_compute.size(), 0);
    std::vector<ComputeOutcome> outcomes(to_compute.size());
    xnfv::parallel_for(to_compute.size(), config_.threads, [&](std::size_t k) {
        const std::size_t i = to_compute[k];
        const auto start = Clock::now();
        responses[i] =
            run_request(batch[i], levels[i], batch[i].deadline, outcomes[k]);
        compute_us[k] = elapsed_us(start, Clock::now());
    });

    // Phase 3 — resolve duplicates, populate the cache, complete futures.
    // Only full-fidelity results enter the cache: a transient overload must
    // never pin degraded answers into it.
    for (const auto& [i, primary] : duplicates) {
        const std::uint64_t id = responses[i].id;
        responses[i] = responses[primary];
        responses[i].id = id;
        responses[i].cache_hit = responses[i].ok;
        metrics_.cache_hits.inc();
    }
    for (std::size_t k = 0; k < to_compute.size(); ++k) {
        const std::size_t i = to_compute[k];
        metrics_.compute_time_us.record(compute_us[k]);
        metrics_.model_evals.inc(outcomes[k].probe_rows);
        batch[i].model_entry->evals.inc(outcomes[k].probe_rows);
        if (responses[i].ok) metrics_.probe_rows.record(outcomes[k].probe_rows);
        if (const std::size_t ei = outcomes[k].explainer;
            responses[i].ok && ei < kNumExplainers) {
            metrics_.explainer_requests[ei].inc();
            metrics_.explainer_compute_us[ei].record(compute_us[k]);
            if (outcomes[k].fast_path) {
                metrics_.fast_path_hits.inc();
                metrics_.explainer_fast_hits[ei].inc();
            }
        }
        if (responses[i].ok && levels[i] == DegradeLevel::full) {
            batch[i].model_entry->cache.insert(keys[i], responses[i].explanation);
            // Only freshly computed full-fidelity attributions feed the
            // drift windows: cache hits would double-count the past, and
            // degraded answers have a different budget.
            observe_attributions(*batch[i].model_entry,
                                 responses[i].explanation.attributions,
                                 batch[i].model_snapshot->fingerprint);
        }
    }
    const auto done = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        metrics_.service_time_us.record(elapsed_us(batch[i].enqueued_at, done));
        metrics_.requests_completed.inc();
        batch[i].model_entry->completed.inc();
        batch[i].model_entry->breaker_record(config_.breaker, responses[i].ok);
        if (responses[i].ok)
            batch[i].model_snapshot->base_value.store(
                responses[i].explanation.base_value, std::memory_order_relaxed);
        if (responses[i].ok) {
            if (responses[i].degraded) metrics_.requests_degraded.inc();
        } else {
            metrics_.count_error(responses[i].error_code);
        }
        if (batch[i].on_complete) {
            try {
                batch[i].on_complete(std::move(responses[i]));
            } catch (...) {
                // A completion channel must never take the dispatcher down.
            }
        } else {
            batch[i].promise.set_value(std::move(responses[i]));
        }
    }
}

void ExplanationService::observe_attributions(
    ModelEntry& entry, const std::vector<double>& attributions,
    std::uint64_t fingerprint) {
    const std::size_t window = config_.drift_window;
    if (window == 0 || attributions.empty()) return;
    ModelEntry::DriftState& d = entry.drift;
    if (d.fingerprint != fingerprint || d.ref_abs.size() != attributions.size()) {
        // First observation, or the model version changed under a hot swap:
        // attributions are not comparable across versions, so both windows
        // restart against the new fingerprint.
        d.fingerprint = fingerprint;
        d.ref_abs.assign(attributions.size(), 0.0);
        d.ref_signed.assign(attributions.size(), 0.0);
        d.cur_abs.assign(attributions.size(), 0.0);
        d.cur_signed.assign(attributions.size(), 0.0);
        d.ref_count = 0;
        d.cur_count = 0;
    }
    if (d.ref_count < window) {
        // Still sealing the reference: the first `window` full-fidelity
        // explanations served define "normal".
        for (std::size_t j = 0; j < attributions.size(); ++j) {
            d.ref_abs[j] += std::abs(attributions[j]);
            d.ref_signed[j] += attributions[j];
        }
        ++d.ref_count;
        return;
    }
    for (std::size_t j = 0; j < attributions.size(); ++j) {
        d.cur_abs[j] += std::abs(attributions[j]);
        d.cur_signed[j] += attributions[j];
    }
    if (++d.cur_count < window) return;

    const auto mean_of = [](const std::vector<double>& sums, std::size_t n) {
        std::vector<double> out = sums;
        for (double& v : out) v /= static_cast<double>(n);
        return out;
    };
    xai::GlobalAttribution reference;
    reference.mean_abs = mean_of(d.ref_abs, d.ref_count);
    reference.mean_signed = mean_of(d.ref_signed, d.ref_count);
    reference.num_instances = d.ref_count;
    xai::GlobalAttribution current;
    current.mean_abs = mean_of(d.cur_abs, d.cur_count);
    current.mean_signed = mean_of(d.cur_signed, d.cur_count);
    current.num_instances = d.cur_count;

    metrics_.drift_checks.inc();
    try {
        const auto report =
            xai::attribution_drift(reference, current, config_.drift_thresholds);
        if (report.drifted) {
            entry.epoch.fetch_add(1, std::memory_order_relaxed);
            metrics_.drift_flushes.inc();
        }
    } catch (const std::exception&) {
        // Degenerate windows (all-zero attributions) are not drift.
    }
    std::fill(d.cur_abs.begin(), d.cur_abs.end(), 0.0);
    std::fill(d.cur_signed.begin(), d.cur_signed.end(), 0.0);
    d.cur_count = 0;
}

std::string ExplanationService::snapshot_path_for(const ModelEntry& entry,
                                                  std::uint64_t fingerprint) const {
    std::string path = config_.snapshot_path;
    // The default model keeps the bare configured path (single-model layouts
    // stay byte-compatible); every other model gets a fingerprint-qualified
    // name so two models can never collide or cross-restore.
    if (entry.name != registry_.default_name())
        path += "." + fingerprint_hex(fingerprint);
    return path + config_.snapshot_suffix;
}

void ExplanationService::load_snapshot() {
    for (const auto& entry : registry_.entries()) {
        const auto snap = entry->current();
        const SnapshotHeader expect{snap->fingerprint, background_fingerprint_,
                                    config_.cache_quantum};
        SnapshotLoadResult result =
            read_snapshot(snapshot_path_for(*entry, snap->fingerprint), expect);
        // A missing file, or one whose header pins a fingerprint no longer
        // registered here, just starts this model cold — it must never abort
        // the restore of the other models.
        if (!result.loaded) continue;
        for (SnapshotRecord& rec : result.records)
            entry->cache.insert(CacheKey(std::move(rec.key_words), rec.key_context),
                                std::move(rec.explanation));
        metrics_.snapshot_records_loaded.inc(result.records.size());
        metrics_.snapshot_records_skipped.inc(result.skipped);
    }
}

void ExplanationService::save_snapshot() {
    for (const auto& entry : registry_.entries()) {
        const auto snap = entry->current();
        auto entries = entry->cache.export_lru_oldest_first();
        std::vector<SnapshotRecord> records;
        records.reserve(entries.size());
        for (auto& [key, explanation] : entries)
            records.push_back(
                SnapshotRecord{key.words(), key.context(), std::move(explanation)});
        const SnapshotHeader header{snap->fingerprint, background_fingerprint_,
                                    config_.cache_quantum};
        const std::string path = snapshot_path_for(*entry, snap->fingerprint);
        if (!write_snapshot(path, header, records)) continue;
        metrics_.snapshot_writes.inc();
        // cache_corrupt fault: flip one byte mid-file, so the next startup
        // must exercise the reader's skip-and-resync path for real.
        if (fault_fires(config_.fault_injector.get(), FaultPoint::cache_corrupt)) {
            if (std::FILE* f = std::fopen(path.c_str(), "r+b")) {
                std::fseek(f, 0, SEEK_END);
                const long size = std::ftell(f);
                if (size > 0) {
                    std::fseek(f, size / 2, SEEK_SET);
                    const int c = std::fgetc(f);
                    if (c != EOF) {
                        std::fseek(f, size / 2, SEEK_SET);
                        std::fputc(c ^ 0xFF, f);
                    }
                }
                std::fclose(f);
            }
        }
    }
}

ServiceStats ExplanationService::stats() const {
    ServiceStats s;
    s.requests_accepted = metrics_.requests_accepted.value();
    s.requests_rejected = metrics_.requests_rejected.value();
    s.requests_completed = metrics_.requests_completed.value();
    s.requests_degraded = metrics_.requests_degraded.value();
    s.batches = metrics_.batches.value();
    s.cache_hits = metrics_.cache_hits.value();
    s.cache_misses = metrics_.cache_misses.value();
    for (std::size_t i = 0; i < kNumServeErrors; ++i)
        s.errors_by_reason[i] = metrics_.errors_by_reason[i].value();
    s.worker_respawns = metrics_.worker_respawns.value();
    s.worker_stalls = metrics_.worker_stalls.value();
    s.faults_injected =
        config_.fault_injector ? config_.fault_injector->total_fired() : 0;
    s.snapshot_writes = metrics_.snapshot_writes.value();
    s.snapshot_records_loaded = metrics_.snapshot_records_loaded.value();
    s.snapshot_records_skipped = metrics_.snapshot_records_skipped.value();
    s.queue_depth = metrics_.queue_depth.value();
    s.queue_depth_max = metrics_.queue_depth.max();
    s.batch_size_mean = metrics_.batch_size.mean();
    s.batch_size_max = metrics_.batch_size.max();
    s.service_us_p50 = metrics_.service_time_us.quantile(0.50);
    s.service_us_p95 = metrics_.service_time_us.quantile(0.95);
    s.service_us_p99 = metrics_.service_time_us.quantile(0.99);
    s.service_us_mean = metrics_.service_time_us.mean();
    s.compute_us_mean = metrics_.compute_time_us.mean();
    s.model_evals = metrics_.model_evals.value();
    s.probe_rows_p50 = metrics_.probe_rows.quantile(0.50);
    s.probe_rows_mean = metrics_.probe_rows.mean();
    s.probe_rows_max = metrics_.probe_rows.max();
    s.fast_path_hits = metrics_.fast_path_hits.value();
    for (std::size_t i = 0; i < kNumExplainers; ++i) {
        const std::uint64_t requests = metrics_.explainer_requests[i].value();
        if (requests == 0) continue;
        ExplainerSliceStats e;
        e.name = kExplainerNames[i];
        e.requests = requests;
        e.fast_path_hits = metrics_.explainer_fast_hits[i].value();
        e.compute_us_p50 = metrics_.explainer_compute_us[i].quantile(0.50);
        e.compute_us_p99 = metrics_.explainer_compute_us[i].quantile(0.99);
        e.compute_us_mean = metrics_.explainer_compute_us[i].mean();
        s.explainers.push_back(std::move(e));
    }
    s.drift_checks = metrics_.drift_checks.value();
    s.drift_flushes = metrics_.drift_flushes.value();
    s.adaptive_wait_us = metrics_.adaptive_wait_us.value();

    // Registry section: per-model slices in registration order.  The
    // top-level cache occupancy/epoch fields report fleet totals (epoch:
    // the default model's, preserving their single-model meaning).
    const auto entries = registry_.entries();
    const std::string default_name = registry_.default_name();
    s.models_registered = entries.size();
    for (const auto& entry : entries) {
        const auto snap = entry->current();
        const CacheStats cs = entry->cache.stats();
        ModelServiceStats m;
        m.name = entry->name;
        m.fingerprint = fingerprint_hex(snap->fingerprint);
        m.admitted = entry->admitted.value();
        m.rejected_quota = entry->rejected_quota.value();
        m.swaps = entry->swaps.value();
        m.evals = entry->evals.value();
        m.completed = entry->completed.value();
        m.cache_entries = cs.entries;
        m.cache_evictions = cs.evictions;
        m.cache_epoch = entry->epoch.load(std::memory_order_relaxed);
        m.queued = queue_.class_size(entry->class_id);
        m.weight = entry->weight.load(std::memory_order_relaxed);
        m.quota = entry->quota.load(std::memory_order_relaxed);
        m.base_value = snap->base_value.load(std::memory_order_relaxed);
        m.breaker_state = static_cast<std::uint64_t>(entry->breaker_state());
        m.breaker_opens = entry->breaker_opens.value();
        m.breaker_rejected = entry->breaker_rejected.value();
        s.cache_entries += m.cache_entries;
        s.cache_evictions += m.cache_evictions;
        s.model_swaps += m.swaps;
        if (entry->name == default_name) s.cache_epoch = m.cache_epoch;
        s.models.push_back(std::move(m));
    }
    return s;
}

}  // namespace xnfv::serve
