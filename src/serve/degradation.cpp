#include "serve/degradation.hpp"

#include <algorithm>

namespace xnfv::serve {

DegradationPolicy::DegradationPolicy(DegradationConfig config) : config_(config) {
    config_.reduced_budget_scale = std::clamp(config_.reduced_budget_scale, 1e-3, 1.0);
    // A lone reduced threshold still defines a ladder; a baseline threshold
    // below the reduced one would make `reduced` unreachable, so order them.
    if (config_.reduced_queue_depth != 0 && config_.baseline_queue_depth != 0)
        config_.baseline_queue_depth =
            std::max(config_.baseline_queue_depth, config_.reduced_queue_depth);
    if (config_.reduced_p99_us > 0.0 && config_.baseline_p99_us > 0.0)
        config_.baseline_p99_us = std::max(config_.baseline_p99_us, config_.reduced_p99_us);
}

DegradeLevel DegradationPolicy::classify(const Load& load) const noexcept {
    const auto crossed = [](double value, double threshold) {
        return threshold > 0.0 && value >= threshold;
    };
    const auto depth = static_cast<double>(load.queue_depth);
    if (crossed(depth, static_cast<double>(config_.baseline_queue_depth)) ||
        crossed(load.service_p99_us, config_.baseline_p99_us))
        return DegradeLevel::baseline;
    if (crossed(depth, static_cast<double>(config_.reduced_queue_depth)) ||
        crossed(load.service_p99_us, config_.reduced_p99_us))
        return DegradeLevel::reduced;
    return DegradeLevel::full;
}

}  // namespace xnfv::serve
