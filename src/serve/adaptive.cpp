#include "serve/adaptive.hpp"

#include <algorithm>

namespace xnfv::serve {

AdaptiveBatchPolicy::AdaptiveBatchPolicy(AdaptiveBatchConfig config)
    : config_(config) {
    if (config_.min_wait < std::chrono::microseconds{0})
        config_.min_wait = std::chrono::microseconds{0};
    if (config_.max_wait < config_.min_wait) config_.max_wait = config_.min_wait;
    config_.shrink_start = std::clamp(config_.shrink_start, 0.01, 0.99);
}

double AdaptiveBatchPolicy::pressure(const Load& load) const noexcept {
    double p = 0.0;
    if (config_.slo_p99_us > 0.0) {
        // Ramp from shrink_start * SLO (pressure 0) to the SLO (pressure 1).
        const double start = config_.shrink_start * config_.slo_p99_us;
        const double span = config_.slo_p99_us - start;
        if (span > 0.0)
            p = std::max(p, (load.service_p99_us - start) / span);
    }
    if (config_.queue_high != 0) {
        p = std::max(p, static_cast<double>(load.queue_depth) /
                            static_cast<double>(config_.queue_high));
    }
    return std::clamp(p, 0.0, 1.0);
}

std::chrono::microseconds AdaptiveBatchPolicy::effective_wait(
    const Load& load) const noexcept {
    if (!config_.enabled()) return config_.max_wait;
    const double p = pressure(load);
    const auto span =
        static_cast<double>((config_.max_wait - config_.min_wait).count());
    const auto wait = config_.min_wait.count() +
                      static_cast<std::chrono::microseconds::rep>(span * (1.0 - p));
    return std::chrono::microseconds{wait};
}

}  // namespace xnfv::serve
