// Minimal JSON for the newline-delimited request loop of `xnfv_cli serve`.
//
// The service speaks one flat JSON object per line in each direction; this
// header provides just enough of RFC 8259 to parse those requests and render
// responses with round-trippable doubles — no dependency, no allocator
// tricks, no streaming.  Numbers are parsed as doubles; response doubles are
// printed with %.17g so the served bytes decode to the exact binary value
// the explainer produced (the determinism tests compare these strings).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/errors.hpp"

namespace xnfv::serve {

/// Parsed JSON value (object keys keep first occurrence; duplicates ignored).
class JsonValue {
public:
    enum class Type : std::uint8_t { null, boolean, number, string, array, object };

    Type type = Type::null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    [[nodiscard]] bool is_null() const noexcept { return type == Type::null; }

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(const std::string& key) const;

    /// Typed member accessors with defaults (for flat request objects).
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] double get_number(const std::string& key, double fallback) const;
    [[nodiscard]] bool has(const std::string& key) const { return find(key) != nullptr; }
};

/// Parses one complete JSON document; throws std::runtime_error with a
/// position-annotated message on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Outcome of validating a request's `features` member.  On failure `error`
/// names the taxonomy entry (serve/errors.hpp) and `message` the detail;
/// `features` is then empty.
struct FeatureExtraction {
    std::vector<double> features;
    ServeError error = ServeError::none;
    std::string message;
};

/// Extracts and validates `request["features"]`: it must be an array of
/// exactly `expected_dim` numbers, all finite.  A missing/non-array member,
/// wrong dimensionality, or a non-number element is `bad_request`; a NaN or
/// +-Inf value is `bad_features` (reachable from the wire: strtod parses
/// `1e999` to Inf).  Never throws.
[[nodiscard]] FeatureExtraction extract_features(const JsonValue& request,
                                                 std::size_t expected_dim);

/// Escapes a string for embedding inside JSON quotes ("\n" -> "\\n", ...).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest round-trippable rendering of a double (%.17g; nan/inf -> null,
/// which JSON cannot represent).
[[nodiscard]] std::string json_number(double v);

/// Incremental writer for one flat response object:
///   JsonWriter w; w.field("id", 3.0); ... w.finish() -> {"id":3,...}
class JsonWriter {
public:
    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, const char* value);
    void field(const std::string& key, double value);
    void field(const std::string& key, std::uint64_t value);
    void field(const std::string& key, bool value);
    void field_array(const std::string& key, const std::vector<double>& values);
    /// Inserts pre-rendered JSON (nested object/array) verbatim.
    void field_raw(const std::string& key, const std::string& json);

    [[nodiscard]] std::string finish() const { return "{" + body_ + "}"; }

private:
    void key_prefix(const std::string& key);
    std::string body_;
};

}  // namespace xnfv::serve
