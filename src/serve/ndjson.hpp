// Minimal JSON for the newline-delimited request loop of `xnfv_cli serve`.
//
// The service speaks one flat JSON object per line in each direction; this
// header provides just enough of RFC 8259 to parse those requests and render
// responses with round-trippable doubles — no dependency, no allocator
// tricks, no streaming.  Numbers are parsed as doubles; response doubles are
// printed with %.17g so the served bytes decode to the exact binary value
// the explainer produced (the determinism tests compare these strings).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/errors.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"

namespace xnfv::serve {

/// Parsed JSON value (object keys keep first occurrence; duplicates ignored).
class JsonValue {
public:
    enum class Type : std::uint8_t { null, boolean, number, string, array, object };

    Type type = Type::null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    [[nodiscard]] bool is_null() const noexcept { return type == Type::null; }

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(const std::string& key) const;

    /// Typed member accessors with defaults (for flat request objects).
    [[nodiscard]] std::string get_string(const std::string& key,
                                         const std::string& fallback) const;
    [[nodiscard]] double get_number(const std::string& key, double fallback) const;
    [[nodiscard]] bool has(const std::string& key) const { return find(key) != nullptr; }
};

/// Parses one complete JSON document; throws std::runtime_error with a
/// position-annotated message on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Outcome of validating a request's `features` member.  On failure `error`
/// names the taxonomy entry (serve/errors.hpp) and `message` the detail;
/// `features` is then empty.
struct FeatureExtraction {
    std::vector<double> features;
    ServeError error = ServeError::none;
    std::string message;
};

/// Extracts and validates `request["features"]`: it must be an array of
/// exactly `expected_dim` numbers, all finite.  A missing/non-array member,
/// wrong dimensionality, or a non-number element is `bad_request`; a NaN or
/// +-Inf value is `bad_features` (reachable from the wire: strtod parses
/// `1e999` to Inf).  Never throws.
[[nodiscard]] FeatureExtraction extract_features(const JsonValue& request,
                                                 std::size_t expected_dim);

/// One decoded ND-JSON frame from the incremental wire path.  `error` is
/// `none` for a well-formed line (whose bytes are in `text`, newline and any
/// trailing CR stripped); otherwise it names what was wrong with the line
/// (`bad_request`) and `message` carries the detail — the frame is then a
/// poison pill the caller should answer with a structured error.
struct Frame {
    std::string text;
    ServeError error = ServeError::none;
    std::string message;
};

/// Incremental newline-delimited frame splitter for the non-blocking TCP
/// path, where a read() may deliver half a line, three lines, or a line
/// split anywhere — including mid-way through a multi-byte UTF-8 sequence
/// (bytes are buffered verbatim until the newline, so splits can never
/// corrupt a sequence).  Hardened per the serving wire contract:
///   * CRLF tolerance: one trailing '\r' before the newline is stripped;
///   * oversized lines: a line longer than `max_line` bytes yields exactly
///     one bad_request frame and the rest of that line is discarded up to
///     its newline (the connection survives, the request does not);
///   * embedded NUL bytes: rejected as bad_request (a NUL inside JSON text
///     is never valid and would truncate C-string handling downstream);
///   * blank / whitespace-only lines are skipped, matching the stdin loop.
/// Never throws; never allocates more than max_line + O(chunk) bytes.
class LineDecoder {
public:
    explicit LineDecoder(std::size_t max_line = 1 << 20);

    /// Consumes `n` bytes from the wire and appends every completed frame
    /// to `frames`.  Returns the number of frames appended.
    std::size_t feed(const char* data, std::size_t n, std::vector<Frame>& frames);

    /// Bytes buffered waiting for a newline (a partial line at EOF is
    /// dropped by design: a peer that closes mid-line never completed the
    /// request).
    [[nodiscard]] std::size_t buffered() const noexcept { return line_.size(); }
    [[nodiscard]] std::size_t max_line() const noexcept { return max_line_; }

private:
    void complete_line(std::vector<Frame>& frames);

    std::size_t max_line_;
    std::string line_;
    bool skipping_ = false;  ///< discarding the tail of an oversized line
    bool has_nul_ = false;   ///< current line contains an embedded NUL
};

/// Renders one served response as a single flat JSON object (no newline).
/// This is THE wire format: the stdin loop and the TCP front-end both call
/// it, so a served explanation is byte-identical on either transport.
[[nodiscard]] std::string render_response(const ExplainResponse& response);

/// Renders a stats snapshot as the `{"op":"stats"}` response payload.  Net
/// front-end fields are included only when `stats.net_enabled` is set.
[[nodiscard]] std::string render_stats(const ServiceStats& stats);

/// Escapes a string for embedding inside JSON quotes ("\n" -> "\\n", ...).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest round-trippable rendering of a double (%.17g; nan/inf -> null,
/// which JSON cannot represent).
[[nodiscard]] std::string json_number(double v);

/// Incremental writer for one flat response object:
///   JsonWriter w; w.field("id", 3.0); ... w.finish() -> {"id":3,...}
class JsonWriter {
public:
    void field(const std::string& key, const std::string& value);
    void field(const std::string& key, const char* value);
    void field(const std::string& key, double value);
    void field(const std::string& key, std::uint64_t value);
    void field(const std::string& key, bool value);
    void field_array(const std::string& key, const std::vector<double>& values);
    /// Inserts pre-rendered JSON (nested object/array) verbatim.
    void field_raw(const std::string& key, const std::string& json);

    [[nodiscard]] std::string finish() const { return "{" + body_ + "}"; }

private:
    void key_prefix(const std::string& key);
    std::string body_;
};

}  // namespace xnfv::serve
