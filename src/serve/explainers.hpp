// The single registry of explainer method names.
//
// Every place that enumerates explainers — make_explainer's dispatch,
// known_method validation, the router's fast-path table, the CLI usage
// text, ND-JSON error messages, and the per-explainer stats slices — draws
// from this one array, so adding a method is a one-line change that cannot
// leave a stale list behind in an error string or a --help screen.
//
// Order is load-bearing: the index of a name here is the index of its
// per-explainer metrics slice (ServiceMetrics::explainer_*), so the array
// is append-only.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace xnfv::serve {

inline constexpr std::array<const char*, 6> kExplainerNames = {
    "tree_shap", "kernel_shap", "sampling",
    "lime",      "occlusion",   "integrated_gradients",
};
inline constexpr std::size_t kNumExplainers = kExplainerNames.size();

/// The routing pseudo-method: resolved per model snapshot to an exact fast
/// path (tree_shap / integrated_gradients) or the probe default.  Never a
/// valid *resolved* method — responses always carry a concrete name.
inline constexpr const char* kAutoMethod = "auto";

/// Index of `method` in kExplainerNames; kNumExplainers when unknown.
[[nodiscard]] inline std::size_t explainer_index(const std::string& method) noexcept {
    for (std::size_t i = 0; i < kNumExplainers; ++i)
        if (method == kExplainerNames[i]) return i;
    return kNumExplainers;
}

/// True when `method` names a concrete explainer (not "auto").
[[nodiscard]] inline bool known_explainer(const std::string& method) noexcept {
    return explainer_index(method) < kNumExplainers;
}

/// "tree_shap|kernel_shap|..." — usage screens and error messages.
[[nodiscard]] inline std::string explainer_list(const char* sep = "|") {
    std::string out;
    for (const char* name : kExplainerNames) {
        if (!out.empty()) out += sep;
        out += name;
    }
    return out;
}

/// Same list with "auto" first (everywhere a *request* method is accepted).
[[nodiscard]] inline std::string explainer_list_with_auto(const char* sep = "|") {
    return std::string(kAutoMethod) + sep + explainer_list(sep);
}

}  // namespace xnfv::serve
