// Graceful-degradation policy: step overloaded requests down a ladder
// instead of rejecting them.
//
// Sampling-based attribution is budget-tunable — fewer KernelSHAP
// coalitions or Shapley permutations yield a coarser but still
// Shapley-consistent answer — which makes degradation a principled overload
// response for an explanation service: a NOC operator staring at an
// incident is better served by a cheap approximate attribution *now* than
// by queue_full.  The ladder:
//
//   full      — the requested method at its configured sample budget
//   reduced   — the requested method with its budget scaled down
//   baseline  — single-feature occlusion (the cheapest local attribution)
//
// Like the micro-batcher, the policy is a pure object: it maps observed
// load (the queue depth a request saw at admission, the current service-time
// p99) to a level, and never reads a clock or a queue itself — so every
// threshold is unit-testable without sleeps.  Degraded results are
// deterministic (same seed + same level => same bytes) and are stamped with
// `degraded` plus the budget actually used; they bypass the cache so a
// transient overload can never pin coarse answers into it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xnfv::serve {

/// Rung of the degradation ladder, ordered by decreasing fidelity.
enum class DegradeLevel : std::uint8_t {
    full = 0,
    reduced = 1,
    baseline = 2,
};

[[nodiscard]] constexpr const char* to_string(DegradeLevel level) noexcept {
    switch (level) {
        case DegradeLevel::full: return "full";
        case DegradeLevel::reduced: return "reduced";
        case DegradeLevel::baseline: return "baseline";
    }
    return "unknown";
}

struct DegradationConfig {
    /// Queue-depth thresholds (depth observed at admission); 0 disables the
    /// corresponding rung.  A depth >= baseline_queue_depth outranks
    /// reduced_queue_depth.
    std::size_t reduced_queue_depth = 0;
    std::size_t baseline_queue_depth = 0;
    /// Service-time p99 thresholds in microseconds; 0 disables.
    double reduced_p99_us = 0.0;
    double baseline_p99_us = 0.0;
    /// Sample-budget multiplier applied at `reduced` (clamped to (0, 1]).
    double reduced_budget_scale = 0.25;

    [[nodiscard]] bool enabled() const noexcept {
        return reduced_queue_depth != 0 || baseline_queue_depth != 0 ||
               reduced_p99_us > 0.0 || baseline_p99_us > 0.0;
    }
};

/// Pure load -> ladder-rung classifier.
class DegradationPolicy {
public:
    DegradationPolicy() = default;
    explicit DegradationPolicy(DegradationConfig config);

    struct Load {
        std::size_t queue_depth = 0;  ///< depth the request saw at admission
        double service_p99_us = 0.0;  ///< current end-to-end p99
    };

    /// The most degraded rung any crossed threshold demands.
    [[nodiscard]] DegradeLevel classify(const Load& load) const noexcept;

    [[nodiscard]] const DegradationConfig& config() const noexcept { return config_; }
    [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }

private:
    DegradationConfig config_{};
};

}  // namespace xnfv::serve
