// Sharded LRU cache of computed explanations.
//
// NFV monitoring traffic is highly repetitive: the same telemetry rows (or
// rows quantized to the same grid) are flagged again and again across
// polling intervals.  An explanation is a pure function of
// (model, explainer spec, instance), so repeats can skip the entire
// model-evaluation loop.  Keys combine
//   * a model fingerprint (hash of the serialized model),
//   * an explainer-config hash (method, seed, background fingerprint,
//     quantization step),
//   * the quantized feature vector (bit patterns when quantum == 0).
// The store is sharded by key hash: each shard has its own mutex, intrusive
// LRU list and hash map, so concurrent lookups from batch workers contend
// only within a shard.  Hits, misses and evictions are counted per cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/explanation.hpp"
#include "serve/metrics.hpp"

namespace xnfv::serve {

/// Precomputed cache key: the quantized feature words plus the combined
/// model/config context, hashed once at construction.
class CacheKey {
public:
    /// Quantizes `features` with step `quantum` (0 = exact: raw IEEE-754 bit
    /// patterns) and mixes in `context` (model fingerprint ^ config hash).
    CacheKey(std::span<const double> features, double quantum, std::uint64_t context);

    /// Rehydrates a key from its persisted representation (serve/snapshot):
    /// the already-quantized words plus the context, hash recomputed.  A key
    /// rebuilt this way compares equal to the original.
    CacheKey(std::vector<std::uint64_t> words, std::uint64_t context);

    [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }
    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
        return words_;
    }
    [[nodiscard]] std::uint64_t context() const noexcept { return context_; }
    [[nodiscard]] bool operator==(const CacheKey& other) const noexcept {
        return hash_ == other.hash_ && context_ == other.context_ &&
               words_ == other.words_;
    }

private:
    void rehash() noexcept;

    std::vector<std::uint64_t> words_;
    std::uint64_t context_;
    std::uint64_t hash_;
};

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
};

/// Sharded LRU map from CacheKey to Explanation.
class ExplanationCache {
public:
    /// `capacity` entries total, spread over `shards` independent LRU lists
    /// (both clamped to >= 1; shards is rounded down to a power of two so
    /// shard selection is a mask).
    ExplanationCache(std::size_t capacity, std::size_t shards);

    ExplanationCache(const ExplanationCache&) = delete;
    ExplanationCache& operator=(const ExplanationCache&) = delete;

    /// Returns a copy of the cached explanation and refreshes its LRU
    /// position, or nullopt on miss.  Counts a hit or a miss.
    [[nodiscard]] std::optional<xnfv::xai::Explanation> lookup(const CacheKey& key);

    /// Inserts (or refreshes) an entry, evicting the shard's LRU tail when
    /// the shard is at capacity.
    void insert(const CacheKey& key, xnfv::xai::Explanation explanation);

    /// Copies every entry out, least-recently-used first (per shard, shards
    /// concatenated).  Re-inserting the result in order reproduces each
    /// shard's recency order exactly — the snapshot writer uses this so a
    /// restored cache evicts in the same order the live one would have.
    [[nodiscard]] std::vector<std::pair<CacheKey, xnfv::xai::Explanation>>
    export_lru_oldest_first() const;

    [[nodiscard]] CacheStats stats() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const noexcept;
    [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

private:
    struct Entry {
        CacheKey key;
        xnfv::xai::Explanation explanation;
    };
    struct KeyHash {
        std::size_t operator()(const CacheKey& k) const noexcept {
            return static_cast<std::size_t>(k.hash());
        }
    };
    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru;  ///< front = most recent
        std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
    };

    [[nodiscard]] Shard& shard_for(const CacheKey& key) noexcept {
        // High bits pick the shard; low bits drive the in-shard hash map.
        return shards_[(key.hash() >> 48) & shard_mask_];
    }

    std::vector<Shard> shards_;
    std::uint64_t shard_mask_;
    std::size_t shard_capacity_;
    Counter hits_, misses_, evictions_;
};

/// FNV-1a over arbitrary bytes — the project-wide fingerprint helper for
/// cache keys (model text, config fields, background data).
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;
[[nodiscard]] std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t seed) noexcept;

}  // namespace xnfv::serve
