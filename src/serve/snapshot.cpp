#include "serve/snapshot.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace xnfv::serve {

namespace {

constexpr std::uint64_t kFileMagic = 0x3150414e53564e58ULL;  // "XNVSNAP1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x52564e58U;  // "XNVR"

/// The CRC-32 lookup table, built once.
const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/// Append-only byte sink for building a record payload.
struct ByteWriter {
    std::vector<std::uint8_t> bytes;

    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }
    void raw(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        bytes.insert(bytes.end(), b, b + n);
    }
};

/// Bounds-checked cursor over a record payload.  Every read reports success;
/// a short or malformed payload fails the record instead of crashing.
struct ByteReader {
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;

    [[nodiscard]] bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
    [[nodiscard]] bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
    [[nodiscard]] bool f64(double& v) {
        std::uint64_t bits = 0;
        if (!u64(bits)) return false;
        v = std::bit_cast<double>(bits);
        return true;
    }
    [[nodiscard]] bool str(std::string& s) {
        std::uint32_t len = 0;
        if (!u32(len) || bytes.size() - pos < len) return false;
        s.assign(reinterpret_cast<const char*>(bytes.data() + pos), len);
        pos += len;
        return true;
    }
    [[nodiscard]] bool raw(void* p, std::size_t n) {
        if (bytes.size() - pos < n) return false;
        std::memcpy(p, bytes.data() + pos, n);
        pos += n;
        return true;
    }
    [[nodiscard]] bool done() const { return pos == bytes.size(); }
};

[[nodiscard]] std::vector<std::uint8_t> encode_record(const SnapshotRecord& rec) {
    ByteWriter w;
    w.u64(rec.key_context);
    w.u64(rec.key_words.size());
    for (const std::uint64_t word : rec.key_words) w.u64(word);
    w.str(rec.explanation.method);
    w.f64(rec.explanation.prediction);
    w.f64(rec.explanation.base_value);
    w.u64(rec.explanation.attributions.size());
    for (const double a : rec.explanation.attributions) w.f64(a);
    w.u64(rec.explanation.feature_names.size());
    for (const std::string& name : rec.explanation.feature_names) w.str(name);
    return std::move(w.bytes);
}

[[nodiscard]] bool decode_record(std::span<const std::uint8_t> payload,
                                 SnapshotRecord& rec) {
    ByteReader r{payload};
    std::uint64_t n = 0;
    if (!r.u64(rec.key_context) || !r.u64(n)) return false;
    // A length prefix larger than the remaining payload is corruption, not a
    // huge record; the per-element reads below would catch it, but checking
    // up front avoids a pathological reserve.
    if (n > payload.size() / sizeof(std::uint64_t)) return false;
    rec.key_words.resize(n);
    for (std::uint64_t& word : rec.key_words)
        if (!r.u64(word)) return false;
    if (!r.str(rec.explanation.method) || !r.f64(rec.explanation.prediction) ||
        !r.f64(rec.explanation.base_value) || !r.u64(n))
        return false;
    if (n > payload.size() / sizeof(double)) return false;
    rec.explanation.attributions.resize(n);
    for (double& a : rec.explanation.attributions)
        if (!r.f64(a)) return false;
    if (!r.u64(n)) return false;
    if (n > payload.size()) return false;
    rec.explanation.feature_names.resize(n);
    for (std::string& name : rec.explanation.feature_names)
        if (!r.str(name)) return false;
    return r.done();
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
    const auto& table = crc_table();
    std::uint32_t c = 0xFFFFFFFFU;
    for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
    return c ^ 0xFFFFFFFFU;
}

bool write_snapshot(const std::string& path, const SnapshotHeader& header,
                    const std::vector<SnapshotRecord>& records) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        ByteWriter h;
        h.u64(kFileMagic);
        h.u32(kVersion);
        h.u64(header.model_fingerprint);
        h.u64(header.background_fingerprint);
        h.f64(header.quantum);
        out.write(reinterpret_cast<const char*>(h.bytes.data()),
                  static_cast<std::streamsize>(h.bytes.size()));
        for (const SnapshotRecord& rec : records) {
            const std::vector<std::uint8_t> payload = encode_record(rec);
            ByteWriter frame;
            frame.u32(kRecordMagic);
            frame.u32(static_cast<std::uint32_t>(payload.size()));
            frame.u32(crc32(payload));
            out.write(reinterpret_cast<const char*>(frame.bytes.data()),
                      static_cast<std::streamsize>(frame.bytes.size()));
            out.write(reinterpret_cast<const char*>(payload.data()),
                      static_cast<std::streamsize>(payload.size()));
        }
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

SnapshotLoadResult read_snapshot(const std::string& path, const SnapshotHeader& expect) {
    SnapshotLoadResult result;
    std::ifstream in(path, std::ios::binary);
    if (!in) return result;
    std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
    ByteReader r{data};

    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    SnapshotHeader header;
    if (!r.u64(magic) || magic != kFileMagic || !r.u32(version) ||
        version != kVersion || !r.u64(header.model_fingerprint) ||
        !r.u64(header.background_fingerprint) || !r.f64(header.quantum))
        return result;
    if (header.model_fingerprint != expect.model_fingerprint ||
        header.background_fingerprint != expect.background_fingerprint ||
        header.quantum != expect.quantum)
        return result;
    result.loaded = true;

    // Record scan.  On any per-record failure, resync: advance one byte past
    // the failed record's magic and search for the next one, so a single
    // corrupted record cannot take the rest of the snapshot with it.
    while (r.pos < data.size()) {
        const std::size_t record_start = r.pos;
        std::uint32_t magic32 = 0, len = 0, crc = 0;
        bool ok = r.u32(magic32) && magic32 == kRecordMagic && r.u32(len) &&
                  r.u32(crc) && data.size() - r.pos >= len;
        if (ok) {
            const std::span<const std::uint8_t> payload(data.data() + r.pos, len);
            SnapshotRecord rec;
            if (crc32(payload) == crc && decode_record(payload, rec)) {
                r.pos += len;
                result.records.push_back(std::move(rec));
                continue;
            }
            ok = false;
        }
        // Truncated tail: no further complete record can start here.
        if (data.size() - record_start < 12) {
            if (!ok) ++result.skipped;
            break;
        }
        ++result.skipped;
        // Resync on the next record magic after this failed start.
        std::size_t next = record_start + 1;
        const std::uint8_t m0 = static_cast<std::uint8_t>(kRecordMagic & 0xFF);
        while (next + 4 <= data.size()) {
            if (data[next] == m0) {
                std::uint32_t candidate = 0;
                std::memcpy(&candidate, data.data() + next, 4);
                if (candidate == kRecordMagic) break;
            }
            ++next;
        }
        if (next + 4 > data.size()) break;
        r.pos = next;
    }
    return result;
}

}  // namespace xnfv::serve
