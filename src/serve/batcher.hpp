// Micro-batching policy: coalesce queued requests into one parallel flush.
//
// Per-request explanation cost is dominated by model evaluations; executing
// requests one at a time leaves the PR-1 thread pool idle between arrivals.
// The batcher accumulates pending jobs and flushes when either
//   * max_batch requests are pending (flush-by-size), or
//   * max_wait has elapsed since the *first* pending request
//     (flush-by-timeout — bounds the latency a lone request pays for the
//     chance of being batched).
//
// This class is a pure policy object: it never reads the clock or touches a
// thread.  The caller (ExplanationService's dispatcher, or a test) passes
// `now` explicitly, which makes flush-by-timeout deterministic under test.
// Batching never changes results: each job is explained with its own
// RNG stream derived from its request seed, so attribution bytes are
// independent of batch composition (see DESIGN.md section 9).
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "serve/request_queue.hpp"

namespace xnfv::serve {

struct BatcherConfig {
    /// Flush as soon as this many jobs are pending (clamped to >= 1).
    std::size_t max_batch = 16;
    /// Flush this long after the oldest pending job arrived.
    std::chrono::microseconds max_wait{200};
};

class MicroBatcher {
public:
    using TimePoint = std::chrono::steady_clock::time_point;

    explicit MicroBatcher(BatcherConfig config);

    /// Adds a job to the pending batch; `now` starts the wait timer when the
    /// batch was empty.  Returns true when the batch hit max_batch and must
    /// be flushed.
    [[nodiscard]] bool add(Job job, TimePoint now);

    /// True when there is a pending batch whose timer expired at `now` (or
    /// that is full, or that holds a request whose own deadline has passed —
    /// expired requests must be answered with deadline_exceeded promptly,
    /// not parked until the wait timer fires).  An empty batcher is never
    /// due.
    [[nodiscard]] bool due(TimePoint now) const noexcept;

    /// When the pending batch must next be looked at: the flush timer or the
    /// earliest per-request deadline, whichever comes first; nullopt when
    /// empty.  The dispatcher parks on the queue until min(deadline, new
    /// arrival).
    [[nodiscard]] std::optional<TimePoint> deadline() const noexcept;

    /// Hands back the pending batch (possibly fewer than max_batch jobs on a
    /// timeout flush) and resets.
    [[nodiscard]] std::vector<Job> flush();

    /// Live-tunes the flush timeout (the adaptive policy shrinks it under
    /// load).  Applies to the pending batch too: due()/deadline() always use
    /// the current value, so a shrink takes effect immediately.
    void set_max_wait(std::chrono::microseconds wait) noexcept {
        config_.max_wait = wait;
    }

    [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
    [[nodiscard]] const BatcherConfig& config() const noexcept { return config_; }

private:
    BatcherConfig config_;
    std::vector<Job> pending_;
    TimePoint oldest_{};
    /// Earliest per-request deadline among pending jobs (max() = none).
    TimePoint earliest_deadline_{TimePoint::max()};
};

}  // namespace xnfv::serve
