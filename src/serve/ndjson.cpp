#include "serve/ndjson.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace xnfv::serve {

namespace {

/// Recursive-descent parser over a string; tracks position for errors.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                                 ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        std::size_t n = 0;
        while (lit[n] != '\0') ++n;
        if (text_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    JsonValue parse_value() {
        skip_ws();
        JsonValue v;
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"':
                v.type = JsonValue::Type::string;
                v.string = parse_string();
                return v;
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                v.type = JsonValue::Type::boolean;
                v.boolean = true;
                return v;
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                v.type = JsonValue::Type::boolean;
                v.boolean = false;
                return v;
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return v;
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code += h - '0';
                        else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
                        else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
                        else fail("bad \\u escape");
                    }
                    // UTF-8 encode the BMP code point (surrogates unpaired
                    // are passed through as-is; requests are ASCII anyway).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            fail("invalid number");
        char* end = nullptr;
        const std::string token = text_.substr(start, pos_ - start);
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
        JsonValue v;
        v.type = JsonValue::Type::number;
        v.number = value;
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
    if (type != Type::object) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->type == Type::string) ? v->string : fallback;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->type == Type::number) ? v->number : fallback;
}

JsonValue parse_json(const std::string& text) {
    return Parser(text).parse_document();
}

FeatureExtraction extract_features(const JsonValue& request, std::size_t expected_dim) {
    FeatureExtraction out;
    const auto reject = [&out](ServeError error, std::string message) {
        out.features.clear();
        out.error = error;
        out.message = std::move(message);
        return out;
    };
    const JsonValue* member = request.find("features");
    if (member == nullptr || member->type != JsonValue::Type::array)
        return reject(ServeError::bad_request, "'features' must be an array");
    if (member->array.size() != expected_dim)
        return reject(ServeError::bad_request,
                      "'features' has " + std::to_string(member->array.size()) +
                          " elements, model expects " + std::to_string(expected_dim));
    out.features.reserve(expected_dim);
    for (std::size_t i = 0; i < member->array.size(); ++i) {
        const JsonValue& v = member->array[i];
        if (v.type != JsonValue::Type::number)
            return reject(ServeError::bad_request,
                          "'features[" + std::to_string(i) + "]' is not a number");
        if (!std::isfinite(v.number))
            return reject(ServeError::bad_features,
                          "'features[" + std::to_string(i) + "]' is not finite");
        out.features.push_back(v.number);
    }
    return out;
}

LineDecoder::LineDecoder(std::size_t max_line)
    : max_line_(std::max<std::size_t>(1, max_line)) {}

void LineDecoder::complete_line(std::vector<Frame>& frames) {
    // CRLF tolerance: the newline is never appended; strip one trailing CR.
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    const bool skipped = skipping_;
    const bool nul = has_nul_;
    skipping_ = false;
    has_nul_ = false;
    if (skipped) {
        line_.clear();
        return;  // the oversize error frame was already emitted
    }
    if (nul) {
        line_.clear();
        frames.push_back(Frame{"", ServeError::bad_request,
                               "embedded NUL byte in request line"});
        return;
    }
    if (line_.find_first_not_of(" \t") == std::string::npos) {
        line_.clear();  // blank line: skipped, matching the stdin loop
        return;
    }
    Frame f;
    f.text = std::move(line_);
    line_.clear();
    frames.push_back(std::move(f));
}

std::size_t LineDecoder::feed(const char* data, std::size_t n,
                              std::vector<Frame>& frames) {
    const std::size_t before = frames.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = data[i];
        if (c == '\n') {
            complete_line(frames);
            continue;
        }
        if (skipping_) continue;  // discarding an oversized line's tail
        if (c == '\0') has_nul_ = true;
        line_.push_back(c);
        if (line_.size() > max_line_) {
            frames.push_back(
                Frame{"", ServeError::bad_request,
                      "request line exceeds " + std::to_string(max_line_) +
                          " bytes"});
            line_.clear();
            has_nul_ = false;
            skipping_ = true;
        }
    }
    return frames.size() - before;
}

std::string render_response(const ExplainResponse& r) {
    JsonWriter w;
    w.field("id", r.id);
    w.field("ok", r.ok);
    if (r.ok) {
        w.field("cache_hit", r.cache_hit);
        w.field("degraded", r.degraded);
        if (r.degraded) w.field("budget_used", r.budget_used);
        w.field("method", r.explanation.method);
        w.field("prediction", r.explanation.prediction);
        w.field("base_value", r.explanation.base_value);
        w.field_array("attributions", r.explanation.attributions);
        // Interaction pairs appear only when the request opted in
        // ("interactions": k > 0), so the plain response stays byte-identical
        // to the pre-interaction wire format.
        if (!r.explanation.interactions.empty()) {
            std::string pairs = "[";
            for (const auto& p : r.explanation.interactions) {
                if (pairs.size() > 1) pairs += ',';
                JsonWriter pw;
                pw.field("i", static_cast<std::uint64_t>(p.i));
                pw.field("j", static_cast<std::uint64_t>(p.j));
                pw.field("h2", p.h2);
                pairs += pw.finish();
            }
            pairs += ']';
            w.field_raw("interactions", pairs);
        }
    } else {
        w.field("error_code", to_string(r.error_code));
        w.field("error", r.error);
    }
    return w.finish();
}

std::string render_stats(const ServiceStats& s) {
    JsonWriter w;
    w.field("ok", true);
    w.field("op", "stats");
    w.field("requests_accepted", s.requests_accepted);
    w.field("requests_rejected", s.requests_rejected);
    w.field("requests_completed", s.requests_completed);
    w.field("requests_degraded", s.requests_degraded);
    w.field("batches", s.batches);
    w.field("batch_size_mean", s.batch_size_mean);
    w.field("cache_hits", s.cache_hits);
    w.field("cache_misses", s.cache_misses);
    w.field("cache_hit_rate", s.cache_hit_rate());
    w.field("cache_evictions", s.cache_evictions);
    w.field("cache_epoch", s.cache_epoch);
    w.field("drift_checks", s.drift_checks);
    w.field("drift_flushes", s.drift_flushes);
    w.field("adaptive_wait_us", s.adaptive_wait_us);
    w.field("service_us_p50", s.service_us_p50);
    w.field("service_us_p95", s.service_us_p95);
    w.field("service_us_p99", s.service_us_p99);
    w.field("model_evals", s.model_evals);
    w.field("probe_rows_p50", s.probe_rows_p50);
    w.field("probe_rows_mean", s.probe_rows_mean);
    w.field("probe_rows_max", s.probe_rows_max);
    w.field("fast_path_hits", s.fast_path_hits);
    {
        // Per-explainer slices, only explainers that computed something.
        std::string explainers = "[";
        for (const ExplainerSliceStats& e : s.explainers) {
            if (explainers.size() > 1) explainers += ',';
            JsonWriter ew;
            ew.field("name", e.name);
            ew.field("requests", e.requests);
            ew.field("fast_path_hits", e.fast_path_hits);
            ew.field("compute_us_p50", e.compute_us_p50);
            ew.field("compute_us_p99", e.compute_us_p99);
            ew.field("compute_us_mean", e.compute_us_mean);
            explainers += ew.finish();
        }
        explainers += ']';
        w.field_raw("explainers", explainers);
    }
    w.field("worker_respawns", s.worker_respawns);
    w.field("worker_stalls", s.worker_stalls);
    w.field("faults_injected", s.faults_injected);
    w.field("snapshot_writes", s.snapshot_writes);
    w.field("snapshot_records_loaded", s.snapshot_records_loaded);
    w.field("snapshot_records_skipped", s.snapshot_records_skipped);
    if (s.net_enabled) {
        w.field("net_shards", s.net_shards);
        w.field("connections_accepted", s.connections_accepted);
        w.field("connections_active", s.connections_active);
        w.field("connections_rejected", s.connections_rejected);
        w.field("connections_closed_idle", s.connections_closed_idle);
        w.field("connections_closed_backpressure", s.connections_closed_backpressure);
        w.field("net_bytes_in", s.net_bytes_in);
        w.field("net_bytes_out", s.net_bytes_out);
        w.field("net_requests", s.net_requests);
        w.field("conn_requests_p50", s.conn_requests_p50);
        w.field("conn_requests_max", s.conn_requests_max);
        w.field("net_faults_injected", s.net_faults_injected);
        w.field("net_retry_duplicates", s.net_retry_duplicates);
        w.field("net_shard_respawns", s.net_shard_respawns);
    }
    {
        // {"queue_full":2,...} — only reasons that occurred.
        std::string by_reason = "{";
        for (std::size_t i = 1; i < kNumServeErrors; ++i) {
            if (s.errors_by_reason[i] == 0) continue;
            if (by_reason.size() > 1) by_reason += ',';
            by_reason += '"';
            by_reason += to_string(static_cast<ServeError>(i));
            by_reason += "\":" + std::to_string(s.errors_by_reason[i]);
        }
        by_reason += '}';
        w.field_raw("errors_by_reason", by_reason);
    }
    w.field("models_registered", s.models_registered);
    w.field("model_swaps", s.model_swaps);
    {
        // Per-model registry slice, in registration order.
        std::string models = "[";
        for (const ModelServiceStats& m : s.models) {
            if (models.size() > 1) models += ',';
            JsonWriter mw;
            mw.field("name", m.name);
            mw.field("fingerprint", m.fingerprint);
            mw.field("admitted", m.admitted);
            mw.field("rejected_quota", m.rejected_quota);
            mw.field("swaps", m.swaps);
            mw.field("evals", m.evals);
            mw.field("completed", m.completed);
            mw.field("cache_entries", m.cache_entries);
            mw.field("cache_evictions", m.cache_evictions);
            mw.field("cache_epoch", m.cache_epoch);
            mw.field("queued", m.queued);
            mw.field("weight", m.weight);
            mw.field("quota", m.quota);
            mw.field("base_value", m.base_value);
            mw.field("breaker_state", m.breaker_state);
            mw.field("breaker_opens", m.breaker_opens);
            mw.field("breaker_rejected", m.breaker_rejected);
            models += mw.finish();
        }
        models += ']';
        w.field_raw("models", models);
    }
    w.field("report", s.to_string());
    return w.finish();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void JsonWriter::key_prefix(const std::string& key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += json_escape(key);
    body_ += "\":";
}

void JsonWriter::field(const std::string& key, const std::string& value) {
    key_prefix(key);
    body_ += '"';
    body_ += json_escape(value);
    body_ += '"';
}

void JsonWriter::field(const std::string& key, const char* value) {
    field(key, std::string(value));
}

void JsonWriter::field(const std::string& key, double value) {
    key_prefix(key);
    body_ += json_number(value);
}

void JsonWriter::field(const std::string& key, std::uint64_t value) {
    key_prefix(key);
    body_ += std::to_string(value);
}

void JsonWriter::field(const std::string& key, bool value) {
    key_prefix(key);
    body_ += value ? "true" : "false";
}

void JsonWriter::field_array(const std::string& key, const std::vector<double>& values) {
    key_prefix(key);
    body_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) body_ += ',';
        body_ += json_number(values[i]);
    }
    body_ += ']';
}

void JsonWriter::field_raw(const std::string& key, const std::string& json) {
    key_prefix(key);
    body_ += json;
}

}  // namespace xnfv::serve
