// Crash-safe persistence of the explanation cache.
//
// A service restart normally starts cold: every cached explanation is lost
// and the first wave of repeat traffic pays full compute again.  The
// snapshot module writes the cache to disk in a format designed around the
// assumption that *the previous process may have died mid-write or the file
// may have been damaged afterwards*:
//
//   * the writer always produces a temporary file and atomically renames it
//     over the target, so a crash during writing leaves the previous
//     snapshot intact;
//   * every record carries its own magic, length and CRC32, so the reader
//     can verify each record independently, skip corrupted ones by scanning
//     forward to the next record magic, and stop cleanly at a truncation —
//     a damaged snapshot degrades to a smaller warm set, never to a failed
//     startup;
//   * the header pins the model fingerprint, background fingerprint and
//     cache quantum; a mismatch invalidates the whole snapshot (explanations
//     are pure functions of those inputs, so stale entries would be wrong,
//     not merely cold).
//
// Layout (all integers little-endian as written by this host):
//   header : u64 magic "XNVSNAP1" | u32 version | u64 model_fp
//          | u64 background_fp | f64 quantum
//   record : u32 magic "XNVR" | u32 payload_len | u32 crc32(payload)
//          | payload bytes
//   payload: u64 context | u64 nwords | nwords*u64
//          | method (u32 len + bytes) | f64 prediction | f64 base_value
//          | u64 nattr | nattr*f64 | u64 nnames | nnames*(u32 len + bytes)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/explanation.hpp"
#include "serve/explanation_cache.hpp"

namespace xnfv::serve {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `bytes`.
/// crc32 of "123456789" is 0xCBF43926 — the standard check value.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Snapshot identity: what the cached explanations are a function of.
struct SnapshotHeader {
    std::uint64_t model_fingerprint = 0;
    std::uint64_t background_fingerprint = 0;
    double quantum = 0.0;
};

/// One persisted cache entry.
struct SnapshotRecord {
    std::vector<std::uint64_t> key_words;
    std::uint64_t key_context = 0;
    xnfv::xai::Explanation explanation;
};

struct SnapshotLoadResult {
    /// False when the file is missing, unreadable, has a bad header, or the
    /// header does not match `expect` — in every case `records` is empty and
    /// the caller simply starts cold.
    bool loaded = false;
    std::vector<SnapshotRecord> records;
    /// Records dropped for bad CRC, bad length, or truncation.
    std::uint64_t skipped = 0;
};

/// Writes `records` to `path` atomically (tmp file + rename).  Returns false
/// on any I/O failure; the previous snapshot, if any, is left untouched.
[[nodiscard]] bool write_snapshot(const std::string& path, const SnapshotHeader& header,
                                  const std::vector<SnapshotRecord>& records);

/// Reads a snapshot, tolerating truncation and per-record corruption: bad
/// records are skipped (counted in `skipped`) by resyncing on the record
/// magic; a short tail ends the scan.  Never throws on malformed input.
[[nodiscard]] SnapshotLoadResult read_snapshot(const std::string& path,
                                               const SnapshotHeader& expect);

}  // namespace xnfv::serve
