// Explainer routing: which method serves a (model, requested-method) pair,
// and whether it runs on an exact fast path (DESIGN.md section 16).
//
// The request-level pseudo-method "auto" resolves per model *kind*:
//
//   kind            auto resolves to        fast path
//   --------------  ----------------------  ------------------------------
//   tree/forest/gbt tree_shap               flat-tree TreeSHAP (exact)
//   mlp             integrated_gradients    analytic input gradients
//   other           kernel_shap             none (sampling probe)
//
// An *explicit* exact method on a structurally incompatible model —
// tree_shap on anything but a tree ensemble, integrated_gradients on
// anything but an MLP — is refused with `unsupported_explainer` instead of
// silently degrading: the caller asked for exactness the model cannot
// provide.  Probe methods (kernel_shap, sampling, lime, occlusion) treat
// the model as a black box and route to any kind unchanged.
//
// The decision is stamped onto every ModelSnapshot at load/swap time
// (kind + resolved auto method + prebuilt FlatTreeShap), so per-request
// routing is a table lookup, never a dynamic_cast.
#pragma once

#include <cstdint>
#include <string>

#include "mlcore/model.hpp"

namespace xnfv::serve {

/// Structural family of a model, as the router sees it.
enum class ModelKind : std::uint8_t { tree, forest, gbt, mlp, other };

[[nodiscard]] const char* to_string(ModelKind kind) noexcept;

/// Classifies by concrete type (DecisionTree / RandomForest /
/// GradientBoostedTrees / Mlp); anything else — linear models, lambdas,
/// wrappers — is `other`.
[[nodiscard]] ModelKind classify_model(const xnfv::ml::Model& model) noexcept;

/// True for the kinds the flat TreeSHAP fast path covers.
[[nodiscard]] constexpr bool is_tree_kind(ModelKind kind) noexcept {
    return kind == ModelKind::tree || kind == ModelKind::forest ||
           kind == ModelKind::gbt;
}

/// Outcome of routing one requested method against one model kind.
struct RouteDecision {
    /// The concrete explainer to run ("auto" never survives routing).
    std::string method;
    /// True when `method` runs an exact fast path on this kind.
    bool fast_path = false;
    /// True when the caller *forced* an exact method the kind cannot run;
    /// `method` then echoes the request and `why` says what to do instead.
    bool unsupported = false;
    std::string why;
};

/// Routes `requested` (a known explainer name, or kAutoMethod) against
/// `kind`.  Pure table logic — no model access.
[[nodiscard]] RouteDecision route_explainer(const std::string& requested,
                                            ModelKind kind);

}  // namespace xnfv::serve
