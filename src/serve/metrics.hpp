// Service metrics: lock-free counters and bucketed latency histograms.
//
// The online explanation service records every event on its hot path —
// enqueue, reject, batch flush, cache hit/miss, completion — so an operator
// can read queue depth, batch-size distribution, cache hit rate, and
// p50/p95/p99 service time from one text report.  Everything here is
// thread-safe: counters are single atomics, histograms are arrays of atomic
// bucket counts (relaxed ordering; a report is a statistical snapshot, not a
// linearizable one).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/errors.hpp"
#include "serve/explainers.hpp"

namespace xnfv::serve {

/// Monotonic event counter.
class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    /// Zeroes the tally (per-phase SLO measurement via op=stats_reset).
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth) that also tracks its high-water mark.
class Gauge {
public:
    void set(std::uint64_t v) noexcept {
        value_.store(v, std::memory_order_relaxed);
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t max() const noexcept {
        return max_.load(std::memory_order_relaxed);
    }
    /// Restarts the high-water mark from the current level; the level itself
    /// is live state (queue depth, open connections) and survives a reset.
    void reset() noexcept {
        max_.store(value_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
    std::atomic<std::uint64_t> max_{0};
};

/// Histogram over non-negative integer samples (microseconds, batch sizes)
/// with geometric bucket bounds: 1, 2, 4, ... 2^62, plus an underflow bucket
/// for 0.  Quantiles are estimated by linear interpolation inside the
/// containing bucket — coarse but monotone, and good enough for a p99 on a
/// log-scale latency distribution.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 64;

    void record(std::uint64_t sample) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double mean() const noexcept;
    [[nodiscard]] std::uint64_t min() const noexcept;
    [[nodiscard]] std::uint64_t max() const noexcept;

    /// Estimated q-quantile, q in [0, 1].  Returns 0 on an empty histogram.
    [[nodiscard]] double quantile(double q) const noexcept;

    /// Forgets every recorded sample (per-phase SLO measurement).
    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
};

/// Everything the service measures, grouped for snapshotting.
struct ServiceMetrics {
    Counter requests_accepted;   ///< submissions that entered the queue
    Counter requests_rejected;   ///< submissions refused at the door
    Counter requests_completed;  ///< responses delivered (hit or computed)
    Counter requests_degraded;   ///< responses served below full fidelity
    Counter batches;             ///< micro-batch flushes executed
    Counter cache_hits;
    Counter cache_misses;
    /// Per-ServeError failure tally, indexed by the enum value: submit-time
    /// rejections and error responses alike land here, so one array answers
    /// "what is failing and why".
    std::array<Counter, kNumServeErrors> errors_by_reason;
    Counter worker_respawns;     ///< dead dispatcher threads restarted
    Counter worker_stalls;       ///< watchdog heartbeat-staleness episodes
    Counter snapshot_writes;     ///< cache snapshots persisted
    Counter snapshot_records_loaded;
    Counter snapshot_records_skipped;  ///< corrupt/truncated records dropped
    Counter model_evals;         ///< model rows evaluated across all explainers
    Counter drift_checks;        ///< attribution-drift window comparisons run
    Counter drift_flushes;       ///< drift-triggered cache epoch bumps
    /// Computed explanations served by an exact fast path (flat-tree
    /// TreeSHAP or analytic integrated gradients) instead of a probe loop.
    Counter fast_path_hits;
    /// Per-explainer slices, indexed like kExplainerNames: computed
    /// explanations, fast-path subset, and the compute-latency histogram.
    std::array<Counter, kNumExplainers> explainer_requests;
    std::array<Counter, kNumExplainers> explainer_fast_hits;
    std::array<Histogram, kNumExplainers> explainer_compute_us;
    Gauge queue_depth;
    Gauge adaptive_wait_us;      ///< effective micro-batch wait (adaptive policy)
    Histogram batch_size;        ///< requests per flushed batch
    Histogram service_time_us;   ///< enqueue -> response, per request
    Histogram compute_time_us;   ///< model/explainer time, per cache miss
    Histogram probe_rows;        ///< model rows evaluated, per computed explanation

    void count_error(ServeError error) noexcept {
        const auto i = static_cast<std::size_t>(error);
        if (i != 0 && i < kNumServeErrors) errors_by_reason[i].inc();
    }

    /// Zeroes every counter and histogram and restarts gauge high-water
    /// marks, so the next stats snapshot covers only what happened after the
    /// reset (the op=stats_reset contract).  Live levels (queue depth) and
    /// registry facts (model fingerprints, cache occupancy) are untouched.
    void reset() noexcept;
};

/// Per-explainer slice of a stats snapshot (only explainers that computed
/// at least one explanation are reported): how many explanations each
/// method computed, how many of those rode an exact fast path, and the
/// method's compute-latency distribution — the observability half of the
/// fast-path contract (a regression that silently drops tree traffic off
/// the flat kernel shows up here as fast_path_hits diverging from
/// requests).
struct ExplainerSliceStats {
    std::string name;
    std::uint64_t requests = 0;        ///< computed explanations (cache misses)
    std::uint64_t fast_path_hits = 0;  ///< subset served by an exact fast path
    double compute_us_p50 = 0.0;
    double compute_us_p99 = 0.0;
    double compute_us_mean = 0.0;
};

/// Per-model slice of a stats snapshot (one line of the "models" section;
/// one element of the `models` array in the ND-JSON stats payload).
struct ModelServiceStats {
    std::string name;
    std::string fingerprint;  ///< current version, lower-case hex
    std::uint64_t admitted = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t swaps = 0;
    std::uint64_t evals = 0;
    std::uint64_t completed = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_epoch = 0;
    std::uint64_t queued = 0;  ///< jobs currently in this model's class FIFO
    std::uint64_t weight = 1;
    std::uint64_t quota = 0;
    double base_value = 0.0;
    /// Circuit-breaker state (0 closed, 1 open, 2 half-open) and lifetime
    /// open transitions / rejected admissions for this tenant.
    std::uint64_t breaker_state = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_rejected = 0;
};

/// Immutable snapshot of ServiceMetrics plus cache occupancy, renderable as
/// the operator-facing text report (and as the `stats` request's payload).
struct ServiceStats {
    std::uint64_t requests_accepted = 0;
    std::uint64_t requests_rejected = 0;
    std::uint64_t requests_completed = 0;
    std::uint64_t requests_degraded = 0;
    std::uint64_t batches = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    std::uint64_t cache_entries = 0;
    std::array<std::uint64_t, kNumServeErrors> errors_by_reason{};
    std::uint64_t worker_respawns = 0;
    std::uint64_t worker_stalls = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t snapshot_writes = 0;
    std::uint64_t snapshot_records_loaded = 0;
    std::uint64_t snapshot_records_skipped = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_depth_max = 0;
    double batch_size_mean = 0.0;
    std::uint64_t batch_size_max = 0;
    double service_us_p50 = 0.0;
    double service_us_p95 = 0.0;
    double service_us_p99 = 0.0;
    double service_us_mean = 0.0;
    double compute_us_mean = 0.0;
    /// Total model rows evaluated by explainers (probe volume), and its
    /// per-computed-explanation distribution — the cost side of the
    /// batched-inference path.
    std::uint64_t model_evals = 0;
    double probe_rows_p50 = 0.0;
    double probe_rows_mean = 0.0;
    std::uint64_t probe_rows_max = 0;
    /// Explanations computed on an exact fast path, and the per-explainer
    /// breakdown (ExplainerSliceStats; empty until something computes).
    std::uint64_t fast_path_hits = 0;
    std::vector<ExplainerSliceStats> explainers;
    /// Drift-triggered invalidation: windows compared, epoch bumps, and the
    /// current cache epoch (mixed into every cache key).
    std::uint64_t drift_checks = 0;
    std::uint64_t drift_flushes = 0;
    std::uint64_t cache_epoch = 0;
    /// Effective micro-batch max_wait chosen by the adaptive policy (equals
    /// the configured wait when the policy is disabled or unpressured).
    std::uint64_t adaptive_wait_us = 0;

    /// TCP front-end section (src/net/); all-zero with `net_enabled` false
    /// when the service runs in-process only.
    bool net_enabled = false;
    /// Event-loop shards serving (1 = the single-loop server; >1 = the
    /// thread-per-core ShardedServer, whose stats are cross-shard sums).
    std::uint64_t net_shards = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t connections_active_max = 0;
    std::uint64_t connections_rejected = 0;
    std::uint64_t connections_closed_idle = 0;
    std::uint64_t connections_closed_backpressure = 0;
    std::uint64_t net_bytes_in = 0;
    std::uint64_t net_bytes_out = 0;
    std::uint64_t net_requests = 0;  ///< frames answered over TCP
    double conn_requests_p50 = 0.0;  ///< per-connection request count quantiles
    double conn_requests_mean = 0.0;
    std::uint64_t conn_requests_max = 0;
    /// Resilience layer: socket-level chaos faults fired, retried rids
    /// answered from the per-connection dedup window, and shard threads
    /// respawned by the supervisor.
    std::uint64_t net_faults_injected = 0;
    std::uint64_t net_retry_duplicates = 0;
    std::uint64_t net_shard_respawns = 0;

    /// Multi-model registry section: live entries in registration order.
    /// A single-model service reports exactly one entry (its default model).
    std::uint64_t models_registered = 0;
    std::uint64_t model_swaps = 0;  ///< hot swaps applied across all models
    std::vector<ModelServiceStats> models;

    /// Hit fraction in [0, 1]; 0 when no lookups happened yet.
    [[nodiscard]] double cache_hit_rate() const noexcept;

    /// Multi-line text report, e.g. for `xnfv_cli serve` op=stats.
    [[nodiscard]] std::string to_string() const;
};

}  // namespace xnfv::serve
