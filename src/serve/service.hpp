// Online explanation service: queue -> micro-batcher -> thread pool -> cache.
//
// Long-running, in-process front door for explanation traffic.  Producers
// submit() ExplainRequests; a dispatcher thread coalesces them into
// micro-batches (serve/batcher.hpp) and executes each batch as one
// parallel_for over the PR-1 shared pool, consulting the sharded LRU
// explanation cache first.  Every stage is instrumented (serve/metrics.hpp).
//
// Determinism contract (the serving extension of DESIGN.md section 8):
//
// > A served explanation is bitwise identical to the one-shot CLI path for
// > the same (model, method, seed, background), at any batch size, queue
// > timing, and thread count.
//
// This holds because each request is explained by a *fresh* explainer seeded
// from the request's own seed — one explain() call, exactly what
// `xnfv_cli explain` performs — never by positional streams of a shared
// batch explainer (batch composition depends on arrival timing, so
// positional seeds would leak scheduling into results).  Batching therefore
// amortizes pool wake-ups, model/background sharing, and cache probes, not
// randomness.  The cache is consistent by construction: an entry's key pins
// everything its value depends on, so a hit returns the same bytes a fresh
// computation would produce.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "serve/batcher.hpp"
#include "serve/explanation_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/request_queue.hpp"

namespace xnfv::serve {

/// Builds the explainer a request resolves to; shared with the CLI so the
/// served path and the one-shot path construct byte-identical explainers.
/// Supported methods: tree_shap, kernel_shap, sampling, lime, occlusion.
/// Throws std::runtime_error on an unknown method.
[[nodiscard]] std::unique_ptr<xnfv::xai::Explainer> make_explainer(
    const std::string& method, const xnfv::xai::BackgroundData& background,
    std::uint64_t seed, std::size_t threads = 0);

/// True when `method` names a supported explainer.
[[nodiscard]] bool known_method(const std::string& method) noexcept;

struct ServiceConfig {
    /// Default explainer method for requests that leave `method` empty.
    std::string method = "tree_shap";
    /// Default RNG seed for requests that leave `seed` == 0 (matches the
    /// `xnfv_cli explain` default so served == one-shot out of the box).
    std::uint64_t seed = 11;
    /// Backpressure bound of the admission queue.
    std::size_t queue_depth = 256;
    /// Micro-batch flush thresholds (see serve/batcher.hpp).
    std::size_t max_batch = 16;
    std::chrono::microseconds max_wait{200};
    /// LRU cache geometry.  quantum == 0 keys on exact feature bit patterns
    /// (lossless: hits only for true repeats); quantum > 0 buckets features
    /// to that grid, trading bitwise fidelity for hit rate.
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
    double cache_quantum = 0.0;
    /// Worker threads for batch execution (0 = xnfv::default_threads()).
    std::size_t threads = 0;
};

/// The in-process serving engine.  Thread-safe: any number of producer
/// threads may submit() concurrently with each other and with stats().
class ExplanationService {
public:
    /// The service holds shared ownership of the model; `background` is the
    /// reference distribution every request marginalizes over.
    ExplanationService(std::shared_ptr<const xnfv::ml::Model> model,
                       xnfv::xai::BackgroundData background,
                       ServiceConfig config = {});
    ~ExplanationService();

    ExplanationService(const ExplanationService&) = delete;
    ExplanationService& operator=(const ExplanationService&) = delete;

    /// Outcome of a submit(): either `rejected != none` (and `response` is
    /// invalid), or a future that completes when the request is served.
    struct Submission {
        RejectReason rejected = RejectReason::none;
        std::future<ExplainResponse> response;
    };

    /// Validates and enqueues; never blocks.  Rejects with `queue_full`
    /// under backpressure, `bad_request` on wrong feature count or unknown
    /// method, `service_stopped` after stop().
    [[nodiscard]] Submission submit(ExplainRequest request);

    /// submit() + wait.  A rejection is returned as an error response.
    [[nodiscard]] ExplainResponse explain_sync(ExplainRequest request);

    /// Snapshot of all counters/histograms plus cache occupancy.
    [[nodiscard]] ServiceStats stats() const;

    /// Closes admission, drains and serves everything already queued, and
    /// joins the dispatcher.  Idempotent; the destructor calls it.
    void stop();

    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
    [[nodiscard]] const xnfv::ml::Model& model() const noexcept { return *model_; }

private:
    void dispatcher_loop();
    void execute_batch(std::vector<Job> batch);
    /// Explains one request (fresh explainer, one explain() call).  Any
    /// exception becomes an error response.
    [[nodiscard]] ExplainResponse run_request(const ExplainRequest& request) const;
    [[nodiscard]] CacheKey key_for(const ExplainRequest& request) const;

    std::shared_ptr<const xnfv::ml::Model> model_;
    xnfv::xai::BackgroundData background_;
    ServiceConfig config_;
    std::uint64_t model_fingerprint_;
    std::uint64_t background_fingerprint_;
    RequestQueue queue_;
    MicroBatcher batcher_;
    ExplanationCache cache_;
    mutable ServiceMetrics metrics_;
    std::thread dispatcher_;
    std::once_flag stop_once_;
};

}  // namespace xnfv::serve
