// Online explanation service: queue -> micro-batcher -> thread pool -> cache.
//
// Long-running, in-process front door for explanation traffic.  Producers
// submit() ExplainRequests; a dispatcher thread coalesces them into
// micro-batches (serve/batcher.hpp) and executes each batch as one
// parallel_for over the PR-1 shared pool, consulting the sharded LRU
// explanation cache first.  Every stage is instrumented (serve/metrics.hpp).
//
// Determinism contract (the serving extension of DESIGN.md section 8):
//
// > A served explanation is bitwise identical to the one-shot CLI path for
// > the same (model, method, seed, background), at any batch size, queue
// > timing, and thread count.
//
// This holds because each request is explained by a *fresh* explainer seeded
// from the request's own seed — one explain() call, exactly what
// `xnfv_cli explain` performs — never by positional streams of a shared
// batch explainer (batch composition depends on arrival timing, so
// positional seeds would leak scheduling into results).  Batching therefore
// amortizes pool wake-ups, model/background sharing, and cache probes, not
// randomness.  The cache is consistent by construction: an entry's key pins
// everything its value depends on, so a hit returns the same bytes a fresh
// computation would produce.
//
// Fault tolerance (DESIGN.md section 10): every request may carry a
// deadline (expired requests are answered deadline_exceeded, with a
// cooperative CancelToken aborting in-flight compute); overload steps
// requests down a degradation ladder instead of rejecting them
// (serve/degradation.hpp); a watchdog thread respawns a dead dispatcher and
// periodically persists the cache to a crash-safe snapshot
// (serve/snapshot.hpp); and a deterministic FaultInjector
// (serve/fault_injector.hpp) can be wired in to chaos-test all of the
// above.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/budget.hpp"
#include "core/drift.hpp"
#include "core/explanation.hpp"
#include "mlcore/model.hpp"
#include "serve/adaptive.hpp"
#include "serve/batcher.hpp"
#include "serve/degradation.hpp"
#include "serve/errors.hpp"
#include "serve/explainers.hpp"
#include "serve/explanation_cache.hpp"
#include "serve/fault_injector.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"

namespace xnfv::serve {

/// Caps applied when constructing an explainer: a sample-budget multiplier
/// (degradation) and an optional cooperative stop signal (deadlines).  The
/// defaults reproduce the unconstrained explainer exactly.
struct ExplainerLimits {
    /// Multiplier on the method's default sample budget, clamped to
    /// [0.001, 1].  1.0 = the method default (bitwise-identical explainer).
    double budget_scale = 1.0;
    /// Optional cancellation token wired into the explainer config; must
    /// outlive the explain() call.  Null = never cancelled.
    const xnfv::xai::CancelToken* cancel = nullptr;
    /// Integrated-gradients Riemann steps before budget scaling (floor 8).
    /// Ignored by every other method.
    std::size_t ig_steps = 50;
};

/// Builds the explainer a request resolves to; shared with the CLI so the
/// served path and the one-shot path construct byte-identical explainers.
/// Supported methods: exactly serve/explainers.hpp's kExplainerNames
/// (tree_shap runs the flat fast-path kernel — bitwise identical to the
/// recursive walker).  Throws std::runtime_error on an unknown method,
/// with the registry's list in the message.
[[nodiscard]] std::unique_ptr<xnfv::xai::Explainer> make_explainer(
    const std::string& method, const xnfv::xai::BackgroundData& background,
    std::uint64_t seed, std::size_t threads = 0, const ExplainerLimits& limits = {});

/// The sample budget make_explainer gives `method` at `budget_scale`
/// (coalitions, permutations, neighborhood samples, or IG steps, with the
/// same floors make_explainer applies).  0 for tree_shap (exact).
[[nodiscard]] std::uint64_t effective_budget(const std::string& method,
                                             double budget_scale,
                                             const xnfv::xai::BackgroundData& background,
                                             std::size_t ig_steps = 50);

/// True when `method` names a supported explainer ("auto" is a routing
/// pseudo-method, accepted at request validation but never here).
[[nodiscard]] bool known_method(const std::string& method) noexcept;

/// One additional model to register at construction (beyond the default
/// model the constructor takes directly).
struct ModelSpec {
    std::string name;
    std::shared_ptr<const xnfv::ml::Model> model;
    std::size_t weight = 1;  ///< DWRR weight of this model's queue class
    std::size_t quota = 0;   ///< per-model admission quota; 0 = uncapped
};

struct ServiceConfig {
    /// Default explainer method for requests that leave `method` empty.
    /// May be "auto": each request then routes per the pinned snapshot's
    /// model kind (serve/router.hpp).
    std::string method = "tree_shap";
    /// Integrated-gradients Riemann steps (the `steps` knob of
    /// core/gradient.hpp's Config), hashed into cache keys so services
    /// with different step counts can never cross-hit each other's
    /// snapshot-restored entries.
    std::size_t ig_steps = 50;
    /// Default RNG seed for requests that leave `seed` == 0 (matches the
    /// `xnfv_cli explain` default so served == one-shot out of the box).
    std::uint64_t seed = 11;
    /// Background rows the Friedman-H² partial dependence sweep uses for
    /// served `"interactions": k` requests (core/interaction.hpp's
    /// max_points).  Hashed into the cache key of interaction-carrying
    /// requests only, so plain requests keep their pre-interaction keys.
    std::size_t interaction_points = 64;
    /// Backpressure bound of the admission queue.
    std::size_t queue_depth = 256;
    /// Micro-batch flush thresholds (see serve/batcher.hpp).
    std::size_t max_batch = 16;
    std::chrono::microseconds max_wait{200};
    /// LRU cache geometry.  quantum == 0 keys on exact feature bit patterns
    /// (lossless: hits only for true repeats); quantum > 0 buckets features
    /// to that grid, trading bitwise fidelity for hit rate.
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
    double cache_quantum = 0.0;
    /// Worker threads for batch execution (0 = xnfv::default_threads()).
    std::size_t threads = 0;

    /// Overload ladder thresholds; all-zero (the default) disables
    /// degradation entirely.
    DegradationConfig degradation;

    /// Adaptive micro-batching: shrink max_wait as queue depth / service
    /// p99 approach the SLO (serve/adaptive.hpp).  Disabled by default; the
    /// policy's ceiling is overwritten with `max_wait` at construction so
    /// the two knobs cannot disagree.
    AdaptiveBatchConfig adaptive;

    /// Per-tenant circuit breaker on the registry path (serve/registry.hpp):
    /// each model entry trips open when its compute error rate over a full
    /// window crosses the threshold, sheds its own requests with
    /// `circuit_open` for the cooldown, then probes half-open.  Disabled by
    /// default (threshold 0) so existing behavior is unchanged.
    BreakerConfig breaker;

    /// Drift-triggered cache invalidation: after `drift_window` reference
    /// explanations are accumulated, every subsequent window of the same
    /// size is compared against it (core/drift.hpp); crossing a threshold
    /// bumps the cache epoch, so every key misses once and is recomputed
    /// against the drifted traffic.  0 disables monitoring.
    std::size_t drift_window = 0;
    xnfv::xai::DriftThresholds drift_thresholds;

    /// Chaos-testing seam: null (the default) injects nothing and costs one
    /// pointer check per poll point.
    std::shared_ptr<FaultInjector> fault_injector;
    /// How far the dispatcher clock jumps when clock_skew fires.
    std::chrono::milliseconds fault_clock_skew{50};
    /// How long the dispatcher pauses when queue_stall fires.
    std::chrono::milliseconds fault_stall{20};

    /// Cache snapshot file; empty disables persistence.  When set, the cache
    /// is restored from it at startup (if compatible) and written to it at
    /// stop() — plus every snapshot_interval if nonzero.  This is the path
    /// of the *default* model's snapshot; every other model persists to
    /// `<path>.<fingerprint-hex><snapshot_suffix>` so multi-model snapshots
    /// can never collide or cross-restore (a file whose header fingerprint
    /// matches no registered model is simply skipped at startup).
    std::string snapshot_path;
    /// Appended to every snapshot filename (the sharded server sets
    /// ".shardK" here so shard slices stay distinct per model).
    std::string snapshot_suffix;
    std::chrono::milliseconds snapshot_interval{0};

    /// Registry identity of the constructor's model (the default model:
    /// requests that carry no "model" field resolve to it).
    std::string default_model_name = "default";
    std::size_t default_weight = 1;
    std::size_t default_quota = 0;  ///< 0 = uncapped
    /// Additional models registered before serving starts (same effect as
    /// model_load() calls, minus the race with early traffic).
    std::vector<ModelSpec> extra_models;

    /// Watchdog poll period, and the heartbeat staleness beyond which the
    /// dispatcher counts as stalled.
    std::chrono::milliseconds watchdog_interval{20};
    std::chrono::milliseconds watchdog_stall_threshold{1000};
};

/// The in-process serving engine.  Thread-safe: any number of producer
/// threads may submit() concurrently with each other and with stats().
class ExplanationService {
public:
    /// The service holds shared ownership of the model; `background` is the
    /// reference distribution every request marginalizes over.
    ExplanationService(std::shared_ptr<const xnfv::ml::Model> model,
                       xnfv::xai::BackgroundData background,
                       ServiceConfig config = {});
    ~ExplanationService();

    ExplanationService(const ExplanationService&) = delete;
    ExplanationService& operator=(const ExplanationService&) = delete;

    /// Outcome of a submit(): either `rejected != none` (and `response` is
    /// invalid), or a future that completes when the request is served.
    struct Submission {
        ServeError rejected = ServeError::none;
        std::future<ExplainResponse> response;
    };

    /// Validates and enqueues; never blocks.  Rejects with `queue_full`
    /// under backpressure, `bad_request` on wrong feature count or unknown
    /// method, `bad_features` on NaN/Inf inputs, `deadline_exceeded` on an
    /// already-expired (0 ms) deadline, `service_stopped` after stop().
    [[nodiscard]] Submission submit(ExplainRequest request);

    /// submit() + wait.  A rejection is returned as an error response.
    [[nodiscard]] ExplainResponse explain_sync(ExplainRequest request);

    /// Push-style submission for event-driven callers (the TCP front-end):
    /// on acceptance, `on_complete` is invoked exactly once with the
    /// response — on the dispatcher (or drain) thread, in admission order —
    /// and no future is involved.  On rejection the returned error is
    /// non-none and `on_complete` is never called (the caller already has
    /// everything needed to answer synchronously).  `on_complete` must not
    /// throw and must not call back into this service.
    [[nodiscard]] ServeError submit_async(
        ExplainRequest request, std::function<void(ExplainResponse)> on_complete);

    /// Current cache epoch of the *default* model (bumped by drift-triggered
    /// invalidation; per-model epochs live in the registry entries).
    [[nodiscard]] std::uint64_t cache_epoch() const noexcept {
        const auto entry = registry_.default_entry();
        return entry ? entry->epoch.load(std::memory_order_relaxed) : 0;
    }

    /// Registers a new model under `name` and wires its queue class
    /// (first-load-is-default does not apply here — the constructor's model
    /// is always the default).  Safe while traffic is flowing.
    ServeError model_load(const std::string& name,
                          std::shared_ptr<const xnfv::ml::Model> model,
                          std::size_t weight = 1, std::size_t quota = 0,
                          std::string* why = nullptr);
    /// Atomically publishes a new version of `name` (""= default model).
    /// In-flight requests finish on the snapshot they pinned at admission.
    ServeError model_swap(const std::string& name,
                          std::shared_ptr<const xnfv::ml::Model> model,
                          std::string* why = nullptr);
    /// Unregisters `name`; queued/in-flight jobs still complete.  The
    /// default model cannot be retired.
    ServeError model_retire(const std::string& name, std::string* why = nullptr);

    [[nodiscard]] const ModelRegistry& registry() const noexcept { return registry_; }

    /// Snapshot of all counters/histograms plus cache occupancy.
    [[nodiscard]] ServiceStats stats() const;

    /// Zeroes every counter and histogram (ServiceMetrics::reset) so the
    /// next stats() covers only traffic after this call — the per-phase SLO
    /// measurement primitive behind the `stats_reset` ND-JSON op.  Registry
    /// facts (models, fingerprints, cache contents, epochs) are untouched.
    void stats_reset() noexcept { metrics_.reset(); }

    /// Closes admission, drains and serves everything already queued, joins
    /// the watchdog and dispatcher, and writes a final cache snapshot when
    /// persistence is configured.  Idempotent; the destructor calls it.
    void stop();

    [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
    /// The default model (the one the constructor was given).
    [[nodiscard]] std::shared_ptr<const xnfv::ml::Model> default_model() const {
        return registry_.default_entry()->current()->model;
    }
    /// Feature arity of `name` (""= default); nullopt for an unknown model.
    [[nodiscard]] std::optional<std::size_t> feature_dim(const std::string& name) const {
        const auto entry = registry_.resolve(name);
        if (!entry) return std::nullopt;
        return entry->current()->model->num_features();
    }

private:
    void dispatcher_loop();
    void watchdog_loop();
    void execute_batch(std::vector<Job> batch);
    /// Drains whatever is left in the queue/batcher on the calling thread —
    /// the shutdown path after both worker threads have been joined.
    void drain_inline();
    /// Shared validation/resolution for submit()/submit_async(): resolves
    /// the model name, validates the payload, and stamps `job` (entry,
    /// pinned snapshot, class, timestamps).  Non-none = reject.
    [[nodiscard]] ServeError prepare_job(ExplainRequest request, Job& job);
    /// What one computed explanation cost and which path served it, for the
    /// per-explainer stats slices.
    struct ComputeOutcome {
        std::uint64_t probe_rows = 0;  ///< model rows evaluated (0 = direct walk)
        bool fast_path = false;        ///< exact fast path (flat tree / analytic IG)
        std::size_t explainer = kNumExplainers;  ///< kExplainerNames index
    };
    /// Explains one request at the given degradation rung against the model
    /// snapshot the job pinned at admission.  The request's method (or the
    /// config default) is routed per the snapshot's kind first: tree
    /// ensembles take the prebuilt flat TreeSHAP (one shared immutable
    /// walker, per-thread scratch, zero warm allocations), MLPs take
    /// analytic integrated gradients, probe methods build a fresh explainer
    /// per request exactly as before.  A forced exact method the kind
    /// cannot run fails with `unsupported_explainer`.  Any exception
    /// becomes an error response; the deadline, if armed, aborts probe
    /// compute via a CancelToken.
    [[nodiscard]] ExplainResponse run_request(
        const Job& job, DegradeLevel level,
        std::chrono::steady_clock::time_point deadline,
        ComputeOutcome& outcome) const;
    [[nodiscard]] CacheKey key_for(const Job& job) const;
    /// The full Friedman-H² pair table of one model version (every j < k
    /// pair over the service background at config_.interaction_points,
    /// sorted strongest-first, ties by index).  H² is a pure function of
    /// (model, background, points) — independent of the explained instance —
    /// so the table is computed once per snapshot fingerprint and memoized;
    /// serving `"interactions": k` is then a slice of this table, bitwise
    /// identical to a one-shot core/interaction.hpp sweep.
    [[nodiscard]] std::shared_ptr<const std::vector<xnfv::xai::InteractionPair>>
    interaction_table(const ModelSnapshot& snapshot) const;
    /// Feeds one full-fidelity computed attribution vector into `entry`'s
    /// drift windows; on a completed current window, compares it against the
    /// reference and bumps the entry's cache epoch when drifted.
    /// `fingerprint` is the model version that produced the attributions — a
    /// version change resets the windows (attributions are not comparable
    /// across a hot swap).  Called only from the thread executing batches.
    void observe_attributions(ModelEntry& entry,
                              const std::vector<double>& attributions,
                              std::uint64_t fingerprint);
    /// Snapshot filename of one model (default model = the configured path
    /// plus suffix; others add ".<fingerprint-hex>" before the suffix).
    [[nodiscard]] std::string snapshot_path_for(const ModelEntry& entry,
                                                std::uint64_t fingerprint) const;
    /// Exports every model's cache slice to its snapshot file (atomic write).
    void save_snapshot();
    /// Restores each model's cache from its snapshot file when present and
    /// compatible; a missing or mismatched file starts that model cold.
    void load_snapshot();
    /// Stamps the dispatcher heartbeat with the current time.
    void heartbeat() noexcept;

    xnfv::xai::BackgroundData background_;
    ServiceConfig config_;
    std::uint64_t background_fingerprint_;
    /// Per-explainer config fingerprint mixed into cache keys (indexed like
    /// kExplainerNames): the tree_shap kernel variant tag and the IG step
    /// count, so fast-path answers computed under one config can never be
    /// served to a service configured differently (snapshot restore).
    /// Probe methods contribute 0 — their keys are unchanged from before.
    std::array<std::uint64_t, kNumExplainers> explainer_config_fp_{};
    ModelRegistry registry_;
    RequestQueue queue_;
    MicroBatcher batcher_;
    DegradationPolicy degrade_;
    AdaptiveBatchPolicy adaptive_;
    mutable ServiceMetrics metrics_;
    /// Memoized interaction tables keyed by model-snapshot fingerprint (see
    /// interaction_table()).  The mutex is held across the one-time compute:
    /// the sweep is deterministic, so serializing concurrent first requests
    /// is cheaper than computing the same table twice.
    mutable std::mutex interactions_mutex_;
    mutable std::unordered_map<
        std::uint64_t,
        std::shared_ptr<const std::vector<xnfv::xai::InteractionPair>>>
        interaction_tables_;

    std::thread dispatcher_;
    std::thread watchdog_;
    /// Guards dispatcher_ (the watchdog joins/respawns it while stop() may
    /// also want to join it).
    std::mutex dispatcher_mutex_;
    std::atomic<bool> dispatcher_exited_{false};  ///< set only by worker_death
    std::atomic<std::chrono::steady_clock::rep> heartbeat_ns_{0};
    std::atomic<bool> stopping_{false};
    std::mutex stop_wait_mutex_;
    std::condition_variable stop_wait_cv_;  ///< wakes the watchdog at stop()
    std::once_flag stop_once_;
};

}  // namespace xnfv::serve
