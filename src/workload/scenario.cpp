#include "workload/scenario.hpp"

#include <ostream>
#include <stdexcept>

namespace xnfv::wl {

using xnfv::nfv::VnfType;

const char* to_string(ChainTemplate t) noexcept {
    switch (t) {
        case ChainTemplate::web_gateway: return "web_gateway";
        case ChainTemplate::secure_enterprise: return "secure_enterprise";
        case ChainTemplate::video_cdn: return "video_cdn";
        case ChainTemplate::iot_ingest: return "iot_ingest";
        case ChainTemplate::vpn_tunnel: return "vpn_tunnel";
    }
    return "unknown";
}

std::vector<VnfType> chain_types(ChainTemplate t) {
    switch (t) {
        case ChainTemplate::web_gateway:
            return {VnfType::load_balancer, VnfType::firewall, VnfType::nat};
        case ChainTemplate::secure_enterprise:
            return {VnfType::firewall, VnfType::ids, VnfType::nat};
        case ChainTemplate::video_cdn:
            return {VnfType::load_balancer, VnfType::transcoder, VnfType::wan_optimizer};
        case ChainTemplate::iot_ingest:
            return {VnfType::firewall, VnfType::nat, VnfType::load_balancer};
        case ChainTemplate::vpn_tunnel:
            return {VnfType::crypto_gateway, VnfType::firewall};
    }
    throw std::invalid_argument("chain_types: unknown template");
}

const char* to_string(FaultKind f) noexcept {
    switch (f) {
        case FaultKind::none: return "none";
        case FaultKind::cpu_starvation: return "cpu_starvation";
        case FaultKind::link_saturation: return "link_saturation";
        case FaultKind::traffic_burst: return "traffic_burst";
        case FaultKind::cache_contention: return "cache_contention";
        case FaultKind::memory_pressure: return "memory_pressure";
    }
    return "unknown";
}

std::ostream& operator<<(std::ostream& os, ChainTemplate t) { return os << to_string(t); }
std::ostream& operator<<(std::ostream& os, FaultKind f) { return os << to_string(f); }

std::vector<ScenarioSpec> standard_scenarios() {
    std::vector<ScenarioSpec> out;

    ScenarioSpec web;
    web.name = "web_pop";
    web.chains = {ChainTemplate::web_gateway, ChainTemplate::web_gateway,
                  ChainTemplate::vpn_tunnel};
    out.push_back(web);

    ScenarioSpec enterprise;
    enterprise.name = "enterprise_edge";
    enterprise.chains = {ChainTemplate::secure_enterprise, ChainTemplate::vpn_tunnel};
    enterprise.rules_lo = 500;
    enterprise.rules_hi = 8000;
    out.push_back(enterprise);

    ScenarioSpec video;
    video.name = "video_edge";
    video.chains = {ChainTemplate::video_cdn, ChainTemplate::web_gateway};
    video.pkt_bytes_lo = 800.0;
    video.pkt_bytes_hi = 1400.0;
    video.base_pps_lo = 10e3;
    video.base_pps_hi = 120e3;
    out.push_back(video);

    ScenarioSpec iot;
    iot.name = "iot_aggregation";
    iot.chains = {ChainTemplate::iot_ingest, ChainTemplate::iot_ingest};
    iot.pkt_bytes_lo = 80.0;
    iot.pkt_bytes_hi = 300.0;
    iot.base_pps_lo = 50e3;
    iot.base_pps_hi = 400e3;
    out.push_back(iot);

    ScenarioSpec dense;
    dense.name = "dense_colocation";
    dense.chains = {ChainTemplate::secure_enterprise, ChainTemplate::video_cdn,
                    ChainTemplate::web_gateway, ChainTemplate::vpn_tunnel};
    dense.num_servers = 3;  // forces co-location => contention
    dense.placement = xnfv::nfv::PlacementStrategy::best_fit;
    out.push_back(dense);

    return out;
}

ScenarioSpec fault_scenario(FaultKind fault) {
    ScenarioSpec s;
    s.fault = fault;
    s.fault_prob = 0.5;
    switch (fault) {
        case FaultKind::none:
            s.name = "fault_none";
            break;
        case FaultKind::cpu_starvation:
            s.name = "fault_cpu";
            s.chains = {ChainTemplate::secure_enterprise, ChainTemplate::web_gateway};
            break;
        case FaultKind::link_saturation:
            s.name = "fault_link";
            // Spread placement maximizes inter-server hops so links matter.
            s.placement = xnfv::nfv::PlacementStrategy::worst_fit;
            s.chains = {ChainTemplate::video_cdn, ChainTemplate::web_gateway};
            s.pkt_bytes_lo = 900.0;
            s.pkt_bytes_hi = 1400.0;
            break;
        case FaultKind::traffic_burst:
            s.name = "fault_burst";
            s.chains = {ChainTemplate::web_gateway, ChainTemplate::secure_enterprise};
            break;
        case FaultKind::cache_contention:
            s.name = "fault_cache";
            s.chains = {ChainTemplate::secure_enterprise, ChainTemplate::video_cdn,
                        ChainTemplate::web_gateway};
            s.num_servers = 2;  // heavy co-location
            break;
        case FaultKind::memory_pressure:
            s.name = "fault_memory";
            s.chains = {ChainTemplate::secure_enterprise, ChainTemplate::video_cdn};
            s.num_servers = 2;
            break;
    }
    return s;
}

}  // namespace xnfv::wl
