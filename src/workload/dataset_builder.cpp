#include "workload/dataset_builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nfv/simulator.hpp"

namespace xnfv::wl {

using xnfv::ml::Rng;
using xnfv::nfv::Deployment;
using xnfv::nfv::Infrastructure;
using xnfv::nfv::OfferedLoad;
using xnfv::nfv::Server;
using xnfv::nfv::SlaSpec;

SampledDeployment sample_deployment(const ScenarioSpec& spec, Rng& rng) {
    SampledDeployment s;
    Server proto;  // defaults: 16 cores @3 GHz, 64 GB, 32 MB LLC
    s.infra = Infrastructure::homogeneous_pop(spec.num_servers, proto, spec.link_bps);

    const bool inject = spec.fault != FaultKind::none && rng.bernoulli(spec.fault_prob);
    s.injected = inject ? spec.fault : FaultKind::none;

    // Fault: link saturation shrinks every link before placement.
    if (s.injected == FaultKind::link_saturation) {
        Infrastructure squeezed;
        for (const Server& srv : s.infra.servers()) squeezed.add_server(srv);
        for (auto link : s.infra.links()) {
            link.capacity_bps *= rng.uniform(0.04, 0.12);
            squeezed.add_link(link);
        }
        s.infra = std::move(squeezed);
    }

    // Chains with randomized allocations and SLAs.
    const std::size_t starved_chain =
        s.injected == FaultKind::cpu_starvation ? rng.uniform_index(spec.chains.size())
                                                : spec.chains.size();
    for (std::size_t c = 0; c < spec.chains.size(); ++c) {
        double cores = rng.uniform(spec.cpu_cores_lo, spec.cpu_cores_hi);
        if (c == starved_chain) cores *= rng.uniform(0.10, 0.25);
        SlaSpec sla;
        sla.max_latency_s =
            rng.uniform(spec.sla_latency_ms_lo, spec.sla_latency_ms_hi) * 1e-3;
        const auto rules = static_cast<std::uint32_t>(
            rng.uniform_int(spec.rules_lo, spec.rules_hi));
        xnfv::nfv::make_chain(s.dep, std::string(to_string(spec.chains[c])),
                              chain_types(spec.chains[c]), cores, sla, rules);
    }

    if (!xnfv::nfv::place(s.dep, s.infra, spec.placement, rng)) {
        // Capacity exhausted: place leftovers anywhere (first server) so the
        // sample is still valid — overload then shows up as contention.
        for (auto& v : s.dep.vnfs)
            if (v.server < 0) v.server = 0;
    }

    // Traffic generators, with fault-specific adjustments.
    for (std::size_t c = 0; c < spec.chains.size(); ++c) {
        TrafficSpec traffic;
        traffic.base_pps = rng.uniform(spec.base_pps_lo, spec.base_pps_hi);
        traffic.pkt_bytes_mean = rng.uniform(spec.pkt_bytes_lo, spec.pkt_bytes_hi);
        traffic.burst_ratio = rng.uniform(spec.burst_ratio_lo, spec.burst_ratio_hi);
        traffic.burst_prob = rng.uniform(0.05, 0.25);
        traffic.diurnal_amplitude = rng.uniform(0.0, 0.5);
        traffic.flash_crowd_prob = 0.02;

        switch (s.injected) {
            case FaultKind::traffic_burst:
                traffic.burst_ratio = rng.uniform(8.0, 16.0);
                traffic.burst_prob = rng.uniform(0.15, 0.35);
                traffic.switch_rate = rng.uniform(0.5, 1.5);  // slow switching => high IDC
                break;
            case FaultKind::cache_contention:
                traffic.flows_per_kpps = rng.uniform(1500.0, 4000.0);
                break;
            case FaultKind::memory_pressure:
                traffic.flows_per_kpps = rng.uniform(20000.0, 60000.0);
                break;
            default:
                break;
        }
        s.traffic.emplace_back(traffic, rng.split());
    }
    return s;
}

BuiltDataset build_dataset(const ScenarioSpec& spec, const BuildOptions& options, Rng& rng) {
    return build_mixed_dataset({spec}, options, rng);
}

BuiltDataset build_mixed_dataset(const std::vector<ScenarioSpec>& specs,
                                 const BuildOptions& options, Rng& rng) {
    if (specs.empty()) throw std::invalid_argument("build_mixed_dataset: no scenarios");
    BuiltDataset out;
    out.data.task = xnfv::nfv::task_for(options.label);
    out.data.feature_names = xnfv::nfv::feature_names(options.feature_set);

    std::size_t spec_cursor = 0;
    std::size_t epoch_counter = 0;
    while (out.data.size() < options.num_samples) {
        const ScenarioSpec& spec = specs[spec_cursor];
        spec_cursor = (spec_cursor + 1) % specs.size();

        SampledDeployment sampled = sample_deployment(spec, rng);
        for (std::size_t e = 0; e < options.epochs_per_deployment; ++e) {
            std::vector<OfferedLoad> loads;
            loads.reserve(sampled.traffic.size());
            for (auto& gen : sampled.traffic) loads.push_back(gen.next_epoch(epoch_counter));
            ++epoch_counter;

            const auto epoch = xnfv::nfv::simulate_epoch(sampled.dep, sampled.infra, loads);
            const std::size_t n_config =
                xnfv::nfv::feature_names(xnfv::nfv::FeatureSet::config_only).size();
            for (std::size_t c = 0; c < sampled.dep.chains.size(); ++c) {
                const auto cid = static_cast<std::uint32_t>(c);
                auto features = xnfv::nfv::extract_features(options.feature_set, sampled.dep,
                                                            sampled.infra, loads, epoch, cid);
                if (options.telemetry_noise > 0.0 &&
                    options.feature_set == xnfv::nfv::FeatureSet::full_telemetry) {
                    // Counters are sampled, not exact: jitter the runtime block.
                    for (std::size_t f = n_config; f < features.size(); ++f)
                        features[f] *= std::exp(rng.normal(0.0, options.telemetry_noise));
                }
                out.data.add(features, xnfv::nfv::extract_label(options.label, epoch, cid));
                out.fault.push_back(sampled.injected);
                out.chain_kind.push_back(spec.chains[c]);
                out.latency_ms.push_back(
                    xnfv::nfv::extract_label(xnfv::nfv::LabelKind::latency_ms, epoch, cid));
                if (out.data.size() >= options.num_samples) break;
            }
            if (out.data.size() >= options.num_samples) break;
        }
    }
    out.data.validate();
    return out;
}

}  // namespace xnfv::wl
