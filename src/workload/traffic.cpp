#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace xnfv::wl {

double mmpp_ca2(const TrafficSpec& spec) {
    if (spec.burst_ratio < 1.0)
        throw std::invalid_argument("mmpp_ca2: burst_ratio must be >= 1");
    if (spec.burst_ratio == 1.0) return 1.0;
    const double p = std::clamp(spec.burst_prob, 1e-6, 1.0 - 1e-6);
    // Low/high rates chosen so the time-average rate is 1 (the absolute rate
    // cancels out of the dispersion ratio).
    const double low = 1.0 / ((1.0 - p) + p * spec.burst_ratio);
    const double high = low * spec.burst_ratio;
    const double mean_rate = (1.0 - p) * low + p * high;
    const double var_rate = (1.0 - p) * (low - mean_rate) * (low - mean_rate) +
                            p * (high - mean_rate) * (high - mean_rate);
    // Asymptotic index of dispersion of counts for a 2-state MMPP:
    //   IDC = 1 + 2 * var(rate) / (mean_rate * total_switch_rate)
    // (Heffes & Lucantoni 1986); we take IDC as the effective inter-arrival
    // CV^2 fed to the Kingman formula.
    const double total_switch = std::max(spec.switch_rate, 1e-6);
    return 1.0 + 2.0 * var_rate / (mean_rate * total_switch);
}

TrafficGenerator::TrafficGenerator(TrafficSpec spec, xnfv::ml::Rng rng)
    : spec_(spec), rng_(rng) {
    if (spec_.base_pps <= 0.0)
        throw std::invalid_argument("TrafficGenerator: base_pps must be > 0");
    if (spec_.diurnal_amplitude < 0.0 || spec_.diurnal_amplitude >= 1.0)
        throw std::invalid_argument("TrafficGenerator: diurnal_amplitude in [0,1)");
    in_burst_state_ = rng_.bernoulli(spec_.burst_prob);
}

xnfv::nfv::OfferedLoad TrafficGenerator::next_epoch(std::size_t t) {
    // Diurnal modulation: sinusoid over epochs_per_day.
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(t % spec_.epochs_per_day) /
                         static_cast<double>(spec_.epochs_per_day);
    double rate = spec_.base_pps * (1.0 + spec_.diurnal_amplitude * std::sin(phase));

    // MMPP state evolution: approximate one state-change opportunity per
    // epoch scaled by switch_rate.
    const double stay_burst = std::exp(-spec_.switch_rate * (1.0 - spec_.burst_prob));
    const double stay_calm = std::exp(-spec_.switch_rate * spec_.burst_prob);
    if (in_burst_state_) {
        if (!rng_.bernoulli(stay_burst)) in_burst_state_ = false;
    } else {
        if (!rng_.bernoulli(stay_calm)) in_burst_state_ = true;
    }
    if (spec_.burst_ratio > 1.0) {
        const double p = std::clamp(spec_.burst_prob, 1e-6, 1.0 - 1e-6);
        const double low = 1.0 / ((1.0 - p) + p * spec_.burst_ratio);
        rate *= in_burst_state_ ? low * spec_.burst_ratio : low;
    }

    if (spec_.flash_crowd_prob > 0.0 && rng_.bernoulli(spec_.flash_crowd_prob))
        rate *= spec_.flash_crowd_mult;

    // Small multiplicative measurement noise.
    rate *= std::exp(rng_.normal(0.0, 0.05));

    xnfv::nfv::OfferedLoad load;
    load.pps = std::max(1.0, rate);
    load.avg_pkt_bytes = std::clamp(
        spec_.pkt_bytes_mean * std::exp(rng_.normal(0.0, spec_.pkt_bytes_jitter)), 64.0,
        1500.0);
    // Flow counts track rate with Pareto-tail noise (heavy-tailed flow sizes
    // mean the active-flow count fluctuates far more than the packet rate).
    const double flow_noise = rng_.pareto(1.0, spec_.flow_pareto_alpha) /
                              (spec_.flow_pareto_alpha / (spec_.flow_pareto_alpha - 1.0));
    load.active_flows =
        std::max(1.0, spec_.flows_per_kpps * (load.pps / 1000.0) * flow_noise);
    load.burstiness_ca2 = mmpp_ca2(spec_);
    return load;
}

}  // namespace xnfv::wl
