// Scenario library: named NFV deployments with randomization ranges and
// optional fault injection.
//
// Fault injection is what makes the explanation evaluation possible at all:
// because the builder *knows* it starved a chain's CPU or saturated a link,
// experiment T3 can check that the attribution methods point at the matching
// telemetry counters.  A real testbed has no such ground truth.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nfv/placement.hpp"
#include "nfv/vnf.hpp"
#include "workload/traffic.hpp"

namespace xnfv::wl {

/// Canned service-chain compositions motivated by common NFV deployments.
enum class ChainTemplate {
    web_gateway,        ///< lb -> firewall -> nat
    secure_enterprise,  ///< firewall -> ids -> nat
    video_cdn,          ///< lb -> transcoder -> wan_optimizer
    iot_ingest,         ///< firewall -> nat -> load_balancer (tiny packets)
    vpn_tunnel,         ///< crypto_gateway -> firewall
};

[[nodiscard]] const char* to_string(ChainTemplate t) noexcept;
[[nodiscard]] std::vector<xnfv::nfv::VnfType> chain_types(ChainTemplate t);

/// Ground-truth root causes the builder can inject.
enum class FaultKind {
    none,
    cpu_starvation,    ///< one chain's CPU allocations cut to a fraction
    link_saturation,   ///< link capacity reduced below the offered bits
    traffic_burst,     ///< extreme MMPP burstiness
    cache_contention,  ///< flow counts inflated => LLC thrash on shared servers
    memory_pressure,   ///< flow counts inflated past server RAM
};

[[nodiscard]] const char* to_string(FaultKind f) noexcept;

/// ADL pretty-printers so value-parameterized tests (and any ostream user)
/// render the enum name instead of "4-byte object <05-00 00-00>".
std::ostream& operator<<(std::ostream& os, ChainTemplate t);
std::ostream& operator<<(std::ostream& os, FaultKind f);

/// A family of deployments to sample from.
struct ScenarioSpec {
    std::string name = "mixed";
    std::vector<ChainTemplate> chains{ChainTemplate::web_gateway,
                                      ChainTemplate::secure_enterprise};
    std::size_t num_servers = 4;
    double link_bps = 10e9;
    xnfv::nfv::PlacementStrategy placement = xnfv::nfv::PlacementStrategy::best_fit;

    // Randomization ranges (uniform per deployment unless noted).
    double cpu_cores_lo = 0.5, cpu_cores_hi = 3.0;
    double base_pps_lo = 20e3, base_pps_hi = 260e3;
    double burst_ratio_lo = 1.0, burst_ratio_hi = 4.0;
    double pkt_bytes_lo = 200.0, pkt_bytes_hi = 1200.0;
    std::uint32_t rules_lo = 100, rules_hi = 4000;
    double sla_latency_ms_lo = 0.6, sla_latency_ms_hi = 3.0;

    /// Probability that a deployment gets `fault` injected (ground truth is
    /// recorded per row).  Ignored when fault == none.
    FaultKind fault = FaultKind::none;
    double fault_prob = 0.5;
};

/// The five standard scenario families used across the experiments.
[[nodiscard]] std::vector<ScenarioSpec> standard_scenarios();

/// A scenario dedicated to one root cause, for the T3 diagnosis experiment.
[[nodiscard]] ScenarioSpec fault_scenario(FaultKind fault);

}  // namespace xnfv::wl
