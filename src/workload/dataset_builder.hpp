// Sweeps scenarios through the simulator to produce labelled ML datasets.
#pragma once

#include <vector>

#include "mlcore/dataset.hpp"
#include "mlcore/rng.hpp"
#include "nfv/chain.hpp"
#include "nfv/infrastructure.hpp"
#include "nfv/telemetry.hpp"
#include "workload/scenario.hpp"
#include "workload/traffic.hpp"

namespace xnfv::wl {

/// One randomized deployment instance of a scenario: infrastructure, placed
/// chains, per-chain traffic generators, and the fault actually injected.
/// Shared by the dataset builder and the closed-loop scenario driver
/// (src/scenario/), which steps the same sampled fleet live instead of
/// flattening it into rows.
struct SampledDeployment {
    xnfv::nfv::Infrastructure infra;
    xnfv::nfv::Deployment dep;
    std::vector<TrafficGenerator> traffic;
    FaultKind injected = FaultKind::none;
};

/// Draws one deployment from `spec`: homogeneous PoP, randomized per-chain
/// allocations/SLAs/rules, placement (first-server fallback on capacity
/// exhaustion), per-chain traffic generators, and the scenario fault applied
/// with `spec.fault_prob`.  Deterministic in `rng`.
[[nodiscard]] SampledDeployment sample_deployment(const ScenarioSpec& spec,
                                                  xnfv::ml::Rng& rng);

struct BuildOptions {
    std::size_t num_samples = 2000;  ///< rows (chain-epochs) to produce
    xnfv::nfv::FeatureSet feature_set = xnfv::nfv::FeatureSet::full_telemetry;
    xnfv::nfv::LabelKind label = xnfv::nfv::LabelKind::sla_violation;
    /// Epochs simulated per sampled deployment before re-randomizing.
    std::size_t epochs_per_deployment = 8;
    /// Multiplicative lognormal measurement noise applied to the *runtime*
    /// telemetry counters (utilizations, pressures), mimicking sampled SNMP/
    /// streaming counters.  0 disables.  Config features are exact.
    double telemetry_noise = 0.05;
};

/// A dataset plus per-row ground truth the ML pipeline must not see but the
/// explanation evaluation needs.
struct BuiltDataset {
    xnfv::ml::Dataset data;
    std::vector<FaultKind> fault;            ///< injected root cause per row
    std::vector<ChainTemplate> chain_kind;   ///< chain template per row
    std::vector<double> latency_ms;          ///< latency regardless of label kind
};

/// Samples deployments from `spec`, simulates them, and extracts one row per
/// chain-epoch until `options.num_samples` rows exist.
[[nodiscard]] BuiltDataset build_dataset(const ScenarioSpec& spec, const BuildOptions& options,
                                         xnfv::ml::Rng& rng);

/// Round-robins over `specs` (the standard mixed workload used by T1).
[[nodiscard]] BuiltDataset build_mixed_dataset(const std::vector<ScenarioSpec>& specs,
                                               const BuildOptions& options,
                                               xnfv::ml::Rng& rng);

}  // namespace xnfv::wl
