// Synthetic traffic generation.
//
// Substitutes for the production traces the paper's testbed would replay
// (see DESIGN.md, Substitutions).  The generator reproduces the trace
// properties that drive NFV performance variance:
//   * load level      — base rate with diurnal modulation,
//   * burstiness      — a 2-state MMPP whose index of dispersion feeds the
//                       arrival CV^2 used by the queueing model (Heffes &
//                       Lucantoni style moment matching),
//   * heavy tails     — Pareto flow sizes => lognormal-ish active-flow counts,
//   * rare events     — flash crowds multiplying the offered rate.
#pragma once

#include "mlcore/rng.hpp"
#include "nfv/chain.hpp"

namespace xnfv::wl {

/// Statistical descriptor of one chain's traffic.
struct TrafficSpec {
    double base_pps = 50e3;          ///< long-run mean packet rate
    double diurnal_amplitude = 0.3;  ///< peak-to-mean modulation in [0,1)
    std::size_t epochs_per_day = 96; ///< diurnal period in epochs (15 min @ 24 h)

    double pkt_bytes_mean = 700.0;
    double pkt_bytes_jitter = 0.15;  ///< lognormal sigma of per-epoch mean size

    /// Active flows per 1000 pps (scaled with heavy-tailed noise).
    double flows_per_kpps = 120.0;
    double flow_pareto_alpha = 1.8;  ///< tail index of flow-size noise (>1)

    // 2-state MMPP burst model: the epoch rate switches between a low and a
    // high state; `burst_ratio` is high/low rate, `burst_prob` the fraction
    // of time in the high state, `switch_rate` the state-change rate relative
    // to the epoch.  These determine the dispersion (=> ca2) analytically.
    double burst_ratio = 1.0;   ///< 1 = plain Poisson
    double burst_prob = 0.1;
    double switch_rate = 4.0;

    double flash_crowd_prob = 0.0;   ///< per-epoch probability
    double flash_crowd_mult = 3.0;   ///< rate multiplier when it fires
};

/// Squared coefficient of variation of inter-arrivals implied by the spec's
/// MMPP parameters (>= 1; equals 1 for burst_ratio == 1).  Uses the
/// asymptotic index of dispersion of counts of a 2-state MMPP.
[[nodiscard]] double mmpp_ca2(const TrafficSpec& spec);

/// Generates per-epoch offered loads for one chain.
class TrafficGenerator {
public:
    TrafficGenerator(TrafficSpec spec, xnfv::ml::Rng rng);

    /// Offered load for epoch `t` (epoch indices need not be consecutive,
    /// but the MMPP state evolves per call, so call once per epoch in order).
    [[nodiscard]] xnfv::nfv::OfferedLoad next_epoch(std::size_t t);

    [[nodiscard]] const TrafficSpec& spec() const noexcept { return spec_; }

private:
    TrafficSpec spec_;
    xnfv::ml::Rng rng_;
    bool in_burst_state_ = false;
};

}  // namespace xnfv::wl
