#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "serve/explainers.hpp"

namespace xnfv::net {

namespace {

/// Error responses reuse the exact rendering the stdin loop produces through
/// render_response, so a TCP client sees the same bytes for the same fault.
std::string render_error_line(std::uint64_t id, serve::ServeError code,
                              const std::string& message) {
    serve::ExplainResponse r;
    r.id = id;
    r.error_code = code;
    r.error = message;
    return serve::render_response(r);
}

}  // namespace

ExplanationServer::ExplanationServer(serve::ExplanationService& service,
                                     ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      budget_(config_.budget
                  ? config_.budget
                  : std::make_shared<ConnectionBudget>(config_.max_connections)),
      // In-flight completions are bounded by what the service has admitted,
      // so a ring this size makes the overflow spill path cold.
      channel_(std::make_shared<CompletionChannel>(
          service.config().queue_depth + service.config().max_batch + 64)) {
    channel_->loop = &loop_;
}

ExplanationServer::~ExplanationServer() {
    // Detach the completion channel: callbacks still in flight inside the
    // service land in the (shared) ring but no longer touch the loop.
    {
        const std::lock_guard<std::mutex> lock(channel_->notify_mutex);
        channel_->loop = nullptr;
    }
    conns_.clear();
    listener_.close();
}

bool ExplanationServer::start(std::string* error) {
    if (!loop_.ok()) {
        if (error) *error = "event loop initialization failed (epoll/eventfd)";
        return false;
    }
    return listener_.listen(config_.host, config_.port, error, config_.reuseport);
}

bool ExplanationServer::bind_port(std::uint16_t port, std::string* error) {
    config_.port = port;
    return start(error);
}

void ExplanationServer::run() {
    loop_.set_wake_handler([this] { on_wake(); });
    loop_.set_tick(config_.tick, [this] { on_tick(); });
    loop_.add(listener_.fd(), EPOLLIN, [this](std::uint32_t) { on_accept(); });
    loop_.run();
    // Whatever survives a stop (drain closes everything it waited for) is
    // torn down here so run() leaves no sockets behind.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const auto id : ids) {
        const auto it = conns_.find(id);
        if (it != conns_.end()) close_conn(*it->second);
    }
    if (listener_.listening()) {
        loop_.remove(listener_.fd());
        listener_.close();
    }
    // Publishes "every socket is closed and every budget slot released" to
    // the shard supervisor; on a shard_death fault this is what makes the
    // respawn safe to start.
    finished_.store(true, std::memory_order_release);
}

void ExplanationServer::request_drain() noexcept {
    drain_requested_.store(true, std::memory_order_release);
    loop_.notify();
}

void ExplanationServer::on_accept() {
    for (;;) {
        const int fd = listener_.accept();
        if (fd < 0) return;
        if (!budget_->try_acquire()) {
            const auto line =
                render_error_line(0, serve::ServeError::backpressure,
                                  "connection limit reached") +
                "\n";
            [[maybe_unused]] const auto n =
                ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
            ::close(fd);
            metrics_.rejected.inc();
            continue;
        }
        if (config_.sndbuf > 0) {
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf,
                         sizeof(config_.sndbuf));
        }
        const auto id = next_conn_id_++;
        auto conn = std::make_unique<Connection>(id, fd, config_.max_line_bytes);
        conn->interest = EPOLLIN;
        conn->chaos = config_.chaos.get();
        conn->dedup_window = config_.dedup_window;
        conns_.emplace(id, std::move(conn));
        loop_.add(fd, EPOLLIN,
                  [this, id](std::uint32_t events) { on_conn_event(id, events); });
        metrics_.accepted.inc();
        metrics_.active.set(conns_.size());
    }
}

void ExplanationServer::on_conn_event(std::uint64_t conn_id, std::uint32_t events) {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Connection& conn = *it->second;
    if ((events & EPOLLERR) != 0) {
        close_conn(conn);
        return;
    }
    // Chaos: abort this connection with an RST (SO_LINGER 0 turns the close
    // into a reset) — the client-retry path's hardest failure mode.
    if (!conn.lingering &&
        net_fault_fires(conn.chaos, NetFaultPoint::rst_close, conn.fault_counters)) {
        const struct linger lg = {1, 0};
        ::setsockopt(conn.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        close_conn(conn);
        return;
    }
    if (conn.lingering) {
        // Drain half-close already sent the peer its full response stream
        // plus FIN; whatever it still writes is discarded until its EOF.
        char buf[4096];
        for (;;) {
            const auto n = ::recv(conn.fd(), buf, sizeof(buf), 0);
            if (n > 0) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
                (events & EPOLLHUP) == 0)
                return;
            close_conn(conn);
            return;
        }
    }
    if ((events & EPOLLIN) != 0 && !conn.peer_eof) {
        const auto before = conn.bytes_in;
        frames_.clear();
        const auto status = conn.read_some(frames_);
        metrics_.bytes_in.inc(conn.bytes_in - before);
        for (const auto& frame : frames_) handle_frame(conn, frame);
        pump(conn);
        if (status == IoStatus::error) {
            close_conn(conn);
            return;
        }
        if (status == IoStatus::peer_closed) conn.peer_eof = true;
    } else if ((events & EPOLLHUP) != 0 && conn.output_empty() &&
               conn.pipeline_empty()) {
        close_conn(conn);
        return;
    }
    flush_and_update(conn);  // may close; conn is dead afterwards
}

void ExplanationServer::on_wake() {
    drain_completions();
    if (drain_requested_.load(std::memory_order_acquire) && !draining_)
        begin_drain();
    check_drain_done();
}

void ExplanationServer::on_tick() {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    // Chaos: shard death.  Stopping the loop makes run() tear down every
    // connection and release every budget slot on its way out — exactly the
    // crash the supervisor must recover from, minus undefined state.
    if (!draining_ &&
        net_fault_fires(config_.chaos.get(), NetFaultPoint::shard_death)) {
        loop_.stop();
        return;
    }
    drain_completions();
    if (drain_requested_.load(std::memory_order_acquire) && !draining_)
        begin_drain();
    if (config_.idle_timeout.count() > 0 && !draining_) {
        const auto now = std::chrono::steady_clock::now();
        std::vector<std::uint64_t> idle;
        for (const auto& [id, conn] : conns_) {
            if (conn->pipeline_empty() && conn->output_empty() &&
                now - conn->last_activity >= config_.idle_timeout)
                idle.push_back(id);
        }
        for (const auto id : idle) {
            const auto it = conns_.find(id);
            if (it == conns_.end()) continue;
            metrics_.closed_idle.inc();
            close_conn(*it->second);
        }
    }
    check_drain_done();
}

void ExplanationServer::handle_frame(Connection& conn, const serve::Frame& frame) {
    if (conn.saw_quit) return;
    const auto answer_error = [&conn](std::uint64_t id, serve::ServeError code,
                                      const std::string& message) {
        const auto seq = conn.push_slot(Connection::Slot::Kind::response);
        conn.fulfill(seq, render_error_line(id, code, message));
    };
    if (frame.error != serve::ServeError::none) {
        answer_error(0, frame.error, frame.message);
        return;
    }
    serve::JsonValue req;
    try {
        req = serve::parse_json(frame.text);
    } catch (const std::exception& e) {
        answer_error(0, serve::ServeError::bad_request, e.what());
        return;
    }
    const auto op = req.get_string("op", "explain");
    if (op == "quit") {
        // Session end for THIS connection: a barrier that, once every
        // earlier answer has been staged, closes after the final flush.
        conn.push_slot(Connection::Slot::Kind::quit);
        conn.saw_quit = true;
        return;
    }
    if (op == "stats") {
        conn.push_slot(Connection::Slot::Kind::stats);
        return;
    }
    if (op == "stats_reset") {
        // Per-phase measurement: zero the service and net counters so the
        // next stats snapshot covers only traffic after this frame.  Applied
        // immediately (like admin ops) — in-flight requests land in the new
        // window, which is exactly what a phase boundary wants.  In a sharded
        // server the provider fans the reset out to every shard.
        const auto seq = conn.push_slot(Connection::Slot::Kind::response);
        if (admin_provider_) {
            conn.fulfill(seq, admin_provider_(req));
        } else {
            service_.stats_reset();
            reset_net_metrics();
            serve::JsonWriter w;
            w.field("ok", true);
            w.field("op", "stats_reset");
            conn.fulfill(seq, w.finish());
        }
        return;
    }
    if (op == "load" || op == "swap" || op == "retire" || op == "models") {
        // Registry admin: applied immediately (not as a pipeline barrier) —
        // requests already admitted keep the snapshot they pinned, exactly
        // the RCU contract.  In a sharded server the provider fans the op
        // out to every shard under the admin mutex.
        const auto seq = conn.push_slot(Connection::Slot::Kind::response);
        conn.fulfill(seq, admin_provider_
                              ? admin_provider_(req)
                              : serve::handle_model_admin(req, {&service_}));
        return;
    }
    if (op == "use") {
        // Session default: subsequent frames without a "model" field resolve
        // to this name.  "" (or omitting "model") resets to the service
        // default.
        const auto name = req.get_string("model", "");
        const auto seq = conn.push_slot(Connection::Slot::Kind::response);
        if (!name.empty() && !service_.feature_dim(name)) {
            conn.fulfill(seq, render_error_line(0, serve::ServeError::unknown_model,
                                                "unknown model '" + name + "'"));
            return;
        }
        conn.default_model = name;
        serve::JsonWriter w;
        w.field("ok", true);
        w.field("op", "use");
        w.field("model", name);
        conn.fulfill(seq, w.finish());
        return;
    }
    if (op != "explain") {
        answer_error(0, serve::ServeError::bad_request, "unknown op '" + op + "'");
        return;
    }

    serve::ExplainRequest er;
    er.id = static_cast<std::uint64_t>(
        req.get_number("id", static_cast<double>(conn.next_request_id)));
    ++conn.next_request_id;
    er.method = req.get_string("method", "");
    er.model = req.get_string("model", conn.default_model);
    er.seed = static_cast<std::uint64_t>(req.get_number("seed", 0));
    er.deadline_ms = static_cast<std::int64_t>(req.get_number("deadline_ms", -1));
    // Opt-in interaction pairs; negative values clamp to 0 (= off) so a
    // malformed count degrades to the plain response instead of an error.
    if (const double k = req.get_number("interactions", 0); k > 0)
        er.interactions = static_cast<std::size_t>(k);

    // The request's slot is allocated before validation so the idempotent
    // retry window covers every outcome: a duplicate "rid" replays the
    // recorded answer — explanation or error alike — without re-entering
    // validation or compute.  (Retried requests should carry an explicit
    // "id": the default-id counter has already advanced by the time a
    // duplicate is recognized.)
    const auto rid = static_cast<std::uint64_t>(req.get_number("rid", 0));
    const auto seq = conn.push_slot(Connection::Slot::Kind::response);
    if (conn.dedup_admit(rid, seq) != Connection::DedupVerdict::fresh) {
        metrics_.retry_duplicates.inc();
        return;
    }
    const auto fail = [&conn, seq](std::uint64_t id, serve::ServeError code,
                                   const std::string& message) {
        conn.fulfill(seq, render_error_line(id, code, message));
    };

    // Feature arity is per-model now, so the model must resolve before the
    // features member can be validated.
    const auto dim = service_.feature_dim(er.model);
    if (!dim) {
        fail(er.id, serve::ServeError::unknown_model,
             "unknown model '" + er.model + "'");
        return;
    }
    // Name the valid set in the error: the shared registry keeps this line,
    // the CLI usage screen, and the service's own validation in lockstep.
    if (!er.method.empty() && er.method != serve::kAutoMethod &&
        !serve::known_explainer(er.method)) {
        fail(er.id, serve::ServeError::bad_request,
             "unknown method '" + er.method + "' (expected " +
                 serve::explainer_list_with_auto() + ")");
        return;
    }
    if (req.has("features")) {
        auto extracted = serve::extract_features(req, *dim);
        if (extracted.error != serve::ServeError::none) {
            fail(er.id, extracted.error, extracted.message);
            return;
        }
        er.features = std::move(extracted.features);
    } else if (req.has("row")) {
        const auto row = static_cast<std::size_t>(req.get_number("row", 0));
        if (!row_lookup_ || !row_lookup_(row, er.features)) {
            fail(er.id, serve::ServeError::bad_request, "row out of range");
            return;
        }
    } else {
        fail(er.id, serve::ServeError::bad_request,
             "explain needs \"row\" or \"features\"");
        return;
    }

    const std::uint64_t id = er.id;
    const auto rejected = service_.submit_async(
        std::move(er),
        // Dispatcher thread: render (pure) and marshal onto the loop over
        // the lock-free ring; the eventfd write is coalesced per drain.
        [channel = channel_, conn_id = conn.id(), seq](serve::ExplainResponse r) {
            channel->push({conn_id, seq, serve::render_response(r)});
        });
    if (rejected != serve::ServeError::none) {
        conn.fulfill(seq, render_error_line(
                              id, rejected,
                              std::string("rejected: ") + to_string(rejected)));
    }
}

void ExplanationServer::pump(Connection& conn) {
    while (auto* slot = conn.front_slot()) {
        switch (slot->kind) {
            case Connection::Slot::Kind::response:
                if (!slot->ready) return;
                conn.queue_output(slot->line);
                break;
            case Connection::Slot::Kind::stats:
                // Head of line: everything admitted before this frame has
                // been answered, so the snapshot covers it — the TCP
                // equivalent of the stdin loop's drain-before-stats.  In a
                // sharded server the provider reports the fleet aggregate.
                conn.queue_output(serve::render_stats(
                    stats_provider_ ? stats_provider_() : stats()));
                break;
            case Connection::Slot::Kind::quit:
                conn.pop_front_slot();
                conn.close_after_flush = true;
                return;
        }
        ++conn.requests;
        metrics_.requests.inc();
        conn.pop_front_slot();
    }
}

void ExplanationServer::update_interest(Connection& conn) {
    std::uint32_t mask = 0;
    if ((!draining_ && !conn.peer_eof && !conn.saw_quit) || conn.lingering)
        mask |= EPOLLIN;
    if (!conn.output_empty()) mask |= EPOLLOUT;
    if (mask != conn.interest) {
        loop_.modify(conn.fd(), mask);
        conn.interest = mask;
    }
}

void ExplanationServer::flush_and_update(Connection& conn) {
    auto before = conn.bytes_out;
    auto status = conn.flush();
    metrics_.bytes_out.inc(conn.bytes_out - before);
    if (status == IoStatus::error || status == IoStatus::peer_closed) {
        close_conn(conn);
        return;
    }
    if (!conn.close_after_flush && conn.output_bytes() > config_.max_output_bytes) {
        // The reader is too far behind to be healthy.  One structured error,
        // one last flush attempt, then the connection is gone.
        conn.queue_output(render_error_line(
            0, serve::ServeError::backpressure,
            "output buffer exceeded " + std::to_string(config_.max_output_bytes) +
                " bytes"));
        before = conn.bytes_out;
        status = conn.flush();
        metrics_.bytes_out.inc(conn.bytes_out - before);
        metrics_.closed_backpressure.inc();
        close_conn(conn);
        return;
    }
    if (conn.output_empty() &&
        (conn.close_after_flush || (conn.peer_eof && conn.pipeline_empty()))) {
        close_conn(conn);
        return;
    }
    update_interest(conn);
}

void ExplanationServer::close_conn(Connection& conn) {
    metrics_.conn_requests.record(conn.requests);
    loop_.remove(conn.fd());
    conn.close();
    conns_.erase(conn.id());  // destroys conn; the reference is dead here
    budget_->release();
    metrics_.active.set(conns_.size());
    if (draining_ && conns_.empty()) loop_.stop();
}

void ExplanationServer::begin_drain() {
    draining_ = true;
    drain_deadline_ = std::chrono::steady_clock::now() + config_.drain_linger;
    if (listener_.listening()) {
        loop_.remove(listener_.fd());
        listener_.close();
    }
    for (const auto& [id, conn] : conns_) update_interest(*conn);
}

void ExplanationServer::check_drain_done() {
    if (!draining_) return;
    const bool linger_expired =
        std::chrono::steady_clock::now() >= drain_deadline_;
    std::vector<std::uint64_t> to_close;
    for (const auto& [id, conn] : conns_) {
        if (!conn->pipeline_empty() || !conn->output_empty()) continue;
        if (!conn->lingering) {
            if (conn->peer_eof) {
                to_close.push_back(id);
                continue;
            }
            // Half-close: FIN is ordered after every flushed response, so
            // the peer reads its complete stream and then a clean EOF.
            // Closing outright here would RST past unread request bytes,
            // which can destroy responses still queued in the peer's
            // kernel buffer.
            ::shutdown(conn->fd(), SHUT_WR);
            conn->lingering = true;
            update_interest(*conn);
        }
        if (linger_expired) to_close.push_back(id);
    }
    for (const auto id : to_close) {
        const auto it = conns_.find(id);
        if (it != conns_.end()) close_conn(*it->second);
    }
    if (conns_.empty()) loop_.stop();
}

void ExplanationServer::drain_completions() {
    // Rearm BEFORE draining: a completion pushed mid-drain raises a fresh
    // wake instead of vanishing into the one we are consuming.
    channel_->wake.rearm();
    std::vector<Completion> batch;
    Completion popped;
    while (channel_->ring.try_pop(popped)) batch.push_back(std::move(popped));
    {
        const std::lock_guard<std::mutex> lock(channel_->overflow_mutex);
        for (auto& spilled : channel_->overflow) batch.push_back(std::move(spilled));
        channel_->overflow.clear();
    }
    for (auto& done : batch) {
        const auto it = conns_.find(done.conn_id);
        if (it == conns_.end()) continue;  // connection dropped mid-flight
        it->second->fulfill(done.seq, std::move(done.line));
    }
    // Pump/flush once per touched connection (a batch often completes many
    // slots of the same connection).
    for (const auto& done : batch) {
        const auto it = conns_.find(done.conn_id);
        if (it == conns_.end()) continue;
        pump(*it->second);
        flush_and_update(*it->second);  // may close this connection
    }
}

serve::ServiceStats ExplanationServer::stats() const {
    auto s = service_.stats();
    s.net_enabled = true;
    s.net_shards = 1;
    s.connections_accepted = metrics_.accepted.value();
    s.connections_active = metrics_.active.value();
    s.connections_active_max = metrics_.active.max();
    s.connections_rejected = metrics_.rejected.value();
    s.connections_closed_idle = metrics_.closed_idle.value();
    s.connections_closed_backpressure = metrics_.closed_backpressure.value();
    s.net_bytes_in = metrics_.bytes_in.value();
    s.net_bytes_out = metrics_.bytes_out.value();
    s.net_requests = metrics_.requests.value();
    s.conn_requests_p50 = metrics_.conn_requests.quantile(0.5);
    s.conn_requests_mean = metrics_.conn_requests.mean();
    s.conn_requests_max = metrics_.conn_requests.max();
    s.net_retry_duplicates = metrics_.retry_duplicates.value();
    s.errors_by_reason[static_cast<std::size_t>(serve::ServeError::retry_duplicate)] +=
        s.net_retry_duplicates;
    if (config_.chaos) {
        // Injector counters are fleet-global; the sharded aggregate
        // overwrites these after its merge so a shared injector is not
        // counted once per shard.
        s.net_faults_injected = config_.chaos->total_fired();
        s.errors_by_reason[static_cast<std::size_t>(
            serve::ServeError::net_fault_injected)] += s.net_faults_injected;
    }
    return s;
}

}  // namespace xnfv::net
