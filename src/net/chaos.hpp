// Deterministic socket-level fault injection for the TCP serving fleet.
//
// The serve-layer FaultInjector (serve/fault_injector.hpp) chaos-tests the
// *compute* path; this injector does the same for the *network* path.  It is
// a seam compiled in permanently (a null injector costs one pointer check)
// that wraps Connection/Socket I/O with named failure points: short sends,
// torn reads, synthetic EINTR storms, withheld reads, RST aborts, and shard
// thread death.
//
// Determinism contract, mirroring PR 3's chaos-replay pin: each connection
// carries its own poll counters (NetFaultCounters), so the k-th I/O poll of
// a point on a given connection fires as a pure function of
// (seed, point, k) — independent of sibling connections, shard scheduling,
// and wall-clock time.  The chunking faults (partial_write / torn_read /
// eintr_storm / stalled_read) only reshape *when* bytes move, never *which*
// bytes, so every response stream is byte-identical to a fault-free run;
// rst_close and shard_death kill transport, which retries + the shard
// supervisor absorb.  shard_death polls on the injector-global counter so a
// max_fires cap means "kill N shards during the run", fleet-wide.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace xnfv::net {

/// Named socket failure points.
enum class NetFaultPoint : std::uint8_t {
    partial_write = 0,  ///< flush moves at most one byte, then backpressures
    torn_read,          ///< recv capped to a few bytes: frames arrive torn
    eintr_storm,        ///< synthetic EINTR before the syscall; retry loops
    stalled_read,       ///< readable bytes withheld one round (slow peer)
    rst_close,          ///< connection aborted with SO_LINGER(0): peer sees RST
    shard_death,        ///< the shard's event loop stops; supervisor respawns
};

inline constexpr std::size_t kNumNetFaultPoints = 6;

[[nodiscard]] constexpr const char* to_string(NetFaultPoint point) noexcept {
    switch (point) {
        case NetFaultPoint::partial_write: return "partial_write";
        case NetFaultPoint::torn_read: return "torn_read";
        case NetFaultPoint::eintr_storm: return "eintr_storm";
        case NetFaultPoint::stalled_read: return "stalled_read";
        case NetFaultPoint::rst_close: return "rst_close";
        case NetFaultPoint::shard_death: return "shard_death";
    }
    return "unknown";
}

/// Per-stream poll counters.  Every Connection owns one, giving it a fault
/// schedule that depends only on its own syscall sequence.  Touched only by
/// the connection's shard thread — no atomics needed.
struct NetFaultCounters {
    std::array<std::uint64_t, kNumNetFaultPoints> polls{};
};

/// Seeded, counter-driven socket fault schedule.  Thread-safe; a default
/// (zero-rate) injector never fires.
class NetFaultInjector {
public:
    struct Config {
        std::uint64_t seed = 0;
        /// Per-point firing probability in [0, 1] for each poll.
        std::array<double, kNumNetFaultPoints> rate{};
        /// Per-point cap on total fires, fleet-wide; 0 = unlimited.
        /// (shard_death with max_fires = 1 models "kill one shard".)
        std::array<std::uint64_t, kNumNetFaultPoints> max_fires{};
    };

    NetFaultInjector() = default;
    explicit NetFaultInjector(Config config) : config_(config) {}

    /// Polls a point against a connection-local counter (I/O points).
    [[nodiscard]] bool should_fire(NetFaultPoint point, NetFaultCounters& local) noexcept;
    /// Polls a point against the injector-global counter (shard_death).
    [[nodiscard]] bool should_fire(NetFaultPoint point) noexcept;

    [[nodiscard]] std::uint64_t fired(NetFaultPoint point) const noexcept {
        return fired_[index(point)].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total_fired() const noexcept;
    /// True when any point has a nonzero rate (cheap "chaos is on" check).
    [[nodiscard]] bool armed() const noexcept;
    [[nodiscard]] const Config& config() const noexcept { return config_; }

private:
    [[nodiscard]] static constexpr std::size_t index(NetFaultPoint point) noexcept {
        return static_cast<std::size_t>(point);
    }
    /// The (seed, point, k) verdict plus the fleet-wide max_fires cap.
    [[nodiscard]] bool decide(std::size_t i, std::uint64_t k) noexcept;

    Config config_{};
    std::array<std::atomic<std::uint64_t>, kNumNetFaultPoints> global_polls_{};
    std::array<std::atomic<std::uint64_t>, kNumNetFaultPoints> fired_{};
};

/// Null-safe poll against a connection-local counter.
[[nodiscard]] inline bool net_fault_fires(NetFaultInjector* injector, NetFaultPoint point,
                                          NetFaultCounters& local) noexcept {
    return injector != nullptr && injector->should_fire(point, local);
}

/// Null-safe poll against the global counter.
[[nodiscard]] inline bool net_fault_fires(NetFaultInjector* injector,
                                          NetFaultPoint point) noexcept {
    return injector != nullptr && injector->should_fire(point);
}

}  // namespace xnfv::net
