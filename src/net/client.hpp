// Blocking ND-JSON client for the explanation server.
//
// The counterpart of `xnfv_cli serve --listen`: connect, send one JSON
// request per line, read one JSON response per line.  Blocking by design —
// this is the convenience path for tests, the TCP benchmark, and the
// `netprobe` CLI subcommand; a latency-critical embedder would speak the
// (trivial) wire protocol over its own event loop instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace xnfv::net {

class Client {
public:
    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept
        : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
        other.fd_ = -1;
    }
    Client& operator=(Client&& other) noexcept {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            buffer_ = std::move(other.buffer_);
            other.fd_ = -1;
        }
        return *this;
    }

    /// Connects to a numeric `host:port`.  `connect_timeout` bounds the TCP
    /// handshake (non-blocking connect + poll; 0 = block indefinitely) — a
    /// dead or blackholed server then fails fast instead of pinning the
    /// caller for the kernel's SYN-retry minutes.  On failure returns false
    /// and, when `error` is non-null, stores why.
    [[nodiscard]] bool connect(const std::string& host, std::uint16_t port,
                               std::string* error = nullptr,
                               std::chrono::milliseconds connect_timeout =
                                   std::chrono::milliseconds{0});

    /// Sends `line` plus a newline; blocks until fully written.
    [[nodiscard]] bool send_line(const std::string& line);

    /// Reads the next newline-terminated line into `line` (newline and any
    /// trailing CR stripped).  Blocks up to `timeout` (0 = forever).
    /// Returns false on timeout, EOF with no buffered line, or socket error.
    [[nodiscard]] bool recv_line(std::string& line,
                                 std::chrono::milliseconds timeout =
                                     std::chrono::milliseconds{0});

    /// Half-closes the write side (sends FIN); the server finishes whatever
    /// is in flight and then drops the connection.
    void shutdown_write() noexcept;

    void close() noexcept;
    [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    int fd_ = -1;
    std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace xnfv::net
