#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdint>

namespace xnfv::net {

EventLoop::EventLoop() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (ok()) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = wake_fd_;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    }
}

EventLoop::~EventLoop() {
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::add(int fd, std::uint32_t events, Callback callback) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    callbacks_[fd] = std::move(callback);
    return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    callbacks_.erase(fd);
}

void EventLoop::stop() noexcept {
    stop_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::notify() noexcept {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::run() {
    using Clock = std::chrono::steady_clock;
    auto last_tick = Clock::now();
    std::array<epoll_event, 64> events;
    while (!stop_.load(std::memory_order_acquire)) {
        const auto timeout =
            static_cast<int>(std::chrono::milliseconds(tick_).count());
        const int n = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()),
                                   timeout <= 0 ? 1 : timeout);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;  // unrecoverable epoll failure: let the owner clean up
        }
        bool woken = false;
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wake_fd_) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const auto r =
                    ::read(wake_fd_, &drained, sizeof(drained));
                woken = true;
                continue;
            }
            // Look the callback up per event: an earlier callback in this
            // batch may have removed this fd (connection close).
            const auto it = callbacks_.find(fd);
            if (it == callbacks_.end()) continue;
            it->second(events[i].events);
        }
        if (woken && on_wake_) on_wake_();
        if (stop_.load(std::memory_order_acquire)) break;
        const auto now = Clock::now();
        if (on_tick_ && now - last_tick >= tick_) {
            last_tick = now;
            on_tick_();
        }
    }
}

}  // namespace xnfv::net
