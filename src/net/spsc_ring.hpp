// Lock-free single-producer / single-consumer ring, and the coalesced-wake
// flag that rides next to it.
//
// This is the per-shard completion path of the sharded explanation server:
// the shard's service dispatcher (one thread at a time — respawns and the
// stop()-time inline drain are sequenced by joins) pushes rendered response
// lines, the shard's event-loop thread pops them.  The previous design was a
// mutex-protected vector; under a cached-hit flood the lock and the
// per-completion eventfd write dominated the handoff, so the ring removes
// the lock from the data path and CoalescedWake collapses N completions
// into (at most) one eventfd write per loop wakeup.
//
// Memory ordering is the classic Lamport queue: the producer publishes a
// slot with a release store of head_, the consumer acquires it; symmetric
// for tail_.  head_ and tail_ live on separate cache lines so producer and
// consumer do not false-share.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace xnfv::net {

/// Destructive-interference stride for head/tail separation.  A fixed 64
/// (right for x86-64 and most aarch64) keeps the layout ABI-stable instead
/// of tracking the compiler's -Winterference-size-guarded constant.
inline constexpr std::size_t kCacheLine = 64;

/// Fixed-capacity lock-free SPSC FIFO.  Exactly one thread may call
/// try_push (at a time, with a happens-before edge between successive
/// producers) and exactly one may call try_pop; size()/empty() are safe
/// from either side as monitoring hints.
template <typename T>
class SpscRing {
public:
    /// Capacity is rounded up to a power of two (minimum 2) so the index
    /// wrap is a mask, not a modulo.
    explicit SpscRing(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

    /// Producer side.  Returns false when the ring is full (the caller
    /// decides whether to spin, drop, or spill).
    [[nodiscard]] bool try_push(T&& value) {
        const auto head = head_.load(std::memory_order_relaxed);
        const auto tail = tail_.load(std::memory_order_acquire);
        if (head - tail > mask_) return false;  // full
        slots_[head & mask_] = std::move(value);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side.  Returns false when the ring is empty.
    [[nodiscard]] bool try_pop(T& out) {
        const auto tail = tail_.load(std::memory_order_relaxed);
        const auto head = head_.load(std::memory_order_acquire);
        if (tail == head) return false;  // empty
        out = std::move(slots_[tail & mask_]);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Approximate occupancy (exact when called from either endpoint's own
    /// thread between its operations).
    [[nodiscard]] std::size_t size() const noexcept {
        const auto head = head_.load(std::memory_order_acquire);
        const auto tail = tail_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(head - tail);
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  ///< next write
    alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  ///< next read
};

/// Collapses a burst of producer-side wake requests into one consumer
/// notification.  Producer calls raise() after every push and notifies
/// (eventfd write) only when it returns true; the consumer calls rearm()
/// BEFORE draining, so a push that lands mid-drain raises a fresh wake
/// instead of being lost.
class CoalescedWake {
public:
    /// True when the caller owns delivering the (single) pending wake.
    [[nodiscard]] bool raise() noexcept {
        return !pending_.exchange(true, std::memory_order_acq_rel);
    }
    /// Consumer: accept the wake and allow the next one.
    void rearm() noexcept { pending_.store(false, std::memory_order_release); }
    [[nodiscard]] bool pending() const noexcept {
        return pending_.load(std::memory_order_acquire);
    }

private:
    std::atomic<bool> pending_{false};
};

}  // namespace xnfv::net
