// Thin POSIX TCP socket helpers for the explanation server's front door.
//
// Everything here is deliberately low-level and allocation-free: the
// subsystem's policy (framing, backpressure, drain) lives in server.cpp; this
// file only owns fds.  Addresses are numeric ("127.0.0.1", "0.0.0.0", or an
// IPv6 literal) — a NOC front-end binds an address, it does not resolve
// hostnames.
#pragma once

#include <cerrno>
#include <cstdint>
#include <string>

namespace xnfv::net {

/// Runs a syscall-shaped callable, retrying while it fails with EINTR.
/// The shared retry helper every read/write/accept/connect path uses, so a
/// signal (or the chaos injector's EINTR storm) never surfaces as a bogus
/// I/O error.  EAGAIN/EWOULDBLOCK are *not* retried — non-blocking callers
/// must see them.
template <typename Fn>
[[nodiscard]] auto retry_on_eintr(Fn&& fn) noexcept -> decltype(fn()) {
    for (;;) {
        const auto r = fn();
        if (r >= 0 || errno != EINTR) return r;
    }
}

/// Sets O_NONBLOCK; returns false when fcntl fails.
bool set_nonblocking(int fd) noexcept;

/// Disables Nagle (TCP_NODELAY) — request/response framing over loopback is
/// exactly the workload delayed ACK + Nagle interact badly with.
void set_nodelay(int fd) noexcept;

/// Non-blocking listening socket bound to a numeric local address.
class TcpListener {
public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /// Binds `host:port` (SO_REUSEADDR, backlog 4096 — the kernel clamps to
    /// somaxconn) and starts listening.  `port` 0 picks an ephemeral port,
    /// readable via port() afterwards.  With `reuseport` set the socket is
    /// also SO_REUSEPORT, so N shard listeners can bind the same port and
    /// have the kernel hash incoming connections across them — the
    /// accept-side of thread-per-core serving.  On failure returns false
    /// and, when `error` is non-null, stores why.
    [[nodiscard]] bool listen(const std::string& host, std::uint16_t port,
                              std::string* error, bool reuseport = false);

    /// Accepts one pending connection; the returned fd is already
    /// non-blocking with TCP_NODELAY set.  Returns -1 when no connection is
    /// pending (or on a transient accept error) — errno tells them apart.
    [[nodiscard]] int accept() noexcept;

    void close() noexcept;

    [[nodiscard]] int fd() const noexcept { return fd_; }
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] bool listening() const noexcept { return fd_ >= 0; }

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

}  // namespace xnfv::net
