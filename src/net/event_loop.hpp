// Non-blocking epoll event loop — the reactor under the explanation server.
//
// One thread owns the loop and everything registered on it; that is the
// subsystem's whole concurrency story on the network side (the compute side
// stays on the PR-1 pool behind ExplanationService).  The only two
// cross-thread entry points are notify() and stop(), both async-signal-safe
// (an atomic store plus one eventfd write), so they can be called from the
// service's dispatcher thread *and* from a SIGTERM handler.
//
// Level-triggered: callbacks read/write until EAGAIN but never need to
// drain-or-starve the way edge-triggered handlers must.  A coarse tick
// callback (idle-timeout scans, drain progress) fires at least every `tick`
// interval regardless of socket activity.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace xnfv::net {

class EventLoop {
public:
    /// Receives the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
    using Callback = std::function<void(std::uint32_t events)>;

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// False when epoll/eventfd creation failed at construction (the server
    /// surfaces this from start()).
    [[nodiscard]] bool ok() const noexcept { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

    /// Registers `fd` for `events`; the callback fires from run() on the
    /// loop thread.  Loop-thread only.
    bool add(int fd, std::uint32_t events, Callback callback);
    /// Changes the interest mask of a registered fd.  Loop-thread only.
    bool modify(int fd, std::uint32_t events);
    /// Deregisters; pending events for the fd in the current dispatch batch
    /// are skipped.  Does not close the fd.  Loop-thread only.
    void remove(int fd);

    /// Dispatches events until stop().  Runs on the calling thread.
    void run();

    /// Requests run() to return; safe from any thread or signal handler.
    void stop() noexcept;

    /// Wakes the loop and has it invoke the wake handler; safe from any
    /// thread or signal handler.  Coalesces: N notifies may yield one call.
    void notify() noexcept;

    /// Invoked on the loop thread after notify() (completion handoff,
    /// drain-request processing).
    void set_wake_handler(std::function<void()> handler) {
        on_wake_ = std::move(handler);
    }
    /// Invoked on the loop thread at least every `interval` (and after any
    /// dispatch batch that took longer).
    void set_tick(std::chrono::milliseconds interval, std::function<void()> handler) {
        tick_ = interval;
        on_tick_ = std::move(handler);
    }

private:
    int epoll_fd_ = -1;
    int wake_fd_ = -1;  ///< eventfd: notify()/stop() wakeups
    std::atomic<bool> stop_{false};
    std::function<void()> on_wake_;
    std::function<void()> on_tick_;
    std::chrono::milliseconds tick_{100};
    std::unordered_map<int, Callback> callbacks_;
};

}  // namespace xnfv::net
