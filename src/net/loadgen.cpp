#include "net/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "serve/explanation_cache.hpp"
#include "serve/ndjson.hpp"

namespace xnfv::net {

std::string render_request_line(const RequestSpec& spec) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", spec.id);
    if (spec.rid != 0) w.field("rid", spec.rid);
    if (spec.row >= 0)
        w.field("row", static_cast<std::uint64_t>(spec.row));
    else
        w.field_array("features", spec.features);
    if (!spec.method.empty()) w.field("method", spec.method);
    if (!spec.model.empty()) w.field("model", spec.model);
    if (spec.seed != 0) w.field("seed", spec.seed);
    if (spec.deadline_ms >= 0)
        w.field("deadline_ms", static_cast<double>(spec.deadline_ms));
    if (spec.interactions != 0)
        w.field("interactions", static_cast<std::uint64_t>(spec.interactions));
    return w.finish();
}

namespace {

/// Cap on connections mid-handshake at once: a 10k-socket storm started all
/// at once can overflow even a 4096 listen backlog; trickling the connects
/// keeps the SYN queue bounded without serializing the test.
constexpr std::size_t kConnectBurst = 512;

using Clock = std::chrono::steady_clock;

/// Pulls the numeric "id" field out of a request or response line (0 when
/// absent) — retry mode's matching key, cheaper than a full JSON parse on
/// the hot read path.
[[nodiscard]] std::uint64_t extract_id(const std::string& line) {
    const auto pos = line.find("\"id\":");
    if (pos == std::string::npos) return 0;
    std::size_t i = pos + 5;
    while (i < line.size() && line[i] == ' ') ++i;
    std::uint64_t v = 0;
    bool any = false;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
        ++i;
        any = true;
    }
    return any ? v : 0;
}

struct Conn {
    int fd = -1;
    std::size_t index = 0;                        ///< script / report slot
    const std::vector<std::string>* script = nullptr;
    std::size_t next_line = 0;                    ///< next script line to stage
    std::size_t outstanding = 0;                  ///< sent minus answered lines
    std::string outbuf;                           ///< staged, unwritten bytes
    bool connecting = false;
    bool write_closed = false;                    ///< SHUT_WR sent or write died
    bool done = false;
    std::uint32_t interest = 0;
    /// Stage times of in-flight lines (record_latency only), FIFO-matched to
    /// responses — the sample includes client-side queueing, like a caller's
    /// request clock would.
    std::deque<std::chrono::steady_clock::time_point> staged_at;

    // --- Retry mode ----------------------------------------------------
    /// In-flight lines keyed by request id; erased when the matching
    /// response id arrives (any order), re-sent when next_check passes.
    struct Pending {
        std::string line;
        Clock::time_point next_check;
        std::size_t attempts = 0;  ///< re-sends so far
    };
    std::unordered_map<std::uint64_t, Pending> pending;
    std::size_t reconnects = 0;
    bool waiting_reconnect = false;  ///< fd closed, backoff running
    Clock::time_point reconnect_at{};
    Clock::time_point connect_started{};
};

struct Driver {
    const LoadgenConfig& config;
    const std::vector<std::vector<std::string>>& scripts;
    LoadReport& report;
    int epfd = -1;
    std::vector<Conn> conns;
    std::size_t next_to_start = 0;
    std::size_t connecting = 0;
    std::size_t active = 0;

    void finish(Conn& conn) {
        if (conn.done) return;
        conn.done = true;
        if (conn.connecting) --connecting;
        if (conn.fd >= 0) {
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
            ::close(conn.fd);
            conn.fd = -1;
        }
        --active;
    }

    [[nodiscard]] bool retry() const noexcept { return config.retries_enabled(); }

    /// Exponential backoff for attempt k with deterministic jitter: the
    /// whole retry schedule is a pure function of (retry_seed, connection,
    /// rid, attempt), so a chaos run replays identically.
    [[nodiscard]] Clock::duration backoff_delay(const Conn& conn, std::uint64_t rid,
                                                std::size_t attempt) const {
        const auto base = static_cast<std::uint64_t>(
            std::max<long long>(config.backoff_base.count(), 0));
        const std::size_t expo = std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 10);
        const std::uint64_t h = serve::fnv1a_u64(
            attempt,
            serve::fnv1a_u64(
                rid, serve::fnv1a_u64(conn.index,
                                      serve::fnv1a_u64(config.retry_seed,
                                                       0xcbf29ce484222325ULL))));
        const std::uint64_t jitter = base == 0 ? 0 : h % (base + 1);
        return std::chrono::milliseconds((base << expo) + jitter);
    }

    [[nodiscard]] Clock::time_point response_deadline(Clock::time_point now) const {
        if (config.response_timeout.count() <= 0) return Clock::time_point::max();
        return now + config.response_timeout;
    }

    void update_interest(Conn& conn) {
        std::uint32_t mask = EPOLLIN;
        if (conn.connecting || (!conn.outbuf.empty() && !conn.write_closed))
            mask |= EPOLLOUT;
        if (mask == conn.interest) return;
        epoll_event ev{};
        ev.events = mask;
        ev.data.ptr = &conn;
        ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
        conn.interest = mask;
    }

    /// Moves script lines into the output buffer while the window allows.
    void stage(Conn& conn) {
        auto& rep = report.conns[conn.index];
        while (conn.next_line < conn.script->size() &&
               conn.outstanding < config.window) {
            const std::string& line = (*conn.script)[conn.next_line];
            conn.outbuf += line;
            conn.outbuf += '\n';
            ++conn.next_line;
            ++conn.outstanding;
            ++rep.sent_lines;
            if (config.record_latency)
                conn.staged_at.push_back(std::chrono::steady_clock::now());
            if (retry()) {
                if (const auto id = extract_id(line); id != 0)
                    conn.pending.emplace(
                        id, Conn::Pending{line, response_deadline(Clock::now()), 0});
            }
        }
    }

    void write_some(Conn& conn) {
        if (conn.write_closed) return;
        while (!conn.outbuf.empty()) {
            const auto n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                                  MSG_NOSIGNAL);
            if (n > 0) {
                conn.outbuf.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
            // Write side died (reset, rejected-and-closed peer).  Keep
            // reading: the server may have flushed a final error line.
            conn.write_closed = true;
            return;
        }
        if (conn.next_line == conn.script->size() && config.shutdown_writes &&
            !retry()) {
            ::shutdown(conn.fd, SHUT_WR);
            conn.write_closed = true;
        }
    }

    void read_some(Conn& conn) {
        auto& rep = report.conns[conn.index];
        char buf[64 * 1024];
        for (;;) {
            const auto n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                rep.partial.append(buf, static_cast<std::size_t>(n));
                std::size_t start = 0;
                for (;;) {
                    const auto nl = rep.partial.find('\n', start);
                    if (nl == std::string::npos) break;
                    rep.lines.push_back(rep.partial.substr(start, nl - start));
                    start = nl + 1;
                    bool matched = true;
                    if (retry()) {
                        // Id-keyed matching: a response for a still-pending
                        // id settles it; anything else is a duplicate (the
                        // server answered both the original and a replay).
                        const auto id = extract_id(rep.lines.back());
                        const auto it = conn.pending.find(id);
                        if (id != 0 && it != conn.pending.end()) {
                            conn.pending.erase(it);
                        } else {
                            ++rep.duplicates;
                            matched = false;
                        }
                    }
                    if (matched && conn.outstanding > 0) --conn.outstanding;
                    if (matched && config.record_latency && !conn.staged_at.empty()) {
                        rep.latency_us.push_back(
                            std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() -
                                conn.staged_at.front())
                                .count());
                        conn.staged_at.pop_front();
                    }
                }
                rep.partial.erase(0, start);
                stage(conn);  // window may have opened
                if (retry() && conn.pending.empty() &&
                    conn.next_line == conn.script->size() && conn.outbuf.empty()) {
                    // Every scripted line answered: retry mode closes
                    // actively instead of waiting for the server.
                    finish(conn);
                    return;
                }
                continue;
            }
            if (n == 0) {
                if (retry()) {
                    conn_lost(conn, false);
                    return;
                }
                rep.eof = true;
                finish(conn);
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (retry()) {
                conn_lost(conn, true);
                return;
            }
            rep.io_error = true;
            finish(conn);
            return;
        }
    }

    /// The transport died (EOF, reset, or write failure) in retry mode.
    /// Benign when the script is fully answered; otherwise reconnect with
    /// backoff, or give up once the retry budget is spent.
    void conn_lost(Conn& conn, bool was_error) {
        auto& rep = report.conns[conn.index];
        if (conn.pending.empty() && conn.next_line == conn.script->size()) {
            if (!was_error) rep.eof = true;
            finish(conn);
            return;
        }
        if (conn.reconnects >= config.max_retries) {
            rep.io_error = true;
            finish(conn);
            return;
        }
        schedule_reconnect(conn);
    }

    /// Tears the connection down and arms the reconnect backoff timer.
    void schedule_reconnect(Conn& conn) {
        auto& rep = report.conns[conn.index];
        ++conn.reconnects;
        ++rep.reconnects;
        if (conn.connecting) {
            --connecting;
            conn.connecting = false;
        }
        if (conn.fd >= 0) {
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
            ::close(conn.fd);
            conn.fd = -1;
        }
        conn.interest = 0;
        conn.outbuf.clear();
        // A torn tail line belongs to the dead stream; its rid is still
        // pending, so the replay re-delivers the whole line.
        rep.partial.clear();
        conn.staged_at.clear();
        conn.write_closed = false;
        conn.waiting_reconnect = true;
        conn.reconnect_at = Clock::now() + backoff_delay(conn, 0, conn.reconnects);
    }

    /// Re-sends every still-pending line on a freshly established
    /// connection (the new stream's dedup window has no record of them).
    void resend_pending(Conn& conn) {
        if (!retry() || conn.pending.empty()) return;
        const auto now = Clock::now();
        for (auto& [id, p] : conn.pending) {
            conn.outbuf += p.line;
            conn.outbuf += '\n';
            p.next_check = response_deadline(now);
        }
    }

    /// Opens conn's socket and begins the non-blocking handshake; false
    /// means this attempt failed synchronously (fd, if any, already closed).
    [[nodiscard]] bool open_socket(Conn& conn) {
        conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (conn.fd < 0) return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(config.port);
        if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
            ::close(conn.fd);
            conn.fd = -1;
            return false;
        }
        const int rc =
            ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
        if (rc != 0 && errno != EINPROGRESS) {
            ::close(conn.fd);
            conn.fd = -1;
            return false;
        }
        conn.connecting = rc != 0;
        if (conn.connecting) ++connecting;
        conn.connect_started = Clock::now();
        epoll_event ev{};
        ev.events = conn.connecting ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
        ev.data.ptr = &conn;
        conn.interest = ev.events;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
            if (conn.connecting) {
                --connecting;
                conn.connecting = false;
            }
            ::close(conn.fd);
            conn.fd = -1;
            return false;
        }
        return true;
    }

    /// Handshake complete: replay pending lines (retry mode), stage, write.
    void on_connected(Conn& conn) {
        resend_pending(conn);
        stage(conn);
        write_some(conn);
        update_interest(conn);
    }

    /// A (re)connect attempt failed before the handshake even started.
    void connect_attempt_failed(Conn& conn) {
        if (retry() && conn.reconnects < config.max_retries) {
            schedule_reconnect(conn);
            return;
        }
        report.conns[conn.index].connect_failed = true;
        finish(conn);
    }

    void start_one() {
        const auto i = next_to_start++;
        Conn& conn = conns[i];
        if (!open_socket(conn)) {
            connect_attempt_failed(conn);
            return;
        }
        if (!conn.connecting) on_connected(conn);
    }

    void on_event(Conn& conn, std::uint32_t events) {
        if (conn.done || conn.waiting_reconnect) return;
        if (conn.connecting) {
            if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
                connect_attempt_failed(conn);
                return;
            }
            conn.connecting = false;
            --connecting;
            resend_pending(conn);
            stage(conn);
        }
        if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
            read_some(conn);
            if (conn.done || conn.waiting_reconnect) return;
        }
        write_some(conn);
        update_interest(conn);
    }

    /// Retry mode's timer sweep: fires reconnect backoffs, bounds connect
    /// handshakes, and re-sends response-timeout stragglers.
    void check_timers(Clock::time_point now) {
        if (!retry()) return;
        for (auto& conn : conns) {
            if (conn.done) continue;
            auto& rep = report.conns[conn.index];
            if (conn.waiting_reconnect) {
                if (now < conn.reconnect_at) continue;
                conn.waiting_reconnect = false;
                if (!open_socket(conn)) {
                    connect_attempt_failed(conn);
                } else if (!conn.connecting) {
                    on_connected(conn);
                }
                continue;
            }
            if (conn.connecting) {
                if (config.connect_timeout.count() > 0 &&
                    now - conn.connect_started >= config.connect_timeout) {
                    ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
                    ::close(conn.fd);
                    conn.fd = -1;
                    --connecting;
                    conn.connecting = false;
                    connect_attempt_failed(conn);
                }
                continue;
            }
            if (conn.write_closed && !conn.pending.empty()) {
                // The write side died mid-script; the read side may never
                // deliver an EOF, so treat it as a lost connection now.
                conn_lost(conn, true);
                continue;
            }
            if (config.response_timeout.count() <= 0 || conn.pending.empty())
                continue;
            bool wrote = false;
            for (auto& [id, p] : conn.pending) {
                if (now < p.next_check) continue;
                if (p.attempts >= config.max_retries) {
                    rep.io_error = true;
                    finish(conn);
                    break;
                }
                ++p.attempts;
                ++rep.retries;
                conn.outbuf += p.line;
                conn.outbuf += '\n';
                p.next_check =
                    now + config.response_timeout + backoff_delay(conn, id, p.attempts);
                wrote = true;
            }
            if (conn.done) continue;
            if (wrote) {
                write_some(conn);
                update_interest(conn);
            }
        }
    }
};

}  // namespace

LoadReport run_load(const LoadgenConfig& config,
                    const std::vector<std::vector<std::string>>& scripts) {
    LoadReport report;
    report.conns.resize(scripts.size());
    if (scripts.empty()) return report;

    Driver d{config, scripts, report, -1, {}, 0, 0, 0};
    d.epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (d.epfd < 0) {
        for (auto& conn : report.conns) conn.connect_failed = true;
        return report;
    }
    d.conns.resize(scripts.size());
    for (std::size_t i = 0; i < scripts.size(); ++i) {
        d.conns[i].index = i;
        d.conns[i].script = &scripts[i];
    }
    d.active = scripts.size();

    const auto deadline = std::chrono::steady_clock::now() + config.timeout;
    std::vector<epoll_event> events(1024);
    while (d.active > 0) {
        while (d.next_to_start < scripts.size() && d.connecting < kConnectBurst)
            d.start_one();
        if (d.active == 0) break;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            report.timed_out = true;
            break;
        }
        const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 deadline - now)
                                 .count();
        // Retry mode needs a short tick to fire backoff/response timers.
        const long long cap = config.retries_enabled() ? 5 : 1000;
        const int n = ::epoll_wait(d.epfd, events.data(),
                                   static_cast<int>(events.size()),
                                   static_cast<int>(std::min<long long>(wait_ms, cap)));
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i)
            d.on_event(*static_cast<Conn*>(events[static_cast<std::size_t>(i)].data.ptr),
                       events[static_cast<std::size_t>(i)].events);
        d.check_timers(std::chrono::steady_clock::now());
    }
    for (auto& conn : d.conns)
        if (!conn.done) d.finish(conn);
    ::close(d.epfd);
    return report;
}

}  // namespace xnfv::net
