#include "net/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>

#include "serve/ndjson.hpp"

namespace xnfv::net {

std::string render_request_line(const RequestSpec& spec) {
    serve::JsonWriter w;
    w.field("op", "explain");
    w.field("id", spec.id);
    if (spec.row >= 0)
        w.field("row", static_cast<std::uint64_t>(spec.row));
    else
        w.field_array("features", spec.features);
    if (!spec.method.empty()) w.field("method", spec.method);
    if (!spec.model.empty()) w.field("model", spec.model);
    if (spec.seed != 0) w.field("seed", spec.seed);
    if (spec.deadline_ms >= 0)
        w.field("deadline_ms", static_cast<double>(spec.deadline_ms));
    return w.finish();
}

namespace {

/// Cap on connections mid-handshake at once: a 10k-socket storm started all
/// at once can overflow even a 4096 listen backlog; trickling the connects
/// keeps the SYN queue bounded without serializing the test.
constexpr std::size_t kConnectBurst = 512;

struct Conn {
    int fd = -1;
    std::size_t index = 0;                        ///< script / report slot
    const std::vector<std::string>* script = nullptr;
    std::size_t next_line = 0;                    ///< next script line to stage
    std::size_t outstanding = 0;                  ///< sent minus answered lines
    std::string outbuf;                           ///< staged, unwritten bytes
    bool connecting = false;
    bool write_closed = false;                    ///< SHUT_WR sent or write died
    bool done = false;
    std::uint32_t interest = 0;
    /// Stage times of in-flight lines (record_latency only), FIFO-matched to
    /// responses — the sample includes client-side queueing, like a caller's
    /// request clock would.
    std::deque<std::chrono::steady_clock::time_point> staged_at;
};

struct Driver {
    const LoadgenConfig& config;
    const std::vector<std::vector<std::string>>& scripts;
    LoadReport& report;
    int epfd = -1;
    std::vector<Conn> conns;
    std::size_t next_to_start = 0;
    std::size_t connecting = 0;
    std::size_t active = 0;

    void finish(Conn& conn) {
        if (conn.done) return;
        conn.done = true;
        if (conn.connecting) --connecting;
        if (conn.fd >= 0) {
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
            ::close(conn.fd);
            conn.fd = -1;
        }
        --active;
    }

    void update_interest(Conn& conn) {
        std::uint32_t mask = EPOLLIN;
        if (conn.connecting || (!conn.outbuf.empty() && !conn.write_closed))
            mask |= EPOLLOUT;
        if (mask == conn.interest) return;
        epoll_event ev{};
        ev.events = mask;
        ev.data.ptr = &conn;
        ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
        conn.interest = mask;
    }

    /// Moves script lines into the output buffer while the window allows.
    void stage(Conn& conn) {
        auto& rep = report.conns[conn.index];
        while (conn.next_line < conn.script->size() &&
               conn.outstanding < config.window) {
            conn.outbuf += (*conn.script)[conn.next_line];
            conn.outbuf += '\n';
            ++conn.next_line;
            ++conn.outstanding;
            ++rep.sent_lines;
            if (config.record_latency)
                conn.staged_at.push_back(std::chrono::steady_clock::now());
        }
    }

    void write_some(Conn& conn) {
        if (conn.write_closed) return;
        while (!conn.outbuf.empty()) {
            const auto n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                                  MSG_NOSIGNAL);
            if (n > 0) {
                conn.outbuf.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
            // Write side died (reset, rejected-and-closed peer).  Keep
            // reading: the server may have flushed a final error line.
            conn.write_closed = true;
            return;
        }
        if (conn.next_line == conn.script->size() && config.shutdown_writes) {
            ::shutdown(conn.fd, SHUT_WR);
            conn.write_closed = true;
        }
    }

    void read_some(Conn& conn) {
        auto& rep = report.conns[conn.index];
        char buf[64 * 1024];
        for (;;) {
            const auto n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                rep.partial.append(buf, static_cast<std::size_t>(n));
                std::size_t start = 0;
                for (;;) {
                    const auto nl = rep.partial.find('\n', start);
                    if (nl == std::string::npos) break;
                    rep.lines.push_back(rep.partial.substr(start, nl - start));
                    start = nl + 1;
                    if (conn.outstanding > 0) --conn.outstanding;
                    if (config.record_latency && !conn.staged_at.empty()) {
                        rep.latency_us.push_back(
                            std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() -
                                conn.staged_at.front())
                                .count());
                        conn.staged_at.pop_front();
                    }
                }
                rep.partial.erase(0, start);
                stage(conn);  // window may have opened
                continue;
            }
            if (n == 0) {
                rep.eof = true;
                finish(conn);
                return;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            rep.io_error = true;
            finish(conn);
            return;
        }
    }

    void start_one() {
        const auto i = next_to_start++;
        Conn& conn = conns[i];
        conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (conn.fd < 0) {
            report.conns[i].connect_failed = true;
            finish(conn);
            return;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(config.port);
        if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
            report.conns[i].connect_failed = true;
            finish(conn);
            return;
        }
        const int rc =
            ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
        if (rc != 0 && errno != EINPROGRESS) {
            report.conns[i].connect_failed = true;
            finish(conn);
            return;
        }
        conn.connecting = rc != 0;
        if (conn.connecting) ++connecting;
        epoll_event ev{};
        ev.events = conn.connecting ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
        ev.data.ptr = &conn;
        conn.interest = ev.events;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
            report.conns[i].connect_failed = true;
            finish(conn);
            return;
        }
        if (!conn.connecting) {
            stage(conn);
            write_some(conn);
            update_interest(conn);
        }
    }

    void on_event(Conn& conn, std::uint32_t events) {
        if (conn.done) return;
        if (conn.connecting) {
            if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
                report.conns[conn.index].connect_failed = true;
                finish(conn);
                return;
            }
            conn.connecting = false;
            --connecting;
            stage(conn);
        }
        if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
            read_some(conn);
            if (conn.done) return;
        }
        write_some(conn);
        update_interest(conn);
    }
};

}  // namespace

LoadReport run_load(const LoadgenConfig& config,
                    const std::vector<std::vector<std::string>>& scripts) {
    LoadReport report;
    report.conns.resize(scripts.size());
    if (scripts.empty()) return report;

    Driver d{config, scripts, report, -1, {}, 0, 0, 0};
    d.epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (d.epfd < 0) {
        for (auto& conn : report.conns) conn.connect_failed = true;
        return report;
    }
    d.conns.resize(scripts.size());
    for (std::size_t i = 0; i < scripts.size(); ++i) {
        d.conns[i].index = i;
        d.conns[i].script = &scripts[i];
    }
    d.active = scripts.size();

    const auto deadline = std::chrono::steady_clock::now() + config.timeout;
    std::vector<epoll_event> events(1024);
    while (d.active > 0) {
        while (d.next_to_start < scripts.size() && d.connecting < kConnectBurst)
            d.start_one();
        if (d.active == 0) break;
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            report.timed_out = true;
            break;
        }
        const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 deadline - now)
                                 .count();
        const int n = ::epoll_wait(d.epfd, events.data(),
                                   static_cast<int>(events.size()),
                                   static_cast<int>(std::min<long long>(wait_ms, 1000)));
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i)
            d.on_event(*static_cast<Conn*>(events[static_cast<std::size_t>(i)].data.ptr),
                       events[static_cast<std::size_t>(i)].events);
    }
    for (auto& conn : d.conns)
        if (!conn.done) d.finish(conn);
    ::close(d.epfd);
    return report;
}

}  // namespace xnfv::net
