// TCP front-end for the explanation service.
//
// ExplanationServer bridges accepted ND-JSON frames into the existing
// queue -> micro-batcher -> cache pipeline (serve/service.hpp) and writes
// responses back on write-ready events.  The wire format is exactly the
// stdin loop's: serve::render_response / serve::render_stats produce the
// bytes on both transports, and every request is still explained by a fresh
// explainer seeded from the request's own seed — so a served-over-TCP
// explanation is bitwise identical to the in-process (and one-shot CLI)
// answer.  DESIGN.md section 12 describes the model in full.
//
// Threading: one event-loop thread owns all sockets and per-connection
// state.  The service's dispatcher thread delivers completions through
// submit_async callbacks, which render the response line (a pure function)
// and hand (connection, slot, line) to the loop through a lock-free SPSC
// completion ring (net/spsc_ring.hpp) plus a coalesced eventfd wake — the
// dispatcher never touches a socket, and the data path never takes a lock.
// One server is one shard of the thread-per-core ShardedServer
// (net/sharded_server.hpp); run standalone it is the single-loop server of
// DESIGN.md section 12.
//
// Overload and misbehavior policy:
//   * connection limit     -> accept, answer one `backpressure` error, close;
//   * slow/half-open reader-> when the per-connection output buffer exceeds
//     its cap after a flush attempt, answer one `backpressure` error,
//     attempt a final flush, force-close;
//   * idle connections     -> closed after `idle_timeout` with no traffic
//     and nothing in flight (0 disables);
//   * graceful drain       -> request_drain() (async-signal-safe, wired to
//     SIGTERM by the CLI) stops accepting and reading, flushes everything
//     in flight, then returns from run().
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/chaos.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/spsc_ring.hpp"
#include "serve/metrics.hpp"
#include "serve/service.hpp"

namespace xnfv::net {

/// Connection-count admission shared across every acceptor that holds a
/// reference — with N reuseport shards, one budget makes `max_connections`
/// a fleet-wide limit the kernel's connection hashing cannot overshoot, and
/// rejects stay exactly countable.
struct ConnectionBudget {
    explicit ConnectionBudget(std::size_t max_active) : limit(max_active) {}

    [[nodiscard]] bool try_acquire() noexcept {
        auto cur = active.load(std::memory_order_relaxed);
        do {
            if (cur >= limit) return false;
        } while (!active.compare_exchange_weak(cur, cur + 1,
                                               std::memory_order_relaxed));
        return true;
    }
    void release() noexcept { active.fetch_sub(1, std::memory_order_relaxed); }

    std::atomic<std::size_t> active{0};
    std::size_t limit;
};

struct ServerConfig {
    /// Numeric bind address; loopback by default (an explanation service is
    /// an internal NOC component, not an internet-facing one).
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port (readable via port() after start()).
    std::uint16_t port = 0;
    /// Accepted-connection ceiling; extra connections get one structured
    /// `backpressure` error and are closed.
    std::size_t max_connections = 256;
    /// Per-line request cap enforced by the frame decoder.
    std::size_t max_line_bytes = 1 << 20;
    /// Per-connection output-buffer cap: a reader this far behind is slow or
    /// half-open and is closed with a `backpressure` error.
    std::size_t max_output_bytes = 8u << 20;
    /// Close connections with no traffic and nothing in flight for this
    /// long.  0 disables.
    std::chrono::milliseconds idle_timeout{0};
    /// Event-loop housekeeping period (idle scans, drain progress).
    std::chrono::milliseconds tick{20};
    /// How long a drain lingers after half-closing each connection, waiting
    /// for the peer to read its final responses and close.  Closing outright
    /// would RST past unread request bytes and could destroy responses still
    /// queued in the peer's kernel buffer.  Bounds SIGTERM exit time.
    std::chrono::milliseconds drain_linger{5000};
    /// When > 0, shrink each accepted socket's kernel send buffer
    /// (SO_SNDBUF) — lets backpressure tests overflow the output cap
    /// deterministically with small payloads.
    int sndbuf = 0;
    /// Bind with SO_REUSEPORT so sibling shard listeners can share the port.
    bool reuseport = false;
    /// Connection budget shared across shards; null makes the server create
    /// a private one from `max_connections` (the standalone case).  When
    /// set, `max_connections` is ignored in favor of the budget's limit.
    std::shared_ptr<ConnectionBudget> budget;
    /// Socket chaos injector (net/chaos.hpp), shared across shards; null =
    /// no faults.  Always compiled in — a null injector costs one pointer
    /// check per I/O call.
    std::shared_ptr<NetFaultInjector> chaos;
    /// Per-connection retry-dedup window: completed responses remembered by
    /// `"rid"` so a retried request replays its recorded answer instead of
    /// recomputing.  0 disables.
    std::size_t dedup_window = 1024;
};

/// Connection-level metrics folded into ServiceStats (net_* fields).
struct NetMetrics {
    serve::Counter accepted;
    serve::Counter rejected;             ///< over the connection limit
    serve::Counter closed_idle;
    serve::Counter closed_backpressure;  ///< output cap breaches
    serve::Counter bytes_in;
    serve::Counter bytes_out;
    serve::Counter requests;             ///< frames answered over TCP
    serve::Counter retry_duplicates;     ///< rids answered from the dedup window
    serve::Gauge active;
    serve::Histogram conn_requests;      ///< requests per closed connection

    /// Zeroes every counter/histogram and restarts the active-connection
    /// high-water mark (see ExplanationServer::reset_net_metrics).
    void reset() noexcept {
        accepted.reset();
        rejected.reset();
        closed_idle.reset();
        closed_backpressure.reset();
        bytes_in.reset();
        bytes_out.reset();
        requests.reset();
        retry_duplicates.reset();
        active.reset();
        conn_requests.reset();
    }
};

class ExplanationServer {
public:
    /// Resolves `{"op":"explain","row":K}` requests to a feature vector;
    /// returns false when the row does not exist.  Unset = all row requests
    /// are answered "row out of range" (same wording as the stdin loop).
    using RowLookup =
        std::function<bool(std::size_t row, std::vector<double>& features)>;

    /// The service must outlive the server and must not be stop()ped while
    /// run() is serving (drain first).
    ExplanationServer(serve::ExplanationService& service, ServerConfig config = {});
    ~ExplanationServer();

    ExplanationServer(const ExplanationServer&) = delete;
    ExplanationServer& operator=(const ExplanationServer&) = delete;

    void set_row_lookup(RowLookup lookup) { row_lookup_ = std::move(lookup); }

    /// Overrides what an `{"op":"stats"}` frame reports.  The sharded server
    /// installs its cross-shard aggregate here so any connection sees fleet
    /// totals; unset, a connection sees this server's own stats().  Called
    /// on the loop thread; must be thread-safe against sibling shards.
    using StatsProvider = std::function<serve::ServiceStats()>;
    void set_stats_provider(StatsProvider provider) {
        stats_provider_ = std::move(provider);
    }

    /// Overrides how `{"op":"load"/"swap"/"retire"/"models"}` admin frames
    /// are handled; returns the rendered single-line response.  The sharded
    /// server installs a fan-out here so an admin op reaching any shard
    /// applies to every shard's service atomically (under its admin mutex);
    /// unset, the op applies to this server's own service.  Called on the
    /// loop thread; must be thread-safe against sibling shards.
    using AdminProvider = std::function<std::string(const serve::JsonValue&)>;
    void set_admin_provider(AdminProvider provider) {
        admin_provider_ = std::move(provider);
    }

    /// Binds and listens.  On failure returns false and stores why in
    /// `error` (when non-null).
    [[nodiscard]] bool start(std::string* error = nullptr);

    /// start() on a specific port, overriding the configured one.  Reuseport
    /// siblings use this to join the group once the first shard has resolved
    /// an ephemeral port.
    [[nodiscard]] bool bind_port(std::uint16_t port, std::string* error = nullptr);

    /// Serves until drained; blocks the calling thread (tests and the CLI
    /// run it on whichever thread suits them).  start() must have succeeded.
    void run();

    /// Begins a graceful drain: stop accepting and reading, flush every
    /// in-flight response, then run() returns.  Async-signal-safe (an atomic
    /// store and an eventfd write) — the CLI calls this from its SIGTERM
    /// handler.  Idempotent.
    void request_drain() noexcept;

    [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

    /// Service stats with the net section populated (net_enabled = true).
    [[nodiscard]] serve::ServiceStats stats() const;

    /// Zeroes this server's connection-level counters/histograms and restarts
    /// gauge high-water marks (the net half of op=stats_reset; the service
    /// half is ExplanationService::stats_reset).  Live levels — active
    /// connections — survive.  Safe from any thread: NetMetrics is atomics.
    void reset_net_metrics() noexcept { metrics_.reset(); }

    /// Liveness epoch, bumped once per event-loop tick.  The shard
    /// supervisor samples it to tell a serving loop from a wedged one.
    [[nodiscard]] std::uint64_t heartbeat() const noexcept {
        return heartbeat_.load(std::memory_order_relaxed);
    }
    /// True once run() has returned (loop stopped, sockets torn down, every
    /// budget slot this server held released).  The supervisor's respawn
    /// trigger: a finished server whose fleet is not draining died.
    [[nodiscard]] bool finished() const noexcept {
        return finished_.load(std::memory_order_acquire);
    }

private:
    /// One completed explanation travelling dispatcher -> loop thread.
    struct Completion {
        std::uint64_t conn_id = 0;
        std::uint64_t seq = 0;
        std::string line;
    };
    /// Shared with submit_async callbacks so a completion arriving after the
    /// server object is gone lands in a detached (loop == nullptr) channel
    /// instead of freed memory.  The data path is the lock-free SPSC ring
    /// (producer: the service's dispatcher — one thread at a time, respawns
    /// and the stop()-time drain are join-sequenced; consumer: the loop
    /// thread).  `notify_mutex` guards only the loop pointer for the rare
    /// detach race, never the payload, and `wake` coalesces a burst of
    /// completions into one eventfd write.
    struct CompletionChannel {
        explicit CompletionChannel(std::size_t capacity) : ring(capacity) {}

        SpscRing<Completion> ring;
        CoalescedWake wake;
        std::mutex notify_mutex;
        EventLoop* loop = nullptr;  ///< null once the server detaches
        /// Spill path for a full ring (possible only when the loop thread is
        /// far behind, e.g. stalled in a test); bounded by in-flight work.
        std::mutex overflow_mutex;
        std::vector<Completion> overflow;

        /// Producer side: ring first, overflow as the escape hatch, then at
        /// most one eventfd write per consumer drain cycle.
        void push(Completion&& done) {
            if (!ring.try_push(std::move(done))) {
                const std::lock_guard<std::mutex> lock(overflow_mutex);
                overflow.push_back(std::move(done));
            }
            if (wake.raise()) {
                const std::lock_guard<std::mutex> lock(notify_mutex);
                if (loop != nullptr) loop->notify();
            }
        }
    };

    void on_accept();
    void on_conn_event(std::uint64_t conn_id, std::uint32_t events);
    void on_wake();
    void on_tick();
    /// Parses one frame and either answers it synchronously (errors, quit)
    /// or submits it and leaves a pending pipeline slot.
    void handle_frame(Connection& conn, const serve::Frame& frame);
    /// Moves every resolvable head-of-line slot into the output buffer.
    void pump(Connection& conn);
    /// Flushes, enforces the output cap, updates epoll interest, and closes
    /// the connection when its end conditions hold.  The reference is dead
    /// after a call that closes.
    void flush_and_update(Connection& conn);
    void update_interest(Connection& conn);
    void close_conn(Connection& conn);
    void begin_drain();
    /// During a drain, half-closes each settled connection and stops the
    /// loop once every connection has been torn down.
    void check_drain_done();
    void drain_completions();

    serve::ExplanationService& service_;
    ServerConfig config_;
    RowLookup row_lookup_;
    StatsProvider stats_provider_;
    AdminProvider admin_provider_;
    std::shared_ptr<ConnectionBudget> budget_;
    EventLoop loop_;
    TcpListener listener_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
    std::uint64_t next_conn_id_ = 1;
    std::shared_ptr<CompletionChannel> channel_;
    std::atomic<bool> drain_requested_{false};
    std::atomic<std::uint64_t> heartbeat_{0};
    std::atomic<bool> finished_{false};
    bool draining_ = false;
    std::chrono::steady_clock::time_point drain_deadline_{};
    mutable NetMetrics metrics_;
    std::vector<serve::Frame> frames_;  ///< per-read scratch
};

}  // namespace xnfv::net
