// Thread-per-core sharded TCP serving: N independent (event loop + service)
// shards behind one SO_REUSEPORT port.
//
// Scale-out model (DESIGN.md section 13):
//
//   * Accept sharding — every shard binds its own SO_REUSEPORT listener on
//     the same port; the kernel hashes incoming connections across them, so
//     there is no shared accept lock and no connection handoff.
//   * Share-nothing serving — each shard owns a full ExplanationService
//     (admission queue, micro-batcher, dispatcher thread, LRU cache slice
//     with its own drift epoch) and a full ExplanationServer (epoll loop,
//     connections, SPSC completion ring).  A connection lives and dies on
//     the shard that accepted it, which is what keeps per-connection
//     response bytes identical to the single-loop server: ordering is
//     per-connection, and every request is explained by a fresh explainer
//     seeded from the request itself.
//   * Partitioned cache — the configured capacity is split evenly across
//     shards; within a shard, keys spread over the existing hash-sharded
//     LRU.  Drift epochs are per shard: each shard's monitor watches the
//     traffic that shard actually served and re-keys only its own slice.
//   * Fleet-wide invariants — the connection limit is one ConnectionBudget
//     shared by all acceptors (rejects are exactly countable no matter how
//     the kernel spreads the storm), and `{"op":"stats"}` on any connection
//     reports the cross-shard aggregate.
//
// Lifecycle: construct (builds all shards' services), start() (binds all
// listeners — shard 0 first to learn an ephemeral port), run() (spawns one
// pinned thread per shard and supervises them until drained),
// request_drain() (async-signal-safe; run() returns once every shard has
// flushed its in-flight work).
//
// Self-healing: while run() blocks, the calling thread doubles as the shard
// supervisor.  Every `heartbeat_interval` it samples each shard: a server
// whose run() has returned while the fleet is not draining is a dead shard
// (its loop exit already closed its connections and released its
// ConnectionBudget slots — the exact-budget invariant survives the crash).
// The supervisor joins the dead thread, stops the old service (writing its
// `.shardK` cache snapshot), rebuilds service + server from the retained
// construction state (the new service reloads that snapshot), replays the
// admin log so late-loaded tenants reappear, rebinds the reuseport
// listener, and spawns a fresh thread — sibling shards keep serving
// untouched.  A wedged-but-alive thread (stale heartbeat() epoch) cannot be
// safely killed from outside; it is left to its watchdog-equipped service
// and surfaces through the heartbeat accessor instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "serve/ndjson.hpp"
#include "serve/service.hpp"

namespace xnfv::net {

struct ShardedServerConfig {
    /// Per-shard front-end settings.  `max_connections` is the FLEET limit
    /// (enforced via one shared budget); `port` 0 picks an ephemeral port
    /// shared by every shard.
    ServerConfig net;
    /// Number of (event loop + service) shards; 0 = hardware concurrency.
    std::size_t shards = 0;
    /// Pin shard i's loop thread to CPU i mod hardware concurrency.
    bool pin_threads = true;
    /// Supervisor sampling period: a dead shard is detected and respawned
    /// within one interval.  Also bounds the drain fan-out latency after
    /// request_drain().
    std::chrono::milliseconds heartbeat_interval{50};
};

/// N-way sharded explanation server.  Owns its services (one per shard),
/// built from the same (model, background, config) triple so every shard
/// serves byte-identical answers.
class ShardedServer {
public:
    using RowLookup = ExplanationServer::RowLookup;

    /// `service_config.cache_capacity` is divided across shards (floor 16
    /// per shard); `snapshot_path`, when set, gets a ".shardK" suffix per
    /// shard so snapshots stay self-describing and non-overlapping.
    ShardedServer(std::shared_ptr<const xnfv::ml::Model> model,
                  xnfv::xai::BackgroundData background,
                  serve::ServiceConfig service_config,
                  ShardedServerConfig config = {});
    ~ShardedServer();

    ShardedServer(const ShardedServer&) = delete;
    ShardedServer& operator=(const ShardedServer&) = delete;

    /// Installed on every shard (connections may land anywhere).
    void set_row_lookup(RowLookup lookup);

    /// Binds every shard's listener.  On failure returns false, stores why
    /// in `error` (when non-null), and closes whatever was bound.
    [[nodiscard]] bool start(std::string* error = nullptr);

    /// Runs every shard on its own (optionally pinned) thread; the calling
    /// thread becomes the shard supervisor and blocks until all have
    /// drained.  start() must have succeeded.
    void run();

    /// Begins a graceful drain on every shard.  Async-signal-safe (one
    /// atomic store — the supervisor fans it out within one
    /// heartbeat_interval) and idempotent — wired to SIGTERM by the CLI.
    void request_drain() noexcept;

    /// Stops every shard's service (drains queued work, joins dispatchers,
    /// writes final snapshots).  Idempotent; the destructor calls it.  Only
    /// valid after run() has returned.
    void stop_services();

    [[nodiscard]] std::uint16_t port() const noexcept;
    [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }

    /// Cross-shard aggregate: counters and gauges sum, latency quantiles
    /// take the worst shard (conservative), means weight by request count,
    /// and `cache_epoch` reports the highest shard epoch.
    [[nodiscard]] serve::ServiceStats stats() const;

    /// Shard threads respawned by the supervisor so far.
    [[nodiscard]] std::uint64_t shard_respawns() const noexcept {
        return shard_respawns_.value();
    }

    /// The fleet-wide connection budget (tests assert slot exactness).
    [[nodiscard]] const ConnectionBudget& budget() const noexcept { return *budget_; }

    /// Shard internals, for tests and benchmarks.  Not synchronized against
    /// the supervisor — callers must know the shard is not mid-respawn.
    [[nodiscard]] serve::ExplanationService& service(std::size_t shard) {
        return *shards_[shard]->service;
    }
    [[nodiscard]] ExplanationServer& server(std::size_t shard) {
        return *shards_[shard]->server;
    }

private:
    struct Shard {
        std::unique_ptr<serve::ExplanationService> service;
        std::unique_ptr<ExplanationServer> server;
        std::thread thread;
    };

    void build_shard_locked(std::size_t index);
    /// Joins the dead thread, rebuilds service (reloading the .shardK
    /// snapshot) + server, replays the admin log, rebinds, respawns.
    /// Caller holds admin_mutex_ then shards_mutex_.
    void respawn_shard_locked(std::size_t index);
    /// The supervisor loop run() parks its caller in.
    void supervise();

    ShardedServerConfig config_;
    std::shared_ptr<ConnectionBudget> budget_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /// Construction state retained so a dead shard can be rebuilt.
    std::shared_ptr<const xnfv::ml::Model> model_;
    xnfv::xai::BackgroundData background_;
    serve::ServiceConfig per_shard_;
    RowLookup row_lookup_;
    std::uint16_t port_ = 0;  ///< concrete port every listener shares
    /// Serializes admin ops (load/swap/retire fan-out across shards) and
    /// orders before shards_mutex_ when both are held (respawn replay).
    mutable std::mutex admin_mutex_;
    /// Guards shards_ entries against the supervisor swapping a shard's
    /// service/server mid-respawn (stats and admin fan-out take it too).
    mutable std::mutex shards_mutex_;
    /// Mutating admin ops in arrival order, replayed into a respawned
    /// shard's fresh service so late-loaded tenants survive the crash.
    std::vector<serve::JsonValue> admin_log_;
    std::atomic<bool> draining_{false};
    std::atomic<bool> services_stopped_{false};
    serve::Counter shard_respawns_;
};

}  // namespace xnfv::net
