#include "net/chaos.hpp"

#include "serve/explanation_cache.hpp"  // fnv1a_u64

namespace xnfv::net {

bool NetFaultInjector::decide(std::size_t i, std::uint64_t k) noexcept {
    const double rate = config_.rate[i];
    if (rate <= 0.0) return false;
    // Uniform in [0, 1) from the (seed, point, k) hash; fires when it lands
    // under the configured rate — the k-th poll's verdict never changes.
    const std::uint64_t h = serve::fnv1a_u64(
        k, serve::fnv1a_u64(static_cast<std::uint64_t>(i),
                            serve::fnv1a_u64(config_.seed, 0xcbf29ce484222325ULL)));
    const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;  // top 53 bits
    if (draw >= rate) return false;
    const std::uint64_t cap = config_.max_fires[i];
    const std::uint64_t nth = fired_[i].fetch_add(1, std::memory_order_relaxed);
    if (cap != 0 && nth >= cap) {
        fired_[i].fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

bool NetFaultInjector::should_fire(NetFaultPoint point, NetFaultCounters& local) noexcept {
    const std::size_t i = index(point);
    return decide(i, local.polls[i]++);
}

bool NetFaultInjector::should_fire(NetFaultPoint point) noexcept {
    const std::size_t i = index(point);
    return decide(i, global_polls_[i].fetch_add(1, std::memory_order_relaxed));
}

std::uint64_t NetFaultInjector::total_fired() const noexcept {
    std::uint64_t total = 0;
    for (const auto& f : fired_) total += f.load(std::memory_order_relaxed);
    return total;
}

bool NetFaultInjector::armed() const noexcept {
    for (const double r : config_.rate)
        if (r > 0.0) return true;
    return false;
}

}  // namespace xnfv::net
