#include "net/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace xnfv::net {

Connection::Connection(std::uint64_t id, int fd, std::size_t max_line_bytes)
    : decoder(max_line_bytes),
      last_activity(std::chrono::steady_clock::now()),
      id_(id),
      fd_(fd) {}

Connection::~Connection() { close(); }

void Connection::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

IoStatus Connection::read_some(std::vector<serve::Frame>& frames) {
    std::array<char, 16 * 1024> chunk;
    for (;;) {
        const auto n = ::recv(fd_, chunk.data(), chunk.size(), 0);
        if (n > 0) {
            bytes_in += static_cast<std::uint64_t>(n);
            last_activity = std::chrono::steady_clock::now();
            decoder.feed(chunk.data(), static_cast<std::size_t>(n), frames);
            if (static_cast<std::size_t>(n) < chunk.size()) return IoStatus::ok;
            continue;
        }
        if (n == 0) return IoStatus::peer_closed;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::would_block;
        if (errno == EINTR) continue;
        return IoStatus::error;
    }
}

void Connection::queue_output(const std::string& line) {
    outbuf_.append(line);
    outbuf_.push_back('\n');
}

IoStatus Connection::flush() {
    while (out_off_ < outbuf_.size()) {
        const auto n = ::send(fd_, outbuf_.data() + out_off_,
                              outbuf_.size() - out_off_, MSG_NOSIGNAL);
        if (n > 0) {
            out_off_ += static_cast<std::size_t>(n);
            bytes_out += static_cast<std::uint64_t>(n);
            last_activity = std::chrono::steady_clock::now();
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::would_block;
        if (errno == EINTR) continue;
        return errno == EPIPE || errno == ECONNRESET ? IoStatus::peer_closed
                                                     : IoStatus::error;
    }
    outbuf_.clear();
    out_off_ = 0;
    return IoStatus::ok;
}

std::uint64_t Connection::push_slot(Slot::Kind kind) {
    slots_.push_back(Slot{kind, false, {}});
    return base_seq_ + slots_.size() - 1;
}

void Connection::fulfill(std::uint64_t seq, std::string line) {
    if (seq < base_seq_) return;  // slot already popped (forced close path)
    const auto index = seq - base_seq_;
    if (index >= slots_.size()) return;
    slots_[index].ready = true;
    slots_[index].line = std::move(line);
}

void Connection::pop_front_slot() {
    slots_.pop_front();
    ++base_seq_;
}

}  // namespace xnfv::net
