#include "net/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace xnfv::net {

Connection::Connection(std::uint64_t id, int fd, std::size_t max_line_bytes)
    : decoder(max_line_bytes),
      last_activity(std::chrono::steady_clock::now()),
      id_(id),
      fd_(fd) {}

Connection::~Connection() { close(); }

void Connection::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

IoStatus Connection::read_some(std::vector<serve::Frame>& frames) {
    std::array<char, 16 * 1024> chunk;
    for (;;) {
        // Chaos seams: withheld rounds, torn frames, and synthetic EINTR
        // reshape *when* bytes arrive, never *which* bytes — responses stay
        // byte-identical to a fault-free run.  stalled_read relies on
        // level-triggered epoll to re-deliver the readable event.
        if (net_fault_fires(chaos, NetFaultPoint::stalled_read, fault_counters))
            return IoStatus::ok;
        std::size_t want = chunk.size();
        if (net_fault_fires(chaos, NetFaultPoint::torn_read, fault_counters))
            want = 3;
        ssize_t n;
        if (net_fault_fires(chaos, NetFaultPoint::eintr_storm, fault_counters)) {
            errno = EINTR;
            n = -1;
        } else {
            n = ::recv(fd_, chunk.data(), want, 0);
        }
        if (n > 0) {
            bytes_in += static_cast<std::uint64_t>(n);
            last_activity = std::chrono::steady_clock::now();
            decoder.feed(chunk.data(), static_cast<std::size_t>(n), frames);
            if (static_cast<std::size_t>(n) < want) return IoStatus::ok;
            continue;
        }
        if (n == 0) return IoStatus::peer_closed;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::would_block;
        if (errno == EINTR) continue;
        return IoStatus::error;
    }
}

void Connection::queue_output(const std::string& line) {
    outbuf_.append(line);
    outbuf_.push_back('\n');
}

IoStatus Connection::flush() {
    while (out_off_ < outbuf_.size()) {
        std::size_t len = outbuf_.size() - out_off_;
        bool short_send = false;
        // partial_write moves one byte, then reports a full kernel buffer so
        // the server exercises its EPOLLOUT backpressure path.
        if (net_fault_fires(chaos, NetFaultPoint::partial_write, fault_counters)) {
            len = 1;
            short_send = true;
        }
        ssize_t n;
        if (net_fault_fires(chaos, NetFaultPoint::eintr_storm, fault_counters)) {
            errno = EINTR;
            n = -1;
        } else {
            n = ::send(fd_, outbuf_.data() + out_off_, len, MSG_NOSIGNAL);
        }
        if (n > 0) {
            out_off_ += static_cast<std::size_t>(n);
            bytes_out += static_cast<std::uint64_t>(n);
            last_activity = std::chrono::steady_clock::now();
            if (short_send) return IoStatus::would_block;
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::would_block;
        if (errno == EINTR) continue;
        return errno == EPIPE || errno == ECONNRESET ? IoStatus::peer_closed
                                                     : IoStatus::error;
    }
    outbuf_.clear();
    out_off_ = 0;
    return IoStatus::ok;
}

std::uint64_t Connection::push_slot(Slot::Kind kind) {
    slots_.push_back(Slot{kind, false, {}, 0});
    return base_seq_ + slots_.size() - 1;
}

void Connection::fulfill(std::uint64_t seq, std::string line) {
    if (seq < base_seq_) return;  // slot already popped (forced close path)
    const auto index = seq - base_seq_;
    if (index >= slots_.size()) return;
    Slot& slot = slots_[index];
    slot.ready = true;
    slot.line = std::move(line);
    if (slot.rid == 0) return;
    // This slot is the original for its rid: record the completed response
    // and answer every duplicate that attached while it was pending.
    // Duplicate slots carry rid 0, so the recursion is one level deep.
    const auto it = dedup_.find(slot.rid);
    if (it == dedup_.end() || it->second.done) return;
    it->second.done = true;
    it->second.line = slot.line;
    const std::vector<std::uint64_t> waiting = std::move(it->second.waiting);
    for (const auto dup_seq : waiting) fulfill(dup_seq, it->second.line);
}

Connection::DedupVerdict Connection::dedup_admit(std::uint64_t rid, std::uint64_t seq) {
    if (rid == 0 || dedup_window == 0) return DedupVerdict::fresh;
    const auto [it, inserted] = dedup_.try_emplace(rid);
    if (inserted) {
        dedup_order_.push_back(rid);
        // Evict the oldest *completed* records over capacity; a pending
        // original is never dropped (its duplicates must still attach).
        while (dedup_order_.size() > dedup_window) {
            const auto vit = dedup_.find(dedup_order_.front());
            if (vit != dedup_.end()) {
                if (!vit->second.done) break;
                dedup_.erase(vit);
            }
            dedup_order_.pop_front();
        }
        if (seq >= base_seq_ && seq - base_seq_ < slots_.size())
            slots_[seq - base_seq_].rid = rid;
        return DedupVerdict::fresh;
    }
    if (it->second.done) {
        fulfill(seq, it->second.line);
        return DedupVerdict::replayed;
    }
    it->second.waiting.push_back(seq);
    return DedupVerdict::attached;
}

void Connection::pop_front_slot() {
    slots_.pop_front();
    ++base_seq_;
}

}  // namespace xnfv::net
