#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "net/socket.hpp"

namespace xnfv::net {

Client::~Client() { close(); }

void Client::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

void Client::shutdown_write() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error,
                     std::chrono::milliseconds connect_timeout) {
    close();
    sockaddr_storage addr{};
    socklen_t addr_len = 0;
    if (auto* v4 = reinterpret_cast<sockaddr_in*>(&addr);
        ::inet_pton(AF_INET, host.c_str(), &v4->sin_addr) == 1) {
        v4->sin_family = AF_INET;
        v4->sin_port = htons(port);
        addr_len = sizeof(sockaddr_in);
    } else if (auto* v6 = reinterpret_cast<sockaddr_in6*>(&addr);
               ::inet_pton(AF_INET6, host.c_str(), &v6->sin6_addr) == 1) {
        v6->sin6_family = AF_INET6;
        v6->sin6_port = htons(port);
        addr_len = sizeof(sockaddr_in6);
    } else {
        if (error) *error = "not a numeric address: '" + host + "'";
        return false;
    }
    fd_ = ::socket(addr.ss_family, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (connect_timeout.count() > 0) {
        // Bounded handshake: connect non-blocking, poll for writability,
        // read the result from SO_ERROR, then restore blocking mode.
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
        const int rc = retry_on_eintr([&] {
            return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), addr_len);
        });
        if (rc != 0 && errno != EINPROGRESS) {
            if (error) *error = std::string("connect: ") + std::strerror(errno);
            close();
            return false;
        }
        if (rc != 0) {
            pollfd pfd{fd_, POLLOUT, 0};
            const int ready = retry_on_eintr([&] {
                return ::poll(&pfd, 1, static_cast<int>(connect_timeout.count()));
            });
            if (ready <= 0) {
                if (error)
                    *error = ready == 0 ? "connect: timed out"
                                        : std::string("poll: ") + std::strerror(errno);
                close();
                return false;
            }
            int so_error = 0;
            socklen_t len = sizeof(so_error);
            ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
            if (so_error != 0) {
                if (error) *error = std::string("connect: ") + std::strerror(so_error);
                close();
                return false;
            }
        }
        ::fcntl(fd_, F_SETFL, flags);
    } else if (retry_on_eintr([&] {
                   return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), addr_len);
               }) != 0) {
        if (error) *error = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

bool Client::send_line(const std::string& line) {
    if (fd_ < 0) return false;
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
        const auto n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        return false;
    }
    return true;
}

bool Client::recv_line(std::string& line, std::chrono::milliseconds timeout) {
    if (fd_ < 0) return false;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
        if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
            line.assign(buffer_, 0, nl);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            buffer_.erase(0, nl + 1);
            return true;
        }
        if (timeout.count() > 0) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            if (left.count() <= 0) return false;
            pollfd pfd{fd_, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
            if (ready == 0) return false;
            if (ready < 0) {
                if (errno == EINTR) continue;
                return false;
            }
        }
        std::array<char, 16 * 1024> chunk;
        const auto n = ::recv(fd_, chunk.data(), chunk.size(), 0);
        if (n > 0) {
            buffer_.append(chunk.data(), static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;  // EOF or hard error with no complete line buffered
    }
}

}  // namespace xnfv::net
