// Multiplexed ND-JSON load generator for the TCP front-end.
//
// One epoll loop drives every client connection, so a single test thread can
// hold 10k+ concurrent loopback connections against the (sharded) server —
// a thread-per-connection blocking Client cannot reach that scale.  Each
// connection plays a caller-provided script (a list of request lines) with a
// bounded pipelining window and records every response line verbatim, which
// is what lets the soak and equivalence suites byte-compare full
// per-connection response streams across shard counts.
//
// Reply accounting is line-for-line: every scripted line is expected to
// produce exactly one response line, except a trailing `{"op":"quit"}`
// (which produces none and makes the server close after flushing).  Scripts
// should therefore end with either a quit frame or, with `shutdown_writes`,
// a half-close — both make the server end the connection so run_load() can
// read to EOF instead of guessing when a stream is done.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace xnfv::net {

struct LoadgenConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Max request lines in flight per connection before the next send waits
    /// for a response (1 = strict request/response lock-step).
    std::size_t window = 1;
    /// After a connection's last scripted line is sent, shutdown(SHUT_WR) —
    /// exercises the server's peer-EOF close path instead of quit.
    bool shutdown_writes = false;
    /// Whole-run deadline; on expiry surviving connections are abandoned and
    /// LoadReport::timed_out is set.
    std::chrono::milliseconds timeout{60000};
    /// Record a per-response round-trip sample (staged-to-answered, FIFO
    /// matched) into ConnReport::latency_us.
    bool record_latency = false;

    // --- Safe client retries (all off by default; max_retries > 0 turns
    // --- the driver into retry mode).
    //
    // In retry mode every scripted line must be an explain request carrying
    // a nonzero "id" (and, for same-connection dedup, a matching "rid");
    // responses are matched by id instead of FIFO order, an unanswered line
    // is re-sent with the same rid after `response_timeout` (the server's
    // per-connection dedup window answers replays from the completed-
    // response record instead of recomputing), and a dead connection is
    // re-established with exponential backoff and its unanswered lines
    // re-sent.  A connection completes when every scripted line has been
    // answered — the driver closes it actively, so scripts must NOT end
    // with a quit frame and `shutdown_writes` is ignored.
    /// Re-sends per request / reconnects per connection before giving up.
    std::size_t max_retries = 0;
    /// Unanswered-for-this-long lines are re-sent (0 = only reconnects
    /// re-send; response loss without connection death then waits forever).
    std::chrono::milliseconds response_timeout{0};
    /// Bound on each (re)connect handshake; 0 = kernel default.
    std::chrono::milliseconds connect_timeout{0};
    /// Backoff for attempt k is `backoff_base * 2^(k-1)` plus a
    /// deterministic jitter in [0, backoff_base] derived from
    /// (retry_seed, connection, rid, attempt) — no wall-clock randomness.
    std::chrono::milliseconds backoff_base{10};
    std::uint64_t retry_seed = 1;

    [[nodiscard]] bool retries_enabled() const noexcept { return max_retries > 0; }
};

/// Everything one connection saw, in arrival order.
struct ConnReport {
    /// Complete response lines ('\n' stripped), exactly as received.
    std::vector<std::string> lines;
    std::size_t sent_lines = 0;   ///< scripted lines actually written
    bool connect_failed = false;  ///< never established
    bool io_error = false;        ///< reset / write-after-close mid-stream
    bool eof = false;             ///< server closed the stream cleanly
    /// Leftover bytes after the last newline (non-empty = truncated line).
    std::string partial;
    /// Round-trip micros per response line (when record_latency is set).
    std::vector<double> latency_us;
    // Retry-mode accounting (zero outside retry mode).
    std::size_t retries = 0;     ///< lines re-sent after a response timeout
    std::size_t reconnects = 0;  ///< connection re-establishments attempted
    std::size_t duplicates = 0;  ///< extra responses for an already-answered id
};

struct LoadReport {
    std::vector<ConnReport> conns;  ///< index-aligned with the scripts
    bool timed_out = false;
    [[nodiscard]] std::uint64_t total_lines() const noexcept {
        std::uint64_t n = 0;
        for (const auto& c : conns) n += c.lines.size();
        return n;
    }
};

/// One explain request for script building.  Exactly one of `row` (>= 0) or
/// `features` (non-empty) supplies the instance; optional fields are omitted
/// from the rendered line when left at their defaults, so a spec without a
/// model renders byte-identically to the pre-registry request lines.
struct RequestSpec {
    std::uint64_t id = 0;
    /// Idempotency key for safe retries: a nonzero rid enters the server's
    /// per-connection dedup window, so a re-sent request is answered from
    /// the completed-response record instead of recomputed.  0 omits the
    /// field (byte-identical to pre-rid request lines).
    std::uint64_t rid = 0;
    long row = -1;
    std::vector<double> features;
    std::string method;
    /// Registry model name for mixed-tenant workloads ("" = server default).
    std::string model;
    std::uint64_t seed = 0;
    std::int64_t deadline_ms = -1;
    /// > 0 requests the top-k interaction pairs next to the attributions;
    /// 0 omits the field (byte-identical to pre-interaction request lines).
    std::size_t interactions = 0;
};

/// Renders one `{"op":"explain",...}` request line (no trailing newline) —
/// the single place tests, benches, and the CLI netprobe build request JSON.
[[nodiscard]] std::string render_request_line(const RequestSpec& spec);

/// Plays `scripts[i]` on connection i (lines need not be '\n'-terminated;
/// one is added).  Blocks until every connection reached EOF, errored, or
/// the deadline expired.
[[nodiscard]] LoadReport run_load(const LoadgenConfig& config,
                                  const std::vector<std::vector<std::string>>& scripts);

}  // namespace xnfv::net
